"""Thin setup.py shim.

All metadata lives in pyproject.toml; this file exists so that
``pip install -e .`` keeps working on offline machines whose pip lacks the
``wheel`` package required by PEP 660 editable builds (pip then falls back
to the legacy ``setup.py develop`` path).
"""

from setuptools import setup

setup()
