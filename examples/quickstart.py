#!/usr/bin/env python3
"""Quickstart: compress, auto-tune, factorize, and solve a 3D covariance.

The five-minute tour of the library: build the paper's st-3D-exp
covariance problem at laptop scale, let the BAND_SIZE auto-tuner pick the
dense band, run the BAND-DENSE-TLR Cholesky, and solve a linear system —
checking the solution error against the compression threshold like the
paper's Section VIII-A does.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import TLRSolver, st_3d_exp_problem


def main() -> None:
    # 4096 spatial locations in the unit cube, Morton-ordered, with the
    # exponential Matérn kernel theta = (1, 0.1, 0.5).
    n, tile_size = 4096, 256
    problem = st_3d_exp_problem(n, tile_size, seed=0)
    print(f"problem: n={n}, tile={tile_size}, NT={problem.ntiles}")

    # Compress at the paper's default accuracy and auto-tune BAND_SIZE.
    solver = TLRSolver.from_problem(problem, accuracy=1e-8)
    mn, avg, mx = solver.matrix.rank_stats()
    print(f"compressed: band_size={solver.band_size} "
          f"(auto-tuned, box={solver.decision.band_size_range}), "
          f"ranks min/avg/max = {mn}/{avg:.1f}/{mx}")

    report = solver.factorize()
    print(f"factorized: {report.counter.total/1e9:.2f} modelled Gflop, "
          f"final maxrank={report.max_rank_seen}, "
          f"rank growths={report.rank_growth_events}")

    # Solve Sigma x = b against a known solution.
    rng = np.random.default_rng(1)
    x_true = rng.standard_normal(n)
    cov = problem.dense()          # small enough to check exactly
    b = cov @ x_true
    x = solver.solve(b)
    err = np.linalg.norm(x - x_true) / np.linalg.norm(x_true)
    print(f"solve: relative error = {err:.2e} "
          f"(compression threshold 1e-8 -> expect ~1e-9..1e-7)")

    # Memory story (Fig. 8): static descriptor vs dynamic designation.
    mem = solver.memory_report()
    print(f"memory: static {mem.static_bytes/2**20:.1f} MiB vs dynamic "
          f"{mem.dynamic_bytes/2**20:.1f} MiB "
          f"({mem.reduction_factor:.2f}x reduction)")

    assert err < 1e-5, "solution error should track the compression accuracy"
    print("OK")


if __name__ == "__main__":
    main()
