#!/usr/bin/env python3
"""BAND_SIZE auto-tuning study (Algorithm 1 / Fig. 6 in miniature).

Walks the full tuning pipeline on a real problem: compress at band 1,
inspect the per-sub-diagonal dense-vs-TLR cost table the performance
model builds, pick BAND_SIZE, regenerate the band, and show the payoff by
factorizing at several band widths.

Run:  python examples/band_autotuning_study.py
"""

from __future__ import annotations

import time

from repro import TruncationRule, st_3d_exp_problem
from repro.analysis import format_table
from repro.core import tlr_cholesky, tune_band_size
from repro.matrix import BandTLRMatrix


def main() -> None:
    n, tile_size, eps = 4050, 270, 1e-4
    problem = st_3d_exp_problem(n, tile_size, seed=3)
    rule = TruncationRule(eps=eps)

    # Step 1: generate + compress with BAND_SIZE = 1.
    m1 = BandTLRMatrix.from_problem(problem, rule, band_size=1)
    mn, avg, mx = m1.rank_stats()
    print(f"compressed at eps={eps:g}: ranks min/avg/max = {mn}/{avg:.1f}/{mx} "
          f"(b={tile_size})")

    # Step 2: the performance model's view of each sub-diagonal.
    decision = tune_band_size(m1.rank_grid(), tile_size)
    rows = [
        (c.band_id, c.maxrank,
         round(c.dense_flops / 1e9, 2), round(c.tlr_flops / 1e9, 2),
         "dense" if c.dense_flops <= 0.67 * c.tlr_flops else "TLR")
        for c in decision.costs[:8]
    ]
    print(format_table(
        ["band_id", "maxrank", "dense_Gflop", "TLR_Gflop", "cheaper@0.67"],
        rows, title="Algorithm 1's per-sub-diagonal cost model (first 8)"))
    print(f"tuned BAND_SIZE = {decision.band_size} "
          f"(fluctuation box {decision.band_size_range})\n")

    # Step 3: regenerate and factorize at several bands to see the payoff.
    print("band_size  time_s   modelled_Gflop")
    for band in sorted({1, 2, decision.band_size, decision.band_size + 2}):
        base = m1 if band == 1 else m1.with_band_size(band, problem)
        work = base.copy()
        t0 = time.perf_counter()
        rep = tlr_cholesky(work)
        marker = "  <- tuned" if band == decision.band_size else ""
        print(f"{band:>9}  {time.perf_counter() - t0:6.2f}   "
              f"{rep.counter.total / 1e9:10.2f}{marker}")


if __name__ == "__main__":
    main()
