#!/usr/bin/env python3
"""Solver service: factorize once, serve many concurrent solves.

The paper's production workload — Matérn parameter estimation over a
fixed 3D geometry — solves against the *same* covariance factor
thousands of times.  The :mod:`repro.service` layer packages that shape:
a geometry-keyed factor cache (factorize at most once per identity),
sharded solver workers that stack concurrent same-factor requests into
one multi-RHS substitution sweep, bounded-queue admission control, and
per-request deadlines.

This demo opens a session, warms the factor (the one factorization),
fires concurrent client threads at it, and prints the serving report:
latency percentiles, batch widths, and the cache counters proving no
request triggered a second factorization.

Run:  python examples/service_demo.py
"""

from __future__ import annotations

import threading

import numpy as np

from repro import st_3d_exp_problem
from repro.service import ServiceConfig, SolverService

N, TILE, EPS = 2048, 128, 1e-6
CLIENTS, REQUESTS = 8, 10


def main() -> None:
    problem = st_3d_exp_problem(N, TILE, seed=0)
    config = ServiceConfig(
        n_workers=2,        # solver threads = factor shards
        max_queue_depth=64, # admission control: reject beyond this depth
        max_batch=16,       # stack up to 16 same-factor solves per sweep
    )
    print(f"problem: n={N}, tile={TILE}, eps={EPS:g}; "
          f"{CLIENTS} clients x {REQUESTS} requests")

    with SolverService(config) as svc:
        session = svc.session(problem, accuracy=EPS, band_size=1)

        # Factorize once, up front — every request below is a cache hit.
        entry = session.warm()
        print(f"factor resident: {entry.nbytes / 2**20:.1f} MiB under key "
              f"{session.key.digest()} "
              f"(precision {entry.realized_precision})")

        errors: list[float] = []
        lock = threading.Lock()
        dense = problem.dense()     # small enough to check exactly

        def client(cid: int) -> None:
            rng = np.random.default_rng(cid)
            for _ in range(REQUESTS):
                rhs = rng.standard_normal(N)
                x = session.solve(rhs, timeout=60)
                ref = np.linalg.solve(dense, rhs)
                rel = np.linalg.norm(x - ref) / np.linalg.norm(ref)
                with lock:
                    errors.append(rel)

        threads = [
            threading.Thread(target=client, args=(cid,))
            for cid in range(CLIENTS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        stats = svc.stats()

    print(f"served {stats.completed} solves in {stats.batches} batches "
          f"(mean width {stats.mean_batch_width:.1f}, "
          f"max {stats.max_batch_width})")
    print(f"latency p50/p95/p99 = {stats.p50_ms:.2f} / {stats.p95_ms:.2f} "
          f"/ {stats.p99_ms:.2f} ms")
    cache = stats.cache
    print(f"cache: {cache.hits} hits, {cache.misses} misses, "
          f"{cache.factorizations} factorization(s)")
    print(f"max solve error vs dense reference: {max(errors):.2e}")

    assert cache.factorizations == 1, "warm identity must never refactorize"
    assert max(errors) < 100 * EPS
    print("OK")


if __name__ == "__main__":
    main()
