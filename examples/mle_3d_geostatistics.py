#!/usr/bin/env python3
"""MLE parameter estimation for a 3D environmental field (Eq. 1).

The paper's motivating application: estimate the Matérn parameters of a
geospatial field (e.g. wind speed or temperature varying with altitude)
by maximizing the Gaussian log-likelihood, where every likelihood
evaluation requires a Cholesky factorization of the covariance — the
operation the whole paper accelerates.

This example synthesizes measurements from a known ground truth
θ = (1.0, 0.1, 0.5), then recovers θ1 (variance) and θ2 (correlation
length) by TLR-accelerated maximum likelihood.

Run:  python examples/mle_3d_geostatistics.py
"""

from __future__ import annotations

from repro import TruncationRule, st_3d_exp_problem
from repro.core import LikelihoodEvaluator, fit_mle

TRUE_VARIANCE = 1.0
TRUE_LENGTH = 0.1


def main() -> None:
    # Ground-truth field: 1331 locations (11^3 grid) in the unit cube.
    n, tile_size = 1331, 121
    problem = st_3d_exp_problem(n, tile_size, seed=42)
    z = problem.sample_measurements(seed=7)
    print(f"synthetic field: n={n}, true theta=({TRUE_VARIANCE}, {TRUE_LENGTH}, 0.5)")

    # Each candidate theta triggers: assemble -> compress -> TLR Cholesky
    # -> logdet + quadratic form.  eps=1e-6 is plenty for optimization.
    evaluator = LikelihoodEvaluator(
        points=problem.points,
        z=z,
        tile_size=tile_size,
        rule=TruncationRule(eps=1e-6),
        band_size=1,
    )
    result = fit_mle(evaluator, initial=(0.5, 0.05), max_iterations=80)

    print(f"estimated variance           = {result.variance:.4f}")
    print(f"estimated correlation length = {result.correlation_length:.4f}")
    print(f"log-likelihood at optimum    = {result.log_likelihood:.2f}")
    print(f"covariance factorizations    = {result.n_evaluations}")

    # With ~1.3k observations the estimates land in the right neighbourhood.
    assert 0.3 < result.variance < 3.0
    assert 0.05 < result.correlation_length < 0.25
    print("OK — estimates in the expected neighbourhood of the truth")


if __name__ == "__main__":
    main()
