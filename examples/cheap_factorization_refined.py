#!/usr/bin/env python3
"""Loose-accuracy factorization + iterative refinement + fp32 storage.

The paper's Fig. 13 shows that loosening the accuracy threshold makes the
TLR Cholesky dramatically cheaper (smaller ranks, BAND_SIZE → 1).  This
example shows how to *use* that cheap factorization without giving up
solver accuracy — the classic pairing the paper's conclusion points
toward with its mixed-precision future work:

1. factorize at a loose ε (fast, small memory);
2. demote off-band factors to float32 (half the compressed footprint);
3. recover full accuracy with iterative refinement against the exact
   operator (regenerated tile-by-tile, never stored densely).

Run:  python examples/cheap_factorization_refined.py
"""

from __future__ import annotations

import time

import numpy as np

from repro import TruncationRule, st_3d_exp_problem
from repro.core import tlr_cholesky
from repro.core.refine import refined_solve
from repro.linalg import demote_matrix
from repro.matrix import BandTLRMatrix


def main() -> None:
    n, tile = 2744, 196  # 14^3 locations
    problem = st_3d_exp_problem(n, tile, seed=5, nugget=1e-2)
    a = problem.dense()
    rng = np.random.default_rng(0)
    x_true = rng.standard_normal(n)
    rhs = a @ x_true

    results = []
    for eps in (1e-8, 1e-3):
        m = BandTLRMatrix.from_problem(problem, TruncationRule(eps=eps), 1)
        m, mem = demote_matrix(m, dtype=np.float32)
        t0 = time.perf_counter()
        tlr_cholesky(m)
        t_fact = time.perf_counter() - t0

        t0 = time.perf_counter()
        res = refined_solve(
            m, rhs, operator=problem, tolerance=1e-10, max_iterations=15
        )
        t_solve = time.perf_counter() - t0
        err = np.linalg.norm(res.x - x_true) / np.linalg.norm(x_true)
        results.append((eps, t_fact, t_solve, res.iterations, err, mem))
        print(
            f"eps={eps:>6g}: factorize {t_fact:5.2f}s, "
            f"solve+refine {t_solve:5.2f}s ({res.iterations} sweeps), "
            f"x error {err:.2e}, mixed-precision saving "
            f"{mem.saving_factor:.2f}x"
        )

    tight, loose = results
    print()
    print(f"loose factorization was {tight[1] / loose[1]:.1f}x faster to build;")
    print(f"refinement closed the accuracy gap: {loose[4]:.2e} vs {tight[4]:.2e}")

    assert loose[4] < 1e-6, "refined loose factorization must be accurate"
    assert loose[1] < tight[1], "loose factorization must be faster"
    print("OK")


if __name__ == "__main__":
    main()
