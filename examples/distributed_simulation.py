#!/usr/bin/env python3
"""Distributed-memory what-if study: simulate at scale, then run for real.

The paper's large-scale results ran on Shaheen II; this example replays
the same task graphs on the discrete-event simulator to answer the
questions a practitioner would ask before buying node-hours:

* how much does the BAND-DENSE-TLR layout + hybrid distribution buy over
  the pure-TLR baseline on my node count?
* does the recursive-kernel expansion matter for my problem shape?
* what occupancy and communication volume should I expect?

It then grounds the model: the same DAG is factorized *for real* on the
multi-process executor (``executor="processes"``, true worker processes
with explicit tile communication), and the realized LOCAL/REMOTE
message counts are checked against the simulator's prediction.

Run:  python examples/distributed_simulation.py
"""

from __future__ import annotations

from repro.analysis import (
    format_table,
    occupancy_summary,
    paper_rank_model,
)
from repro.core import tune_band_size
from repro.distribution import BandDistribution, ProcessGrid, TwoDBlockCyclic
from repro.linalg import KernelClass
from repro.runtime import MachineSpec, build_cholesky_graph, simulate

B, NT, NODES = 1200, 48, 16


def main() -> None:
    model = paper_rank_model(B, accuracy=1e-8)
    band = tune_band_size(model.to_rank_grid(NT), B).band_size
    machine = MachineSpec(nodes=NODES)
    grid = ProcessGrid.squarest(NODES)
    print(f"simulating NT={NT}, b={B} on {NODES} nodes "
          f"({machine.cores_per_node} cores each); tuned band={band}\n")

    configs = {
        "Prev (TLR, band-1 dist, POTRF rec.)": dict(
            band=1,
            dist=BandDistribution(grid, band_size=1),
            kernels={KernelClass.POTRF_DENSE},
        ),
        "Band-dense + hybrid dist": dict(
            band=band,
            dist=BandDistribution(grid, band_size=band),
            kernels={KernelClass.POTRF_DENSE},
        ),
        "  ... with plain 2DBCDD instead": dict(
            band=band,
            dist=TwoDBlockCyclic(grid),
            kernels={KernelClass.POTRF_DENSE},
        ),
        "New (+ all kernels recursive)": dict(
            band=band,
            dist=BandDistribution(grid, band_size=band),
            kernels=None,
        ),
    }

    rows = []
    for name, cfg in configs.items():
        g = build_cholesky_graph(
            NT, cfg["band"], B, model,
            recursive_split=4, recursive_kernels=cfg["kernels"],
        )
        res = simulate(g, cfg["dist"], machine)
        s = occupancy_summary(res)
        rows.append(
            (name, round(res.makespan, 2), round(s.mean_occupancy, 2),
             res.comm.messages, round(res.comm.bytes_sent / 2**30, 2))
        )

    print(format_table(
        ["configuration", "time_s", "occupancy", "messages", "GiB_sent"],
        rows, title="simulated configurations"))

    t_prev, t_new = rows[0][1], rows[-1][1]
    print(f"\nPaRSEC-HiCMA-New speedup over Prev: {t_prev / t_new:.1f}x "
          f"(paper reports 5.2-7.6x at full scale)")

    real_distributed_run()


def real_distributed_run(ranks: int = 2) -> None:
    """Ground the model: the same DAG for real on worker processes."""
    import numpy as np

    from repro import TLRSolver, st_3d_exp_problem

    problem = st_3d_exp_problem(1024, 128, seed=0)
    print(f"\nreal multi-process run: n=1024, b=128 on {ranks} ranks")

    ref = TLRSolver.from_problem(problem, accuracy=1e-8, band_size=2)
    ref.factorize(n_workers=2)

    solver = TLRSolver.from_problem(problem, accuracy=1e-8, band_size=2)
    rep = solver.factorize(executor="processes", n_ranks=ranks)

    same = np.array_equal(
        solver.matrix.to_dense(lower_only=True),
        ref.matrix.to_dense(lower_only=True),
    )
    c = rep.comm
    print(f"bitwise identical to the thread executor: {same}")
    print(f"realized comm: {c.local_edges} LOCAL / {c.remote_edges} REMOTE "
          f"edges, {c.messages} messages, "
          f"{c.bytes_sent / 2**20:.2f} MiB moved")


if __name__ == "__main__":
    main()
