#!/usr/bin/env python3
"""Krige a 3D environmental field from scattered observations.

The paper's applications predict quantities like "wind speed or
temperature changes with altitude" (Section IV).  This example closes
that loop: synthesize a ground-truth 3D field from the st-3D-exp model,
observe it at a subset of locations, factorize the observed covariance
with the TLR machinery, and predict the field on a vertical column —
reporting both the prediction and its uncertainty.

Run:  python examples/kriging_weather_field.py
"""

from __future__ import annotations

import numpy as np

from repro import TLRSolver, st_3d_exp_problem
from repro.core.kriging import krige
from repro.statistics import CovarianceProblem


def main() -> None:
    # Ground truth: a dense sample on observed + target locations jointly.
    n_obs, tile = 2048, 128
    obs_problem = st_3d_exp_problem(n_obs, tile, seed=11, nugget=1e-4)

    # A vertical column through the cube: fixed (x, y), varying altitude.
    n_tgt = 25
    column = np.column_stack(
        [np.full(n_tgt, 0.52), np.full(n_tgt, 0.47), np.linspace(0.05, 0.95, n_tgt)]
    )

    # Draw observed values and the *true* column values jointly so we can
    # score the predictions.
    joint = CovarianceProblem(
        points=np.vstack([obs_problem.points, column]),
        params=obs_problem.params,
        tile_size=tile,
        nugget=obs_problem.nugget,
    )
    z_joint = joint.sample_measurements(seed=5)
    z_obs, z_true = z_joint[:n_obs], z_joint[n_obs:]

    # TLR pipeline on the observed covariance.
    solver = TLRSolver.from_problem(obs_problem, accuracy=1e-8)
    solver.factorize()
    print(f"factorized n={n_obs} covariance (band={solver.band_size})")

    res = krige(obs_problem, solver.matrix, z_obs, column)

    print("\naltitude   predicted    truth     +-2sd")
    inside = 0
    for h, mu, var, truth in zip(column[:, 2], res.mean, res.variance, z_true):
        sd = np.sqrt(var)
        hit = abs(truth - mu) <= 2 * sd
        inside += hit
        print(f"  {h:5.2f}   {mu:8.3f}  {truth:8.3f}   {2 * sd:6.3f} {'' if hit else '  <-- outside'}")

    rmse = float(np.sqrt(np.mean((res.mean - z_true) ** 2)))
    print(f"\nRMSE = {rmse:.3f}, {inside}/{n_tgt} truths inside the 2-sigma band")

    # Calibration sanity: the 2-sigma band should cover ~95% of truths.
    assert inside >= int(0.8 * n_tgt)
    print("OK")


if __name__ == "__main__":
    main()
