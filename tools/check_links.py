#!/usr/bin/env python
"""Check intra-repo markdown links (files and heading anchors).

Usage::

    python tools/check_links.py [FILE.md ...]

With no arguments, checks ``README.md`` and every ``docs/*.md``. For each
``[text](target)`` link (images included) the target must exist relative
to the linking file; ``#anchor`` fragments on markdown targets must match
a heading in the target file (GitHub's slug rules). External links
(``http``, ``https``, ``mailto``) are not fetched. Exits non-zero listing
every dangling link — the CI docs job runs this.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_FENCE = re.compile(r"^(```|~~~)", re.MULTILINE)
_EXTERNAL = ("http://", "https://", "mailto:", "ftp:")


def _strip_fences(text: str) -> str:
    """Drop fenced code blocks so example snippets are not parsed."""
    out, keep, fence = [], True, None
    for line in text.splitlines():
        stripped = line.lstrip()
        if keep and stripped.startswith(("```", "~~~")):
            keep, fence = False, stripped[:3]
            continue
        if not keep and fence is not None and stripped.startswith(fence):
            keep, fence = True, None
            continue
        if keep:
            out.append(line)
    return "\n".join(out)


def _slugify(heading: str) -> str:
    """GitHub's heading-to-anchor slug (close enough for ASCII docs)."""
    text = re.sub(r"`([^`]*)`", r"\1", heading.strip().lower())
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def _anchors(path: Path) -> set[str]:
    slugs: set[str] = set()
    counts: dict[str, int] = {}
    for line in _strip_fences(path.read_text()).splitlines():
        m = re.match(r"#{1,6}\s+(.*)", line)
        if not m:
            continue
        slug = _slugify(m.group(1))
        n = counts.get(slug, 0)
        counts[slug] = n + 1
        slugs.add(slug if n == 0 else f"{slug}-{n}")
    return slugs


def check_file(path: Path) -> list[str]:
    """Dangling-link descriptions for one markdown file."""
    problems: list[str] = []
    for target in _LINK.findall(_strip_fences(path.read_text())):
        if target.startswith(_EXTERNAL) or target.startswith("#"):
            if target.startswith("#") and target[1:] not in _anchors(path):
                problems.append(f"{path}: no heading for anchor {target!r}")
            continue
        ref, _, anchor = target.partition("#")
        resolved = (path.parent / ref).resolve()
        try:
            resolved.relative_to(REPO)
        except ValueError:
            # Relative links that climb above the repo root (the CI badge
            # style ../../actions/...) resolve on the forge, not on disk.
            continue
        if not resolved.exists():
            problems.append(f"{path}: broken link {target!r} -> {resolved}")
        elif anchor and resolved.suffix == ".md":
            if anchor not in _anchors(resolved):
                problems.append(
                    f"{path}: no heading for anchor {target!r} in {ref}"
                )
    return problems


def main(argv: list[str]) -> int:
    if argv:
        files = [Path(a) for a in argv]
    else:
        files = [REPO / "README.md", *sorted((REPO / "docs").glob("*.md"))]
    problems: list[str] = []
    for path in files:
        if not path.exists():
            problems.append(f"{path}: file not found")
            continue
        problems.extend(check_file(path))
    for line in problems:
        print(line)
    print(f"checked {len(files)} files: "
          f"{'OK' if not problems else f'{len(problems)} broken links'}")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
