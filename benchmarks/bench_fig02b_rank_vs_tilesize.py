"""Fig. 2(b) — impact of tile size on the rank distribution.

Paper: compressing N = 1.08M with tile sizes 1500..4200 shows max/avg/min
rank *increasing* with tile size in absolute terms but the overall trend
of data sparsity improving — in particular ratio_maxrank = maxrank/b and
ratio_discrepancy *decrease* as b grows, while small b inflates both and
large b reduces the degree of parallelism (fewer tiles).

Reproduced at N = 7200 with b in {225, 300, 450, 600, 900}.
"""

from __future__ import annotations

from repro import TruncationRule
from repro.analysis import format_series, rank_ratios, rank_stats, write_csv
from repro.matrix import BandTLRMatrix
from repro.statistics import CovarianceProblem

TILE_SIZES = [225, 300, 450, 600, 900]
RULE = TruncationRule(eps=1e-8)


def _compress_at(problem_small, b):
    prob = CovarianceProblem(
        points=problem_small.points,
        params=problem_small.params,
        tile_size=b,
        nugget=problem_small.nugget,
    )
    return BandTLRMatrix.from_problem(prob, RULE, band_size=1)


def test_fig02b_rank_vs_tilesize(benchmark, problem_small, results_dir):
    rows = []
    stats_by_b = {}
    for b in TILE_SIZES:
        m = _compress_at(problem_small, b)
        s = rank_stats(m.rank_grid())
        rm, rd = rank_ratios(m.rank_grid(), b)
        stats_by_b[b] = (s, rm, rd)
        rows.append(
            (b, s.minrank, round(s.avgrank, 1), s.maxrank,
             round(rm, 3), round(rd, 3), m.ntiles)
        )

    headers = ["tile_size", "minrank", "avgrank", "maxrank",
               "ratio_maxrank", "ratio_discrepancy", "NT"]
    print()
    print(format_series("tile_size", headers[1:], rows,
                        title=f"Fig. 2b (N={problem_small.n}): rank vs tile size"))
    write_csv(results_dir / "fig02b_rank_vs_tilesize.csv", headers, rows)

    benchmark.pedantic(
        _compress_at, args=(problem_small, 450), rounds=1, iterations=1
    )

    # --- reproduction assertions ----------------------------------------
    # ratio_maxrank decreases as tile size increases (higher data sparsity
    # attained at larger tiles).
    rms = [stats_by_b[b][1] for b in TILE_SIZES]
    assert rms[0] > rms[-1]
    # Small tiles inflate ratio_discrepancy relative to the largest size.
    rds = [stats_by_b[b][2] for b in TILE_SIZES]
    assert rds[0] > rds[-1]
    # Absolute maxrank grows with b while the parallelism (NT) shrinks.
    assert stats_by_b[TILE_SIZES[0]][0].maxrank < stats_by_b[TILE_SIZES[-1]][0].maxrank
