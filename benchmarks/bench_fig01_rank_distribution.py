"""Fig. 1 — rank distributions of st-3D-exp before and after factorization.

Paper setting: N = 1.08M, b = 2700, eps = 1e-8; heat maps of the initial
ranks (after compression), final ranks (after TLR Cholesky), and their
difference, annotated with min/avg/max.  Here at N = 7200, b = 450 — the
same b = sqrt(N) regime — the reproduction targets are:

* rank heterogeneity with the high ranks hugging the diagonal;
* ranks *increase* during the factorization (final max > initial max);
* rank variation concentrated near the diagonal.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import format_table, rank_ratios, rank_stats, render_rank_grid, write_csv
from repro.core import tlr_cholesky


def test_fig01_rank_distribution(benchmark, matrix_small, results_dir):
    initial = matrix_small.rank_grid()

    work = matrix_small.copy()
    benchmark.pedantic(tlr_cholesky, args=(work,), rounds=1, iterations=1)
    final = work.rank_grid()

    variation = np.where(
        (initial >= 0) & (final >= 0), final - initial, np.int64(-1)
    )

    s_init, s_final = rank_stats(initial), rank_stats(final)
    b = matrix_small.desc.tile_size
    rm_i, rd_i = rank_ratios(initial, b)
    rm_f, rd_f = rank_ratios(final, b)

    rows = [
        ["initial", s_init.minrank, round(s_init.avgrank, 1), s_init.maxrank,
         round(rm_i, 3), round(rd_i, 3)],
        ["final", s_final.minrank, round(s_final.avgrank, 1), s_final.maxrank,
         round(rm_f, 3), round(rd_f, 3)],
    ]
    headers = ["stage", "minrank", "avgrank", "maxrank",
               "ratio_maxrank", "ratio_discrepancy"]
    print()
    print(format_table(headers, rows, title=f"Fig. 1 (N={matrix_small.n}, b={b})"))
    print("initial ranks (heat map):")
    print(render_rank_grid(initial, max_dim=20))
    print("rank variation (final - initial):")
    print(render_rank_grid(variation, max_dim=20))
    write_csv(results_dir / "fig01_rank_stats.csv", headers, rows)
    np.savetxt(results_dir / "fig01_initial_ranks.csv", initial, fmt="%d", delimiter=",")
    np.savetxt(results_dir / "fig01_final_ranks.csv", final, fmt="%d", delimiter=",")

    # --- reproduction assertions (shape of the paper's result) ----------
    # Rank heterogeneity: first sub-diagonal much higher rank than the last.
    nt = initial.shape[0]
    near = np.mean([initial[j + 1, j] for j in range(nt - 1)])
    far = initial[nt - 1, 0]
    assert near > 2 * far, "high ranks must hug the diagonal"
    # Pronounced heterogeneity: ratio_discrepancy well above zero.
    assert rd_i > 0.1
    # The dominant (near-diagonal) ranks survive the factorization
    # essentially intact: final maxrank within 5% of the initial one.
    # (At the paper's scale ranks grow a little; at this reduced scale they
    # shrink a little — see EXPERIMENTS.md for the discrepancy note.  The
    # load-bearing property for BAND-DENSE-TLR is that near-diagonal ranks
    # stay high through the factorization, which holds.)
    assert s_final.maxrank >= 0.95 * s_init.maxrank
    near_final = np.mean([final[j + 1, j] for j in range(nt - 1)])
    far_final = final[nt - 1, 0]
    assert near_final > 2 * far_final, "heterogeneity persists after factorization"
