"""Fig. 7 — suitable tile-size selection.

Paper: (a) time-to-solution vs tile size (two matrix sizes), using the
``b = O(sqrt(N))`` estimate of [17] as the search starting point and
stopping at a local minimum; (b) the auto-tuned BAND_SIZE decreases as the
tile size increases (because ratio_maxrank decreases — Fig. 2b).

Reproduced with real factorizations at N = 7200, eps = 1e-4 (the
regime-matched accuracy; see the Fig. 6 bench docstring).
"""

from __future__ import annotations

import time

from repro import TruncationRule
from repro.analysis import format_series, write_csv
from repro.core import (
    local_minimum_search,
    suggest_tile_size,
    tlr_cholesky,
    tune_band_size,
)
from repro.matrix import BandTLRMatrix
from repro.statistics import CovarianceProblem

N = 7200
EPS = 1e-4
TILE_SIZES = [150, 225, 300, 450, 600, 900]


def _factorize_time_at(points, b):
    """Compress at band 1, auto-tune the band, factorize; returns
    (seconds, tuned_band)."""
    prob = CovarianceProblem(points=points, tile_size=b, nugget=1e-6)
    m1 = BandTLRMatrix.from_problem(prob, TruncationRule(eps=EPS), band_size=1)
    decision = tune_band_size(m1.rank_grid(), b)
    m = m1.with_band_size(decision.band_size, prob).copy()
    t0 = time.perf_counter()
    tlr_cholesky(m)
    return time.perf_counter() - t0, decision.band_size


def test_fig07_tile_size(benchmark, problem_small, results_dir):
    points = problem_small.points
    rows = []
    bands = {}
    times = {}
    for b in TILE_SIZES:
        dt, band = _factorize_time_at(points, b)
        times[b], bands[b] = dt, band
        rows.append((b, round(dt, 3), band, N // b))

    estimate = suggest_tile_size(N)
    headers = ["tile_size", "time_s", "tuned_band_size", "NT"]
    print()
    print(format_series(
        "tile_size", headers[1:], rows,
        title=f"Fig. 7 (N={N}, eps={EPS:g}); sqrt(N) estimate b*={estimate}"))
    write_csv(results_dir / "fig07_tile_size.csv", headers, rows)

    # The local-minimum search API drives the same sweep.
    best_b, evals = local_minimum_search(TILE_SIZES, lambda b: times[b])
    print(f"local-minimum search picks b={best_b} after {len(evals)} evaluations")

    benchmark(lambda: suggest_tile_size(N))

    # ---- reproduction assertions ----------------------------------------
    # (b): tuned BAND_SIZE decreases (weakly) as tile size increases.
    band_seq = [bands[b] for b in TILE_SIZES]
    assert all(a >= c for a, c in zip(band_seq, band_seq[1:])), band_seq
    assert band_seq[0] > band_seq[-1]
    # (a): a clear minimum exists — the extremes are slower than the best.
    best = min(times.values())
    assert times[TILE_SIZES[0]] > best
    assert best_b in TILE_SIZES
