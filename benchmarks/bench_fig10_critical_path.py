"""Fig. 10 — how close execution is to the critical path.

Paper: on 512 nodes, comparing the full factorization (All_kernels)
against the same run with every low-rank update free (No_TLR_GEMM — "the
entire Cholesky factorization except for all low rank updates", i.e. the
critical path at distance BAND_SIZE).  Although the dense band is a tiny
fraction of the flops, it contributes most of the time-to-solution, and
the time ratio *drops* as the matrix size grows (band tiles are O(NT) but
off-band tiles are O(NT²)).

Replayed on a simulated 64-node machine, NT in {24, 40, 56, 72}.
"""

from __future__ import annotations

from repro.analysis import format_series, paper_rank_model, write_csv
from repro.core import tune_band_size
from repro.distribution import BandDistribution, ProcessGrid
from repro.linalg import KernelClass
from repro.runtime import MachineSpec, build_cholesky_graph, simulate

B, NODES, SPLIT = 1200, 64, 4
NTS = [24, 40, 56, 72]

TLR_GEMMS = {KernelClass.GEMM_LR, KernelClass.GEMM_LR_DENSE}


def _run(nt):
    model = paper_rank_model(B, accuracy=1e-8)
    band = tune_band_size(model.to_rank_grid(nt), B).band_size
    g = build_cholesky_graph(nt, band, B, model, recursive_split=SPLIT)
    machine = MachineSpec(nodes=NODES)
    dist = BandDistribution(ProcessGrid.squarest(NODES), band_size=band)
    full = simulate(g, dist, machine)
    crit = simulate(g, dist, machine, zero_cost_kernels=TLR_GEMMS)
    tlr_flops = sum(
        t.flops for t in g.tasks.values() if t.kernel in TLR_GEMMS
    )
    return full, crit, tlr_flops, g.total_flops()


def test_fig10_critical_path(benchmark, results_dir):
    rows = []
    time_ratios, flop_ratios = [], []
    for nt in NTS:
        full, crit, tlr_flops, total = _run(nt)
        tr = crit.makespan / full.makespan
        fr = (total - tlr_flops) / total
        time_ratios.append(tr)
        flop_ratios.append(fr)
        rows.append(
            (nt * B, round(full.makespan, 2), round(crit.makespan, 2),
             round(tr, 3), round(total / 1e12, 2),
             round((total - tlr_flops) / 1e12, 2), round(fr, 3))
        )

    headers = ["matrix_size", "All_kernels_s", "No_TLR_GEMM_s", "time_ratio",
               "total_Tflops", "No_TLR_GEMM_Tflops", "flop_ratio"]
    print()
    print(format_series("matrix_size", headers[1:], rows,
                        title=f"Fig. 10 ({NODES} simulated nodes, b={B})"))
    write_csv(results_dir / "fig10_critical_path.csv", headers, rows)

    benchmark.pedantic(_run, args=(NTS[0],), rounds=1, iterations=1)

    # ---- reproduction assertions ----------------------------------------
    # The dense band + panel is a small fraction of the flops...
    assert all(fr < 0.5 for fr in flop_ratios)
    # ...but an outsized fraction of the time (the paper's central point):
    # the time share always exceeds the flop share, by 1.5x+ once the
    # off-band region dominates the flops.
    assert all(tr > fr for tr, fr in zip(time_ratios, flop_ratios))
    assert all(
        tr > 1.5 * fr for tr, fr in zip(time_ratios[-2:], flop_ratios[-2:])
    )
    # The time ratio never grows with the matrix size...
    assert time_ratios[-1] <= time_ratios[0] + 1e-6
    # ...while the flop share of the band shrinks (O(NT) vs O(NT²) tiles).
    assert flop_ratios[-1] < flop_ratios[0]
