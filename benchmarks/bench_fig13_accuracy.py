"""Fig. 13 — behaviour across accuracy thresholds (1e-3 .. 1e-8).

Paper, for ε in {1e-7, 1e-5, 1e-3} complementing the 1e-9 baseline:

* (a) BAND_SIZE auto-tuning per threshold — looser accuracy means faster
  rank decay, hence smaller tuned bands; ε = 1e-3 always lands at
  BAND_SIZE = 1 ("similar to 2D applications");
* (b) ratio_maxrank descends rapidly with matrix size and with looser ε;
* (c) time-to-solution is consistent with the initial ranks and the
  expected flops — looser accuracy is faster.

Measured here with real compressions/factorizations at N up to 7200
(thresholds shifted one decade looser — 1e-8..1e-3 — to match the rank
regime at laptop-scale N; see the Fig. 6 bench docstring).
"""

from __future__ import annotations

import time

from repro import TruncationRule, st_3d_exp_problem
from repro.analysis import format_table, rank_stats, write_csv
from repro.core import tlr_cholesky, tune_band_size
from repro.matrix import BandTLRMatrix
from repro.statistics import rank_grids_for_thresholds

THRESHOLDS = [1e-8, 1e-6, 1e-4, 1e-3]
SIZES = [(1800, 150), (3600, 300), (7200, 450)]
N_MAIN, B_MAIN = 7200, 450


def test_fig13_accuracy_thresholds(benchmark, problem_small, results_dir):
    # ---- (a) + (b): one SVD sweep per size serves all thresholds --------
    grids_main = benchmark.pedantic(
        rank_grids_for_thresholds,
        args=(problem_small, THRESHOLDS),
        rounds=1, iterations=1,
    )

    rows_a = []
    bands = {}
    for eps in THRESHOLDS:
        d = tune_band_size(grids_main[eps], B_MAIN)
        bands[eps] = d.band_size
        s = rank_stats(grids_main[eps])
        rows_a.append((f"{eps:.0e}", d.band_size, str(d.band_size_range), s.maxrank,
                       round(s.maxrank / B_MAIN, 3)))
    headers_a = ["accuracy", "tuned_band", "fluctuation_box", "maxrank",
                 "ratio_maxrank"]
    print()
    print(format_table(headers_a, rows_a,
                       title=f"Fig. 13a (N={N_MAIN}, b={B_MAIN}): tuning per accuracy"))
    write_csv(results_dir / "fig13a_band_per_accuracy.csv", headers_a, rows_a)

    rows_b = []
    ratios: dict[float, list[float]] = {eps: [] for eps in THRESHOLDS}
    for n, b in SIZES:
        if n == N_MAIN:
            grids = grids_main
        else:
            prob = st_3d_exp_problem(n, b, seed=2021)
            grids = rank_grids_for_thresholds(prob, THRESHOLDS)
        for eps in THRESHOLDS:
            rm = rank_stats(grids[eps]).maxrank / b
            ratios[eps].append(rm)
            rows_b.append((n, b, f"{eps:.0e}", round(rm, 3)))
    headers_b = ["N", "b", "accuracy", "ratio_maxrank"]
    print(format_table(headers_b, rows_b, title="Fig. 13b: ratio_maxrank"))
    write_csv(results_dir / "fig13b_ratio_maxrank.csv", headers_b, rows_b)

    # ---- (c): time-to-solution per threshold at the tuned band ----------
    rows_c = []
    times = {}
    for eps in THRESHOLDS:
        m1 = BandTLRMatrix.from_problem(
            problem_small, TruncationRule(eps=eps), band_size=1
        )
        m = m1.with_band_size(bands[eps], problem_small).copy() \
            if bands[eps] > 1 else m1
        t0 = time.perf_counter()
        tlr_cholesky(m)
        times[eps] = time.perf_counter() - t0
        rows_c.append((f"{eps:.0e}", bands[eps], round(times[eps], 3)))
    headers_c = ["accuracy", "band", "time_s"]
    print(format_table(headers_c, rows_c, title="Fig. 13c: time per accuracy"))
    write_csv(results_dir / "fig13c_time_per_accuracy.csv", headers_c, rows_c)

    # ---- reproduction assertions ----------------------------------------
    # (a): tuned band shrinks (weakly) as accuracy loosens; loosest is 1.
    seq = [bands[eps] for eps in THRESHOLDS]
    assert all(a >= c for a, c in zip(seq, seq[1:])), seq
    assert bands[THRESHOLDS[-1]] <= 2
    assert bands[THRESHOLDS[0]] > bands[THRESHOLDS[-1]]
    # (b): ratio_maxrank descends with matrix size for every threshold,
    # and with looser accuracy at every size.
    for eps in THRESHOLDS:
        assert ratios[eps][0] >= ratios[eps][-1] - 0.05
    for i in range(len(SIZES)):
        col = [ratios[eps][i] for eps in THRESHOLDS]
        assert all(a >= c for a, c in zip(col, col[1:]))
    # (c): looser accuracy is faster.
    assert times[THRESHOLDS[-1]] < times[THRESHOLDS[0]]
