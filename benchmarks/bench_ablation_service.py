"""Ablation — batched vs one-at-a-time solve serving under concurrency.

The solver service's claim (docs/service.md): at concurrent load,
stacking same-factor requests into one multi-RHS
:func:`~repro.core.solve.solve_many` call beats serving them one at a
time, because each stacked sweep walks the factor's tiles once for all
pending columns instead of once per request.  The paper's motivating
workload (Matérn parameter estimation over a fixed geometry) is exactly
this traffic shape: one factorization, thousands of solves.

Measured: a closed-loop load run (factorize outside the window) against
two service arms that differ *only* in ``max_batch`` — 1 (solo) versus
16 (batched) — on a single worker, so batching is the whole delta.
p50/p95/p99 client-observed latencies go to the CSV and to the shared
``BENCH_history.jsonl`` (samples = raw latencies, so ``python -m repro
compare`` gates serving latency with the same noise-aware dual rule as
every other bench).

Correctness is asserted at every scale: a solve served through the
batched concurrent pipeline must match the dense reference.  The
>= 1.5x p50 acceptance gate only arms under ``REPRO_BENCH_SERVICE_FULL``
(latency ratios on loaded CI runners are too noisy to gate by default).

Scale knobs: ``REPRO_BENCH_SERVICE_N`` / ``_B`` / ``_CLIENTS`` /
``_REQUESTS``.
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np

from repro import perf, st_3d_exp_problem
from repro.analysis import format_table, write_csv
from repro.service import (
    ServiceConfig,
    SolverService,
    records_from_load,
    run_load,
)

N = int(os.environ.get("REPRO_BENCH_SERVICE_N", "2048"))
B = int(os.environ.get("REPRO_BENCH_SERVICE_B", "128"))
CLIENTS = int(os.environ.get("REPRO_BENCH_SERVICE_CLIENTS", "8"))
REQUESTS = int(os.environ.get("REPRO_BENCH_SERVICE_REQUESTS", "10"))
EPS = 1e-6
FULL = bool(os.environ.get("REPRO_BENCH_SERVICE_FULL"))


def _arm(problem, max_batch: int):
    """One service run: single worker, batching is the only variable."""
    config = ServiceConfig(
        n_workers=1,
        max_queue_depth=max(64, 2 * CLIENTS),
        max_batch=max_batch,
    )
    with SolverService(config) as svc:
        session = svc.session(problem, accuracy=EPS, band_size=1)
        report = run_load(
            session,
            clients=CLIENTS,
            requests_per_client=REQUESTS,
            seed=2021,
        )
        # correctness at scale: a batched concurrent solve matches dense
        rng = np.random.default_rng(7)
        rhs = rng.standard_normal(problem.n)
        x = session.solve(rhs, timeout=60)
        ref = np.linalg.solve(problem.dense(), rhs)
        rel = np.linalg.norm(x - ref) / np.linalg.norm(ref)
        assert rel < 100 * EPS, f"served solve off by {rel:g}"
        assert report.factorizations == 1   # factorize-once held under load
    return report


def test_ablation_service_batching(benchmark, results_dir):
    problem = st_3d_exp_problem(N, B, seed=2021)
    solo = _arm(problem, max_batch=1)
    batched = _arm(problem, max_batch=16)
    ratio = solo.p50_ms / batched.p50_ms if batched.p50_ms > 0 else 0.0

    headers = ["arm", "p50_ms", "p95_ms", "p99_ms", "throughput_rps",
               "mean_batch_width", "completed", "rejected"]
    rows = [
        ("solo", round(solo.p50_ms, 3), round(solo.p95_ms, 3),
         round(solo.p99_ms, 3), round(solo.throughput_rps, 1),
         1.0, solo.completed, solo.rejected),
        ("batched", round(batched.p50_ms, 3), round(batched.p95_ms, 3),
         round(batched.p99_ms, 3), round(batched.throughput_rps, 1),
         round(batched.mean_batch_width, 2), batched.completed,
         batched.rejected),
    ]
    print()
    print(format_table(
        headers, rows,
        title=f"ablation: solve serving, {CLIENTS} closed-loop clients "
              f"(N={N}, b={B}, eps={EPS:g}; p50 ratio {ratio:.2f}x)"))
    write_csv(results_dir / "ablation_service.csv", headers, rows)

    # raw latency samples into the shared history: median == p50, so the
    # compare dual gate protects serving latency like any other bench
    shared = {"n": N, "tile": B, "clients": CLIENTS, "requests": REQUESTS}
    records = [
        records_from_load(solo, name="service_solve_solo",
                          config={**shared, "max_batch": 1}),
        records_from_load(batched, name="service_solve_batched",
                          config={**shared, "max_batch": 16}),
    ]
    path = perf.append_history(records, Path(__file__).resolve().parent.parent)
    print(f"[perf] 2 serving-latency records appended to {path}")

    benchmark.pedantic(
        lambda: _arm(problem, max_batch=16), rounds=1, iterations=1,
    )

    # everyone finished: closed-loop retry absorbs backpressure, no drops
    quota = CLIENTS * REQUESTS
    assert solo.completed == quota and batched.completed == quota
    assert solo.dropped == batched.dropped == 0
    assert solo.failed == batched.failed == 0
    # batching engaged in the batched arm only
    assert batched.mean_batch_width > 1.0
    if FULL:
        assert ratio >= 1.5, (
            f"batched p50 must beat one-at-a-time by >= 1.5x at "
            f"{CLIENTS} clients; measured {ratio:.2f}x"
        )
