"""Validation — does the simulator predict the *real* executions' shape?

The large-scale results (Table II, Figs. 9-12) come from the discrete-
event simulator; this bench closes the methodological loop by checking
the simulator against real measured factorizations on this host:

* factorize the N = 7200 workload at several BAND_SIZEs for real
  (wall-clock, single process) — the Fig. 6a measurement;
* simulate the same graphs (measured rank grid, machine calibrated to
  this host's kernels, 1 node x 1 core);
* require the two rankings to agree and the pairwise time *ratios* to
  match within a factor of two.

Absolute agreement is not expected (the rate model is two scalars plus a
curve), but if the simulator cannot rank configurations on one core it
has no business ranking them on 512 nodes.

The check runs at ε = 1e-3, where ranks stay below ~0.3 b — the regime
Table I's cost model (and the paper) operates in.  At tighter ε this
laptop-scale problem pushes ranks toward b, where the published formulas
(157 k³ recompression terms) overestimate the real cost by design.
"""

from __future__ import annotations

import time


from repro import TruncationRule, st_3d_exp_problem
from repro.analysis import format_table, write_csv
from repro.core import tlr_cholesky
from repro.distribution import BandDistribution, ProcessGrid
from repro.matrix import BandTLRMatrix
from repro.runtime import build_cholesky_graph, calibrate_machine, simulate

N, B, EPS = 7200, 450, 1e-3
BANDS = [1, 2, 4, 8]


def test_validation_sim_vs_real(benchmark, results_dir):
    prob = st_3d_exp_problem(N, B, seed=2021)
    rule = TruncationRule(eps=EPS)
    m1 = BandTLRMatrix.from_problem(prob, rule, band_size=1)
    grid = m1.rank_grid()

    def rank_fn(i, j):
        return int(max(grid[i, j], 1))

    machine = calibrate_machine(nodes=1, cores_per_node=1, b=B, repeats=2)
    dist = BandDistribution(ProcessGrid.squarest(1), band_size=1)

    rows = []
    real, simd = {}, {}
    for band in BANDS:
        work = (m1 if band == 1 else m1.with_band_size(band, prob)).copy()
        t0 = time.perf_counter()
        tlr_cholesky(work)
        real[band] = time.perf_counter() - t0

        g = build_cholesky_graph(m1.ntiles, band, B, rank_fn)
        simd[band] = simulate(g, dist, machine).makespan
        rows.append((band, round(real[band], 3), round(simd[band], 3),
                     round(simd[band] / real[band], 3)))

    headers = ["band_size", "real_s", "simulated_s", "sim/real"]
    print()
    print(format_table(
        headers, rows,
        title=(f"simulator validation (N={N}, b={B}, eps={EPS:g}; "
               f"host calibrated at {machine.rates.dense_gflops:.1f} Gflop/s)")))
    write_csv(results_dir / "validation_sim_vs_real.csv", headers, rows)

    benchmark.pedantic(
        simulate,
        args=(build_cholesky_graph(m1.ntiles, 2, B, rank_fn), dist, machine),
        rounds=1, iterations=1,
    )

    # ---- validation assertions -------------------------------------------
    # Ranking agrees on every decisively-separated pair (> 25% apart in
    # real time); near-ties may flip either way.
    for a in BANDS:
        for b_ in BANDS:
            if real[a] > 1.25 * real[b_]:
                assert simd[a] > simd[b_], (a, b_, real, simd)
    # Pairwise speedup ratios agree within 2x.
    for a in BANDS:
        for b_ in BANDS:
            r = (real[a] / real[b_]) / (simd[a] / simd[b_])
            assert 0.5 < r < 2.0, (a, b_, r)
    # Absolute agreement within 2x across the board (the rate model is
    # two measured scalars plus one curve — this is strong agreement).
    for band in BANDS:
        assert 0.5 < simd[band] / real[band] < 2.0
