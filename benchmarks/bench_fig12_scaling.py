"""Fig. 12 — performance at scale: strong and weak scalability.

Paper: time-to-solution for matrix sizes up to 11.88M on up to 2048
nodes; each matrix size scales strongly with node count (better for
larger matrices), each node count's curve shows weak scalability, and the
per-node memory footprint stays far below capacity.

Replayed on the simulator: NT in {32, 48, 64, 96} (matrix sizes 38k-115k
at b = 1200) across 2-32 nodes — a 64x scale-down of both axes that
preserves the tiles-per-node ratios of the paper's sweep.
"""

from __future__ import annotations

from repro.analysis import (
    format_table,
    paper_rank_model,
    strong_scaling_efficiency,
    write_csv,
)
from repro.core import tune_band_size
from repro.distribution import BandDistribution, ProcessGrid
from repro.matrix import BYTES_PER_ELEMENT
from repro.runtime import MachineSpec, build_cholesky_graph, simulate

B = 1200
NTS = [32, 48, 64, 96]
NODE_COUNTS = [2, 4, 8, 16, 32]


def _graph(nt, model):
    band = tune_band_size(model.to_rank_grid(nt), B).band_size
    return band, build_cholesky_graph(nt, band, B, model, recursive_split=4)


def _memory_per_node_gb(model, nt, band, nodes):
    """Dynamic footprint of the owned tiles, averaged per node."""
    total = 0
    for i in range(nt):
        for j in range(i + 1):
            if i - j < band:
                total += B * B
            else:
                total += 2 * B * model.rank(i, j)
    return total * BYTES_PER_ELEMENT / nodes / 2**30


def test_fig12_scaling(benchmark, results_dir):
    model = paper_rank_model(B, accuracy=1e-8)
    rows = []
    times: dict[int, dict[int, float]] = {}
    for nt in NTS:
        band, g = _graph(nt, model)
        times[nt] = {}
        for nodes in NODE_COUNTS:
            machine = MachineSpec(nodes=nodes)
            dist = BandDistribution(ProcessGrid.squarest(nodes), band_size=band)
            res = simulate(g, dist, machine)
            times[nt][nodes] = res.makespan
            rows.append(
                (nt * B, nodes, round(res.makespan, 2),
                 round(res.achieved_gflops / 1e3, 2),
                 round(_memory_per_node_gb(model, nt, band, nodes), 3))
            )

    headers = ["matrix_size", "nodes", "time_s", "Tflops", "mem_per_node_GB"]
    print()
    print(format_table(headers, rows, title=f"Fig. 12 (simulated, b={B})"))
    write_csv(results_dir / "fig12_scaling.csv", headers, rows)

    # Strong-scaling efficiency per matrix size.
    eff_rows = []
    for nt in NTS:
        eff = strong_scaling_efficiency(times[nt])
        eff_rows.append((nt * B, *[round(eff[n], 3) for n in NODE_COUNTS]))
    print(format_table(
        ["matrix_size", *[f"eff@{n}" for n in NODE_COUNTS]],
        eff_rows, title="strong-scaling efficiency"))
    write_csv(results_dir / "fig12_strong_efficiency.csv",
              ["matrix_size", *[str(n) for n in NODE_COUNTS]], eff_rows)

    benchmark.pedantic(_graph, args=(NTS[0], model), rounds=1, iterations=1)

    # ---- reproduction assertions ----------------------------------------
    # Strong scaling: more nodes never slower, and the largest size keeps
    # scaling further out than the smallest.
    for nt in NTS:
        ts = [times[nt][n] for n in NODE_COUNTS]
        assert all(b <= a * 1.02 for a, b in zip(ts, ts[1:]))
    eff_small = strong_scaling_efficiency(times[NTS[0]])[NODE_COUNTS[-1]]
    eff_large = strong_scaling_efficiency(times[NTS[-1]])[NODE_COUNTS[-1]]
    assert eff_large > eff_small, "strong scaling improves with matrix size"
    # Weak scalability: along the diagonal (both N and nodes growing) the
    # time grows sub-linearly in the matrix size.
    t_first = times[NTS[0]][NODE_COUNTS[1]]
    t_last = times[NTS[-1]][NODE_COUNTS[-1]]
    assert t_last < t_first * (NTS[-1] / NTS[0]) ** 2
    # Far from memory capacity (paper: 9-12 GB of 128 GB).
    assert all(r[4] < 16.0 for r in rows)
