"""Fig. 9 — relative panel-release times, Prev vs New.

Paper: for the Table II runs, every panel factorization is released
significantly earlier in PaRSEC-HiCMA-New, mostly because recursive dense
GEMMs with a balanced workflow replace expensive TLR GEMMs close to the
band, whose delay accumulates panel after panel.

Replayed on the simulator at NT = 56, b = 1200, with the paper-calibrated
rank model.  Reproduction targets: (a) every panel releases earlier under
New; (b) the advantage accumulates (late panels released much earlier in
both relative and absolute terms).
"""

from __future__ import annotations

import numpy as np

from repro.analysis import (
    format_series,
    panel_release_gain,
    paper_rank_model,
    write_csv,
)
from repro.core import tune_band_size
from repro.distribution import BandDistribution, ProcessGrid
from repro.linalg import KernelClass
from repro.runtime import MachineSpec, build_cholesky_graph, simulate

B, NT, NODES, SPLIT = 1200, 56, 16, 4


def _run_pair():
    model = paper_rank_model(B, accuracy=1e-8)
    band = tune_band_size(model.to_rank_grid(NT), B).band_size
    machine = MachineSpec(nodes=NODES)
    grid = ProcessGrid.squarest(NODES)

    g_prev = build_cholesky_graph(
        NT, 1, B, model, recursive_split=SPLIT,
        recursive_kernels={KernelClass.POTRF_DENSE},
    )
    g_new = build_cholesky_graph(NT, band, B, model, recursive_split=SPLIT)
    r_prev = simulate(g_prev, BandDistribution(grid, band_size=1), machine)
    r_new = simulate(g_new, BandDistribution(grid, band_size=band), machine)
    return r_prev, r_new


def test_fig09_panel_release(benchmark, results_dir):
    r_prev, r_new = benchmark.pedantic(_run_pair, rounds=1, iterations=1)
    gain = panel_release_gain(r_prev, r_new)

    rows = [
        (k, round(r_prev.panel_done[k], 3), round(r_new.panel_done[k], 3),
         round(gain[k], 3))
        for k in range(0, NT, 4)
    ]
    headers = ["panel", "Prev_release_s", "New_release_s", "relative_gain"]
    print()
    print(format_series("panel", headers[1:], rows,
                        title=f"Fig. 9 (NT={NT}, {NODES} nodes): panel release times"))
    write_csv(results_dir / "fig09_panel_release.csv", headers, rows)

    # ---- reproduction assertions ----------------------------------------
    # Every panel (beyond the trivially-equal first) is released earlier.
    prev = np.asarray(r_prev.panel_done[1:])
    new = np.asarray(r_new.panel_done[1:])
    assert np.all(new <= prev * (1 + 1e-9))
    assert np.all(gain[5:] > 0.3), "late panels must be released much earlier"
    # The absolute advantage accumulates panel after panel.
    advantage = prev - new
    assert advantage[-1] > advantage[4]
