"""Section VIII-E/F — the largest solvable problem per memory budget.

Paper facts on 512 nodes x 128 GB:

* "PaRSEC-HiCMA-Prev could factorize matrix sizes up to 3.24M ... because
  of the memory limit per node" (static descriptor at maxrank = b/2);
* PaRSEC-HiCMA-New runs 8.64M at "9.31 GB before factorization and
  12.33 GB after" — "still far from the 128 GB memory capacity".

This bench evaluates both allocation schemes' feasibility frontier at the
*paper's own scale* (b = 2400, 512 nodes) using the calibrated rank model
— no allocation happens, only the Fig. 8 memory accounting — and asserts
the reproduced frontier brackets the published numbers.
"""

from __future__ import annotations

from repro.analysis import (
    format_table,
    max_feasible_matrix_size,
    paper_rank_model,
    write_csv,
)
from repro.runtime import MachineSpec

B = 2400
NODES = 512


def test_max_problem_size(benchmark, results_dir):
    model = paper_rank_model(B, accuracy=1e-8)
    machine = MachineSpec(nodes=NODES)

    prev = max_feasible_matrix_size(
        model, machine, band_size=1, static_maxrank=B // 2
    )
    new = max_feasible_matrix_size(model, machine, band_size=3)

    rows = [
        ("Prev (static maxrank=b/2)", prev.max_matrix_size,
         round(prev.footprint_gb, 1), "3.24M"),
        ("New (dynamic designation)", new.max_matrix_size,
         round(new.footprint_gb, 1), ">= 8.64M @ 9-12 GB"),
    ]
    headers = ["scheme", "max_matrix_size", "GB_per_node", "paper_reports"]
    print()
    print(format_table(
        headers, rows,
        title=f"max feasible size on {NODES} nodes x "
              f"{machine.memory_per_node_GB:.0f} GB (b={B}, eps=1e-8)"))
    write_csv(results_dir / "ablation_max_problem_size.csv", headers, rows)

    benchmark(
        lambda: max_feasible_matrix_size(
            model, machine, band_size=1, static_maxrank=B // 2
        )
    )

    # ---- reproduction assertions ----------------------------------------
    # Prev's ceiling lands in the paper's few-million neighbourhood...
    assert 2_000_000 < prev.max_matrix_size < 6_000_000
    # ...and its footprint is memory-bound (near the capacity fraction).
    assert prev.footprint_gb > 0.6 * machine.memory_per_node_GB
    # New solves multiples of Prev's ceiling at a small footprint
    # (paper: 8.64M at 9-12 GB/node, "far from the 128 GB capacity").
    assert new.max_matrix_size >= 2 * prev.max_matrix_size
    assert new.max_matrix_size >= 8_640_000
    assert new.footprint_gb < 0.25 * machine.memory_per_node_GB
