"""Fig. 8 — dynamic memory designation.

Left panel: memory footprint of the static descriptor (every compressed
tile at ``2·maxrank·b``, maxrank = b/2 — PaRSEC-HiCMA-Prev) vs the exact
dynamic allocation (``2·k·b`` — PaRSEC-HiCMA-New) across matrix sizes; the
saving grows with the matrix size (up to 44x in the paper's setting).

Right panel: the cost of one ``2·k·b`` memory allocation vs the cost of
one TLR GEMM at the same rank — allocation is consistently more than two
orders of magnitude cheaper, so reallocating on rank growth is free.
"""

from __future__ import annotations

import time

import numpy as np

from repro import TruncationRule, st_3d_exp_problem
from repro.analysis import format_series, write_csv
from repro.linalg import LowRankTile, gemm_lr
from repro.matrix import BandTLRMatrix, footprint_report

EPS = 1e-4
SIZES = [(1800, 150), (3600, 300), (7200, 450), (10800, 600)]
B_RIGHT = 512
RANKS_RIGHT = [13, 32, 64, 128, 256]


def test_fig08_memory_footprint(benchmark, results_dir):
    rows = []
    reductions = []
    for n, b in SIZES:
        prob = st_3d_exp_problem(n, b, seed=2021)
        m = BandTLRMatrix.from_problem(prob, TruncationRule(eps=EPS), band_size=1)
        rep = footprint_report(m)  # maxrank defaults to b/2
        reductions.append(rep.reduction_factor)
        rows.append(
            (n, b, round(rep.static_bytes / 2**20, 1),
             round(rep.dynamic_bytes / 2**20, 1),
             round(rep.reduction_factor, 2),
             round(rep.dense_bytes / 2**20, 1))
        )
    headers = ["N", "b", "static_MiB(Prev)", "dynamic_MiB(New)", "reduction",
               "dense_MiB"]
    print()
    print(format_series("N", headers[1:], rows,
                        title=f"Fig. 8 left (eps={EPS:g}): static vs dynamic memory"))
    write_csv(results_dir / "fig08_memory_footprint.csv", headers, rows)

    benchmark.pedantic(
        footprint_report,
        args=(BandTLRMatrix.from_problem(
            st_3d_exp_problem(1800, 150, seed=2021),
            TruncationRule(eps=EPS), 1),),
        rounds=1, iterations=1,
    )

    # Dynamic allocation always wins and the saving grows with N.
    assert all(r > 1.0 for r in reductions)
    assert reductions[-1] > reductions[0]


def test_fig08_alloc_vs_gemm(benchmark, results_dir):
    rng = np.random.default_rng(3)
    rule = TruncationRule(eps=1e-8)
    rows = []
    ratios = []
    for k in RANKS_RIGHT:
        # Allocation of a (b, k) + (b, k) factor pair.
        t0 = time.perf_counter()
        for _ in range(20):
            u = np.empty((B_RIGHT, k))
            v = np.empty((B_RIGHT, k))
        t_alloc = (time.perf_counter() - t0) / 20
        del u, v

        tiles = [
            LowRankTile(rng.standard_normal((B_RIGHT, k)),
                        rng.standard_normal((B_RIGHT, k)))
            for _ in range(3)
        ]
        t0 = time.perf_counter()
        gemm_lr(tiles[0], tiles[1], tiles[2], rule)
        t_gemm = time.perf_counter() - t0
        ratios.append(t_gemm / max(t_alloc, 1e-9))
        rows.append((k, round(t_alloc * 1e6, 2), round(t_gemm * 1e3, 3),
                     round(t_gemm / max(t_alloc, 1e-9), 1)))

    headers = ["rank", "alloc_us", "tlr_gemm_ms", "gemm/alloc_ratio"]
    print()
    print(format_series("rank", headers[1:], rows,
                        title=f"Fig. 8 right (b={B_RIGHT}): allocation vs TLR GEMM"))
    write_csv(results_dir / "fig08_alloc_vs_gemm.csv", headers, rows)

    # Benchmark unit: one factor-pair allocation (the paper's point is how
    # cheap this is next to the GEMM above).
    benchmark(lambda: (np.empty((B_RIGHT, 64)), np.empty((B_RIGHT, 64))))

    # Allocation at least two orders of magnitude cheaper, at every rank.
    assert all(r > 100 for r in ratios), ratios
