"""Ablations of the runtime design choices DESIGN.md calls out.

Beyond the paper's own feature table (Table II), these isolate each
runtime mechanism on the simulator with everything else held fixed:

* hybrid band distribution vs plain 2DBCDD (Section VII-C);
* tree collectives vs flat sender-serialized broadcast (Section III-C's
  PaRSEC-vs-StarPU collectives remark);
* recursive-split factor sweep (Section VII-D);
* dynamic memory pool on/off in the real executor (Section VII-B).
"""

from __future__ import annotations

import numpy as np

from repro import TruncationRule, st_3d_exp_problem
from repro.analysis import format_table, paper_rank_model, write_csv
from repro.distribution import BandDistribution, ProcessGrid, TwoDBlockCyclic
from repro.matrix import BandTLRMatrix
from repro.runtime import (
    MachineSpec,
    build_cholesky_graph,
    execute_graph,
    simulate,
)

B, NT, NODES = 1200, 48, 16
BAND = 4  # wide enough that the dense band carries the critical path


def _model():
    return paper_rank_model(B, accuracy=1e-8)


def test_ablation_band_distribution(benchmark, results_dir):
    """Band distribution vs plain 2DBCDD.

    Section VII-C's two stated reasons for the row-based band layout:
    the dense TRSMs of each panel run on distinct processes, and the
    mostly-sequential kernels along an on-band *row* need no
    communication.  We verify both directly, plus makespan parity.
    """
    g = build_cholesky_graph(NT, BAND, B, _model(), recursive_split=4)
    machine = MachineSpec(nodes=NODES)
    grid = ProcessGrid.squarest(NODES)
    d_band = BandDistribution(grid, band_size=BAND)
    d_2d = TwoDBlockCyclic(grid)

    res_band = simulate(g, d_band, machine)
    res_2d = benchmark.pedantic(
        simulate, args=(g, d_2d, machine), rounds=1, iterations=1
    )

    def on_band(tile):
        return abs(tile[0] - tile[1]) < BAND

    def band_row_remote_fraction(dist):
        """REMOTE fraction of edges whose endpoints both write on-band
        tiles of the same row — the paper's 'kernels on the same row'."""
        local = remote = 0
        for tid, t in g.tasks.items():
            if not on_band(t.out_tile):
                continue
            for e in t.deps:
                src_tile = g.tasks[e.src].out_tile
                if src_tile == t.out_tile:
                    continue  # same-tile chain edges are local everywhere
                if on_band(src_tile) and src_tile[0] == t.out_tile[0]:
                    if dist.owner(*src_tile) == dist.owner(*t.out_tile):
                        local += 1
                    else:
                        remote += 1
        return remote / max(local + remote, 1)

    def panel_trsm_spread(dist):
        """Mean number of distinct owners of each panel's dense TRSMs."""
        spreads = []
        for k in range(NT - 1):
            owners = {
                dist.owner(m, k)
                for m in range(k + 1, min(k + BAND, NT))
            }
            spreads.append(len(owners))
        return float(np.mean(spreads))

    rows = [
        ("band", round(res_band.makespan, 3),
         round(band_row_remote_fraction(d_band), 3),
         round(panel_trsm_spread(d_band), 2)),
        ("2DBCDD", round(res_2d.makespan, 3),
         round(band_row_remote_fraction(d_2d), 3),
         round(panel_trsm_spread(d_2d), 2)),
    ]
    headers = ["distribution", "makespan_s", "band_row_remote_frac",
               "panel_trsm_owner_spread"]
    print()
    print(format_table(headers, rows, title="ablation: band vs 2DBCDD"))
    write_csv(results_dir / "ablation_distribution.csv", headers, rows)

    assert res_band.makespan <= res_2d.makespan * 1.05
    # Row-based band layout: on-band row chains are communication-free.
    assert band_row_remote_fraction(d_band) == 0.0
    assert band_row_remote_fraction(d_2d) > 0.3
    # Panel TRSMs land on distinct processes under both (>= 2 on average).
    assert panel_trsm_spread(d_band) >= 2.0


def test_ablation_broadcast_tree_vs_flat(benchmark, results_dir):
    """Tree collectives beat flat NIC-serialized broadcast on wide fanouts."""
    g = build_cholesky_graph(NT, BAND, B, _model())
    grid = ProcessGrid.squarest(NODES)
    dist = BandDistribution(grid, band_size=BAND)

    res_tree = simulate(g, dist, MachineSpec(nodes=NODES, broadcast="tree"))
    res_flat = benchmark.pedantic(
        simulate, args=(g, dist, MachineSpec(nodes=NODES, broadcast="flat")),
        rounds=1, iterations=1,
    )
    rows = [
        ("tree", round(res_tree.makespan, 3), res_tree.comm.broadcasts),
        ("flat", round(res_flat.makespan, 3), res_flat.comm.broadcasts),
    ]
    print()
    print(format_table(["broadcast", "makespan_s", "broadcasts"], rows,
                       title="ablation: collectives"))
    write_csv(results_dir / "ablation_broadcast.csv",
              ["broadcast", "makespan_s", "broadcasts"], rows)

    assert res_tree.comm.broadcasts == res_flat.comm.broadcasts > 0
    assert res_tree.makespan <= res_flat.makespan * 1.02


def test_ablation_recursive_split(benchmark, results_dir):
    """More splits shorten the critical path, with diminishing returns."""
    machine = MachineSpec(nodes=NODES)
    dist = BandDistribution(ProcessGrid.squarest(NODES), band_size=BAND)
    rows = []
    makespans = {}
    for split in (None, 2, 4, 8):
        g = build_cholesky_graph(NT, BAND, B, _model(), recursive_split=split)
        res = simulate(g, dist, machine)
        makespans[split] = res.makespan
        rows.append((str(split), g.n_tasks, round(g.critical_path_flops() / 1e9, 2),
                     round(res.makespan, 3)))

    headers = ["split", "tasks", "critical_path_Gflop", "makespan_s"]
    print()
    print(format_table(headers, rows, title="ablation: recursive split factor"))
    write_csv(results_dir / "ablation_recursion.csv", headers, rows)

    benchmark.pedantic(
        build_cholesky_graph, args=(NT, BAND, B, _model()),
        kwargs={"recursive_split": 4}, rounds=1, iterations=1,
    )

    assert makespans[4] < makespans[None]
    assert makespans[8] <= makespans[2] * 1.02


def test_ablation_memory_pool(benchmark, results_dir):
    """The executor's pool turns most factor allocations into reuses."""
    prob = st_3d_exp_problem(2000, 125, seed=5)
    rule = TruncationRule(eps=1e-8)
    m = BandTLRMatrix.from_problem(prob, rule, band_size=1)
    grid = m.rank_grid()
    g = build_cholesky_graph(
        m.ntiles, 1, 125, lambda i, j: int(max(grid[i, j], 1))
    )

    rep = benchmark.pedantic(
        execute_graph, args=(g, m.copy()), kwargs={"use_pool": True},
        rounds=1, iterations=1,
    )
    stats = rep.pool.stats
    rows = [
        ("allocations", stats.allocations),
        ("reuses", stats.reuses),
        ("hit_rate", round(stats.hit_rate, 3)),
        ("peak_MiB", round(stats.peak_bytes / 2**20, 2)),
        ("rank_growth_reallocations", rep.rank_growth_events),
    ]
    print()
    print(format_table(["metric", "value"], rows, title="ablation: memory pool"))
    write_csv(results_dir / "ablation_memory_pool.csv", ["metric", "value"], rows)

    assert stats.reuses > 0
    assert stats.hit_rate > 0.3
