"""Ablation — tile-based densification vs band-based (paper future work).

Section IX proposes changing "the data structure on a tile-based instead
of a band-basis to capture tiles with high ranks located far away from
the diagonal".  Our laptop-scale st-3D-exp workload is exactly such a
case: Morton ordering leaves a high-rank *spike* on sub-diagonal 7 (see
the Fig. 6c bench) that a contiguous band can only capture by densifying
five cheap sub-diagonals in between.

Compared on real factorizations (N = 7200, b = 450, ε = 1e-4):

* BAND (Algorithm 1's tuned band);
* BAND-WIDE (band widened to cover the spike);
* TILE (per-tile plan of ``repro.core.densify``);
* ADAPTIVE (band 1 + online rank-overflow densification).
"""

from __future__ import annotations

import time

from repro import TruncationRule, st_3d_exp_problem
from repro.analysis import format_table, write_csv
from repro.core import (
    apply_densification,
    plan_tile_densification,
    tlr_cholesky,
    tune_band_size,
)
from repro.matrix import BandTLRMatrix

N, B, EPS = 7200, 450, 1e-4


def test_ablation_tile_densification(benchmark, results_dir):
    prob = st_3d_exp_problem(N, B, seed=2021)
    rule = TruncationRule(eps=EPS)
    m1 = BandTLRMatrix.from_problem(prob, rule, band_size=1)
    grid = m1.rank_grid()

    band = tune_band_size(grid, B).band_size
    plan = plan_tile_densification(grid, B)

    configs = {}
    configs["band(tuned)"] = m1.with_band_size(band, prob).copy()
    configs["band(wide)"] = m1.with_band_size(8, prob).copy()
    configs["tile-plan"] = apply_densification(m1, prob, plan)
    configs["adaptive"] = m1.copy()

    rows = []
    results = {}
    for name, m in configs.items():
        mem0 = m.memory_elements()
        t0 = time.perf_counter()
        rep = tlr_cholesky(
            m, adaptive_threshold=0.35 if name == "adaptive" else None
        )
        dt = time.perf_counter() - t0
        results[name] = (dt, rep.counter.total, mem0)
        rows.append(
            (name, round(dt, 3), round(rep.counter.total / 1e9, 1),
             round(mem0 * 8 / 2**20, 1), rep.tiles_densified_online)
        )

    headers = ["layout", "time_s", "Gflop", "initial_MiB", "online_densified"]
    print()
    print(format_table(
        headers, rows,
        title=(f"ablation: tile vs band densification "
               f"(N={N}, b={B}, eps={EPS:g}; tuned band={band}, "
               f"tile plan: {plan.n_policy} policy + {plan.n_closure} closure)")))
    write_csv(results_dir / "ablation_tile_densification.csv", headers, rows)

    benchmark.pedantic(
        plan_tile_densification, args=(grid, B), rounds=3, iterations=1
    )

    # ---- assertions ------------------------------------------------------
    t_band, fl_band, mem_band = results["band(tuned)"]
    t_wide, fl_wide, mem_wide = results["band(wide)"]
    t_tile, fl_tile, mem_tile = results["tile-plan"]
    # The tile plan captures the spike: fewer modelled flops than the
    # tuned band, competitive with the wide band at lower memory.
    assert fl_tile < fl_band
    assert mem_tile < mem_wide
    # Wall-clock parity; generous bound because suite-wide runs time this
    # under load (the deterministic flop/memory wins above are the claim).
    assert t_tile < t_band * 1.4
    # Adaptive densification engages and stays numerically sound (its
    # correctness is covered by unit tests).
    assert rows[3][4] >= 0
