"""Ablation — cost anatomy of one MLE iteration (Section III-A).

Each MLE step evaluates Eq. 1: assemble + compress the candidate
covariance, factorize it, and apply two triangular solves (log-det comes
free from the factor's diagonal).  The paper concentrates entirely on the
factorization; this bench verifies that emphasis is justified at both
levels of the reproduction:

* real numerics at laptop scale: wall-clock of compress / factorize /
  solve;
* the simulator at cluster scale: makespans of the factorization DAG vs
  the two solve DAGs.
"""

from __future__ import annotations

import time

import numpy as np

from repro import TruncationRule, st_3d_exp_problem
from repro.analysis import format_table, paper_rank_model, write_csv
from repro.core import solve_spd, tlr_cholesky, tune_band_size
from repro.distribution import BandDistribution, ProcessGrid
from repro.matrix import BandTLRMatrix
from repro.runtime import MachineSpec, build_cholesky_graph, simulate
from repro.runtime.solve_graph import SolveKind, build_solve_graph

N, B_REAL, EPS = 7200, 450, 1e-4
B_SIM, NT_SIM, NODES = 1200, 64, 16


def test_mle_iteration_anatomy(benchmark, results_dir):
    # ---- real numerics ---------------------------------------------------
    prob = st_3d_exp_problem(N, B_REAL, seed=2021)
    rule = TruncationRule(eps=EPS)

    t0 = time.perf_counter()
    m1 = BandTLRMatrix.from_problem(prob, rule, band_size=1)
    t_compress = time.perf_counter() - t0

    band = tune_band_size(m1.rank_grid(), B_REAL).band_size
    m = m1.with_band_size(band, prob).copy()
    t0 = time.perf_counter()
    tlr_cholesky(m)
    t_fact = time.perf_counter() - t0

    z = np.random.default_rng(0).standard_normal(N)
    t0 = time.perf_counter()
    solve_spd(m, z)
    t_solve = time.perf_counter() - t0

    # ---- simulated cluster scale ------------------------------------------
    model = paper_rank_model(B_SIM, accuracy=1e-8)
    band_sim = tune_band_size(model.to_rank_grid(NT_SIM), B_SIM).band_size
    machine = MachineSpec(nodes=NODES)
    dist = BandDistribution(ProcessGrid.squarest(NODES), band_size=band_sim)
    g_fact = build_cholesky_graph(NT_SIM, band_sim, B_SIM, model, recursive_split=4)
    g_fwd = build_solve_graph(NT_SIM, band_sim, B_SIM, model)
    g_bwd = build_solve_graph(
        NT_SIM, band_sim, B_SIM, model, kind=SolveKind.BACKWARD
    )
    s_fact = simulate(g_fact, dist, machine).makespan
    s_solve = (
        simulate(g_fwd, dist, machine).makespan
        + simulate(g_bwd, dist, machine).makespan
    )

    rows = [
        ("real: compress", round(t_compress, 3)),
        ("real: factorize", round(t_fact, 3)),
        ("real: solve x2", round(t_solve, 3)),
        ("simulated: factorize", round(s_fact, 3)),
        ("simulated: solve x2", round(s_solve, 4)),
    ]
    print()
    print(format_table(
        ["phase", "seconds"], rows,
        title=f"MLE iteration anatomy (real: N={N}; simulated: NT={NT_SIM} "
              f"on {NODES} nodes)"))
    write_csv(results_dir / "ablation_mle_iteration.csv", ["phase", "seconds"], rows)

    benchmark.pedantic(solve_spd, args=(m, z), rounds=1, iterations=1)

    # The factorization dominates the iteration at both scales — the
    # premise of the paper's focus.
    assert t_fact > 5 * t_solve
    assert s_fact > 5 * s_solve
