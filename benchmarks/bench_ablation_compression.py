"""Ablation — adaptive randomized SVD vs exact SVD compression.

H2OPUS-TLR replaces the deterministic SVD/RRQR compressions of TLR
solvers with adaptive randomized approximation (ARA) and reports that
this is the key to high-performance factorization at scale.  This bench
measures the same substitution in our backend layer on the paper's
st-3D-exp workload: for each accuracy in the Fig. 13 sweep it compresses
every off-band tile of one NT = 16 matrix with both backends, then runs
the full rsvd-assembled BAND-DENSE-TLR factorization, and finally times
parallel matrix assembly at 1/2/4 workers.

Reproduction targets:

* at the data-sparse accuracies (ε = 1e-4 at full scale) the rsvd
  backend must compress ≥ 2x faster than the exact SVD while both
  reconstructions stay within the ε bound — asserted when the tile is
  large enough for the randomized path to matter (b ≥ 200);
* the rsvd-built factorization's backward error must match the
  svd-built one to within an order of magnitude (both ~ε);
* parallel assembly must produce bitwise-identical matrices for every
  worker count (speedup is recorded, not asserted — CI exposes 1 core).

Writes ``benchmarks/results/ablation_compression.csv`` and the
perf-trajectory record ``BENCH_compression.json`` at the repo root.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from repro import TruncationRule, st_3d_exp_problem
from repro.analysis import format_series, write_csv
from repro.core import tlr_cholesky
from repro.linalg import RandomizedSVDBackend, SVDBackend
from repro.matrix import BandTLRMatrix, TileDescriptor

# Defaults give NT = 16 at the acceptance scale (b = 250); CI's
# bench-smoke job shrinks both via the REPRO_BENCH_COMPRESSION_* knobs.
N = int(os.environ.get("REPRO_BENCH_COMPRESSION_N", "4000"))
B = int(os.environ.get("REPRO_BENCH_COMPRESSION_B", "250"))
BAND = 2
EPS_SWEEP = [1e-4, 1e-6, 1e-8]
WORKER_COUNTS = [1, 2, 4]
REPO_ROOT = Path(__file__).resolve().parent.parent


def _offband_tiles(problem, desc_matrix):
    """Dense data of every off-band tile (generated once, reused per run)."""
    desc = desc_matrix.desc
    return [
        problem.tile(i, j)
        for i, j in desc.lower_tiles()
        if not desc.on_band(i, j, BAND)
    ]


def _median_time(fn, repeats=3):
    times = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return float(np.median(times))


def test_ablation_compression(benchmark, results_dir):
    prob = st_3d_exp_problem(N, B, seed=2021, nugget=1e-4)
    geometry = BandTLRMatrix(
        desc=TileDescriptor(N, B), band_size=BAND, rule=TruncationRule(eps=1e-6)
    )
    blocks = _offband_tiles(prob, geometry)
    svd = SVDBackend()
    rsvd = RandomizedSVDBackend(seed=2021)

    rows = []
    record = {"n": N, "b": B, "band": BAND, "tiles": len(blocks), "sweep": []}
    for eps in EPS_SWEEP:
        rule = TruncationRule(eps=eps)
        t_svd = _median_time(
            lambda: [svd.compress(a, rule) for a in blocks]
        )
        t_rsvd = _median_time(
            lambda: [rsvd.compress(a, rule, seed=i) for i, a in enumerate(blocks)]
        )
        tiles_svd = [svd.compress(a, rule) for a in blocks]
        tiles_rsvd = [
            rsvd.compress(a, rule, seed=i) for i, a in enumerate(blocks)
        ]
        err_svd = max(
            np.linalg.norm(a - t.to_dense(), 2)
            for a, t in zip(blocks, tiles_svd)
        )
        err_rsvd = max(
            np.linalg.norm(a - t.to_dense(), 2)
            for a, t in zip(blocks, tiles_rsvd)
        )
        speedup = t_svd / max(t_rsvd, 1e-12)
        rows.append(
            (
                f"{eps:g}",
                round(t_svd, 3),
                round(t_rsvd, 3),
                round(speedup, 2),
                f"{err_svd:.2e}",
                f"{err_rsvd:.2e}",
            )
        )
        record["sweep"].append(
            {
                "eps": eps,
                "t_svd": t_svd,
                "t_rsvd": t_rsvd,
                "speedup": speedup,
                "maxerr_svd": err_svd,
                "maxerr_rsvd": err_rsvd,
            }
        )
        # Both backends honour the ε bound (rsvd's certificate is
        # probabilistic: allow a small slack factor).
        assert err_svd <= eps
        assert err_rsvd <= 3.0 * eps
        # The headline acceptance: ARA beats exact SVD by >= 2x in the
        # data-sparse regime once tiles are big enough to amortize the
        # range finder (at CI's shrunken sizes we only require parity).
        if eps == 1e-4 and B >= 200:
            assert speedup >= 2.0, f"rsvd speedup {speedup:.2f}x < 2x"

    headers = [
        "eps", "t_svd_s", "t_rsvd_s", "speedup", "maxerr_svd", "maxerr_rsvd",
    ]
    print()
    print(
        format_series(
            "eps",
            headers[1:],
            rows,
            title=f"Ablation (N={N}, b={B}): svd vs rsvd tile compression",
        )
    )

    # --- end-to-end: factorization accuracy must be backend-independent ---
    rule = TruncationRule(eps=1e-6)
    dense = prob.dense()
    fact_rows = []
    for name, backend in [("svd", svd), ("rsvd", rsvd)]:
        t0 = time.perf_counter()
        mat = BandTLRMatrix.from_problem(
            prob, rule, band_size=BAND, backend=backend
        )
        t_build = time.perf_counter() - t0
        t0 = time.perf_counter()
        tlr_cholesky(mat)
        t_fact = time.perf_counter() - t0
        l = mat.to_dense(lower_only=True)
        berr = float(np.linalg.norm(l @ l.T - dense) / np.linalg.norm(dense))
        fact_rows.append(
            (name, round(t_build, 3), round(t_fact, 3), f"{berr:.2e}")
        )
        record[f"factorize_{name}"] = {
            "t_build": t_build, "t_factorize": t_fact, "backward_error": berr
        }
        # ε = 1e-6 relative accuracy with a healthy margin.
        assert berr <= 1e-5
    print(
        format_series(
            "backend",
            ["t_build_s", "t_factorize_s", "backward_err"],
            fact_rows,
            title="build + factorize at eps=1e-6",
        )
    )

    # --- parallel assembly: bitwise determinism, recorded scaling ---
    asm_rows = []
    baseline = None
    for w in WORKER_COUNTS:
        t0 = time.perf_counter()
        mat = BandTLRMatrix.from_problem(
            prob, rule, band_size=BAND, backend=rsvd, n_workers=w
        )
        dt = time.perf_counter() - t0
        if baseline is None:
            baseline = (dt, mat)
        else:
            for ij, tile in baseline[1].tiles.items():
                assert np.array_equal(
                    tile.to_dense(), mat.tiles[ij].to_dense()
                ), f"assembly not deterministic at tile {ij}"
        asm_rows.append((f"w={w}", round(dt, 3), round(baseline[0] / dt, 2)))
        record.setdefault("assembly", []).append({"workers": w, "seconds": dt})
    print(
        format_series(
            "assembly",
            ["seconds", "speedup_vs_w1"],
            asm_rows,
            title="rsvd parallel assembly (bitwise-identical output)",
        )
    )

    write_csv(results_dir / "ablation_compression.csv", headers, rows)
    (REPO_ROOT / "BENCH_compression.json").write_text(
        json.dumps(record, indent=2) + "\n"
    )

    # Time one representative rsvd sweep for the benchmark table.
    rule_b = TruncationRule(eps=1e-6)
    benchmark(
        lambda: [rsvd.compress(a, rule_b, seed=i) for i, a in enumerate(blocks)]
    )
