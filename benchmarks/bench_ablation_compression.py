"""Ablation — adaptive randomized SVD vs exact SVD compression.

H2OPUS-TLR replaces the deterministic SVD/RRQR compressions of TLR
solvers with adaptive randomized approximation (ARA) and reports that
this is the key to high-performance factorization at scale.  This bench
measures the same substitution in our backend layer on the paper's
st-3D-exp workload: for each accuracy in the Fig. 13 sweep it compresses
every off-band tile of one NT = 16 matrix with both backends, then runs
the full rsvd-assembled BAND-DENSE-TLR factorization, and finally times
parallel matrix assembly at 1/2/4 workers.

Reproduction targets:

* correctness at every scale: both reconstructions stay within the ε
  bound, and the rsvd-built factorization's backward error matches the
  svd-built one to within an order of magnitude (both ~ε);
* the ≥ 2x rsvd-over-svd compression speedup at ε = 1e-4 is asserted
  only under ``REPRO_BENCH_COMPRESSION_FULL=1`` (which also forces the
  full N=4000/b=250 scale).  The crossover is a *tile-size* effect: the
  blocked range finder costs O(b²·r) against the exact SVD's O(b³), so
  its advantage needs b large enough to amortize sampling overhead —
  measured history (``BENCH_compression.json``) shows rsvd at 0.66–0.86x
  of svd at the smoke scale (n=1600, b=100) and ≥ 2x from b ≈ 200–250
  up.  A smoke run asserting the speedup would therefore fail on a
  correct implementation; smoke asserts correctness only;
* parallel assembly must produce bitwise-identical matrices for every
  worker count (speedup is recorded, not asserted — CI exposes 1 core).

Timings go through :mod:`repro.perf` (the ``perf_timer`` fixture), so
each run also appends comparable median/IQR records to
``BENCH_history.jsonl``.  Writes
``benchmarks/results/ablation_compression.csv`` and the perf-trajectory
record ``BENCH_compression.json`` at the repo root.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from repro import TruncationRule, st_3d_exp_problem
from repro.analysis import format_series, write_csv
from repro.core import tlr_cholesky
from repro.linalg import RandomizedSVDBackend, SVDBackend
from repro.matrix import BandTLRMatrix, TileDescriptor

# Defaults give NT = 16 at the acceptance scale (b = 250); CI's
# bench-smoke job shrinks both via the REPRO_BENCH_COMPRESSION_* knobs.
# REPRO_BENCH_COMPRESSION_FULL=1 pins the full scale and arms the ≥2x
# speedup assertion (meaningless below the b ≈ 200 rsvd/svd crossover).
FULL = os.environ.get("REPRO_BENCH_COMPRESSION_FULL", "") == "1"
N = 4000 if FULL else int(os.environ.get("REPRO_BENCH_COMPRESSION_N", "4000"))
B = 250 if FULL else int(os.environ.get("REPRO_BENCH_COMPRESSION_B", "250"))
BAND = 2
EPS_SWEEP = [1e-4, 1e-6, 1e-8]
WORKER_COUNTS = [1, 2, 4]
REPO_ROOT = Path(__file__).resolve().parent.parent


def _offband_tiles(problem, desc_matrix):
    """Dense data of every off-band tile (generated once, reused per run)."""
    desc = desc_matrix.desc
    return [
        problem.tile(i, j)
        for i, j in desc.lower_tiles()
        if not desc.on_band(i, j, BAND)
    ]


def test_ablation_compression(benchmark, results_dir, perf_timer):
    prob = st_3d_exp_problem(N, B, seed=2021, nugget=1e-4)
    geometry = BandTLRMatrix(
        desc=TileDescriptor(N, B), band_size=BAND, rule=TruncationRule(eps=1e-6)
    )
    blocks = _offband_tiles(prob, geometry)
    svd = SVDBackend()
    rsvd = RandomizedSVDBackend(seed=2021)

    rows = []
    record = {"n": N, "b": B, "band": BAND, "tiles": len(blocks), "sweep": []}
    cfg = {"n": N, "b": B, "band": BAND}
    for eps in EPS_SWEEP:
        rule = TruncationRule(eps=eps)
        t_svd = perf_timer(
            f"ablation_compress_svd_eps{eps:g}",
            lambda: [svd.compress(a, rule) for a in blocks],
            config={**cfg, "eps": eps},
        ).median_s
        t_rsvd = perf_timer(
            f"ablation_compress_rsvd_eps{eps:g}",
            lambda: [rsvd.compress(a, rule, seed=i) for i, a in enumerate(blocks)],
            config={**cfg, "eps": eps},
        ).median_s
        tiles_svd = [svd.compress(a, rule) for a in blocks]
        tiles_rsvd = [
            rsvd.compress(a, rule, seed=i) for i, a in enumerate(blocks)
        ]
        err_svd = max(
            np.linalg.norm(a - t.to_dense(), 2)
            for a, t in zip(blocks, tiles_svd)
        )
        err_rsvd = max(
            np.linalg.norm(a - t.to_dense(), 2)
            for a, t in zip(blocks, tiles_rsvd)
        )
        speedup = t_svd / max(t_rsvd, 1e-12)
        rows.append(
            (
                f"{eps:g}",
                round(t_svd, 3),
                round(t_rsvd, 3),
                round(speedup, 2),
                f"{err_svd:.2e}",
                f"{err_rsvd:.2e}",
            )
        )
        record["sweep"].append(
            {
                "eps": eps,
                "t_svd": t_svd,
                "t_rsvd": t_rsvd,
                "speedup": speedup,
                "maxerr_svd": err_svd,
                "maxerr_rsvd": err_rsvd,
            }
        )
        # Both backends honour the ε bound (rsvd's certificate is
        # probabilistic: allow a small slack factor).  Correctness is
        # asserted at every scale — it has no size crossover.
        assert err_svd <= eps
        assert err_rsvd <= 3.0 * eps
        # The headline acceptance: ARA beats exact SVD by >= 2x in the
        # data-sparse regime.  Only meaningful above the b ≈ 200 tile-size
        # crossover where the range finder amortizes (smoke runs at
        # b = 100 measure rsvd at 0.66-0.86x of svd — expected, not a
        # bug), so it is armed by REPRO_BENCH_COMPRESSION_FULL=1, which
        # also pins the full N=4000/b=250 scale.
        if eps == 1e-4 and FULL:
            assert speedup >= 2.0, f"rsvd speedup {speedup:.2f}x < 2x"

    headers = [
        "eps", "t_svd_s", "t_rsvd_s", "speedup", "maxerr_svd", "maxerr_rsvd",
    ]
    print()
    print(
        format_series(
            "eps",
            headers[1:],
            rows,
            title=f"Ablation (N={N}, b={B}): svd vs rsvd tile compression",
        )
    )

    # --- end-to-end: factorization accuracy must be backend-independent ---
    rule = TruncationRule(eps=1e-6)
    dense = prob.dense()
    fact_rows = []
    for name, backend in [("svd", svd), ("rsvd", rsvd)]:
        t0 = time.perf_counter()
        mat = BandTLRMatrix.from_problem(
            prob, rule, band_size=BAND, backend=backend
        )
        t_build = time.perf_counter() - t0
        t0 = time.perf_counter()
        tlr_cholesky(mat)
        t_fact = time.perf_counter() - t0
        l = mat.to_dense(lower_only=True)
        berr = float(np.linalg.norm(l @ l.T - dense) / np.linalg.norm(dense))
        fact_rows.append(
            (name, round(t_build, 3), round(t_fact, 3), f"{berr:.2e}")
        )
        record[f"factorize_{name}"] = {
            "t_build": t_build, "t_factorize": t_fact, "backward_error": berr
        }
        # ε = 1e-6 relative accuracy with a healthy margin.
        assert berr <= 1e-5
    print(
        format_series(
            "backend",
            ["t_build_s", "t_factorize_s", "backward_err"],
            fact_rows,
            title="build + factorize at eps=1e-6",
        )
    )

    # --- parallel assembly: bitwise determinism, recorded scaling ---
    asm_rows = []
    baseline = None
    for w in WORKER_COUNTS:
        t0 = time.perf_counter()
        mat = BandTLRMatrix.from_problem(
            prob, rule, band_size=BAND, backend=rsvd, n_workers=w
        )
        dt = time.perf_counter() - t0
        if baseline is None:
            baseline = (dt, mat)
        else:
            for ij, tile in baseline[1].tiles.items():
                assert np.array_equal(
                    tile.to_dense(), mat.tiles[ij].to_dense()
                ), f"assembly not deterministic at tile {ij}"
        asm_rows.append((f"w={w}", round(dt, 3), round(baseline[0] / dt, 2)))
        record.setdefault("assembly", []).append({"workers": w, "seconds": dt})
    print(
        format_series(
            "assembly",
            ["seconds", "speedup_vs_w1"],
            asm_rows,
            title="rsvd parallel assembly (bitwise-identical output)",
        )
    )

    write_csv(results_dir / "ablation_compression.csv", headers, rows)
    (REPO_ROOT / "BENCH_compression.json").write_text(
        json.dumps(record, indent=2) + "\n"
    )

    # Time one representative rsvd sweep for the benchmark table.
    rule_b = TruncationRule(eps=1e-6)
    benchmark(
        lambda: [rsvd.compress(a, rule_b, seed=i) for i, a in enumerate(blocks)]
    )
