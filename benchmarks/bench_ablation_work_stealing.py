"""Ablation — dynamic load balancing via work stealing (paper future work).

Section IX: "For future work, we would like to provide dynamic load
balancing between nodes to further mitigate the idle time."  Fig. 11
showed where the idle time lives: inter-process imbalance from the static
distribution meeting an irregular rank field.

Measured on the simulator: the Fig. 11 configuration with and without
work stealing, plus a deliberately imbalanced distribution where stealing
has the most to recover.  The triangular-solve DAG is included as the
contrasting case — its serial RMW chains leave stealing nothing to win.
"""

from __future__ import annotations

import pytest

from repro.analysis import (
    format_table,
    occupancy_summary,
    paper_rank_model,
    write_csv,
)
from repro.core import tune_band_size
from repro.distribution import BandDistribution, OneDBlockCyclic, ProcessGrid
from repro.runtime import MachineSpec, build_cholesky_graph, simulate
from repro.runtime.solve_graph import build_solve_graph

B, NT, NODES = 1200, 64, 8


def test_ablation_work_stealing(benchmark, results_dir):
    model = paper_rank_model(B, accuracy=1e-8)
    band = tune_band_size(model.to_rank_grid(NT), B).band_size
    g = build_cholesky_graph(NT, band, B, model, recursive_split=4)
    machine = MachineSpec(nodes=NODES)

    cases = {
        "band dist": BandDistribution(ProcessGrid.squarest(NODES), band_size=band),
        "imbalanced 1D": OneDBlockCyclic(NODES, axis="row"),
    }
    rows = []
    gains = {}
    imbalances = {}
    for name, dist in cases.items():
        r0 = simulate(g, dist, machine)
        r1 = simulate(g, dist, machine, work_stealing=True)
        gains[name] = r0.makespan / r1.makespan
        s0, s1 = occupancy_summary(r0), occupancy_summary(r1)
        imbalances[name] = (s0.imbalance, s1.imbalance)
        rows.append((name, "off", round(r0.makespan, 3),
                     round(s0.mean_occupancy, 3), round(s0.imbalance, 3)))
        rows.append((name, "on", round(r1.makespan, 3),
                     round(s1.mean_occupancy, 3), round(s1.imbalance, 3)))

    # Triangular solve: nothing to steal along the serial sweep.
    gs = build_solve_graph(NT, band, B, model)
    dist = cases["band dist"]
    rs0 = simulate(gs, dist, machine)
    rs1 = simulate(gs, dist, machine, work_stealing=True)
    rows.append(("solve DAG", "off", round(rs0.makespan, 4), "-", "-"))
    rows.append(("solve DAG", "on", round(rs1.makespan, 4), "-", "-"))

    headers = ["workload", "stealing", "makespan_s", "occupancy", "imbalance"]
    print()
    print(format_table(headers, rows,
                       title=f"ablation: work stealing (NT={NT}, {NODES} nodes)"))
    write_csv(results_dir / "ablation_work_stealing.csv", headers, rows)

    benchmark.pedantic(
        simulate, args=(g, cases["band dist"], machine),
        kwargs={"work_stealing": True}, rounds=1, iterations=1,
    )

    # Stealing improves (or at worst matches) the makespan under both
    # static layouts, and visibly cuts the inter-process imbalance — the
    # exact idle time the paper's future-work remark targets.
    for name in cases:
        assert gains[name] > 0.999, name
        before, after = imbalances[name]
        assert after < before, name
    # The latency-bound solve DAG is immune either way.
    assert rs1.makespan == pytest.approx(rs0.makespan, rel=0.1)

