"""Table II — PaRSEC-HiCMA-New vs PaRSEC-HiCMA-Prev, feature by feature.

Paper rows: time-to-solution of (1) PaRSEC-HiCMA-Prev (pure TLR, band-1
distribution, POTRF-only recursion), (2) + "Band-dense" (BAND-DENSE-TLR
layout + hybrid band distribution), (3) + "Recursive kernels" (all dense
band kernels recursive), on 64-512 nodes and N = 1.08M-3.24M, with total
speedups of 5.2x-7.6x.

Replayed on the discrete-event simulator at scaled size (NT = 56, b = 1200,
paper-calibrated rank model at eps = 1e-8, nodes 8-64).  The simulator
inherits the paper's Table I costs and the Fig. 2a-shaped kernel-rate
model, so the *relative* configuration ranking and the speedup trend are
the reproduction targets; absolute simulated seconds are not.

Configuration mapping (all owner-computes over the lower triangle):

=============  ==========  ======================  =====================
config         band layout  distribution            recursion
=============  ==========  ======================  =====================
Prev           1           band(1) + 2DBCDD        POTRF only
Band-dense     tuned B     band(B) + 2DBCDD        POTRF only
Recursive      tuned B     band(B) + 2DBCDD        all region-(1)
=============  ==========  ======================  =====================
"""

from __future__ import annotations


from repro.analysis import format_table, paper_rank_model, write_csv
from repro.core import tune_band_size
from repro.distribution import BandDistribution, ProcessGrid
from repro.linalg import KernelClass
from repro.runtime import MachineSpec, build_cholesky_graph, simulate

B = 1200
NT_SMALL, NT_LARGE = 56, 80  # stand-ins for N = 1.08M and 2.16M
NODES = [8, 16, 32, 64]
SPLIT = 4


def _graphs(nt):
    model = paper_rank_model(B, accuracy=1e-8)
    rank_grid = model.to_rank_grid(nt)
    band = tune_band_size(rank_grid, B).band_size
    g_prev = build_cholesky_graph(
        nt, 1, B, model, recursive_split=SPLIT,
        recursive_kernels={KernelClass.POTRF_DENSE},
    )
    g_band = build_cholesky_graph(
        nt, band, B, model, recursive_split=SPLIT,
        recursive_kernels={KernelClass.POTRF_DENSE},
    )
    g_rec = build_cholesky_graph(nt, band, B, model, recursive_split=SPLIT)
    return band, g_prev, g_band, g_rec


def _simulate_row(nt, nodes, band, g_prev, g_band, g_rec):
    machine = MachineSpec(nodes=nodes)
    grid = ProcessGrid.squarest(nodes)
    t_prev = simulate(g_prev, BandDistribution(grid, band_size=1), machine).makespan
    t_band = simulate(g_band, BandDistribution(grid, band_size=band), machine).makespan
    t_rec = simulate(g_rec, BandDistribution(grid, band_size=band), machine).makespan
    return t_prev, t_band, t_rec


def test_table2_state_of_the_art(benchmark, results_dir):
    rows = []
    speedups = []
    cases = [(NT_SMALL, n) for n in NODES] + [(NT_LARGE, n) for n in NODES[2:]]
    graphs_cache = {}
    for nt, nodes in cases:
        if nt not in graphs_cache:
            graphs_cache[nt] = _graphs(nt)
        band, g_prev, g_band, g_rec = graphs_cache[nt]
        t_prev, t_band, t_rec = _simulate_row(nt, nodes, band, g_prev, g_band, g_rec)
        speedups.append(t_prev / t_rec)
        rows.append(
            (nodes, nt * B, round(t_prev, 2), round(t_band, 2), round(t_rec, 2),
             f"{t_prev / t_rec:.2f}x")
        )

    headers = ["nodes", "matrix_size", "Prev_s", "Band-dense_s",
               "Recursive_s", "total_speedup"]
    print()
    print(format_table(
        headers, rows,
        title=f"Table II (simulated; b={B}, tuned band={graphs_cache[NT_SMALL][0]}, "
              f"rank model eps=1e-8)"))
    write_csv(results_dir / "table2_state_of_art.csv", headers, rows)

    # Benchmark unit: one Prev-config simulation at the smallest case.
    band, g_prev, _, _ = graphs_cache[NT_SMALL]
    benchmark.pedantic(
        _simulate_row,
        args=(NT_SMALL, NODES[0], band, g_prev, g_prev, g_prev),
        rounds=1, iterations=1,
    )

    # ---- reproduction assertions ----------------------------------------
    for nodes, _, tp, tb, tr, _ in rows:
        # Each feature helps, in the paper's order: Prev > Band-dense >
        # +Recursive kernels.
        assert tb < tp, f"band-dense must beat Prev at {nodes} nodes"
        assert tr < tb * 1.001, f"recursion must not hurt at {nodes} nodes"
    # The major improvement comes from Band-dense (paper's observation).
    first = rows[0]
    assert first[2] / first[3] > 1.5
    # Total speedups land in the paper's multi-fold regime (5.2-7.6x).
    assert min(speedups) > 3.0
    assert max(speedups) < 12.0
