"""Ablation — batched kernel dispatch + adaptive mixed-precision TLR.

H2OPUS-TLR owes its throughput to marshaling same-shape low-rank
operations into batched kernel calls, and the adaptive-precision TLR
lineage (Cao et al., PAPERS.md) shows fp32 factors are numerically free
whenever a tile's ε-budget sits above single-precision roundoff.  This
bench measures both levers on the paper's st-3D-exp workload at the
b = 100 CI scale, against the *PR-6 defaults* arm — exact-SVD backend,
unbatched right-looking loops, all-fp64 storage, and the historical
``scipy.linalg``-wrapper recompression rounding (kept verbatim in
:func:`repro.linalg.backends._qr_svd_recompress_reference` and routed
via ``CompressionBackend.reference_recompress``).

Arms (factorization only; assembly is identical across arms):

* ``pr6``      — svd backend, wrapper rounding, unbatched, fp64;
* ``direct``   — svd backend, direct-LAPACK rounding, unbatched, fp64;
* ``batched``  — auto backend, batched waves, fp64;
* ``new``      — auto backend, batched waves, adaptive precision
  (the recommended hot-path configuration).

Reproduction targets:

* correctness at every scale: batched execution is *bitwise identical*
  to unbatched on the same configuration; the adaptive arm's backward
  error stays within 10x of the fp64 arm at ε = 1e-4; adaptive halves
  the off-band low-rank footprint;
* the ≥ 1.3x ``new``-over-``pr6`` factorization speedup is asserted
  only under ``REPRO_BENCH_BATCH_FULL=1`` (which pins the full
  n = 1600 / b = 100 scale) — timing assertions on shrunken smoke
  scales or loaded CI runners measure noise, not the implementation;
* per-kernel-class GFLOP/s is recorded per arm (flops are identical
  across arms by the bitwise invariant, so the uplift is pure time).

Timings go through :mod:`repro.perf` (the ``perf_timer`` fixture), so
each run appends comparable median/IQR records to
``BENCH_history.jsonl``.  Writes
``benchmarks/results/ablation_batched_precision.csv`` and the
perf-trajectory record ``BENCH_batched.json`` at the repo root.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import numpy as np

from repro import TruncationRule, st_3d_exp_problem
from repro.analysis import format_series, write_csv
from repro.core import tlr_cholesky
from repro.linalg import DenseTile, SVDBackend
from repro.matrix import BandTLRMatrix

# Full scale is the acceptance scale itself (b = 100 is where PR 6's
# BENCH_compression.json showed dispatch overhead dominating); the
# smoke knobs exist for CI lanes that want an even quicker pass.
FULL = os.environ.get("REPRO_BENCH_BATCH_FULL", "") == "1"
N = 1600 if FULL else int(os.environ.get("REPRO_BENCH_BATCH_N", "1600"))
B = 100 if FULL else int(os.environ.get("REPRO_BENCH_BATCH_B", "100"))
BAND = 2
EPS = 1e-4
REPO_ROOT = Path(__file__).resolve().parent.parent


def _tiles_bitwise_equal(m1, m2) -> bool:
    for i in range(m1.ntiles):
        for j in range(i + 1):
            t1, t2 = m1.tile(i, j), m2.tile(i, j)
            if isinstance(t1, DenseTile) != isinstance(t2, DenseTile):
                return False
            if isinstance(t1, DenseTile):
                if not np.array_equal(t1.data, t2.data):
                    return False
            elif not (
                np.array_equal(t1.u, t2.u) and np.array_equal(t1.v, t2.v)
            ):
                return False
    return True


def test_ablation_batched_precision(benchmark, results_dir, perf_timer):
    prob = st_3d_exp_problem(N, B, seed=2021, nugget=1e-4)
    rule = TruncationRule(eps=EPS)
    dense = prob.dense()
    dense_norm = np.linalg.norm(dense)

    pr6_backend = SVDBackend()
    pr6_backend.reference_recompress = True

    arms = {
        "pr6": dict(backend=pr6_backend, batch=False, precision=None),
        "direct": dict(backend="svd", batch=False, precision=None),
        "batched": dict(backend="auto", batch=True, precision=None),
        "new": dict(backend="auto", batch=True, precision="adaptive"),
    }

    def build(cfg):
        return BandTLRMatrix.from_problem(
            prob, rule, band_size=BAND,
            backend=cfg["backend"], precision=cfg["precision"],
        )

    def factorize(cfg, m):
        return tlr_cholesky(
            m, batch=cfg["batch"], precision=cfg["precision"],
            backend=cfg["backend"],
        )

    base_cfg = {"n": N, "b": B, "band": BAND, "eps": EPS}
    record = {**base_cfg, "arms": {}}
    rows = []
    times = {}
    for name, cfg in arms.items():
        holder = {}

        def setup(cfg=cfg, holder=holder):
            holder["m"] = build(cfg)
            return holder["m"]

        timing = perf_timer(
            f"ablation_batched_{name}",
            lambda m, cfg=cfg: factorize(cfg, m),
            setup=setup,
            config={
                **base_cfg,
                "batch": cfg["batch"],
                "precision": cfg["precision"] or "fp64",
            },
        )
        times[name] = timing.median_s
        m = holder["m"]
        report = factorize(cfg, build(cfg))  # fresh run for accounting
        l = m.to_dense(lower_only=True)
        berr = float(np.linalg.norm(l @ l.T - dense) / dense_norm)
        gflops = report.counter.total / max(timing.median_s, 1e-12) / 1e9
        arm_rec = {
            "t_factorize": timing.median_s,
            "backward_error": berr,
            "gflops": gflops,
            "flops": report.counter.total,
        }
        if report.precision_report is not None:
            arm_rec["offband_saving_factor"] = (
                report.precision_report.offband_saving_factor
            )
            arm_rec["demoted_tiles"] = report.precision_report.demoted_tiles
        record["arms"][name] = arm_rec
        rows.append(
            (
                name,
                round(timing.median_s, 4),
                round(times["pr6"] / max(timing.median_s, 1e-12), 2),
                f"{berr:.2e}",
                round(gflops, 2),
            )
        )

    headline = times["pr6"] / max(times["new"], 1e-12)
    record["speedup_new_over_pr6"] = headline
    record["speedup_batched_over_pr6"] = times["pr6"] / max(
        times["batched"], 1e-12
    )

    print()
    print(
        format_series(
            "arm",
            ["t_factorize_s", "speedup_vs_pr6", "backward_err", "gflops"],
            rows,
            title=(
                f"Ablation (N={N}, b={B}, eps={EPS:g}): "
                "batched + adaptive precision vs PR-6 defaults"
            ),
        )
    )

    # --- correctness: asserted at every scale ---------------------------
    # 1. batched bitwise == unbatched, fp64 and adaptive alike.
    for precision in (None, "adaptive"):
        m_b = BandTLRMatrix.from_problem(
            prob, rule, band_size=BAND, backend="auto", precision=precision
        )
        tlr_cholesky(m_b, batch=True, precision=precision)
        m_u = BandTLRMatrix.from_problem(
            prob, rule, band_size=BAND, backend="auto", precision=precision
        )
        tlr_cholesky(m_u, batch=False, precision=precision)
        assert _tiles_bitwise_equal(m_b, m_u), (
            f"batched factor differs from unbatched (precision={precision})"
        )

    # 2. adaptive accuracy within 10x of fp64 at eps=1e-4.
    err64 = record["arms"]["direct"]["backward_error"]
    errad = record["arms"]["new"]["backward_error"]
    assert errad < 10 * max(err64, EPS), (
        f"adaptive backward error {errad:.2e} vs fp64 {err64:.2e}"
    )

    # 3. adaptive halves the off-band low-rank footprint.
    saving = record["arms"]["new"]["offband_saving_factor"]
    assert saving > 1.9, f"off-band saving {saving:.2f}x < 1.9x"

    # 4. the headline: recorded always, asserted only at the pinned full
    #    scale where the measurement is meaningful.
    if FULL:
        assert headline >= 1.3, (
            f"batched+auto+adaptive speedup {headline:.2f}x < 1.3x over "
            "PR-6 defaults"
        )

    write_csv(
        results_dir / "ablation_batched_precision.csv",
        ["arm", "t_factorize_s", "speedup_vs_pr6", "backward_err", "gflops"],
        rows,
    )
    (REPO_ROOT / "BENCH_batched.json").write_text(
        json.dumps(record, indent=2, sort_keys=True) + "\n"
    )

    # one representative unit for --benchmark-only tables: the hot path.
    # tlr_cholesky factorizes in place, so each round gets a fresh build.
    benchmark.pedantic(
        lambda m: tlr_cholesky(m, batch=True, precision="adaptive"),
        setup=lambda: ((build(arms["new"]),), {}),
        rounds=3,
    )
