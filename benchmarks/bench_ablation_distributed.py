"""Ablation — multi-process distributed executor: ranks vs wall-time.

The paper's distributed runs scale the BAND-DENSE-TLR Cholesky across
nodes with explicit tile communication; our process executor reproduces
that topology on one host — separate address spaces, tiles placed by the
hybrid band/off-band distribution, panel factors broadcast over binomial
trees.  This bench factorizes one matrix at 1, 2 and 4 ranks through the
``Executor`` protocol, records wall-time *and bytes moved* per rank
count, and validates every factor bitwise against the thread executor.

Reproduction targets are correctness invariants plus the communication
model: the factor must be bitwise identical at every rank count, and the
realized LOCAL/REMOTE edge split must match the analytical classifier
exactly.  Speedup is recorded for the ablation table but not asserted —
process spawn + pickle overhead dominates at laptop scale, and CI
runners may expose a single core.

Every timing lands in ``BENCH_history.jsonl`` through the shared
``perf_timer`` harness, with the comm volume in each record's config, so
``python -m repro compare`` gates rank-scaling regressions alongside the
rest of the suite.
"""

from __future__ import annotations

import os

import numpy as np

from repro import TruncationRule, st_3d_exp_problem
from repro.analysis import format_series, write_csv
from repro.distribution import BandDistribution, ProcessGrid
from repro.matrix import BandTLRMatrix
from repro.runtime import (
    build_cholesky_graph,
    classify_dataflow,
    execute_graph_distributed,
    get_executor,
)

# Defaults give NT = 16; CI's bench-smoke job shrinks the problem
# (keeping NT) via the REPRO_BENCH_DISTRIBUTED_* knobs.
N = int(os.environ.get("REPRO_BENCH_DISTRIBUTED_N", "2048"))
B = int(os.environ.get("REPRO_BENCH_DISTRIBUTED_B", "128"))
BAND = 2
RANK_COUNTS = [1, 2, 4]


def _graph_for(matrix):
    grid = matrix.rank_grid()
    return build_cholesky_graph(
        matrix.ntiles, BAND, matrix.desc.tile_size,
        lambda i, j: int(max(grid[i, j], 1)),
    )


def test_ablation_distributed_executor(benchmark, results_dir, perf_timer):
    prob = st_3d_exp_problem(N, B, seed=2021, nugget=1e-4)
    rule = TruncationRule(eps=1e-8)
    base = BandTLRMatrix.from_problem(prob, rule, band_size=BAND)
    graph = _graph_for(base)

    # Thread-executor reference: the distributed factor must match it
    # bitwise at every rank count.
    ref = base.copy()
    t_thr = perf_timer(
        "distributed/threads-2",
        lambda: get_executor("threads", n_workers=2).execute(
            graph, base.copy()
        ),
        config={"n": N, "b": B, "band": BAND, "executor": "threads"},
        repeats=2,
    )
    get_executor("threads", n_workers=2).execute(graph, ref)
    ref_factor = ref.to_dense(lower_only=True)

    rows = [("threads-2", round(t_thr.median_s, 3), "-", "-", "-")]
    for ranks in RANK_COUNTS:
        dist = BandDistribution(
            ProcessGrid.squarest(ranks), band_size=BAND
        )
        flow = classify_dataflow(graph, dist)
        last: dict = {}

        def run(ranks=ranks):
            m = base.copy()
            last["rep"] = execute_graph_distributed(
                graph, m, n_ranks=ranks
            )
            last["factor"] = m.to_dense(lower_only=True)

        t = perf_timer(
            f"distributed/ranks-{ranks}",
            run,
            config={
                "n": N, "b": B, "band": BAND, "executor": "processes",
                "ranks": ranks,
                "remote_edges": flow.remote_total,
                "remote_bytes": sum(flow.bytes_remote.values()),
            },
            repeats=2,
        )
        rep = last["rep"]
        assert np.array_equal(last["factor"], ref_factor), (
            f"{ranks}-rank factor diverged from the thread executor"
        )
        # Realized comm must equal the analytical LOCAL/REMOTE split.
        assert rep.dataflow.edges == flow.edges
        rows.append(
            (
                f"ranks-{ranks}",
                round(t.median_s, 3),
                rep.comm.remote_edges,
                round(rep.comm.bytes_sent / 2**20, 3),
                round(rep.wire_bytes / 2**20, 3),
            )
        )

    headers = ["executor", "seconds", "remote_edges",
               "modelled_MiB", "wire_MiB"]
    print()
    print(
        format_series(
            "executor",
            headers[1:],
            rows,
            title=f"Ablation (N={N}, b={B}, band={BAND}): "
                  "distributed executor, ranks vs wall-time",
        )
    )
    write_csv(results_dir / "ablation_distributed.csv", headers, rows)

    # One-rank runs move no tiles; more ranks move monotonically more.
    bytes_by_ranks = [r[3] for r in rows[1:]]
    assert bytes_by_ranks[0] == 0.0
    assert bytes_by_ranks == sorted(bytes_by_ranks)

    # Time one representative 2-rank factorization for the benchmark table.
    benchmark(
        lambda: execute_graph_distributed(graph, base.copy(), n_ranks=2)
    )
