"""Shared infrastructure for the paper-reproduction benchmarks.

Every ``bench_*`` module regenerates one table or figure of the paper at
reduced scale (see DESIGN.md's experiment index).  Conventions:

* each bench prints the same rows/series the paper reports (via
  ``repro.analysis.format_table``) and writes a CSV under
  ``benchmarks/results/``;
* the ``benchmark`` fixture times one representative unit of work per
  bench so ``pytest benchmarks/ --benchmark-only`` produces a meaningful
  timing table; sweeps run outside the timer;
* problem sizes are scaled so the whole suite completes in minutes on a
  laptop; the *shape* of each result (who wins, crossovers, trends) is the
  reproduction target, not absolute seconds.
"""

from __future__ import annotations

import os
import time
from pathlib import Path

import pytest

from repro import TruncationRule, perf, st_3d_exp_problem
from repro.matrix import BandTLRMatrix

RESULTS_DIR = Path(__file__).parent / "results"
REPO_ROOT = Path(__file__).resolve().parent.parent

#: The scaled stand-ins for the paper's two reference matrix sizes
#: (N = 1.08M and 2.16M with b = 2400 -> NT = 450/900).  We keep the
#: b = sqrt(N) relationship at laptop scale.  CI's bench-smoke job
#: shrinks them further via the REPRO_BENCH_* environment knobs; the
#: reproduction assertions are written against shape, not scale, and
#: hold at both sizes.
SCALED_N_SMALL = int(os.environ.get("REPRO_BENCH_N_SMALL", "7200"))
SCALED_B_SMALL = int(os.environ.get("REPRO_BENCH_B_SMALL", "450"))  # NT = 16
SCALED_N_LARGE = 14400
SCALED_B_LARGE = 600  # NT = 24


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def perf_timer():
    """Median/IQR timing through :mod:`repro.perf`, persisted to history.

    Yields ``timer(name, fn, *, config=None, repeats=3, warmup=0)`` →
    :class:`repro.perf.Timing`.  Every measurement taken through it is
    appended to the repo-root ``BENCH_history.jsonl`` when the session
    ends, under one ``ablation-<utc>`` run label — so ablation benches
    and ``python -m repro bench`` feed the same comparable trajectory.
    """
    records: list[perf.BenchRecord] = []
    run = "ablation-" + time.strftime("%Y%m%dT%H%M%SZ", time.gmtime())
    ts = time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())

    def timer(name, fn, *, config=None, repeats=3, warmup=0, setup=None):
        timing = perf.measure(fn, warmup=warmup, repeats=repeats, setup=setup)
        records.append(
            perf.BenchRecord(
                name=name, run=run, timing=timing,
                config=dict(config or {}), ts=ts, warmup=warmup,
            )
        )
        return timing

    yield timer
    if records:
        path = perf.append_history(records, REPO_ROOT)
        print(f"\n[perf] {len(records)} records appended to {path} (run {run})")


@pytest.fixture(scope="session")
def rule8() -> TruncationRule:
    return TruncationRule(eps=1e-8)


@pytest.fixture(scope="session")
def problem_small():
    """Scaled stand-in for the paper's N = 1.08M, b = 2700 workload."""
    return st_3d_exp_problem(SCALED_N_SMALL, SCALED_B_SMALL, seed=2021)


@pytest.fixture(scope="session")
def matrix_small(problem_small, rule8):
    """Band-1 compression of the small workload (reused across benches)."""
    return BandTLRMatrix.from_problem(problem_small, rule8, band_size=1)


@pytest.fixture(scope="session")
def rank_model_small(matrix_small):
    """Rank model fitted from the measured small-workload compression."""
    from repro.analysis import RankModel

    return RankModel.fit(matrix_small.rank_grid(), matrix_small.desc.tile_size)
