"""Ablation — thread-pool executor vs the sequential task loop.

The paper's PaRSEC runs execute the BAND-DENSE-TLR Cholesky graph with
dependency-driven worker threads; our simulator replays the same graph
against a machine model.  This bench closes the loop on real hardware:
it factorizes one NT = 16 st-3D-exp matrix with ``tlr_cholesky`` driven
by ``execute_graph_parallel`` at 1, 2 and 4 workers, records wall-clock
and achieved Gflop/s per worker count, and validates every factor
against the dense ``scipy.linalg.cholesky`` reference.

Reproduction targets are *correctness invariants*, not speedup: the
factor must be bitwise identical across worker counts (all writes to a
tile are totally ordered by dataflow edges) and must match the dense
reference to the truncation accuracy.  Speedup is recorded for the
ablation table but not asserted — CI runners and this container may
expose a single core, where the thread pool can only break even.
"""

from __future__ import annotations

import os
import time

import numpy as np
import scipy.linalg as sla

from repro import TruncationRule, st_3d_exp_problem
from repro.analysis import format_series, write_csv
from repro.core import tlr_cholesky
from repro.matrix import BandTLRMatrix

# Defaults give NT = 16; CI's bench-smoke job shrinks the tile (keeping
# NT = 16) via the REPRO_BENCH_ABLATION_* knobs.
N = int(os.environ.get("REPRO_BENCH_ABLATION_N", "3600"))
B = int(os.environ.get("REPRO_BENCH_ABLATION_B", "225"))
BAND = 2
WORKER_COUNTS = [1, 2, 4]


def _backward_error(matrix, dense):
    l = matrix.to_dense(lower_only=True)
    return np.linalg.norm(l @ l.T - dense) / np.linalg.norm(dense)


def test_ablation_parallel_executor(benchmark, results_dir):
    prob = st_3d_exp_problem(N, B, seed=2021, nugget=1e-4)
    rule = TruncationRule(eps=1e-8)
    base = BandTLRMatrix.from_problem(prob, rule, band_size=BAND)
    dense = prob.dense()

    # Dense reference: scipy must agree with the TLR factors below.
    l_ref = sla.cholesky(dense, lower=True)

    t0 = time.perf_counter()
    seq = base.copy()
    rep_seq = tlr_cholesky(seq)
    t_seq = time.perf_counter() - t0
    err_seq = _backward_error(seq, dense)

    rows = [("seq", round(t_seq, 3), 1.0, f"{err_seq:.2e}",
             round(rep_seq.counter.total / t_seq / 1e9, 2))]
    factors = {}
    for w in WORKER_COUNTS:
        m = base.copy()
        t0 = time.perf_counter()
        rep = tlr_cholesky(m, n_workers=w)
        dt = time.perf_counter() - t0
        err = _backward_error(m, dense)
        factors[w] = m.to_dense(lower_only=True)
        rows.append(
            (
                f"par-{w}",
                round(dt, 3),
                round(t_seq / dt, 2),
                f"{err:.2e}",
                round(rep.counter.total / dt / 1e9, 2),
            )
        )
        assert err < 1e-6
        # Same truncated factor the dense reference produces, up to the
        # compression error carried by the TLR representation.
        assert np.allclose(factors[w], np.tril(l_ref), atol=1e-5)

    headers = ["executor", "seconds", "speedup_vs_seq", "backward_err", "gflops"]
    print()
    print(
        format_series(
            "executor",
            headers[1:],
            rows,
            title=f"Ablation (N={N}, b={B}, band={BAND}): parallel executor",
        )
    )
    write_csv(results_dir / "ablation_parallel_executor.csv", headers, rows)

    # Dataflow edges totally order all writes per tile: any worker count
    # must reproduce the 1-worker factor bit for bit.
    for w in WORKER_COUNTS[1:]:
        assert np.array_equal(factors[WORKER_COUNTS[0]], factors[w])
    # And the parallel path must match the sequential loop numerically.
    assert np.allclose(factors[1], seq.to_dense(lower_only=True), atol=1e-9)

    # Time one representative 2-worker factorization for the benchmark table.
    benchmark(lambda: tlr_cholesky(base.copy(), n_workers=2))
