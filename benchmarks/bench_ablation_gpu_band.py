"""Ablation — GPU acceleration of the dense band (paper future work).

Section IX: "we would like to accelerate the tasks on the critical path
using GPU hardware accelerators".  The simulator models per-node
accelerators that run region-(1) dense kernels at GPU DGEMM rates while
low-rank kernels stay on the CPU cores.

Measured at NT = 48, band = 5 (band-dominated critical path):

* without recursive kernels, one GPU per node collapses the dense-band
  bottleneck (the whole band fits one fast device);
* with recursive kernels the CPU cores already parallelize the band, so
  GPUs add little — recursion and acceleration are *alternative* cures
  for the same critical path, which is exactly how the paper frames them.
"""

from __future__ import annotations

from repro.analysis import format_table, paper_rank_model, write_csv
from repro.distribution import BandDistribution, ProcessGrid
from repro.runtime import MachineSpec, build_cholesky_graph, simulate

B, NT, NODES, BAND = 1200, 48, 8, 5


def test_ablation_gpu_band(benchmark, results_dir):
    model = paper_rank_model(B, accuracy=1e-8)
    dist = BandDistribution(ProcessGrid.squarest(NODES), band_size=BAND)

    rows = []
    times: dict[tuple, float] = {}
    for split in (None, 4):
        g = build_cholesky_graph(NT, BAND, B, model, recursive_split=split)
        for gpus in (0, 1, 2):
            m = MachineSpec(nodes=NODES, gpus_per_node=gpus)
            res = simulate(g, dist, m)
            times[(split, gpus)] = res.makespan
            gpu_secs = 0.0 if res.gpu_busy is None else float(res.gpu_busy.sum())
            rows.append(
                (str(split), gpus, round(res.makespan, 3), round(gpu_secs, 2))
            )

    headers = ["recursive_split", "gpus_per_node", "makespan_s", "gpu_busy_s"]
    print()
    print(format_table(
        headers, rows,
        title=f"ablation: GPU band acceleration (NT={NT}, band={BAND}, "
              f"{NODES} nodes)"))
    write_csv(results_dir / "ablation_gpu_band.csv", headers, rows)

    g_plain = build_cholesky_graph(NT, BAND, B, model)
    benchmark.pedantic(
        simulate,
        args=(g_plain, dist, MachineSpec(nodes=NODES, gpus_per_node=1)),
        rounds=1, iterations=1,
    )

    # ---- reproduction of the future-work hypothesis ----------------------
    # Without recursion, one GPU per node sharply accelerates the
    # band-dominated factorization...
    assert times[(None, 1)] < 0.7 * times[(None, 0)]
    # ...and a second accelerator keeps helping (weakly).
    assert times[(None, 2)] <= times[(None, 1)] * 1.001
    # With recursive kernels the band is already parallel: the two
    # mechanisms are substitutes, not additive.
    assert times[(4, 0)] < 0.6 * times[(None, 0)]
    assert times[(4, 1)] > 0.8 * times[(4, 0)]
    # GPUs never hurt.
    for split in (None, 4):
        assert times[(split, 1)] <= times[(split, 0)] * 1.001
