"""Ablation — 2D vs 3D rank regimes (the paper's recurring contrast).

Section II: weak admissibility "is well suited for off-diagonal blocks
exhibiting low ranks (e.g., typically 2D problems), while strong
admissibility can still maintain the lower complexity in the presence of
off-diagonal blocks with high ranks (e.g., typically exacerbated in 3D)".
Section VIII-G: at loose accuracy the tuner picks BAND_SIZE = 1,
"similar to 2D applications".

Measured: compress the *same* exponential kernel over the same number of
points in 2D and 3D and compare rank statistics, compression ratios, and
tuned band sizes.
"""

from __future__ import annotations

from repro import TruncationRule
from repro.analysis import format_table, rank_ratios, rank_stats, write_csv
from repro.core import tune_band_size
from repro.matrix import BandTLRMatrix, footprint_report
from repro.statistics import st_2d_exp_problem, st_3d_exp_problem

N, B, EPS = 6400, 400, 1e-6


def test_ablation_2d_vs_3d(benchmark, results_dir):
    problems = {
        "2D": st_2d_exp_problem(N, B, seed=7),
        "3D": st_3d_exp_problem(N, B, seed=7),
    }
    rows = []
    stats = {}
    for name, prob in problems.items():
        m = BandTLRMatrix.from_problem(prob, TruncationRule(eps=EPS), 1)
        s = rank_stats(m.rank_grid())
        rm, rd = rank_ratios(m.rank_grid(), B)
        band = tune_band_size(m.rank_grid(), B).band_size
        mem = footprint_report(m)
        compression = mem.dense_elements / mem.dynamic_elements
        stats[name] = (s, rm, band, compression)
        rows.append(
            (name, s.minrank, round(s.avgrank, 1), s.maxrank,
             round(rm, 3), band, round(compression, 2))
        )

    headers = ["dim", "minrank", "avgrank", "maxrank", "ratio_maxrank",
               "tuned_band", "compression_vs_dense"]
    print()
    print(format_table(
        headers, rows,
        title=f"ablation: 2D vs 3D exponential kernel (N={N}, b={B}, eps={EPS:g})"))
    write_csv(results_dir / "ablation_2d_vs_3d.csv", headers, rows)

    benchmark.pedantic(
        BandTLRMatrix.from_problem,
        args=(problems["2D"], TruncationRule(eps=EPS), 1),
        rounds=1, iterations=1,
    )

    s2, rm2, band2, comp2 = stats["2D"]
    s3, rm3, band3, comp3 = stats["3D"]
    # 3D exacerbates ranks (the paper's motivation for this whole line of
    # work): every statistic is worse in 3D.
    assert s3.avgrank > 2 * s2.avgrank
    assert s3.maxrank > 2 * s2.maxrank
    assert rm3 > rm2
    # 2D therefore needs a narrower dense band and compresses better.
    assert band2 < band3
    assert comp2 > comp3
