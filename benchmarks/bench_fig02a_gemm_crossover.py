"""Fig. 2(a) — TLR GEMM vs dense GEMM on a single core, sweeping the rank.

Paper: time-to-solution of both kernels and their ratio as the rank grows;
TLR GEMM becomes *more* expensive than dense GEMM past a crossover rank,
and TLR throughput is roughly 1/3 of dense GEMM in the mid-rank regime
(memory-bound at small k, recompression-dominated at large k).

Measured here with real kernels at b = 512 (the paper uses b ≈ 2700 on a
Haswell core); the reproduction targets are the crossover's existence, its
location at a moderate fraction of b, and the widening gap beyond it.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.analysis import format_series, write_csv
from repro.linalg import (
    DenseTile,
    LowRankTile,
    TruncationRule,
    gemm_dense,
    gemm_lr,
)

# CI's bench-smoke job shrinks the tile via REPRO_BENCH_GEMM_B; the swept
# ranks are fixed fractions of b (1/64 ... 1/2) so the crossover shape is
# probed at the same relative positions at any size.
B = int(os.environ.get("REPRO_BENCH_GEMM_B", "512"))
RANKS = [max(2, (B * num) // den) for num, den in
         [(1, 64), (1, 32), (1, 16), (1, 8), (3, 16), (1, 4), (3, 8), (1, 2)]]


def _random_lr(rng, b, k):
    return LowRankTile(rng.standard_normal((b, k)), rng.standard_normal((b, k)))


def _time(fn, *args, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn(*args)
        best = min(best, time.perf_counter() - t0)
    return best


def _dense_gemm_seconds(rng):
    a = DenseTile(rng.standard_normal((B, B)))
    b_ = DenseTile(rng.standard_normal((B, B)))
    c = DenseTile(rng.standard_normal((B, B)))
    return _time(lambda: gemm_dense(a, b_, c))


def _tlr_gemm_seconds(rng, k):
    rule = TruncationRule(eps=1e-8)
    a, b_, c = (_random_lr(rng, B, k) for _ in range(3))
    return _time(lambda: gemm_lr(a, b_, c, rule))


def test_fig02a_gemm_crossover(benchmark, results_dir):
    rng = np.random.default_rng(7)
    t_dense = _dense_gemm_seconds(rng)

    rows = []
    for k in RANKS:
        t_tlr = _tlr_gemm_seconds(rng, k)
        # Modelled flops -> Gflop/s annotations like the figure's.
        tlr_flops = 36 * B * k**2 + 157 * k**3
        rows.append(
            (
                k,
                round(t_tlr * 1e3, 3),
                round(t_dense * 1e3, 3),
                round(t_tlr / t_dense, 3),
                round(tlr_flops / t_tlr / 1e9, 2),
                round(2 * B**3 / t_dense / 1e9, 2),
            )
        )

    headers = ["rank", "tlr_ms", "dense_ms", "ratio", "tlr_gflops", "dense_gflops"]
    print()
    print(
        format_series(
            "rank",
            headers[1:],
            rows,
            title=f"Fig. 2a (b={B}, single core): TLR vs dense GEMM",
        )
    )
    write_csv(results_dir / "fig02a_gemm_crossover.csv", headers, rows)

    # Time one representative mid-rank (b/8) TLR GEMM for the benchmark table.
    rule = TruncationRule(eps=1e-8)
    a, b_, c = (_random_lr(rng, B, RANKS[3]) for _ in range(3))
    benchmark(lambda: gemm_lr(a, b_, c, rule))

    ratios = {k: r[3] for k, r in zip(RANKS, rows)}
    # Crossover exists: cheap at small rank, more expensive than dense at
    # large rank (paper's central observation motivating densification).
    assert ratios[RANKS[0]] < 0.5
    assert ratios[RANKS[-1]] > 1.0
    # The gap widens monotonically-ish past the crossover (b/2 vs b/4).
    assert ratios[RANKS[-1]] > ratios[RANKS[-3]]
