"""Fig. 6 (a-d) — BAND_SIZE auto-tuning: time, flops, per-sub-diagonal
costs, and the cost of the tuning pipeline itself.

Paper setting: N = 1.08M / 2.16M, b = 2400, eps = 1e-8, on 512 nodes —
ratio_maxrank there is ~0.1-0.4.  At laptop scale the same eps leaves
ratio_maxrank near 0.7 (see Fig. 2b bench), which is a *different regime*
(densify almost everything).  To reproduce the figure's regime we match
the dimensionless ratio instead of eps: N = 7200, b = 450, eps = 1e-4
gives ratio_maxrank ≈ 0.36 and an interior sweet spot — the documented
scaled substitution (DESIGN.md).

Reproduction targets:

* (a) time-to-solution vs BAND_SIZE has an interior sweet spot and the
  auto-tuned value sits near it;
* (b) same for total flops;
* (c) per-sub-diagonal dense-vs-TLR flops cross over at the tuned band,
  with the sub-diagonal maxrank annotations decaying overall;
* (d) tuning + band regeneration cost is negligible vs factorization.
"""

from __future__ import annotations

import time

from repro import TruncationRule, st_3d_exp_problem
from repro.analysis import format_series, format_table, write_csv
from repro.core import tlr_cholesky, tune_band_size
from repro.matrix import BandTLRMatrix
from repro.utils import Stopwatch

N, B = 7200, 450
EPS = 1e-4
BAND_SWEEP = [1, 2, 3, 4, 6, 8]


def test_fig06_bandsize_autotuning(benchmark, results_dir):
    prob = st_3d_exp_problem(N, B, seed=2021)
    rule = TruncationRule(eps=EPS)
    sw = Stopwatch()

    with sw.measure("generate+compress(band=1)"):
        m1 = BandTLRMatrix.from_problem(prob, rule, band_size=1)

    with sw.measure("band_size_autotuning"):
        decision = tune_band_size(m1.rank_grid(), B)
    tuned = decision.band_size

    with sw.measure("band_regeneration"):
        m_tuned = m1.with_band_size(tuned, prob)

    # ---- (a) + (b): sweep BAND_SIZE, real factorizations ---------------
    rows_ab = []
    times, flops = {}, {}
    for band in BAND_SWEEP:
        # with_band_size shares unchanged tiles with its source and the
        # factorization mutates tiles in place, so deep-copy each run.
        if band == 1:
            base = m1
        elif band == tuned:
            base = m_tuned
        else:
            base = m1.with_band_size(band, prob)
        m = base.copy()
        t0 = time.perf_counter()
        rep = tlr_cholesky(m)
        dt = time.perf_counter() - t0
        times[band], flops[band] = dt, rep.counter.total
        rows_ab.append((band, round(dt, 3), round(rep.counter.total / 1e9, 2)))
    headers_ab = ["band_size", "time_s", "gflops_total"]
    print()
    print(format_series(
        "band_size", headers_ab[1:], rows_ab,
        title=f"Fig. 6a/6b (N={N}, b={B}, eps={EPS:g}); tuned BAND_SIZE={tuned}, "
              f"fluctuation box={decision.band_size_range}"))
    write_csv(results_dir / "fig06ab_bandsize_sweep.csv", headers_ab, rows_ab)

    # ---- (c): per-sub-diagonal dense vs TLR flops -----------------------
    rows_c = [
        (c.band_id, c.maxrank, c.ntile,
         round(c.dense_flops / 1e9, 2), round(c.tlr_flops / 1e9, 2))
        for c in decision.costs
    ]
    headers_c = ["band_id", "maxrank", "ntiles", "dense_gflops", "tlr_gflops"]
    print(format_table(headers_c, rows_c, title="Fig. 6c: sub-diagonal costs"))
    write_csv(results_dir / "fig06c_subdiagonal_flops.csv", headers_c, rows_c)

    # ---- (d): pipeline cost split ---------------------------------------
    fact_time = times[tuned]
    rows_d = [
        ("compress(band=1)", round(sw.total("generate+compress(band=1)"), 4)),
        ("autotune", round(sw.total("band_size_autotuning"), 6)),
        ("regenerate band", round(sw.total("band_regeneration"), 4)),
        ("factorization", round(fact_time, 4)),
    ]
    print(format_table(["phase", "seconds"], rows_d, title="Fig. 6d: pipeline costs"))
    write_csv(results_dir / "fig06d_tuning_cost.csv", ["phase", "seconds"], rows_d)

    # Benchmark unit: the tuning decision itself (microseconds-cheap).
    benchmark(lambda: tune_band_size(m1.rank_grid(), B))

    # ---- reproduction assertions ----------------------------------------
    # Densification pays: the tuned band beats the pure-TLR layout in
    # both time and (rank-exact counted) flops; the paper's Table-I
    # counting reports ~1.5x flops, our rank-exact counter a smaller but
    # still real reduction.
    assert times[tuned] < 0.8 * times[1]
    assert flops[tuned] < 0.9 * flops[1]
    # "The predicted BAND_SIZE is close to the optimal": within 50% of the
    # sweep's best time.  (At this scale Morton ordering produces rank
    # *spikes* on isolated sub-diagonals — band_id 8 in Fig. 6c below — so
    # Algorithm 1's consecutive-prefix rule stops earlier than the global
    # optimum; the paper's smoother rank decay makes the two coincide.)
    best_time = min(times.values())
    assert times[tuned] <= 1.5 * best_time
    # (c): dense wins inside the tuned band, TLR wins outside it.
    for c in decision.costs:
        if c.band_id <= tuned:
            assert c.dense_flops <= c.tlr_flops
    tail = [c for c in decision.costs if c.band_id > tuned]
    assert sum(c.tlr_flops < c.dense_flops for c in tail) > len(tail) * 0.7
    # (d): tuning + regeneration negligible vs factorization (paper: "clearly
    # negligible").
    overhead = sw.total("band_size_autotuning") + sw.total("band_regeneration")
    assert overhead < 0.25 * fact_time
