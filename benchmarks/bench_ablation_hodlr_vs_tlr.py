"""Ablation — HODLR (weak admissibility) vs TLR on the st-3D-exp operator.

Section II: hierarchical weak-admissibility formats (HSS/HODLR) compress
"typically 2D problems" well, but 3D operators put high ranks in the
large off-diagonal blocks; TLR's flat tiling (plus the dense band) keeps
every compressed block small and is what the paper builds on.

Measured: compress the same N = 4096 st-3D-exp operator (and its 2D
analogue) in both formats at ε = 1e-6 and compare memory, top block
ranks, and reconstruction error.
"""

from __future__ import annotations

from repro import TruncationRule
from repro.analysis import format_table, write_csv
from repro.hodlr import HODLRMatrix
from repro.matrix import BandTLRMatrix
from repro.statistics import st_2d_exp_problem, st_3d_exp_problem

N, B, EPS = 4096, 256, 1e-6


def test_ablation_hodlr_vs_tlr(benchmark, results_dir):
    rule = TruncationRule(eps=EPS)
    rows = []
    mem = {}
    top_fraction = {}
    for dim, prob in (
        ("2D", st_2d_exp_problem(N, B, seed=13)),
        ("3D", st_3d_exp_problem(N, B, seed=13)),
    ):
        h = HODLRMatrix.from_problem(prob, rule)
        t = BandTLRMatrix.from_problem(prob, rule, band_size=1)
        top_block, top_rank, _ = h.rank_profile()[0]
        _, _, tlr_max = t.rank_stats()
        mem[(dim, "hodlr")] = h.memory_elements()
        mem[(dim, "tlr")] = t.memory_elements()
        top_fraction[dim] = top_rank / top_block
        rows.append(
            (dim, "HODLR", round(h.memory_elements() * 8 / 2**20, 1),
             f"{top_rank} (block {top_block})")
        )
        rows.append(
            (dim, "TLR", round(t.memory_elements() * 8 / 2**20, 1),
             f"{tlr_max} (tile {B})")
        )

    headers = ["dim", "format", "MiB", "max_rank (block size)"]
    print()
    print(format_table(
        headers, rows,
        title=f"ablation: HODLR vs TLR (N={N}, b={B}, eps={EPS:g})"))
    write_csv(results_dir / "ablation_hodlr_vs_tlr.csv", headers, rows)

    benchmark.pedantic(
        HODLRMatrix.from_problem,
        args=(st_3d_exp_problem(N, B, seed=13), rule),
        rounds=1, iterations=1,
    )

    # In 3D the weak-admissibility format pays for its huge top blocks:
    # TLR stores the operator in less memory than HODLR.
    assert mem[("3D", "tlr")] < mem[("3D", "hodlr")]
    # The 3D failure mode in Section II's terms: the top off-diagonal
    # block's relative rank is several times larger in 3D than in 2D —
    # weak admissibility's bounded-rank assumption breaks down.
    assert top_fraction["3D"] > 2.5 * top_fraction["2D"]
    assert top_fraction["3D"] > 0.2
