"""Observability overhead: disabled no-op path and enabled streaming.

Two claims this repo's telemetry design stands on, re-verified together
because the live plane added new instrumentation to the same hot paths:

* **disabled is free** — with no observation active and no live
  aggregator attached, every instrumented call site reduces to one
  ``None``/attr check, so a factorization with the library's default
  (off) state must cost the same as the uninstrumented loops ever did
  (first measured at 0.004% on b=250 when `repro.obs` landed);
* **enabled streaming stays under 1 %** — the ring-buffer emit path
  (one tuple append under an uncontended per-thread lock, plus a
  background collector folding off-thread) must not tax the
  factorization even when every task duration is streamed.

The < 1 % / < 0.5 % assertions arm only under
``REPRO_BENCH_OBS_FULL=1`` (shared-runner noise easily exceeds both
margins); the smoke run still prints the measured overheads and checks
the streaming path lost no events.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro import TruncationRule, st_3d_exp_problem
from repro.analysis import format_table, write_csv
from repro.matrix import BandTLRMatrix
from repro.obs import LiveAggregator
from repro.runtime import build_cholesky_graph, execute_graph

FULL = os.environ.get("REPRO_BENCH_OBS_FULL", "") == "1"
N = 4000 if FULL else int(os.environ.get("REPRO_BENCH_OBS_N", "2000"))
B = 250 if FULL else int(os.environ.get("REPRO_BENCH_OBS_B", "125"))
BAND = 2
REPEATS = 5 if FULL else 3

#: Acceptance bounds (armed under REPRO_BENCH_OBS_FULL=1): streaming
#: telemetry must cost < 1 % wall-clock; the disabled path is re-pinned
#: at < 0.5 % — generous against the 0.004 % first measured, tight
#: enough to catch an accidental allocation sneaking into the no-op.
MAX_STREAMING_OVERHEAD = 0.01
MAX_DISABLED_OVERHEAD = 0.005


def _fresh():
    problem = st_3d_exp_problem(N, B, seed=0)
    matrix = BandTLRMatrix.from_problem(
        problem, TruncationRule(eps=1e-8), band_size=BAND
    )
    grid = matrix.rank_grid()
    graph = build_cholesky_graph(
        matrix.ntiles, BAND, B, lambda i, j: int(max(grid[i, j], 1))
    )
    return graph, matrix


def _median_factorization_s(instrument=None) -> tuple[float, int]:
    """Median wall-clock over REPEATS fresh factorizations.

    ``instrument(report)`` runs inside the timed window — it is the
    per-task hot-path emission whose cost is under test.
    """
    times, tasks = [], 0
    for _ in range(REPEATS):
        graph, matrix = _fresh()
        t0 = time.perf_counter()
        report = execute_graph(graph, matrix)
        if instrument is not None:
            instrument(report)
        times.append(time.perf_counter() - t0)
        tasks += report.tasks_executed
    return float(np.median(times)), tasks


def test_obs_live_overhead(benchmark, results_dir):
    """Disabled-path and streaming-path overhead on one factorization."""
    # Warm caches (backend pools, numpy), then the timed representative
    # unit for the pytest-benchmark table.
    graph, matrix = _fresh()
    benchmark.pedantic(
        lambda: execute_graph(*_fresh()), rounds=1, iterations=1
    )

    # Baseline and disabled re-measure: identical code path, library
    # default (off) state.  Interleaving the two arms would be noisier;
    # back-to-back medians pin both the no-op claim and run noise.
    t_base, _ = _median_factorization_s()
    t_disabled, _ = _median_factorization_s()

    # Streaming arm: every task emits a latency + a counter into the
    # live plane from the executor thread (the service hot-path call
    # pattern) while the collector folds in the background.
    live = LiveAggregator(tick_s=0.05)
    live.start()

    def stream(report):
        for _t in range(report.tasks_executed):
            live.emit_latency("task_s", 1e-4)
            live.emit_counter("tasks")

    try:
        t_stream, n_streamed = _median_factorization_s(stream)
    finally:
        live.stop()
    snap = live.snapshot()
    assert snap["counters"]["tasks"] == n_streamed  # nothing lost
    assert snap["dropped_events"] == 0

    ov_disabled = t_disabled / t_base - 1.0
    ov_stream = t_stream / t_base - 1.0
    rows = [
        ("baseline (off)", round(t_base, 4), "--"),
        ("disabled re-measure", round(t_disabled, 4),
         f"{ov_disabled * 100:+.3f}%"),
        ("live streaming", round(t_stream, 4),
         f"{ov_stream * 100:+.3f}%"),
    ]
    print()
    print(format_table(
        ["arm", "median s", "overhead"], rows,
        title=f"obs overhead at n={N}, b={B}, band={BAND} "
              f"({REPEATS} repeats)",
    ))
    write_csv(
        results_dir / "ablation_obs_live.csv",
        ["arm", "median_s", "overhead"],
        rows,
    )

    if FULL:
        assert abs(ov_disabled) < MAX_DISABLED_OVERHEAD, (
            f"disabled-obs path regressed: {ov_disabled * 100:.3f}% "
            f"(bound {MAX_DISABLED_OVERHEAD * 100:.1f}%)"
        )
        assert ov_stream < MAX_STREAMING_OVERHEAD, (
            f"enabled streaming overhead {ov_stream * 100:.3f}% "
            f">= {MAX_STREAMING_OVERHEAD * 100:.1f}%"
        )
