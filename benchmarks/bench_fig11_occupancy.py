"""Fig. 11 — CPU busy/idle time per process and achieved throughput.

Paper: for N = 2.16M on 16 nodes, per-process busy/idle bars show some
load imbalance across processes (static 2DBCDD + irregular ranks) but
little imbalance within a process, with > 90% average CPU occupancy; the
run achieves 4.88 Tflop/s ≈ 1/3 of the 16-node Linpack (TLR Cholesky is
not compute-bound — most flops are TLR GEMMs running at ~1/3 dense speed,
Fig. 2a).

Replayed at NT = 96 on a 4-node x 16-core simulated machine, preserving
the paper's tiles-per-core parallelism regime (hundreds of tiles per
process).  Reproduction targets: high mean occupancy, visible but bounded
inter-process imbalance, and achieved throughput a ~1/3-like fraction of
the machine's dense peak.
"""

from __future__ import annotations

from repro.analysis import (
    format_table,
    occupancy_summary,
    paper_rank_model,
    write_csv,
)
from repro.core import tune_band_size
from repro.distribution import BandDistribution, ProcessGrid
from repro.linalg import KernelClass
from repro.runtime import MachineSpec, build_cholesky_graph, simulate

B, NT, NODES, CORES = 1200, 96, 4, 16


def _run():
    model = paper_rank_model(B, accuracy=1e-8)
    band = tune_band_size(model.to_rank_grid(NT), B).band_size
    g = build_cholesky_graph(NT, band, B, model, recursive_split=4)
    machine = MachineSpec(nodes=NODES, cores_per_node=CORES)
    dist = BandDistribution(ProcessGrid.squarest(NODES), band_size=band)
    return g, machine, simulate(g, dist, machine)


def test_fig11_occupancy(benchmark, results_dir):
    g, machine, res = benchmark.pedantic(_run, rounds=1, iterations=1)
    s = occupancy_summary(res)

    rows = [
        (p, round(float(res.busy[p]), 1), round(float(s.idle_per_process[p]), 1),
         round(float(res.occupancy[p]), 3))
        for p in range(NODES)
    ]
    headers = ["process", "busy_core_s", "idle_core_s", "occupancy"]
    peak = machine.total_cores * machine.rates.dense_gflops
    print()
    print(format_table(
        headers, rows,
        title=(f"Fig. 11 (NT={NT}, {NODES}x{CORES} cores): makespan="
               f"{res.makespan:.1f}s, {s.achieved_gflops:.0f} Gflop/s "
               f"= {s.achieved_gflops / peak:.2f} of dense peak")))
    write_csv(results_dir / "fig11_occupancy.csv", headers, rows)

    tlr_flops = sum(
        t.flops for t in g.tasks.values()
        if t.kernel in (KernelClass.GEMM_LR, KernelClass.GEMM_LR_DENSE)
    )
    print(f"TLR GEMM share of flops: {tlr_flops / g.total_flops():.2f}")

    # ---- reproduction assertions ----------------------------------------
    # Paper: >90% at ~800 tiles/core; our 24x-smaller tiles-per-core ratio
    # lands high-but-lower.
    assert s.mean_occupancy > 0.65, "high CPU occupancy (paper: >90%)"
    assert s.imbalance < 0.4, "inter-process imbalance visible but bounded"
    frac = s.achieved_gflops / peak
    assert 0.1 < frac < 0.5, "throughput well below dense peak (paper: ~1/3)"
    # The reason: most flops are TLR GEMMs (Fig. 10 + Fig. 2a chain).
    assert tlr_flops / g.total_flops() > 0.5
