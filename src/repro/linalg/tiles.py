"""Tile data structures: dense tiles and low-rank (U·Vᵀ) tiles.

HiCMA's TLR format stores each compressed tile as two tall-and-skinny
factors ``U`` (m×k) and ``V`` (n×k) with ``tile = U @ V.T`` — ``k`` is the
tile's *rank*.  The paper's dynamic-memory contribution hinges on the
distinction between

* the **static descriptor** (PaRSEC-HiCMA-Prev): every compressed tile owns
  ``2 * maxrank * b`` elements regardless of its actual rank, and
* the **dynamic designation** (PaRSEC-HiCMA-New): every tile owns exactly
  ``2 * k * b`` elements, reallocated when recompression grows the rank.

Both accounting schemes are exposed here (:meth:`LowRankTile.memory_elements`)
so the memory benchmarks (Fig. 8) can compare them on identical rank data.

Low-rank factors may be stored in float32 when a precision policy
(:mod:`repro.linalg.precision`) certifies the tile's ε-budget exceeds
single-precision roundoff; dense tiles — the band and the Cholesky
factors themselves — always stay float64.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

import numpy as np

from ..utils.exceptions import KernelError

__all__ = ["TileFormat", "DenseTile", "LowRankTile", "Tile"]


class TileFormat(Enum):
    """Storage layout of a tile."""

    DENSE = "dense"
    LOW_RANK = "low_rank"


@dataclass
class DenseTile:
    """A dense ``m x n`` tile.

    Attributes
    ----------
    data:
        The tile entries, C-contiguous float64.
    """

    data: np.ndarray

    def __post_init__(self) -> None:
        self.data = np.ascontiguousarray(self.data, dtype=np.float64)
        if self.data.ndim != 2:
            raise KernelError(f"dense tile must be 2-D, got shape {self.data.shape}")

    @property
    def format(self) -> TileFormat:
        return TileFormat.DENSE

    @property
    def shape(self) -> tuple[int, int]:
        return self.data.shape  # type: ignore[return-value]

    @property
    def rank(self) -> int:
        """Storage rank of a dense tile: min(m, n) by convention."""
        return min(self.shape)

    def to_dense(self) -> np.ndarray:
        """Return the tile as a plain ndarray (no copy)."""
        return self.data

    def memory_elements(self, maxrank: int | None = None) -> int:
        """Number of float64 elements stored (``m * n``)."""
        return self.data.size

    def memory_bytes(self) -> int:
        """Exact bytes stored (dense tiles are always float64)."""
        return self.data.nbytes

    def copy(self) -> "DenseTile":
        return DenseTile(self.data.copy())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"DenseTile(shape={self.shape})"


@dataclass
class LowRankTile:
    """A rank-``k`` tile stored as ``U @ V.T``.

    Attributes
    ----------
    u:
        Left factor of shape ``(m, k)``.
    v:
        Right factor of shape ``(n, k)`` — note the HiCMA convention
        ``tile = U @ V.T`` (V is *not* pre-transposed).
    """

    u: np.ndarray
    v: np.ndarray

    def __post_init__(self) -> None:
        # float32 storage is allowed (mixed-precision policies); any other
        # dtype — ints, float16 payloads, object arrays — is coerced to the
        # float64 default.  Mixed-precision factors are upcast to a common
        # dtype so ``u`` and ``v`` always agree.
        u, v = np.asarray(self.u), np.asarray(self.v)
        if u.dtype == np.float32 and v.dtype == np.float32:
            dtype = np.float32
        else:
            dtype = np.float64
        self.u = np.ascontiguousarray(u, dtype=dtype)
        self.v = np.ascontiguousarray(v, dtype=dtype)
        if self.u.ndim != 2 or self.v.ndim != 2:
            raise KernelError(
                f"low-rank factors must be 2-D, got U{self.u.shape} V{self.v.shape}"
            )
        if self.u.shape[1] != self.v.shape[1]:
            raise KernelError(
                f"rank mismatch: U has k={self.u.shape[1]}, V has k={self.v.shape[1]}"
            )

    @property
    def format(self) -> TileFormat:
        return TileFormat.LOW_RANK

    @property
    def shape(self) -> tuple[int, int]:
        return (self.u.shape[0], self.v.shape[0])

    @property
    def rank(self) -> int:
        """Current numerical storage rank ``k``."""
        return self.u.shape[1]

    @property
    def dtype(self) -> np.dtype:
        """Storage dtype of the factors (float64 or float32)."""
        return self.u.dtype

    def astype(self, dtype) -> "LowRankTile":
        """Return a copy of this tile with factors cast to ``dtype``."""
        dtype = np.dtype(dtype)
        if dtype == self.u.dtype:
            return self.copy()
        return LowRankTile(self.u.astype(dtype), self.v.astype(dtype))

    def to_dense(self) -> np.ndarray:
        """Expand to a dense ndarray ``U @ V.T`` (always float64)."""
        if self.rank == 0:
            return np.zeros(self.shape)
        out = self.u @ self.v.T
        return out.astype(np.float64) if out.dtype != np.float64 else out

    def memory_elements(self, maxrank: int | None = None) -> int:
        """Elements stored (dtype-agnostic count).

        With ``maxrank`` given, reports the *static descriptor* footprint
        ``(m + n) * maxrank`` of PaRSEC-HiCMA-Prev; otherwise the exact
        dynamic footprint ``(m + n) * k`` of PaRSEC-HiCMA-New.
        """
        m, n = self.shape
        k = self.rank if maxrank is None else maxrank
        return (m + n) * k

    def memory_bytes(self) -> int:
        """Exact bytes stored, honouring the storage dtype."""
        return self.u.nbytes + self.v.nbytes

    def copy(self) -> "LowRankTile":
        return LowRankTile(self.u.copy(), self.v.copy())

    @classmethod
    def zero(cls, m: int, n: int, dtype=np.float64) -> "LowRankTile":
        """An exactly-zero tile of rank 0."""
        dtype = np.dtype(dtype)
        return cls(np.zeros((m, 0), dtype=dtype), np.zeros((n, 0), dtype=dtype))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"LowRankTile(shape={self.shape}, rank={self.rank})"


#: Union type of the two tile flavours.
Tile = DenseTile | LowRankTile
