"""Batched same-shape kernel execution (H2OPUS-TLR style marshaling).

H2OPUS-TLR (PAPERS.md, 2108.11932) gets its throughput by *marshaling*
same-shape low-rank operations into batched kernel calls instead of
dispatching them one tile at a time.  BENCH_compression.json showed the
same effect at CI sizes from the other side: below the b ≈ 200 crossover
per-tile Python/BLAS dispatch overhead — not asymptotics — dominates the
runtime.  This module is the marshaling layer for the Table-I kernels:

* :class:`BatchItem` wraps one ready task (an opaque ``ref`` plus its
  operand tiles) in executor-agnostic form;
* :class:`BatchPlanner` partitions a drained ready set into shape-keyed
  buckets — same kernel class, same operand shapes/ranks/dtypes — and
  singleton groups for everything unbatchable;
* :func:`run_batch` executes one group: singletons run the ordinary
  :mod:`~repro.linalg.hcore` kernel, larger groups run a *stacked*
  formulation — one multi-RHS triangular solve for a panel's TRSMs, one
  3-D ``np.matmul`` per product stage for GEMM/SYRK variants.

Bitwise identity is the hard invariant.  Every stacked formulation
performs the *same* BLAS/LAPACK calls on the same per-tile data (``trtrs``
solves columns independently, batched ``matmul`` runs one ``gemm`` per
slice), so batched results are bit-for-bit equal to unbatched execution —
the property suite in ``tests/test_batched.py`` enforces this across
kernel mixes, dtypes, and worker counts.

What batches and what does not:

===============  =====================================================
kernel           batch key (beyond the kernel class)
===============  =====================================================
POTRF            never batched (one per panel, on the critical path)
TRSM (dense C)   the shared ``L`` tile — one multi-RHS ``trtrs``
TRSM (lr C)      the shared ``L`` tile + V dtype (ragged ranks fine)
SYRK (dense A)   A shape
SYRK (lr A)      A shape + rank + dtype
GEMM (all-dense) A/B shapes
GEMM (lr,lr→d)   A/B shapes + ranks + dtypes
GEMM (lr,d→d)    shapes + lr side + rank + dtype
GEMM (→ lr C)    never batched — recompression is inherently per-tile
                 (each destination rounds at its own stacked rank), and
                 it is already served by the pooled direct-LAPACK path
===============  =====================================================

Flop accounting: a batched group reports the summed Table-I flops of its
``k`` members with ``count=k`` (:meth:`FlopCounter.add
<repro.linalg.flops.FlopCounter.add>`), so per-kernel-class totals and
invocation counts are identical across batch modes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.linalg as sla

from ..utils.exceptions import KernelError
from . import hcore
from .compression import RecompressionResult, TruncationRule
from .flops import (
    FlopCounter,
    KernelClass,
    flops_gemm_dense,
    flops_gemm_dense_lrd,
    flops_gemm_dense_lrlr,
    flops_syrk_dense,
    flops_syrk_lr,
    flops_trsm_dense,
    flops_trsm_lr,
)
from .hcore import _count
from .tiles import DenseTile, LowRankTile, Tile

__all__ = [
    "BatchItem",
    "BatchResult",
    "BatchPlanner",
    "run_batch",
    "stack_rhs",
    "split_solution",
]


@dataclass
class BatchItem:
    """One ready task in executor-agnostic form.

    ``ref`` is opaque to this module (the executors pass task ids);
    ``op`` is ``"potrf" | "trsm" | "syrk" | "gemm"``; ``tiles`` are the
    operand tiles in kernel order with the destination last —
    ``(c,)``, ``(l, c)``, ``(a, c)``, ``(a, b, c)`` respectively.
    ``index`` carries the destination tile coordinates for diagnostics.
    """

    ref: object
    op: str
    tiles: tuple
    index: tuple | None = None


@dataclass
class BatchResult:
    """Outcome for one item: the produced tile (``None`` for in-place
    POTRF/SYRK, matching the executors' compute/commit contract) and the
    recompression result for low-rank GEMM destinations."""

    ref: object
    out: Tile | None
    recomp: RecompressionResult | None


class BatchPlanner:
    """Partitions a drained ready set into same-shape kernel buckets.

    Parameters
    ----------
    min_batch:
        Buckets smaller than this dissolve into singletons (a stacked
        call for one tile only adds copies).
    max_batch:
        Buckets larger than this split into chunks, bounding both the
        stack workspace and — in the parallel executor — how much work a
        single worker claims at once.
    max_copy_bytes:
        Per-item ceiling on the bytes the stacked formulation has to
        *copy into the stack*.  CPU batching trades an input memcpy for
        saved per-call dispatch; for low-rank factors (tens of KB) the
        dispatch saving wins, but stacking full dense tiles copies more
        than the calls cost.  Items whose stack-copy footprint exceeds
        this run solo — which is why dense-operand classes stop batching
        as the tile size grows while the rank-bearing classes keep going.
    """

    def __init__(
        self,
        min_batch: int = 2,
        max_batch: int = 32,
        max_copy_bytes: int = 65536,
    ) -> None:
        if min_batch < 2 or max_batch < min_batch:
            raise KernelError(
                f"need 2 <= min_batch <= max_batch, got "
                f"{min_batch}/{max_batch}"
            )
        self.min_batch = min_batch
        self.max_batch = max_batch
        self.max_copy_bytes = max_copy_bytes

    def key(self, item: BatchItem) -> tuple | None:
        """Bucket key for an item, or ``None`` when it must run solo.

        Keys encode everything the stacked formulations require to be
        uniform: kernel class, operand shapes, low-rank ranks, storage
        dtypes — and for TRSM the identity of the shared ``L`` tile
        (tasks of one panel all solve against the same factor).
        """
        op, tiles = item.op, item.tiles
        cap = self.max_copy_bytes
        if op == "potrf":
            return None
        if op == "trsm":
            l_tile, c = tiles
            if isinstance(c, DenseTile):
                if c.data.nbytes > cap:  # stacked multi-RHS copies C
                    return None
                return ("trsm_d", id(l_tile))
            if c.v.nbytes > cap:  # stacked solve copies the V factors
                return None
            return ("trsm_lr", id(l_tile), c.dtype.char)
        if op == "syrk":
            a, _c = tiles
            if isinstance(a, DenseTile):
                if a.data.nbytes > cap:
                    return None
                return ("syrk_d", a.shape)
            if a.u.nbytes + a.v.nbytes > cap:
                return None
            return ("syrk_lr", a.shape, a.rank, a.dtype.char)
        if op == "gemm":
            a, b, c = tiles
            if isinstance(c, LowRankTile):
                return None  # per-tile recompression
            a_lr, b_lr = isinstance(a, LowRankTile), isinstance(b, LowRankTile)
            if not a_lr and not b_lr:
                if a.data.nbytes + b.data.nbytes > cap:
                    return None
                return ("gemm_ddd", a.shape, b.shape)
            if a_lr and b_lr:
                if (
                    a.u.nbytes + a.v.nbytes + b.u.nbytes + b.v.nbytes
                ) > cap:
                    return None
                return (
                    "gemm_dll", a.shape, b.shape, a.rank, b.rank,
                    a.dtype.char, b.dtype.char,
                )
            lr, dn = (a, b) if a_lr else (b, a)
            if dn.data.nbytes + lr.u.nbytes + lr.v.nbytes > cap:
                return None
            return (
                "gemm_dld", a.shape, b.shape, a_lr, lr.rank, lr.dtype.char
            )
        raise KernelError(f"unknown batch op {op!r}")

    def partition(self, items: list[BatchItem]) -> list[list[BatchItem]]:
        """Group items into executable batches, preserving first-seen
        order between groups and input order within each group."""
        groups: list[list[BatchItem]] = []
        buckets: dict[tuple, list[BatchItem]] = {}
        order: list[tuple | None] = []  # None marks a singleton placeholder
        singles: list[BatchItem] = []
        for item in items:
            k = self.key(item)
            if k is None:
                order.append(None)
                singles.append(item)
            else:
                if k not in buckets:
                    buckets[k] = []
                    order.append(k)
                buckets[k].append(item)
        singles_it = iter(singles)
        for k in order:
            if k is None:
                groups.append([next(singles_it)])
                continue
            bucket = buckets[k]
            if len(bucket) < self.min_batch:
                groups.extend([it] for it in bucket)
                continue
            for off in range(0, len(bucket), self.max_batch):
                chunk = bucket[off : off + self.max_batch]
                if len(chunk) >= self.min_batch:
                    groups.append(chunk)
                else:
                    groups.extend([it] for it in chunk)
        return groups


# ----------------------------------------------------------------------
# Stacked kernel bodies
# ----------------------------------------------------------------------
def _batch_trsm_dense(items, counter) -> None:
    """One multi-RHS ``trtrs`` for a panel's dense TRSMs.

    ``L X_i^T = C_i^T`` for every ``i`` becomes one solve against the
    horizontally concatenated right-hand sides — ``trtrs`` treats
    columns independently, so each tile's solution is bitwise the one a
    separate call produces.
    """
    l_data = items[0].tiles[0].data
    cs = [item.tiles[1] for item in items]
    rhs = np.hstack([c.data.T for c in cs])
    x = sla.solve_triangular(l_data, rhs, lower=True, trans="N", check_finite=False)
    off = 0
    total = 0.0
    for c in cs:
        bm = c.shape[0]
        c.data[...] = x[:, off : off + bm].T
        off += bm
        total += flops_trsm_dense(bm)
    _count(counter, KernelClass.TRSM_DENSE, total, count=len(cs))


def _batch_trsm_lr(items, counter) -> list[LowRankTile]:
    """One multi-RHS ``trtrs`` over the concatenated V factors.

    Ragged ranks concatenate fine (each tile contributes ``rank``
    columns); the solve promotes fp32 stacks against the fp64 band tile
    and the split slices are cast back per tile, exactly as the solo
    kernel does.
    """
    l_data = items[0].tiles[0].data
    cs = [item.tiles[1] for item in items]
    vs = np.hstack([c.v for c in cs])
    outs: list[LowRankTile] = []
    total = 0.0
    if vs.shape[1]:
        x = sla.solve_triangular(
            l_data, vs, lower=True, trans="N", check_finite=False
        )
    else:
        x = vs
    off = 0
    for c in cs:
        k = c.rank
        if k:
            v = x[:, off : off + k]
            if v.dtype != c.dtype:
                v = v.astype(c.dtype)
            outs.append(LowRankTile(c.u, np.ascontiguousarray(v)))
            off += k
        else:
            outs.append(c)
        total += flops_trsm_lr(c.shape[0], k)
    _count(counter, KernelClass.TRSM_LR, total, count=len(cs))
    return outs


def _batch_syrk_dense(items, counter) -> None:
    """Stacked ``C_i -= A_i A_i^T`` via one 3-D matmul."""
    a_stack = np.stack([item.tiles[0].data for item in items])
    upd = np.matmul(a_stack, a_stack.transpose(0, 2, 1))
    total = 0.0
    for i, item in enumerate(items):
        c = item.tiles[1]
        c.data -= upd[i]
        total += flops_syrk_dense(c.shape[0])
    _count(counter, KernelClass.SYRK_DENSE, total, count=len(items))


def _batch_syrk_lr(items, counter) -> None:
    """Stacked ``C_i -= U_i (V_i^T V_i) U_i^T`` (equal ranks by key)."""
    rank = items[0].tiles[0].rank
    total = sum(
        flops_syrk_lr(item.tiles[1].shape[0], rank) for item in items
    )
    if rank > 0:
        us = np.stack([item.tiles[0].u for item in items])
        vs = np.stack([item.tiles[0].v for item in items])
        w = np.matmul(vs.transpose(0, 2, 1), vs)
        x = np.matmul(us, w)
        upd = np.matmul(x, us.transpose(0, 2, 1))
        for i, item in enumerate(items):
            item.tiles[1].data -= upd[i]
    _count(counter, KernelClass.SYRK_LR, total, count=len(items))


def _batch_gemm_dense(items, counter) -> None:
    """Stacked all-dense ``C_i -= A_i B_i^T``."""
    a_stack = np.stack([item.tiles[0].data for item in items])
    b_stack = np.stack([item.tiles[1].data for item in items])
    upd = np.matmul(a_stack, b_stack.transpose(0, 2, 1))
    total = 0.0
    for i, item in enumerate(items):
        c = item.tiles[2]
        c.data -= upd[i]
        total += flops_gemm_dense(c.shape[0])
    _count(counter, KernelClass.GEMM_DENSE, total, count=len(items))


def _batch_gemm_dense_lrlr(items, counter) -> None:
    """Stacked ``C_i -= U_{A,i} (V_{A,i}^T V_{B,i}) U_{B,i}^T``."""
    a0, b0, _ = items[0].tiles
    total = sum(
        flops_gemm_dense_lrlr(item.tiles[2].shape[0], a0.rank, b0.rank)
        for item in items
    )
    if a0.rank > 0 and b0.rank > 0:
        av = np.stack([item.tiles[0].v for item in items])
        bv = np.stack([item.tiles[1].v for item in items])
        au = np.stack([item.tiles[0].u for item in items])
        bu = np.stack([item.tiles[1].u for item in items])
        w = np.matmul(av.transpose(0, 2, 1), bv)
        x = np.matmul(au, w)
        upd = np.matmul(x, bu.transpose(0, 2, 1))
        for i, item in enumerate(items):
            item.tiles[2].data -= upd[i]
    _count(counter, KernelClass.GEMM_DENSE_LRLR, total, count=len(items))


def _batch_gemm_dense_lrd(items, a_is_lr, counter) -> None:
    """Stacked (2)-GEMM: dense C, exactly one low-rank operand."""
    lr0 = items[0].tiles[0] if a_is_lr else items[0].tiles[1]
    rank = lr0.rank
    total = sum(
        flops_gemm_dense_lrd(item.tiles[2].shape[0], rank) for item in items
    )
    if rank > 0:
        if a_is_lr:
            # C_i -= U_{A,i} (B_i V_{A,i})^T
            bs = np.stack([item.tiles[1].data for item in items])
            av = np.stack([item.tiles[0].v for item in items])
            au = np.stack([item.tiles[0].u for item in items])
            w = np.matmul(bs, av)
            upd = np.matmul(au, w.transpose(0, 2, 1))
        else:
            # C_i -= (A_i V_{B,i}) U_{B,i}^T
            as_ = np.stack([item.tiles[0].data for item in items])
            bv = np.stack([item.tiles[1].v for item in items])
            bu = np.stack([item.tiles[1].u for item in items])
            w = np.matmul(as_, bv)
            upd = np.matmul(w, bu.transpose(0, 2, 1))
        for i, item in enumerate(items):
            item.tiles[2].data -= upd[i]
    _count(counter, KernelClass.GEMM_DENSE_LRD, total, count=len(items))


def _run_single(
    item: BatchItem,
    rule: TruncationRule,
    counter: FlopCounter | None,
    backend,
) -> BatchResult:
    """Run one item through the ordinary hcore kernels."""
    op, tiles = item.op, item.tiles
    if op == "potrf":
        hcore.potrf_dense(tiles[0], counter=counter, tile_index=item.index)
        return BatchResult(item.ref, None, None)
    if op == "trsm":
        out = hcore.trsm_auto(tiles[0], tiles[1], counter=counter)
        return BatchResult(item.ref, out, None)
    if op == "syrk":
        hcore.syrk_auto(tiles[0], tiles[1], counter=counter)
        return BatchResult(item.ref, None, None)
    out, _, recomp = hcore.gemm_auto(
        tiles[0], tiles[1], tiles[2], rule, counter=counter, backend=backend
    )
    return BatchResult(item.ref, out, recomp)


def run_batch(
    group: list[BatchItem],
    rule: TruncationRule,
    *,
    counter: FlopCounter | None = None,
    backend=None,
) -> list[BatchResult]:
    """Execute one planner group; results align with the input order.

    Singleton groups take the ordinary per-tile kernel path; larger
    groups (homogeneous by construction — see :meth:`BatchPlanner.key`)
    run the stacked formulation for their kernel class.
    """
    if len(group) == 1:
        return [_run_single(group[0], rule, counter, backend)]
    op = group[0].op
    if op == "trsm":
        if isinstance(group[0].tiles[1], DenseTile):
            _batch_trsm_dense(group, counter)
            return [
                BatchResult(item.ref, item.tiles[1], None) for item in group
            ]
        outs = _batch_trsm_lr(group, counter)
        return [
            BatchResult(item.ref, out, None)
            for item, out in zip(group, outs)
        ]
    if op == "syrk":
        if isinstance(group[0].tiles[0], DenseTile):
            _batch_syrk_dense(group, counter)
        else:
            _batch_syrk_lr(group, counter)
        return [BatchResult(item.ref, None, None) for item in group]
    if op == "gemm":
        a, b, _c = group[0].tiles
        a_lr, b_lr = isinstance(a, LowRankTile), isinstance(b, LowRankTile)
        if not a_lr and not b_lr:
            _batch_gemm_dense(group, counter)
        elif a_lr and b_lr:
            _batch_gemm_dense_lrlr(group, counter)
        else:
            _batch_gemm_dense_lrd(group, a_lr, counter)
        return [
            BatchResult(item.ref, item.tiles[2], None) for item in group
        ]
    raise KernelError(f"op {op!r} cannot run as a batch")


# ----------------------------------------------------------------------
# Multi-RHS column stacking (the solve-side marshaling primitive)
# ----------------------------------------------------------------------
def stack_rhs(rhs_list) -> tuple[np.ndarray, list[int]]:
    """Stack right-hand sides column-wise into one multi-RHS array.

    The solve-side counterpart of the TRSM marshaling above: ``k``
    vectors (or multi-column blocks) against the *same* factor become
    one ``(n, Σwidths)`` float64 array, so every ``solve_triangular``
    call in the substitution carries all pending columns at once —
    ``trtrs`` solves columns independently, so each caller's slice of
    the stacked solution matches a standalone solve.

    Returns the stacked array and the per-input column widths for
    :func:`split_solution`.
    """
    cols = []
    widths = []
    for rhs in rhs_list:
        arr = np.asarray(rhs, dtype=np.float64)
        if arr.ndim == 1:
            arr = arr[:, None]
        elif arr.ndim != 2:
            raise KernelError(
                f"rhs must be a vector or a 2-D column block, got "
                f"ndim={arr.ndim}"
            )
        cols.append(arr)
        widths.append(arr.shape[1])
    if not cols:
        raise KernelError("stack_rhs needs at least one right-hand side")
    return (cols[0] if len(cols) == 1 else np.hstack(cols)), widths


def split_solution(
    stacked: np.ndarray, widths: list[int], rhs_list
) -> list[np.ndarray]:
    """Undo :func:`stack_rhs`: slice the stacked solution per caller.

    Inputs that arrived as 1-D vectors get 1-D solutions back; 2-D
    column blocks keep their shape.
    """
    out = []
    offset = 0
    for rhs, width in zip(rhs_list, widths):
        block = stacked[:, offset:offset + width]
        out.append(block[:, 0] if np.asarray(rhs).ndim == 1 else block)
        offset += width
    return out
