"""HCORE computational kernels: the ten ``(region)-kernel`` variants.

These are the serial numerical kernels of Section VI that the runtime
schedules.  Conventions (matching HiCMA / LAPACK lower Cholesky):

* the factorization is ``A = L @ L.T`` with ``L`` lower triangular;
* TRSM applies ``C <- C @ L^{-T}`` to a panel tile;
* SYRK applies ``C <- C - A @ A.T`` to a diagonal tile;
* GEMM applies ``C <- C - A @ B.T`` to an off-diagonal tile;
* low-rank tiles are ``U @ V.T`` (see :mod:`repro.linalg.tiles`).

Dense-output kernels mutate their destination tile in place and return it;
low-rank-output kernels return a *new* :class:`LowRankTile` together with a
:class:`~repro.linalg.compression.RecompressionResult` because the paper's
dynamic memory designation reallocates the tile exactly at the
recompression boundary (Section VII-B).

Every kernel can record its Table I modelled cost into a
:class:`~repro.linalg.flops.FlopCounter`.

Mixed precision: low-rank operands may be stored in float32 (see
:mod:`repro.linalg.precision`).  Kernels preserve each *destination*
tile's storage dtype — an fp32 low-rank tile stays fp32 through TRSM and
recompression (run by the single-precision LAPACK drivers), while dense
destinations are always float64, so accumulations against fp32 operands
promote naturally: fp32 storage, fp64 accumulate.
"""

from __future__ import annotations

import numpy as np
import scipy.linalg as sla

from ..obs import kernel_observed
from ..utils.exceptions import KernelError, NotPositiveDefiniteError
from .backends import get_backend
from .compression import RecompressionResult, TruncationRule
from .flops import (
    FlopCounter,
    KernelClass,
    flops_gemm_dense,
    flops_gemm_dense_lrd,
    flops_gemm_dense_lrlr,
    flops_gemm_lr_dense_general,
    flops_gemm_lr_general,
    flops_potrf_dense,
    flops_syrk_dense,
    flops_syrk_lr,
    flops_trsm_dense,
    flops_trsm_lr,
)
from .tiles import DenseTile, LowRankTile, Tile

__all__ = [
    "potrf_dense",
    "trsm_dense",
    "trsm_lr",
    "syrk_dense",
    "syrk_lr",
    "gemm_dense",
    "gemm_dense_lrd",
    "gemm_dense_lrlr",
    "gemm_lr_dense",
    "gemm_lr",
    "gemm_auto",
    "syrk_auto",
    "trsm_auto",
]


def _count(
    counter: FlopCounter | None,
    kind: KernelClass,
    flops: float,
    count: int = 1,
) -> None:
    if counter is not None:
        counter.add(kind, flops, count)
    # Feeds the per-region invocation/flop counters of repro.obs; a no-op
    # (one None check) unless an observation is active.
    kernel_observed(kind.value, flops, count)


# ----------------------------------------------------------------------
# Region (1): dense band kernels
# ----------------------------------------------------------------------
def potrf_dense(
    c: DenseTile,
    *,
    counter: FlopCounter | None = None,
    tile_index: tuple[int, int] | None = None,
) -> DenseTile:
    """(1)-POTRF — dense Cholesky of a diagonal tile, in place.

    The strict upper triangle is zeroed so ``c.data`` is exactly ``L``.

    Raises
    ------
    NotPositiveDefiniteError
        If the tile is not numerically positive definite.
    """
    try:
        l = sla.cholesky(c.data, lower=True, check_finite=False)
    except sla.LinAlgError as exc:
        raise NotPositiveDefiniteError(
            f"POTRF failed on tile {tile_index}: {exc}", tile_index
        ) from exc
    # LAPACK's potrf already leaves the other triangle zeroed in scipy's
    # copy, so a plain assignment suffices — np.tril(l) here would build a
    # full b x b temporary on the critical path for nothing.
    c.data[...] = l
    _count(counter, KernelClass.POTRF_DENSE, flops_potrf_dense(c.shape[0]))
    return c


def trsm_dense(
    l_tile: DenseTile, c: DenseTile, *, counter: FlopCounter | None = None
) -> DenseTile:
    """(1)-TRSM — dense ``C <- C @ L^{-T}``, in place."""
    if l_tile.shape[0] != l_tile.shape[1] or l_tile.shape[0] != c.shape[1]:
        raise KernelError(
            f"TRSM shape mismatch: L {l_tile.shape} vs C {c.shape}"
        )
    # Solve L @ X.T = C.T  =>  X = C @ L^{-T}
    xt = sla.solve_triangular(
        l_tile.data, c.data.T, lower=True, trans="N", check_finite=False
    )
    c.data[...] = xt.T
    _count(counter, KernelClass.TRSM_DENSE, flops_trsm_dense(c.shape[0]))
    return c


def trsm_lr(
    l_tile: DenseTile, c: LowRankTile, *, counter: FlopCounter | None = None
) -> LowRankTile:
    """(4)-TRSM — low-rank ``C <- C @ L^{-T}``; only V is touched.

    ``(U V^T) L^{-T} = U (L^{-1} V)^T``, so the triangular solve operates
    on the thin ``V`` factor — the reason this kernel costs ``b²k`` instead
    of ``b³``.
    """
    if l_tile.shape[0] != l_tile.shape[1] or l_tile.shape[0] != c.shape[1]:
        raise KernelError(
            f"TRSM shape mismatch: L {l_tile.shape} vs C {c.shape}"
        )
    if c.rank > 0:
        v = sla.solve_triangular(
            l_tile.data, c.v, lower=True, trans="N", check_finite=False
        )
        # The solve promotes fp32 V against the fp64 band tile; cast back
        # so the tile keeps its policy-assigned storage dtype.
        if v.dtype != c.dtype:
            v = v.astype(c.dtype)
        c = LowRankTile(c.u, v)
    _count(counter, KernelClass.TRSM_LR, flops_trsm_lr(c.shape[0], c.rank))
    return c


def syrk_dense(
    a: DenseTile, c: DenseTile, *, counter: FlopCounter | None = None
) -> DenseTile:
    """(1)-SYRK — dense ``C <- C - A @ A.T``, in place."""
    if a.shape[0] != c.shape[0] or c.shape[0] != c.shape[1]:
        raise KernelError(f"SYRK shape mismatch: A {a.shape} vs C {c.shape}")
    c.data -= a.data @ a.data.T
    _count(counter, KernelClass.SYRK_DENSE, flops_syrk_dense(c.shape[0]))
    return c


def syrk_lr(
    a: LowRankTile, c: DenseTile, *, counter: FlopCounter | None = None
) -> DenseTile:
    """(3)-SYRK — ``C <- C - U (V^T V) U^T`` with low-rank ``A = U V^T``."""
    if a.shape[0] != c.shape[0] or c.shape[0] != c.shape[1]:
        raise KernelError(f"SYRK shape mismatch: A {a.shape} vs C {c.shape}")
    if a.rank > 0:
        w = a.v.T @ a.v
        x = a.u @ w
        c.data -= x @ a.u.T
    _count(counter, KernelClass.SYRK_LR, flops_syrk_lr(c.shape[0], a.rank))
    return c


def gemm_dense(
    a: DenseTile, b: DenseTile, c: DenseTile, *, counter: FlopCounter | None = None
) -> DenseTile:
    """(1)-GEMM — dense ``C <- C - A @ B.T``, in place."""
    c.data -= a.data @ b.data.T
    _count(counter, KernelClass.GEMM_DENSE, flops_gemm_dense(c.shape[0]))
    return c


# ----------------------------------------------------------------------
# Mixed-format GEMMs writing into a dense C (regions 2 and 3)
# ----------------------------------------------------------------------
def gemm_dense_lrd(
    a: Tile, b: Tile, c: DenseTile, *, counter: FlopCounter | None = None
) -> DenseTile:
    """(2)-GEMM — dense C, exactly one low-rank operand.

    ``C <- C - U_A (B V_A)^T`` when A is low-rank (the Cholesky case, since
    ``A dense ⇒ B dense``), or symmetrically ``C <- C - (A V_B) U_B^T``.
    """
    if isinstance(a, LowRankTile) and isinstance(b, DenseTile):
        if a.rank > 0:
            c.data -= a.u @ (b.data @ a.v).T
        k = a.rank
    elif isinstance(a, DenseTile) and isinstance(b, LowRankTile):
        if b.rank > 0:
            c.data -= (a.data @ b.v) @ b.u.T
        k = b.rank
    else:
        raise KernelError(
            "(2)-GEMM requires exactly one low-rank operand, got "
            f"A={type(a).__name__}, B={type(b).__name__}"
        )
    _count(counter, KernelClass.GEMM_DENSE_LRD, flops_gemm_dense_lrd(c.shape[0], k))
    return c


def gemm_dense_lrlr(
    a: LowRankTile, b: LowRankTile, c: DenseTile, *, counter: FlopCounter | None = None
) -> DenseTile:
    """(3)-GEMM (new) — dense C, both operands low-rank.

    ``C <- C - U_A (V_A^T V_B) U_B^T`` evaluated thin-first.
    """
    if a.rank > 0 and b.rank > 0:
        w = a.v.T @ b.v
        c.data -= (a.u @ w) @ b.u.T
    _count(
        counter,
        KernelClass.GEMM_DENSE_LRLR,
        flops_gemm_dense_lrlr(c.shape[0], a.rank, b.rank),
    )
    return c


# ----------------------------------------------------------------------
# GEMMs writing into a low-rank C (regions 5 and 6) — two-stage with
# recompression at the memory-designation boundary
# ----------------------------------------------------------------------
def gemm_lr_dense(
    a: LowRankTile,
    b: DenseTile,
    c: LowRankTile,
    rule: TruncationRule,
    *,
    counter: FlopCounter | None = None,
    backend=None,
) -> tuple[LowRankTile, RecompressionResult]:
    """(5)-GEMM (new) — low-rank C, low-rank A, dense B.

    ``A B^T = U_A (B V_A)^T`` is a rank-``k_A`` update; it is stacked onto
    C (stage 1, inside the backend's pooled workspace) and recompressed
    (stage 2).  The returned :class:`RecompressionResult` carries the
    rank-growth flag that drives the dynamic memory pool.
    """
    k = a.rank
    u_upd = a.u
    v_upd = b.data @ a.v if k > 0 else np.zeros((b.shape[0], 0))
    res = get_backend(backend).recompress_update(c, u_upd, v_upd, rule)
    _count(
        counter,
        KernelClass.GEMM_LR_DENSE,
        flops_gemm_lr_dense_general(c.shape[0], c.rank, max(k, 1)),
    )
    return res.tile, res


def gemm_lr(
    a: LowRankTile,
    b: LowRankTile,
    c: LowRankTile,
    rule: TruncationRule,
    *,
    counter: FlopCounter | None = None,
    backend=None,
) -> tuple[LowRankTile, RecompressionResult]:
    """(6)-GEMM — all three tiles low-rank (HCORE_DGEMM).

    ``A B^T = (U_A (V_A^T V_B)) U_B^T`` is a rank-``k_B`` update; stacked
    onto C and recompressed through the backend's pooled workspace.
    """
    if a.rank > 0 and b.rank > 0:
        w = a.v.T @ b.v
        u_upd = a.u @ w
        v_upd = b.u
    else:
        u_upd = np.zeros((c.shape[0], 0))
        v_upd = np.zeros((c.shape[1], 0))
    res = get_backend(backend).recompress_update(c, u_upd, v_upd, rule)
    _count(
        counter,
        KernelClass.GEMM_LR,
        flops_gemm_lr_general(
            c.shape[0], c.rank, max(a.rank, 1), max(b.rank, 1)
        ),
    )
    return res.tile, res


# ----------------------------------------------------------------------
# Format-dispatching wrappers used by the tile algorithms
# ----------------------------------------------------------------------
def trsm_auto(
    l_tile: DenseTile,
    c: Tile,
    *,
    counter: FlopCounter | None = None,
) -> Tile:
    """Dispatch TRSM on the format of the panel tile ``c``."""
    if isinstance(c, DenseTile):
        return trsm_dense(l_tile, c, counter=counter)
    return trsm_lr(l_tile, c, counter=counter)


def syrk_auto(
    a: Tile,
    c: DenseTile,
    *,
    counter: FlopCounter | None = None,
) -> DenseTile:
    """Dispatch SYRK on the format of the panel tile ``a``."""
    if isinstance(a, DenseTile):
        return syrk_dense(a, c, counter=counter)
    return syrk_lr(a, c, counter=counter)


def gemm_auto(
    a: Tile,
    b: Tile,
    c: Tile,
    rule: TruncationRule,
    *,
    counter: FlopCounter | None = None,
    backend=None,
) -> tuple[Tile, KernelClass, RecompressionResult | None]:
    """Dispatch ``C <- C - A B^T`` on the formats of all three tiles.

    Returns the (possibly new) destination tile, the kernel class that ran,
    and the recompression result for low-rank destinations (else ``None``).
    ``backend`` selects the compression backend used for the recompression
    of low-rank destinations (dense destinations never recompress).
    """
    if isinstance(c, DenseTile):
        if isinstance(a, DenseTile) and isinstance(b, DenseTile):
            return gemm_dense(a, b, c, counter=counter), KernelClass.GEMM_DENSE, None
        if isinstance(a, LowRankTile) and isinstance(b, LowRankTile):
            return (
                gemm_dense_lrlr(a, b, c, counter=counter),
                KernelClass.GEMM_DENSE_LRLR,
                None,
            )
        return (
            gemm_dense_lrd(a, b, c, counter=counter),
            KernelClass.GEMM_DENSE_LRD,
            None,
        )
    # Low-rank destination
    if isinstance(a, LowRankTile) and isinstance(b, DenseTile):
        tile, res = gemm_lr_dense(a, b, c, rule, counter=counter, backend=backend)
        return tile, KernelClass.GEMM_LR_DENSE, res
    if isinstance(a, DenseTile) and isinstance(b, LowRankTile):
        # Mirror case (upper-triangular variants); reuse (5)-GEMM by symmetry:
        # A B^T = (A V_B) U_B^T  — a rank-k_B update.
        k = b.rank
        u_upd = a.data @ b.v if k > 0 else np.zeros((a.shape[0], 0))
        v_upd = b.u
        res = get_backend(backend).recompress_update(c, u_upd, v_upd, rule)
        _count(
            counter,
            KernelClass.GEMM_LR_DENSE,
            flops_gemm_lr_dense_general(c.shape[0], c.rank, max(k, 1)),
        )
        return res.tile, KernelClass.GEMM_LR_DENSE, res
    if isinstance(a, LowRankTile) and isinstance(b, LowRankTile):
        tile, res = gemm_lr(a, b, c, rule, counter=counter, backend=backend)
        return tile, KernelClass.GEMM_LR, res
    raise KernelError(
        "unsupported GEMM operand combination: "
        f"A={type(a).__name__}, B={type(b).__name__}, C={type(c).__name__} "
        "(dense A and B with low-rank C cannot arise in a banded Cholesky)"
    )
