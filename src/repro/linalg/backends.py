"""Pluggable compression backends: exact SVD and adaptive randomized SVD.

Every (re)compression in the library routes through a
:class:`CompressionBackend`, so the numerical engine behind
:func:`~repro.linalg.compression.compress_block` /
:func:`~repro.linalg.compression.recompress` can be swapped without
touching the tile algorithms:

* :class:`SVDBackend` (``"svd"``) — deterministic truncated ``gesdd``,
  the paper's baseline and the library's historical behaviour;
* :class:`RandomizedSVDBackend` (``"rsvd"``) — *adaptive randomized
  approximation* (ARA) in the H2OPUS-TLR style: a blocked Gaussian range
  finder grows the sample space until the ε tolerance of the
  :class:`~repro.linalg.compression.TruncationRule` is certified, then a
  small SVD of the projected tile produces the truncated factors.  Tiles
  whose rank approaches the tile size fall back to the exact SVD (the
  randomized scheme has no advantage there);
* :class:`AutoBackend` (``"auto"``) — per-tile dispatch between the two:
  BENCH_compression.json places the svd/rsvd crossover at b ≈ 200
  (below it the randomized path *loses*, 0.66–0.86x, because per-tile
  dispatch overhead dominates), so ``auto`` routes tiles with
  ``min(m, n)`` below the crossover to the exact SVD and larger tiles to
  ARA.  This is the library default.

The ε certificate is two-stage.  The Frobenius residual
``||A - QQᵀA||_F² = ||A||_F² - ||B||_F²`` is tracked exactly and accepts
immediately when it reaches ε (Frobenius bounds spectral from above).
Because Matérn tails are flat, that bound alone over-samples badly for the
``"spectral"`` rule, so once the Frobenius residual drops below
``sqrt(min(m,n) - k) * ε`` — the point where a spectral residual of ε
first becomes *possible* — the spectral norm of the residual is estimated
with a few power-iterated Gaussian probes and compared to ε directly.
The estimate is probabilistic (like all of ARA); the certified factors
carry an error of order ε rather than a hard ε guarantee.

Recompression (QR-QR-SVD rounding) is rank-deterministic and shared by
all backends; what the backend adds there is a reusable workspace: the
``(m, r)`` / ``(n, r)`` stacked factors of every low-rank GEMM are served
from a :class:`~repro.runtime.memory_pool.MemoryPool` instead of fresh
``hstack`` allocations — the Section VII-B memory designation applied to
the kernel transients, not just the tile storage.  The rounding itself
calls LAPACK directly (``geqrf``/``orgqr``/``gesdd``) rather than the
``scipy.linalg`` wrappers: at TLR stack sizes (b ≈ 100, r ≈ 2k) wrapper
overhead is a measurable fraction of the call, and the direct path is
dtype-generic — float32 stacks run the single-precision drivers, which
is where the adaptive-precision compute path gets its speedup.

Determinism: a :class:`RandomizedSVDBackend` seeded per tile (see
:func:`tile_seed`) produces bit-identical factors for a given input, so
parallel matrix assembly is reproducible across worker counts.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

import numpy as np
import scipy.linalg as sla
from scipy.linalg import lapack as _lapack

from .. import obs
from ..utils.exceptions import CompressionError, ConfigurationError
from ..utils.validation import check_matrix
from .compression import (
    RecompressionResult,
    TruncationRule,
    truncation_rank,
)
from .tiles import LowRankTile

__all__ = [
    "CompressionBackend",
    "SVDBackend",
    "RandomizedSVDBackend",
    "AutoBackend",
    "RsvdConfig",
    "get_backend",
    "default_backend",
    "set_default_backend",
    "tile_seed",
]

#: Direct LAPACK drivers keyed by dtype char: (geqrf, orgqr, gesdd).
_LAPACK_BY_DTYPE = {
    "d": (_lapack.dgeqrf, _lapack.dorgqr, _lapack.dgesdd),
    "f": (_lapack.sgeqrf, _lapack.sorgqr, _lapack.sgesdd),
}

#: Optimal gesdd workspace sizes keyed by (dtype char, m, n).  gesdd's
#: default (minimal) LWORK selects a different internal blocking than the
#: optimal size scipy's wrapper queries — measurably slower and *bitwise
#: different* around n≈35 — so the direct path caches and passes the
#: optimal value.  GIL-atomic dict ops; a racing duplicate query is benign.
_GESDD_LWORK_CACHE: dict[tuple[str, int, int], int] = {}

#: Strictly-lower-triangle masks (and dtype-matched zeros) so the R
#: extraction can skip ``np.tri`` mask construction on every call.
#: ``np.where(mask, zero, a)`` is exactly ``np.triu``'s implementation.
_TRIU_MASK_CACHE: dict[tuple[int, int], np.ndarray] = {}
_ZERO_BY_CHAR = {"d": np.zeros(1, np.float64), "f": np.zeros(1, np.float32)}


def _gesdd_lwork(char: str, m: int, n: int) -> int:
    key = (char, m, n)
    lwork = _GESDD_LWORK_CACHE.get(key)
    if lwork is None:
        from scipy.linalg.lapack import _compute_lwork, get_lapack_funcs

        probe = np.empty((1, 1), dtype=np.dtype(char))
        (lwork_fn,) = get_lapack_funcs(("gesdd_lwork",), (probe,))
        lwork = _compute_lwork(
            lwork_fn, m, n, compute_uv=True, full_matrices=False
        )
        _GESDD_LWORK_CACHE[key] = lwork
    return lwork


def _triu_of(a: np.ndarray) -> np.ndarray:
    """``np.triu(a)`` with the boolean mask cached by shape."""
    key = a.shape
    mask = _TRIU_MASK_CACHE.get(key)
    if mask is None:
        mask = np.tri(key[0], key[1], -1, dtype=bool)
        _TRIU_MASK_CACHE[key] = mask
    return np.where(mask, _ZERO_BY_CHAR[a.dtype.char], a)


def tile_seed(base: int, i: int, j: int) -> np.random.SeedSequence:
    """Deterministic per-tile seed for randomized compression.

    Derived from the backend's base seed and the tile coordinates only —
    never from execution order — so a parallel matrix assembly produces
    bit-identical tiles for any worker count.
    """
    return np.random.SeedSequence(entropy=base, spawn_key=(i, j))


# ----------------------------------------------------------------------
# Shared numerical cores
# ----------------------------------------------------------------------
def _svd_compress(a: np.ndarray, rule: TruncationRule) -> LowRankTile:
    """Exact truncated SVD of a dense block (the ``gesdd`` fast path)."""
    try:
        u, s, vt = sla.svd(
            a, full_matrices=False, lapack_driver="gesdd", check_finite=False
        )
    except sla.LinAlgError as exc:  # pragma: no cover - gesdd rarely fails
        raise CompressionError(f"SVD failed during compression: {exc}") from exc
    k = truncation_rank(s, rule)
    if k == 0:
        return LowRankTile.zero(*a.shape)
    root = np.sqrt(s[:k])
    return LowRankTile(u[:, :k] * root, vt[:k].T * root)


def _econ_qr(
    a: np.ndarray, geqrf, orgqr, overwrite: bool
) -> tuple[np.ndarray, np.ndarray]:
    """Economic QR ``a = Q R`` via direct LAPACK calls.

    Handles the wide case (stacked rank exceeding the tile side): with
    ``a`` of shape ``(m, r)`` and ``k = min(m, r)``, returns ``Q`` of
    shape ``(m, k)`` and ``R`` of shape ``(k, r)``.
    """
    m, r = a.shape
    k = min(m, r)
    qr_, tau, _, info = geqrf(a, overwrite_a=overwrite)
    if info != 0:  # pragma: no cover - geqrf only fails on bad arguments
        raise CompressionError(f"geqrf failed during recompression (info={info})")
    rmat = _triu_of(qr_[:k, :])
    # R is extracted and ``qr_`` is ours (the caller's buffer under
    # ``overwrite``, geqrf's fresh copy otherwise), so orgqr may expand Q
    # over the factored columns in place.
    q, _, info = orgqr(qr_[:, :k], tau, overwrite_a=True)
    if info != 0:  # pragma: no cover
        raise CompressionError(f"orgqr failed during recompression (info={info})")
    return q, rmat


def _qr_svd_recompress(
    u_stack: np.ndarray,
    v_stack: np.ndarray,
    rule: TruncationRule,
    previous_rank: int | None,
    *,
    overwrite: bool = False,
) -> RecompressionResult:
    """QR-QR-SVD rounding of ``u_stack @ v_stack.T`` (all backends).

    Dtype-generic: float64 stacks run the ``d``-prefixed LAPACK drivers
    (bitwise identical to the historical ``scipy.linalg`` wrapper path),
    float32 stacks the ``s``-prefixed ones, and the rounded tile keeps
    the stack's storage dtype.  With ``overwrite`` the QR factorizations
    are allowed to destroy the stacked factors — safe when they live in a
    pooled workspace buffer that is released right after.
    """
    r = u_stack.shape[1]
    m, n = u_stack.shape[0], v_stack.shape[0]
    dtype = u_stack.dtype
    if r == 0:
        tile = LowRankTile.zero(m, n, dtype=dtype)
        return RecompressionResult(tile, 0, 0, grew=False)
    try:
        geqrf, orgqr, gesdd = _LAPACK_BY_DTYPE[dtype.char]
    except KeyError:  # pragma: no cover - stacks are always f32/f64
        raise CompressionError(
            f"unsupported recompression dtype {dtype}"
        ) from None
    qu, ru = _econ_qr(u_stack, geqrf, orgqr, overwrite)
    qv, rv = _econ_qr(v_stack, geqrf, orgqr, overwrite)
    core = ru @ rv.T
    # Optimal LWORK (cached): the minimal default is slower *and* selects
    # a different blocking — scipy's wrapper passes the optimal size, and
    # bitwise parity with the reference rounding depends on matching it.
    lwork = _gesdd_lwork(dtype.char, core.shape[0], core.shape[1])
    uc, s, vct, info = gesdd(
        core, compute_uv=True, full_matrices=False, lwork=lwork, overwrite_a=True
    )
    if info != 0:  # pragma: no cover - gesdd rarely fails
        raise CompressionError(f"SVD failed during recompression (info={info})")
    k = truncation_rank(s, rule)
    if k == 0:
        tile = LowRankTile.zero(m, n, dtype=dtype)
    else:
        root = np.sqrt(s[:k])
        tile = LowRankTile((qu @ uc[:, :k]) * root, (qv @ vct[:k].T) * root)
    prev = r if previous_rank is None else previous_rank
    return RecompressionResult(tile, rank_before=r, rank_after=k, grew=k > prev)


def _qr_svd_recompress_reference(
    u_stack: np.ndarray,
    v_stack: np.ndarray,
    rule: TruncationRule,
    previous_rank: int | None,
    *,
    overwrite: bool = False,
) -> RecompressionResult:
    """The pre-batching ``scipy.linalg`` wrapper rounding, kept for A/B.

    Numerically this reduces to the same LAPACK drivers as
    :func:`_qr_svd_recompress` (bitwise-identical float64 results — a
    test asserts it); the direct-call version replaced it because the
    wrapper overhead (validation, workspace queries, copies) dominates
    at small tile sizes.  The ablation bench times this path as its
    baseline arm, and :attr:`CompressionBackend.reference_recompress`
    routes a backend through it.
    """
    r = u_stack.shape[1]
    m, n = u_stack.shape[0], v_stack.shape[0]
    if r == 0:
        tile = LowRankTile.zero(m, n)
        return RecompressionResult(tile, 0, 0, grew=False)
    qu, ru = sla.qr(
        u_stack, mode="economic", check_finite=False, overwrite_a=overwrite
    )
    qv, rv = sla.qr(
        v_stack, mode="economic", check_finite=False, overwrite_a=overwrite
    )
    core = ru @ rv.T
    try:
        uc, s, vct = sla.svd(
            core, full_matrices=False, lapack_driver="gesdd", check_finite=False
        )
    except sla.LinAlgError as exc:  # pragma: no cover
        raise CompressionError(f"SVD failed during recompression: {exc}") from exc
    k = truncation_rank(s, rule)
    if k == 0:
        tile = LowRankTile.zero(m, n)
    else:
        root = np.sqrt(s[:k])
        tile = LowRankTile((qu @ uc[:, :k]) * root, (qv @ vct[:k].T) * root)
    prev = r if previous_rank is None else previous_rank
    return RecompressionResult(tile, rank_before=r, rank_after=k, grew=k > prev)


class _StackWorkspace:
    """Pool-backed buffers for the recompression stacks.

    The pool import is deferred to first use: ``repro.runtime`` imports
    :mod:`repro.linalg` at package load, so a module-level import here
    would be circular.
    """

    def __init__(self) -> None:
        from ..runtime.memory_pool import MemoryPool

        self.pool = MemoryPool()
        self._lock = threading.Lock()

    def allocate(self, shape: tuple[int, ...], dtype=np.float64) -> np.ndarray:
        with self._lock:
            return self.pool.allocate(shape, dtype=dtype)

    def release(self, buf: np.ndarray) -> None:
        with self._lock:
            self.pool.release(buf)


# ----------------------------------------------------------------------
# Backends
# ----------------------------------------------------------------------
class CompressionBackend:
    """Interface every compression engine implements.

    Subclasses provide :meth:`compress`; recompression is the shared
    QR-QR-SVD rounding with a pooled stack workspace.
    """

    #: Registry name (``"svd"``, ``"rsvd"``).
    name: str = "base"
    #: Base entropy for per-tile seeding (ignored by deterministic backends).
    seed: int = 0
    #: Route recompressions through the scipy-wrapper reference rounding
    #: (:func:`_qr_svd_recompress_reference`) instead of the direct
    #: LAPACK calls — same float64 numerics, pre-batching dispatch cost.
    #: For A/B benchmarks and cross-validation tests only.
    reference_recompress: bool = False

    def __init__(self) -> None:
        self._workspace: _StackWorkspace | None = None

    # -- compression ---------------------------------------------------
    def compress(
        self, a: np.ndarray, rule: TruncationRule, *, seed=None
    ) -> LowRankTile:
        """Compress a dense block to a :class:`LowRankTile` under ``rule``.

        ``seed`` (an int or :class:`numpy.random.SeedSequence`) pins the
        randomness of stochastic backends; deterministic backends ignore it.
        """
        raise NotImplementedError

    # -- recompression -------------------------------------------------
    def recompress(
        self,
        u_stack: np.ndarray,
        v_stack: np.ndarray,
        rule: TruncationRule,
        *,
        previous_rank: int | None = None,
    ) -> RecompressionResult:
        """Round ``u_stack @ v_stack.T`` to ``rule`` (caller-owned stacks)."""
        u_stack = check_matrix("u_stack", u_stack)
        v_stack = check_matrix("v_stack", v_stack)
        if v_stack.shape[1] != u_stack.shape[1]:
            raise CompressionError(
                f"stacked factor rank mismatch: U has {u_stack.shape[1]}, "
                f"V has {v_stack.shape[1]}"
            )
        rounding = (
            _qr_svd_recompress_reference
            if self.reference_recompress
            else _qr_svd_recompress
        )
        with obs.span("recompress", "recompress", backend=self.name):
            result = rounding(u_stack, v_stack, rule, previous_rank)
        obs.histogram_observe(
            "tile_rank", result.rank_after, stage="recompress_post"
        )
        return result

    def recompress_update(
        self,
        c: LowRankTile,
        u_upd: np.ndarray,
        v_upd: np.ndarray,
        rule: TruncationRule,
    ) -> RecompressionResult:
        """Round ``C - u_upd @ v_upd.T`` without allocating fresh stacks.

        Stage 1 of the low-rank GEMM: the destination factors and the
        (negated) update factors are packed into pooled workspace buffers;
        stage 2 rounds them in place and releases the buffers.  This is
        the hot path of the TLR GEMM — the workspace turns its two large
        transient allocations per call into pool reuses.

        The rounding runs in the *destination tile's* storage dtype: an
        fp32 tile is updated and re-rounded entirely in single precision
        (the update factors are cast on pack), an fp64 tile entirely in
        double.  The certified ε of an fp32 tile sits above fp32 roundoff
        by policy (:mod:`repro.linalg.precision`), so the lower-precision
        rounding stays within the tile's error budget.
        """
        kc, ku = c.rank, u_upd.shape[1]
        r = kc + ku
        m, n = c.shape
        dtype = c.dtype
        if r == 0:
            return RecompressionResult(
                LowRankTile.zero(m, n, dtype=dtype), 0, 0, grew=False
            )
        if self._workspace is None:
            self._workspace = _StackWorkspace()
        ws = self._workspace
        # Allocated transposed and viewed through ``.T`` so the stacks are
        # F-contiguous: the in-place geqrf/orgqr calls then factor the
        # workspace directly instead of f2py copying a C-order stack.
        us_buf = ws.allocate((r, m), dtype=dtype)
        vs_buf = ws.allocate((r, n), dtype=dtype)
        us = us_buf.T
        vs = vs_buf.T
        try:
            us[:, :kc] = c.u
            us[:, kc:] = u_upd
            vs[:, :kc] = c.v
            np.multiply(v_upd, -1.0, out=vs[:, kc:])
            rounding = (
                _qr_svd_recompress_reference
                if self.reference_recompress
                else _qr_svd_recompress
            )
            with obs.span("recompress", "recompress", backend=self.name):
                result = rounding(us, vs, rule, c.rank, overwrite=True)
        finally:
            ws.release(us_buf)
            ws.release(vs_buf)
        if obs.enabled():
            obs.histogram_observe("tile_rank", kc, stage="recompress_pre")
            obs.histogram_observe(
                "tile_rank", result.rank_after, stage="recompress_post"
            )
        return result

    @property
    def workspace_pool_stats(self):
        """Stats of the stack workspace pool (``None`` before first use)."""
        return None if self._workspace is None else self._workspace.pool.stats


class SVDBackend(CompressionBackend):
    """Deterministic exact truncated SVD (``gesdd``) — the baseline."""

    name = "svd"

    def compress(
        self, a: np.ndarray, rule: TruncationRule, *, seed=None
    ) -> LowRankTile:
        a = check_matrix("a", a)
        with obs.span("compress", "compress", backend=self.name):
            tile = _svd_compress(a, rule)
        obs.histogram_observe("tile_rank", tile.rank, stage="compress")
        return tile


@dataclass(frozen=True)
class RsvdConfig:
    """Tuning knobs of the adaptive randomized range finder.

    Attributes
    ----------
    block_size:
        Columns sampled per adaptive round; the first round's size.
    block_growth:
        Geometric growth of the round size (fewer passes for high-rank
        tiles at the cost of mild over-sampling).
    max_block:
        Cap on the per-round sample size.
    fallback_fraction:
        When the sampled rank reaches this fraction of ``min(m, n)`` the
        tile is near full rank and the exact SVD takes over.
    min_exact_dim:
        Tiles with ``min(m, n)`` at or below this skip the randomized
        path entirely (LAPACK wins on small tiles).
    probes:
        Gaussian probe vectors for the spectral residual estimate.
    probe_iters:
        Power iterations applied to the probes (2 keeps the estimate
        tight on the flat Matérn tails).
    """

    block_size: int = 32
    block_growth: float = 1.5
    max_block: int = 64
    fallback_fraction: float = 0.5
    min_exact_dim: int = 64
    probes: int = 3
    probe_iters: int = 2

    def __post_init__(self) -> None:
        if self.block_size < 1 or self.max_block < self.block_size:
            raise ConfigurationError(
                f"need 1 <= block_size <= max_block, got "
                f"{self.block_size}/{self.max_block}"
            )
        if self.block_growth < 1.0:
            raise ConfigurationError(
                f"block_growth must be >= 1, got {self.block_growth}"
            )
        if not (0.0 < self.fallback_fraction <= 1.0):
            raise ConfigurationError(
                f"fallback_fraction must be in (0, 1], got "
                f"{self.fallback_fraction}"
            )


class RandomizedSVDBackend(CompressionBackend):
    """Adaptive randomized SVD (H2OPUS-style ARA) with exact fallback.

    The blocked Gaussian range finder samples ``Y = A @ Ω`` one block at a
    time, orthogonalizes against the basis built so far, and appends; the
    projected tile ``B = Qᵀ A`` is maintained incrementally so both the
    Frobenius certificate and the final small SVD are cheap.  Rank grows
    until the rule's ε is certified (module docstring), the rule's
    ``maxrank`` is reached, or the tile proves near-full-rank and the
    exact path takes over.
    """

    name = "rsvd"

    def __init__(self, seed: int = 2021, config: RsvdConfig | None = None) -> None:
        super().__init__()
        self.seed = seed
        self.config = config or RsvdConfig()

    def compress(
        self, a: np.ndarray, rule: TruncationRule, *, seed=None
    ) -> LowRankTile:
        a = check_matrix("a", a)
        with obs.span("compress", "compress", backend=self.name):
            tile = self._compress_ara(a, rule, seed)
        obs.histogram_observe("tile_rank", tile.rank, stage="compress")
        return tile

    def _compress_ara(
        self, a: np.ndarray, rule: TruncationRule, seed
    ) -> LowRankTile:
        """The adaptive range-finder body (see class docstring)."""
        cfg = self.config
        m, n = a.shape
        mn = min(m, n)
        if mn <= cfg.min_exact_dim:
            return _svd_compress(a, rule)
        max_rank = max(int(cfg.fallback_fraction * mn), 1)
        rank_cap = mn if rule.maxrank is None else min(rule.maxrank, mn)
        rng = np.random.default_rng(self.seed if seed is None else seed)

        fro2 = float(np.einsum("ij,ij->", a, a))
        if fro2 == 0.0:
            return LowRankTile.zero(m, n)
        # Threshold in the rule's own norm; the relative variant scales by
        # the running σ₁ estimate from the projected tile.
        tol_abs = rule.eps

        kcap = min(max_rank + cfg.max_block, mn)
        q_basis = np.empty((m, kcap))
        b_proj = np.empty((kcap, n))
        captured2 = 0.0
        k = 0
        p = cfg.block_size
        while True:
            p_eff = min(p, kcap - k)
            omega = rng.standard_normal((n, p_eff))
            y = a @ omega
            if k:
                qk, bk = q_basis[:, :k], b_proj[:k]
                y -= qk @ (bk @ omega)  # (I - QQᵀ)AΩ via the projected tile
                y -= qk @ (qk.T @ y)  # re-orthogonalize against roundoff
            qb, _ = sla.qr(y, mode="economic", check_finite=False, overwrite_a=True)
            bb = qb.T @ a
            q_basis[:, k : k + p_eff] = qb
            b_proj[k : k + p_eff] = bb
            captured2 += float(np.einsum("ij,ij->", bb, bb))
            k += p_eff

            tol = tol_abs
            if rule.relative:
                # σ₁(B) ↑ σ₁(A); cheap on the small projected tile.
                tol = tol_abs * float(np.linalg.norm(b_proj[:k], 2))
            # ||A - QB||_F² = ||A||_F² - ||B||_F² in exact arithmetic, but
            # the subtraction cancels catastrophically once the tail falls
            # below ~sqrt(eps_mach)·||A||_F, so it is only a cheap *gate*:
            # acceptance always goes through a cancellation-free check
            # (implicit-residual probes for the spectral rule, an explicit
            # residual for the Frobenius rule).  The gate opens at the
            # rule's own threshold or at the cancellation floor, whichever
            # is larger — below the floor the subtracted value is noise.
            resid_f = float(np.sqrt(max(fro2 - captured2, 0.0)))
            floor = 4.0e-8 * np.sqrt(fro2)
            if rule.norm == "spectral":
                # sqrt(mn-k)·tol is where a spectral residual of tol first
                # becomes possible for this Frobenius tail.
                if resid_f <= max(np.sqrt(mn - k) * tol, floor):
                    est = self._spectral_estimate(
                        a, q_basis[:, :k], b_proj[:k], rng
                    )
                    if est <= tol:
                        break
            elif resid_f <= max(tol, floor):
                resid = a - q_basis[:, :k] @ b_proj[:k]
                if np.sqrt(np.einsum("ij,ij->", resid, resid)) <= tol:
                    break
            if k >= rank_cap:
                break  # rule.maxrank saturated: accuracy cap is void anyway
            if k >= max_rank:
                return _svd_compress(a, rule)  # near full rank
            p = min(int(p * cfg.block_growth), cfg.max_block)

        ub, s, vt = sla.svd(
            b_proj[:k],
            full_matrices=False,
            lapack_driver="gesdd",
            check_finite=False,
        )
        kk = truncation_rank(s, rule)
        if kk == 0:
            return LowRankTile.zero(m, n)
        root = np.sqrt(s[:kk])
        return LowRankTile(
            (q_basis[:, :k] @ ub[:, :kk]) * root, vt[:kk].T * root
        )

    def _spectral_estimate(
        self,
        a: np.ndarray,
        q_basis: np.ndarray,
        b_proj: np.ndarray,
        rng: np.random.Generator,
    ) -> float:
        """Power-probe estimate of ``||A - QB||_2``.

        The residual is applied implicitly as ``R x = A x - Q (B x)`` —
        mat-vec cancellation is benign (absolute error ~eps_mach·||A||,
        far below the ~tol·||A|| signal), unlike the scalar Frobenius
        subtraction.  A handful of Gaussian probes driven through a couple
        of power iterations converge onto the residual's top singular
        value (flat residual spectra — the hard case for the estimate's
        accuracy — are exactly the case where every estimate is ≈ σ₁
        anyway).
        """
        cfg = self.config
        x = rng.standard_normal((a.shape[1], cfg.probes))
        x = a @ x - q_basis @ (b_proj @ x)
        est = 0.0
        for _ in range(cfg.probe_iters):
            z = a.T @ x - b_proj.T @ (q_basis.T @ x)
            x = a @ z - q_basis @ (b_proj @ z)
            nz = np.linalg.norm(z, axis=0)
            nx = np.linalg.norm(x, axis=0)
            with np.errstate(invalid="ignore", divide="ignore"):
                ratios = np.where(nz > 0.0, nx / np.where(nz > 0.0, nz, 1.0), 0.0)
            est = float(np.max(ratios))
        return est


class AutoBackend(CompressionBackend):
    """Per-tile svd/rsvd dispatch around the measured crossover.

    BENCH_compression.json (PR 5) measured the randomized path *losing*
    to the exact SVD below b ≈ 200 (speedup 0.66–0.86x) and winning ≥2x
    above it at ε = 1e-4: below the crossover the blocked range finder's
    extra passes and Python dispatch cost more than the ``gesdd`` they
    save.  ``auto`` applies that measurement per tile: blocks whose
    ``min(m, n)`` is under :attr:`crossover` take the exact SVD, larger
    blocks the adaptive randomized path.  Very tight tolerances
    (ε ≤ :attr:`exact_eps`) also pin the exact path — ranks approach the
    tile size there and ARA would fall back anyway, after paying for the
    sampling.

    Recompression is the shared QR-QR-SVD rounding (rank-deterministic,
    backend-independent), so ``auto`` only changes initial compression.
    """

    name = "auto"

    def __init__(
        self,
        crossover: int = 200,
        seed: int = 2021,
        config: RsvdConfig | None = None,
        exact_eps: float = 1e-10,
    ) -> None:
        super().__init__()
        if crossover < 1:
            raise ConfigurationError(f"crossover must be >= 1, got {crossover}")
        self.crossover = crossover
        self.exact_eps = exact_eps
        self.seed = seed
        self._svd = SVDBackend()
        self._rsvd = RandomizedSVDBackend(seed=seed, config=config)

    def select(self, shape: tuple[int, int], rule: TruncationRule) -> str:
        """Name of the backend a block of ``shape`` would be routed to."""
        if min(shape) >= self.crossover and rule.eps > self.exact_eps:
            return self._rsvd.name
        return self._svd.name

    def compress(
        self, a: np.ndarray, rule: TruncationRule, *, seed=None
    ) -> LowRankTile:
        a = check_matrix("a", a)
        if self.select(a.shape, rule) == self._rsvd.name:
            return self._rsvd.compress(a, rule, seed=seed)
        return self._svd.compress(a, rule, seed=seed)


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
_BACKENDS: dict[str, type[CompressionBackend]] = {
    SVDBackend.name: SVDBackend,
    RandomizedSVDBackend.name: RandomizedSVDBackend,
    AutoBackend.name: AutoBackend,
}
_instances: dict[str, CompressionBackend] = {}
_default: list[str] = ["svd"]


def get_backend(
    spec: str | CompressionBackend | None = None,
) -> CompressionBackend:
    """Resolve a backend spec: an instance, a registry name, or ``None``.

    ``None`` resolves to the process default (``"svd"`` unless changed by
    :func:`set_default_backend`).  Named lookups return a shared instance.
    """
    if spec is None:
        spec = _default[0]
    if isinstance(spec, CompressionBackend):
        return spec
    try:
        cls = _BACKENDS[spec]
    except KeyError:
        raise ConfigurationError(
            f"unknown compression backend {spec!r}; "
            f"available: {sorted(_BACKENDS)}"
        ) from None
    if spec not in _instances:
        _instances[spec] = cls()
    return _instances[spec]


def default_backend() -> CompressionBackend:
    """The process-wide default backend instance."""
    return get_backend(_default[0])


def set_default_backend(spec: str | CompressionBackend) -> CompressionBackend:
    """Set (and return) the process-wide default backend."""
    backend = get_backend(spec)
    if isinstance(spec, CompressionBackend):
        _instances[backend.name] = backend
    _default[0] = backend.name
    return backend
