"""Adaptive mixed-precision TLR storage *and compute* (paper Section IX).

The paper closes by proposing to "combine [BAND-DENSE-TLR] with
mixed-precision algorithms": off-band compressed tiles already carry an
O(ε) approximation error, so storing their factors in single precision
(unit roundoff ≈ 6e-8) costs nothing numerically whenever ε ≳ 1e-7 —
while halving the off-band memory footprint and communication volume.

This module is the policy layer of a real mixed-precision compute path
(not just storage modeling, its original scope):

* :class:`PrecisionPolicy` — per-tile dtype selection.  ``"adaptive"``
  stores off-band low-rank tiles in float32 when the certified ε of the
  :class:`~repro.linalg.compression.TruncationRule` clears the
  :attr:`~PrecisionPolicy.fp32_eps_floor` (default 1e-7, safely above
  fp32 roundoff) and falls back to float64 otherwise; ``"fp32"`` forces
  single precision on every low-rank tile; ``"fp64"`` is the historical
  all-double behaviour.  Dense tiles — the band and the Cholesky factors
  themselves — are always float64.
* :func:`apply_precision` — cast a matrix's tiles to the policy in place
  and return a :class:`MixedPrecisionReport` with exact byte accounting.
* Downstream, the hcore kernels preserve each destination tile's storage
  dtype (fp32 tiles are TRSM-solved and QR-SVD-recompressed by the
  single-precision LAPACK drivers; dense accumulations against fp32
  operands promote to fp64 — fp32 storage, fp64 accumulate), so an
  adaptive factorization really runs its off-band flops in single
  precision.  See :meth:`CompressionBackend.recompress_update
  <repro.linalg.backends.CompressionBackend.recompress_update>`.

The original storage-only modeling helpers (:func:`quantize_tile`,
:func:`demote_matrix`) are kept: they answer "what would dtype-storage
cost numerically" on an otherwise double-precision matrix, which remains
useful for float16 what-ifs the compute path does not support.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..utils.exceptions import ConfigurationError
from .tiles import DenseTile, LowRankTile, Tile

__all__ = [
    "PRECISION_MODES",
    "PRECISION_IDENTITIES",
    "PrecisionPolicy",
    "resolve_precision",
    "precision_identity",
    "identity_compatible",
    "apply_precision",
    "mixed_precision_report",
    "quantize_tile",
    "demote_matrix",
    "MixedPrecisionReport",
]

_SUPPORTED = (np.float32, np.float16)

#: Recognized precision mode names (CLI ``--precision`` choices).
PRECISION_MODES = ("fp64", "adaptive", "fp32")

#: ε-resolved precision identities (what a factor's storage *actually*
#: is, as opposed to the mode that was requested).  ``"adaptive"`` never
#: appears here: once ε is known, adaptive resolves to either
#: ``"fp32-adaptive"`` (the floor cleared, off-band tiles demoted) or
#: ``"fp64"`` (floor not cleared, nothing demoted — the factor is
#: bitwise an fp64 factor).
PRECISION_IDENTITIES = ("fp64", "fp32-adaptive", "fp32")


@dataclass(frozen=True)
class PrecisionPolicy:
    """Per-tile storage/compute dtype selection.

    Attributes
    ----------
    mode:
        ``"fp64"`` (everything double), ``"adaptive"`` (float32 off-band
        low-rank tiles when ε clears the floor), or ``"fp32"`` (float32
        on every low-rank tile, regardless of ε — a user override for
        experiments).
    fp32_eps_floor:
        Minimum truncation ε for which adaptive mode certifies float32
        storage.  Below it (e.g. ε = 1e-10) single-precision roundoff
        would dominate the tile's error budget, so the fp64 fallback
        engages.
    """

    mode: str = "fp64"
    fp32_eps_floor: float = 1e-7

    def __post_init__(self) -> None:
        if self.mode not in PRECISION_MODES:
            raise ConfigurationError(
                f"precision mode must be one of {PRECISION_MODES}, "
                f"got {self.mode!r}"
            )
        if self.fp32_eps_floor <= 0:
            raise ConfigurationError(
                f"fp32_eps_floor must be positive, got {self.fp32_eps_floor}"
            )

    def storage_dtype(
        self, *, eps: float, distance: int, band_size: int
    ) -> np.dtype:
        """Storage dtype for a *low-rank* tile.

        Parameters
        ----------
        eps:
            The truncation rule's certified tolerance.
        distance:
            Sub-diagonal distance ``i - j`` of the tile.
        band_size:
            The matrix's dense band width; tiles with
            ``distance < band_size`` are on the band and (being dense)
            never reach this policy, but the guard keeps the rule total.
        """
        if self.mode == "fp32":
            return np.dtype(np.float32)
        if (
            self.mode == "adaptive"
            and eps >= self.fp32_eps_floor
            and distance >= band_size
        ):
            return np.dtype(np.float32)
        return np.dtype(np.float64)


def resolve_precision(
    spec: str | PrecisionPolicy | None,
) -> PrecisionPolicy:
    """Resolve a precision spec: a policy, a mode name, or ``None`` (fp64)."""
    if spec is None:
        return PrecisionPolicy()
    if isinstance(spec, PrecisionPolicy):
        return spec
    if isinstance(spec, str):
        return PrecisionPolicy(mode=spec)
    raise ConfigurationError(
        f"precision must be a mode name {PRECISION_MODES}, a "
        f"PrecisionPolicy, or None; got {type(spec).__name__}"
    )


def precision_identity(spec: str | PrecisionPolicy | None, eps: float) -> str:
    """The ε-resolved storage identity a precision spec denotes.

    ``"adaptive"`` is a *request*, not a storage fact: what a factor
    actually holds depends on whether ε clears the policy's
    :attr:`~PrecisionPolicy.fp32_eps_floor`.  This function is the one
    place that resolution lives — :class:`MixedPrecisionReport.identity`
    reports the same identity from the realized side, and the service's
    factor-cache keys use this function on the request side, so the two
    can never disagree on what "the same precision" means (an
    fp32-adaptive factor must never be served to an fp64-strict
    request).
    """
    policy = resolve_precision(spec)
    if policy.mode == "adaptive":
        return "fp32-adaptive" if eps >= policy.fp32_eps_floor else "fp64"
    return policy.mode


def identity_compatible(requested: str, realized: str) -> bool:
    """May a factor with storage identity ``realized`` serve ``requested``?

    Exact matches always serve.  The one permitted substitution is a
    **pure-fp64 factor serving a request that allowed fp32**: full
    precision is a strict superset of what the request asked for.  The
    reverse — any fp32-touched factor (``"fp32"`` or
    ``"fp32-adaptive"``) answering an ``"fp64"``-strict request — is
    never compatible.
    """
    return requested == realized or realized == "fp64"


def quantize_tile(tile: Tile, dtype=np.float32) -> Tile:
    """Round a tile's payload through ``dtype`` (returned in float64).

    The returned tile is numerically identical to what a true
    ``dtype``-storage implementation would deliver to a double-precision
    kernel.
    """
    if dtype not in _SUPPORTED:
        raise ConfigurationError(
            f"dtype must be one of {[d.__name__ for d in _SUPPORTED]}"
        )
    if isinstance(tile, DenseTile):
        return DenseTile(tile.data.astype(dtype).astype(np.float64))
    return LowRankTile(
        tile.u.astype(dtype).astype(np.float64),
        tile.v.astype(dtype).astype(np.float64),
    )


@dataclass(frozen=True)
class MixedPrecisionReport:
    """Byte accounting of a mixed-precision matrix.

    Attributes
    ----------
    demoted_tiles:
        Number of tiles stored in the lower precision.
    bytes_full:
        Footprint with everything in float64.
    bytes_mixed:
        Footprint with demoted tiles at the lower precision.
    offband_bytes_full:
        Off-band low-rank footprint with everything in float64.
    offband_bytes_mixed:
        Off-band low-rank footprint at the actual storage dtypes —
        adaptive mode halves this relative to ``offband_bytes_full``
        when every off-band tile is certified for float32.
    mode:
        The policy mode that produced this accounting (``""`` for the
        storage-only :func:`demote_matrix` modeling path).
    """

    demoted_tiles: int
    bytes_full: int
    bytes_mixed: int
    offband_bytes_full: int = 0
    offband_bytes_mixed: int = 0
    mode: str = ""

    @property
    def identity(self) -> str:
        """ε-resolved storage identity of the factor this report describes.

        The realized-side counterpart of :func:`precision_identity`: an
        ``"adaptive"``-mode factorization that demoted nothing *is* an
        fp64 factor (bitwise), so it reports ``"fp64"``; one that
        demoted tiles reports ``"fp32-adaptive"``.  A missing/empty mode
        (the storage-only modeling path, or no policy at all) reports
        ``"fp64"``.  Cache lookups compare this against the request's
        :func:`precision_identity` via :func:`identity_compatible`.
        """
        if self.mode == "adaptive":
            return "fp32-adaptive" if self.demoted_tiles else "fp64"
        return self.mode or "fp64"

    @property
    def saving_factor(self) -> float:
        return self.bytes_full / max(self.bytes_mixed, 1)

    @property
    def offband_saving_factor(self) -> float:
        """fp64-footprint / actual-footprint over off-band low-rank tiles."""
        return self.offband_bytes_full / max(self.offband_bytes_mixed, 1)


def mixed_precision_report(matrix, mode: str = "") -> MixedPrecisionReport:
    """Byte accounting of a matrix's *actual* tile storage dtypes."""
    demoted = 0
    bytes_full = bytes_mixed = 0
    off_full = off_mixed = 0
    for tile in matrix.tiles.values():
        nbytes64 = tile.memory_elements() * 8
        bytes_full += nbytes64
        actual = tile.memory_bytes()
        bytes_mixed += actual
        if isinstance(tile, LowRankTile):
            off_full += nbytes64
            off_mixed += actual
            if tile.dtype != np.float64:
                demoted += 1
    return MixedPrecisionReport(
        demoted_tiles=demoted,
        bytes_full=bytes_full,
        bytes_mixed=bytes_mixed,
        offband_bytes_full=off_full,
        offband_bytes_mixed=off_mixed,
        mode=mode,
    )


def apply_precision(matrix, policy: PrecisionPolicy) -> MixedPrecisionReport:
    """Cast a matrix's low-rank tiles to ``policy`` in place.

    Promotes as well as demotes — applying the ``"fp64"`` policy to a
    mixed matrix restores all-double storage.  Dense tiles are never
    touched.  Returns the post-cast byte accounting.
    """
    eps = matrix.rule.eps
    for (i, j), tile in matrix.tiles.items():
        if not isinstance(tile, LowRankTile):
            continue
        target = policy.storage_dtype(
            eps=eps, distance=i - j, band_size=matrix.band_size
        )
        if tile.dtype != target:
            matrix.tiles[(i, j)] = LowRankTile(
                tile.u.astype(target), tile.v.astype(target)
            )
    matrix.precision = policy
    return mixed_precision_report(matrix, mode=policy.mode)


def demote_matrix(
    matrix,
    *,
    dtype=np.float32,
    min_distance: int = 1,
):
    """Quantize compressed tiles at sub-diagonal distance >= ``min_distance``.

    Storage-only *modeling*: demoted tiles pass through ``dtype`` but are
    returned as float64 payloads, so downstream double-precision kernels
    see exactly the value error a ``dtype`` store would incur, without
    changing any compute.  For the real mixed compute path use
    :func:`apply_precision` / ``tlr_cholesky(precision=...)``.

    Parameters
    ----------
    matrix:
        A :class:`~repro.matrix.BandTLRMatrix` (mutated copy returned).
    dtype:
        Storage precision for demoted tiles (float32 or float16).
    min_distance:
        Only tiles with ``i - j >= min_distance`` are demoted — near-band
        tiles, whose accuracy matters most, stay in double.

    Returns
    -------
    (matrix, MixedPrecisionReport)
    """
    if min_distance < 1:
        raise ConfigurationError("min_distance must be >= 1")
    itemsize = np.dtype(dtype).itemsize
    out = matrix.copy()
    demoted = 0
    bytes_full = 0
    bytes_mixed = 0
    for (i, j), tile in out.tiles.items():
        nbytes64 = tile.memory_elements() * 8
        bytes_full += nbytes64
        if isinstance(tile, LowRankTile) and (i - j) >= min_distance:
            out.tiles[(i, j)] = quantize_tile(tile, dtype)
            demoted += 1
            bytes_mixed += tile.memory_elements() * itemsize
        else:
            bytes_mixed += nbytes64
    return out, MixedPrecisionReport(
        demoted_tiles=demoted, bytes_full=bytes_full, bytes_mixed=bytes_mixed
    )
