"""Mixed-precision low-rank storage (paper future work, Section IX).

The paper closes by proposing to "combine [BAND-DENSE-TLR] with
mixed-precision algorithms": off-band compressed tiles already carry an
O(ε) approximation error, so storing their factors in single precision
(unit roundoff ≈ 6e-8) costs nothing numerically whenever ε ≳ 1e-7 —
while halving the off-band memory footprint and communication volume.

Computation stays in double precision (BLAS upcasts); this module models
the *storage* side:

* :func:`quantize_tile` — pass a tile's payload through a lower-precision
  dtype (the value error a real mixed store would incur);
* :func:`demote_matrix` — quantize every compressed tile beyond a given
  sub-diagonal distance, returning the demoted matrix and a
  :class:`MixedPrecisionReport` with exact byte accounting.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..utils.exceptions import ConfigurationError
from .tiles import DenseTile, LowRankTile, Tile

__all__ = ["quantize_tile", "demote_matrix", "MixedPrecisionReport"]

_SUPPORTED = (np.float32, np.float16)


def quantize_tile(tile: Tile, dtype=np.float32) -> Tile:
    """Round a tile's payload through ``dtype`` (returned in float64).

    The returned tile is numerically identical to what a true
    ``dtype``-storage implementation would deliver to a double-precision
    kernel.
    """
    if dtype not in _SUPPORTED:
        raise ConfigurationError(
            f"dtype must be one of {[d.__name__ for d in _SUPPORTED]}"
        )
    if isinstance(tile, DenseTile):
        return DenseTile(tile.data.astype(dtype).astype(np.float64))
    return LowRankTile(
        tile.u.astype(dtype).astype(np.float64),
        tile.v.astype(dtype).astype(np.float64),
    )


@dataclass(frozen=True)
class MixedPrecisionReport:
    """Byte accounting of a mixed-precision demotion.

    Attributes
    ----------
    demoted_tiles:
        Number of tiles stored in the lower precision.
    bytes_full:
        Footprint with everything in float64.
    bytes_mixed:
        Footprint with demoted tiles at the lower precision.
    """

    demoted_tiles: int
    bytes_full: int
    bytes_mixed: int

    @property
    def saving_factor(self) -> float:
        return self.bytes_full / max(self.bytes_mixed, 1)


def demote_matrix(
    matrix,
    *,
    dtype=np.float32,
    min_distance: int = 1,
):
    """Quantize compressed tiles at sub-diagonal distance >= ``min_distance``.

    Parameters
    ----------
    matrix:
        A :class:`~repro.matrix.BandTLRMatrix` (mutated copy returned).
    dtype:
        Storage precision for demoted tiles (float32 or float16).
    min_distance:
        Only tiles with ``i - j >= min_distance`` are demoted — near-band
        tiles, whose accuracy matters most, stay in double.

    Returns
    -------
    (matrix, MixedPrecisionReport)
    """
    if min_distance < 1:
        raise ConfigurationError("min_distance must be >= 1")
    itemsize = np.dtype(dtype).itemsize
    out = matrix.copy()
    demoted = 0
    bytes_full = 0
    bytes_mixed = 0
    for (i, j), tile in out.tiles.items():
        nbytes64 = tile.memory_elements() * 8
        bytes_full += nbytes64
        if isinstance(tile, LowRankTile) and (i - j) >= min_distance:
            out.tiles[(i, j)] = quantize_tile(tile, dtype)
            demoted += 1
            bytes_mixed += tile.memory_elements() * itemsize
        else:
            bytes_mixed += nbytes64
    return out, MixedPrecisionReport(
        demoted_tiles=demoted, bytes_full=bytes_full, bytes_mixed=bytes_mixed
    )
