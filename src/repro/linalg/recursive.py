"""Recursive (nested) formulations of the dense region-(1) kernels.

Section VII-D: tasks on the dense band form the critical path, so
PaRSEC-HiCMA-New splits *every* region-(1) kernel — POTRF, TRSM, SYRK and
GEMM — into a sub-task graph over ``split x split`` sub-tiles ("nested
computing").  The extra concurrency shortens the critical path and speeds
panel release (Fig. 9).

Two views of the same decomposition are provided:

* :func:`recursive_subtasks` builds executable sub-tasks closing over
  ndarray *views* of the parent tile (no copies, per the HPC guides) for
  the real executor;
* :func:`recursive_task_costs` emits only ``(kind, flops, deps)`` triples
  for the discrete-event simulator, which never materializes tile data.

Both emit identical graph shapes, so simulated and real executions agree
on structure.  Dependencies are expressed as indices into the emitted
list; the graphs are data-flow exact (reads-after-writes on sub-tiles).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..utils.exceptions import ConfigurationError
from ..utils.validation import check_positive_int
from .flops import (
    KernelClass,
    flops_gemm_dense,
    flops_potrf_dense,
    flops_syrk_dense,
    flops_trsm_dense,
)

__all__ = [
    "SubTask",
    "CostedSubTask",
    "split_ranges",
    "recursive_subtasks",
    "recursive_task_costs",
    "execute_subtasks",
]


@dataclass
class SubTask:
    """An executable nested sub-task.

    Attributes
    ----------
    kind:
        Kernel class of the sub-operation (always a region-(1) class).
    flops:
        Modelled flops (Table I on the sub-tile size).
    deps:
        Indices of sub-tasks (within the same emission) that must complete
        first.
    run:
        Zero-argument callable performing the update on parent-tile views.
    """

    kind: KernelClass
    flops: float
    deps: list[int] = field(default_factory=list)
    run: Callable[[], None] | None = None


@dataclass(frozen=True)
class CostedSubTask:
    """Cost-only view of a sub-task for the simulator."""

    kind: KernelClass
    flops: float
    deps: tuple[int, ...]


def split_ranges(b: int, split: int) -> list[slice]:
    """Partition ``range(b)`` into ``split`` nearly equal slices."""
    b = check_positive_int("b", b)
    split = check_positive_int("split", split)
    if split > b:
        raise ConfigurationError(f"split {split} exceeds tile size {b}")
    bounds = np.linspace(0, b, split + 1).astype(int)
    return [slice(int(bounds[i]), int(bounds[i + 1])) for i in range(split)]


# ----------------------------------------------------------------------
# Graph emitters.  Each helper returns (tasks, writer) where writer[key]
# is the index of the last task writing sub-tile `key`, enabling exact
# read-after-write chaining.
# ----------------------------------------------------------------------
def _emit_potrf(tasks: list[SubTask], rs: list[slice]) -> None:
    """Cost-only blocked right-looking Cholesky over the sub-tiles of C.

    Same graph shape as :func:`_emit_potrf_exec` minus the final
    zero-upper-triangle bookkeeping task (which costs nothing).
    """
    s = len(rs)
    writer: dict[tuple[int, int], int] = {}

    def dep_of(i: int, j: int) -> list[int]:
        idx = writer.get((i, j))
        return [idx] if idx is not None else []

    for k in range(s):
        bk = rs[k].stop - rs[k].start
        tasks.append(
            SubTask(KernelClass.POTRF_DENSE, flops_potrf_dense(bk), dep_of(k, k))
        )
        writer[(k, k)] = len(tasks) - 1

        for m in range(k + 1, s):
            bm = rs[m].stop - rs[m].start
            deps = sorted(set(dep_of(m, k) + [writer[(k, k)]]))
            tasks.append(
                SubTask(KernelClass.TRSM_DENSE, flops_trsm_dense(max(bm, bk)), deps)
            )
            writer[(m, k)] = len(tasks) - 1

        for n in range(k + 1, s):
            bn = rs[n].stop - rs[n].start
            deps = sorted(set(dep_of(n, n) + [writer[(n, k)]]))
            tasks.append(SubTask(KernelClass.SYRK_DENSE, flops_syrk_dense(bn), deps))
            writer[(n, n)] = len(tasks) - 1

            for m in range(n + 1, s):
                bm = rs[m].stop - rs[m].start
                deps = sorted(set(dep_of(m, n) + [writer[(m, k)], writer[(n, k)]]))
                tasks.append(
                    SubTask(KernelClass.GEMM_DENSE, flops_gemm_dense(max(bm, bn)), deps)
                )
                writer[(m, n)] = len(tasks) - 1


def _inplace_potrf(view: np.ndarray) -> None:
    import scipy.linalg as sla

    from ..utils.exceptions import NotPositiveDefiniteError

    try:
        l = sla.cholesky(view, lower=True, check_finite=False)
    except sla.LinAlgError as exc:
        raise NotPositiveDefiniteError(f"nested POTRF failed: {exc}") from exc
    view[...] = np.tril(l)


def _inplace_trsm(l_view: np.ndarray, c_view: np.ndarray) -> None:
    import scipy.linalg as sla

    c_view[...] = sla.solve_triangular(
        l_view, c_view.T, lower=True, trans="N", check_finite=False
    ).T


def _emit_trsm(
    tasks: list[SubTask],
    l_mat: np.ndarray | None,
    c: np.ndarray | None,
    rs_l: list[slice],
    rs_c: list[slice],
    make_run: bool,
) -> None:
    """Blocked ``C <- C L^{-T}`` over sub-tiles (L lower triangular).

    Column block j of C depends on column blocks i < j through
    ``C[:, j] -= C[:, i] @ L[j, i].T`` followed by a small TRSM with
    ``L[j, j]``.
    """
    s = len(rs_l)
    writer: dict[tuple[int, int], int] = {}

    for j in range(s):
        bj = rs_l[j].stop - rs_l[j].start
        for i in range(j):
            for r in range(len(rs_c)):
                br = rs_c[r].stop - rs_c[r].start
                deps = []
                if (r, i) in writer:
                    deps.append(writer[(r, i)])
                if (r, j) in writer:
                    deps.append(writer[(r, j)])
                run = None
                if make_run:
                    cri = c[rs_c[r], rs_l[i]]
                    lji = l_mat[rs_l[j], rs_l[i]]
                    crj = c[rs_c[r], rs_l[j]]

                    def run(cri=cri, lji=lji, crj=crj):
                        crj -= cri @ lji.T

                tasks.append(
                    SubTask(
                        KernelClass.GEMM_DENSE,
                        flops_gemm_dense(max(br, bj)),
                        sorted(set(deps)),
                        run,
                    )
                )
                writer[(r, j)] = len(tasks) - 1
        for r in range(len(rs_c)):
            br = rs_c[r].stop - rs_c[r].start
            deps = [writer[(r, j)]] if (r, j) in writer else []
            run = None
            if make_run:
                ljj = l_mat[rs_l[j], rs_l[j]]
                crj = c[rs_c[r], rs_l[j]]

                def run(ljj=ljj, crj=crj):
                    _inplace_trsm(ljj, crj)

            tasks.append(
                SubTask(KernelClass.TRSM_DENSE, flops_trsm_dense(max(br, bj)), deps, run)
            )
            writer[(r, j)] = len(tasks) - 1


def _emit_syrk(
    tasks: list[SubTask],
    a: np.ndarray | None,
    c: np.ndarray | None,
    rs: list[slice],
    rs_k: list[slice],
    make_run: bool,
) -> None:
    """Blocked ``C <- C - A A^T``; independent sub-updates chain per output."""
    writer: dict[tuple[int, int], int] = {}
    for i in range(len(rs)):
        bi = rs[i].stop - rs[i].start
        for j in range(i + 1):
            for k in range(len(rs_k)):
                deps = [writer[(i, j)]] if (i, j) in writer else []
                run = None
                if i == j:
                    if make_run:
                        aik = a[rs[i], rs_k[k]]
                        cii = c[rs[i], rs[i]]

                        def run(aik=aik, cii=cii):
                            cii -= aik @ aik.T

                    tasks.append(
                        SubTask(KernelClass.SYRK_DENSE, flops_syrk_dense(bi), deps, run)
                    )
                else:
                    if make_run:
                        aik = a[rs[i], rs_k[k]]
                        ajk = a[rs[j], rs_k[k]]
                        cij = c[rs[i], rs[j]]
                        cji = c[rs[j], rs[i]]

                        # Diagonal tiles are stored full-symmetric, so the
                        # strictly-lower sub-update is mirrored into the
                        # upper block (costed once, like a BLAS SYRK).
                        def run(aik=aik, ajk=ajk, cij=cij, cji=cji):
                            upd = aik @ ajk.T
                            cij -= upd
                            cji -= upd.T

                    tasks.append(
                        SubTask(KernelClass.GEMM_DENSE, flops_gemm_dense(bi), deps, run)
                    )
                writer[(i, j)] = len(tasks) - 1


def _emit_gemm(
    tasks: list[SubTask],
    a: np.ndarray | None,
    b: np.ndarray | None,
    c: np.ndarray | None,
    rs_m: list[slice],
    rs_n: list[slice],
    rs_k: list[slice],
    make_run: bool,
) -> None:
    """Blocked ``C <- C - A B^T``; k-chained per output sub-tile."""
    writer: dict[tuple[int, int], int] = {}
    for i in range(len(rs_m)):
        bi = rs_m[i].stop - rs_m[i].start
        for j in range(len(rs_n)):
            for k in range(len(rs_k)):
                deps = [writer[(i, j)]] if (i, j) in writer else []
                run = None
                if make_run:
                    aik = a[rs_m[i], rs_k[k]]
                    bjk = b[rs_n[j], rs_k[k]]
                    cij = c[rs_m[i], rs_n[j]]

                    def run(aik=aik, bjk=bjk, cij=cij):
                        cij -= aik @ bjk.T

                tasks.append(
                    SubTask(KernelClass.GEMM_DENSE, flops_gemm_dense(bi), deps, run)
                )
                writer[(i, j)] = len(tasks) - 1


# ----------------------------------------------------------------------
# Public API
# ----------------------------------------------------------------------
def recursive_subtasks(
    kind: KernelClass,
    split: int,
    *,
    c: np.ndarray,
    a: np.ndarray | None = None,
    b: np.ndarray | None = None,
    l_mat: np.ndarray | None = None,
) -> list[SubTask]:
    """Build the executable nested sub-task graph for a region-(1) kernel.

    Parameters
    ----------
    kind:
        One of the four region-(1) kernel classes.
    split:
        Number of sub-tiles per dimension (>= 1; 1 degenerates to a single
        task over the whole tile).
    c:
        Destination tile buffer (mutated in place when tasks run).
    a, b:
        GEMM/SYRK operands.
    l_mat:
        Triangular factor for TRSM.
    """
    split = check_positive_int("split", split)
    if not kind.is_band_kernel:
        raise ConfigurationError(f"{kind} is not a region-(1) kernel")
    tasks: list[SubTask] = []
    if kind is KernelClass.POTRF_DENSE:
        rs = split_ranges(c.shape[0], split)
        _emit_potrf_exec(tasks, c, rs)
    elif kind is KernelClass.TRSM_DENSE:
        if l_mat is None:
            raise ConfigurationError("TRSM requires l_mat")
        _emit_trsm(tasks, l_mat, c, split_ranges(l_mat.shape[0], split),
                   split_ranges(c.shape[0], split), True)
    elif kind is KernelClass.SYRK_DENSE:
        if a is None:
            raise ConfigurationError("SYRK requires a")
        _emit_syrk(tasks, a, c, split_ranges(c.shape[0], split),
                   split_ranges(a.shape[1], split), True)
    else:  # GEMM
        if a is None or b is None:
            raise ConfigurationError("GEMM requires a and b")
        _emit_gemm(tasks, a, b, c, split_ranges(c.shape[0], split),
                   split_ranges(c.shape[1], split), split_ranges(a.shape[1], split), True)
    return tasks


def _emit_potrf_exec(tasks: list[SubTask], c: np.ndarray, rs: list[slice]) -> None:
    """Executable blocked Cholesky (see :func:`_emit_potrf` for the shape)."""
    s = len(rs)
    writer: dict[tuple[int, int], int] = {}

    def dep_of(i: int, j: int) -> list[int]:
        idx = writer.get((i, j))
        return [idx] if idx is not None else []

    for k in range(s):
        bk = rs[k].stop - rs[k].start
        ckk = c[rs[k], rs[k]]
        tasks.append(
            SubTask(
                KernelClass.POTRF_DENSE,
                flops_potrf_dense(bk),
                dep_of(k, k),
                lambda ckk=ckk: _inplace_potrf(ckk),
            )
        )
        writer[(k, k)] = len(tasks) - 1
        for m in range(k + 1, s):
            bm = rs[m].stop - rs[m].start
            lkk = c[rs[k], rs[k]]
            cmk = c[rs[m], rs[k]]
            tasks.append(
                SubTask(
                    KernelClass.TRSM_DENSE,
                    flops_trsm_dense(max(bm, bk)),
                    sorted(set(dep_of(m, k) + [writer[(k, k)]])),
                    lambda lkk=lkk, cmk=cmk: _inplace_trsm(lkk, cmk),
                )
            )
            writer[(m, k)] = len(tasks) - 1
        for n in range(k + 1, s):
            bn = rs[n].stop - rs[n].start
            ank = c[rs[n], rs[k]]
            cnn = c[rs[n], rs[n]]
            tasks.append(
                SubTask(
                    KernelClass.SYRK_DENSE,
                    flops_syrk_dense(bn),
                    sorted(set(dep_of(n, n) + [writer[(n, k)]])),
                    lambda ank=ank, cnn=cnn: _isub_syrk(cnn, ank),
                )
            )
            writer[(n, n)] = len(tasks) - 1
            for m in range(n + 1, s):
                bm = rs[m].stop - rs[m].start
                amk = c[rs[m], rs[k]]
                bnk = c[rs[n], rs[k]]
                cmn = c[rs[m], rs[n]]
                tasks.append(
                    SubTask(
                        KernelClass.GEMM_DENSE,
                        flops_gemm_dense(max(bm, bn)),
                        sorted(set(dep_of(m, n) + [writer[(m, k)], writer[(n, k)]])),
                        lambda amk=amk, bnk=bnk, cmn=cmn: _isub_gemm(cmn, amk, bnk),
                    )
                )
                writer[(m, n)] = len(tasks) - 1

    tasks.append(
        SubTask(
            KernelClass.POTRF_DENSE,
            0.0,
            list(range(len(tasks))),
            lambda: c.__setitem__(..., np.tril(c)),
        )
    )


def _isub_syrk(cview: np.ndarray, aview: np.ndarray) -> None:
    cview -= aview @ aview.T


def _isub_gemm(cview: np.ndarray, aview: np.ndarray, bview: np.ndarray) -> None:
    cview -= aview @ bview.T


def recursive_task_costs(
    kind: KernelClass, b: int, split: int
) -> list[CostedSubTask]:
    """Cost-only nested graph for the simulator (no ndarray involvement).

    Emits the same graph shape as :func:`recursive_subtasks` applied to a
    ``b x b`` tile split ``split`` ways.
    """
    split = check_positive_int("split", split)
    if not kind.is_band_kernel:
        raise ConfigurationError(f"{kind} is not a region-(1) kernel")
    tasks: list[SubTask] = []
    rs = split_ranges(b, split)
    if kind is KernelClass.POTRF_DENSE:
        _emit_potrf(tasks, rs)
    elif kind is KernelClass.TRSM_DENSE:
        _emit_trsm(tasks, None, None, rs, rs, make_run=False)
    elif kind is KernelClass.SYRK_DENSE:
        _emit_syrk(tasks, None, None, rs, rs, make_run=False)
    else:
        _emit_gemm(tasks, None, None, None, rs, rs, rs, make_run=False)
    return [CostedSubTask(t.kind, t.flops, tuple(t.deps)) for t in tasks]


def execute_subtasks(tasks: list[SubTask]) -> None:
    """Run an executable sub-task list respecting its dependencies.

    Tasks are stored in a valid topological order by construction, so a
    simple in-order sweep is correct; this is the serial reference used by
    tests (the runtime schedules them with real concurrency structure).
    """
    for t in tasks:
        if t.run is None:
            raise ConfigurationError("cost-only sub-task cannot be executed")
        t.run()
