"""Tile compression and recompression (rounding) to an accuracy threshold.

Compression turns a dense tile into the :class:`~repro.linalg.tiles.LowRankTile`
``U @ V.T`` keeping "the most significant singular values above the accuracy
threshold" (paper, Section VIII-A).  Two truncation rules are provided:

* ``"spectral"`` — keep σ_i with σ_i > ε (absolute 2-norm error ≤ ε), the
  rule the paper describes;
* ``"frobenius"`` — smallest k with sqrt(Σ_{i>k} σ_i²) ≤ ε.

Both accept ``relative=True`` to scale ε by σ_1.

Recompression (a.k.a. *rounding*) re-truncates the sum of low-rank terms
produced by the TLR GEMM.  It is implemented with the standard
QR-QR-SVD scheme: QR-factor the stacked U and V blocks, SVD the small
``R_u @ R_v.T`` core, and truncate.  The paper splits the low-rank GEMM at
exactly this recompression boundary to reallocate tile memory when the rank
grows (Section VII-B); :func:`recompress` therefore reports the pre- and
post-recompression ranks so the memory pool can be driven faithfully.

The numerics behind both operations live in pluggable *backends*
(:mod:`repro.linalg.backends`): ``"svd"`` is the deterministic truncated
SVD described above, ``"rsvd"`` an adaptive randomized SVD that certifies
the same ε.  :func:`compress_block`, :func:`compress_tile` and
:func:`recompress` dispatch to a backend (default ``"svd"``), so existing
call sites keep their exact historical behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..utils.exceptions import ConfigurationError
from ..utils.validation import check_in, check_positive_float
from .tiles import DenseTile, LowRankTile

__all__ = [
    "TruncationRule",
    "truncation_rank",
    "compress_block",
    "compress_tile",
    "recompress",
    "RecompressionResult",
]


@dataclass(frozen=True)
class TruncationRule:
    """How singular values are truncated during (re)compression.

    Attributes
    ----------
    eps:
        Accuracy threshold ε (e.g. the paper's 1e-8).
    norm:
        ``"spectral"`` or ``"frobenius"`` (see module docstring).
    relative:
        Scale ε by the largest singular value when true.
    maxrank:
        Hard cap on the retained rank, or ``None`` for uncapped.  HiCMA's
        static descriptor caps at ``b/2`` to keep TLR storage competitive.
    """

    eps: float = 1e-8
    norm: str = "spectral"
    relative: bool = False
    maxrank: int | None = None

    def __post_init__(self) -> None:
        check_positive_float("eps", self.eps)
        check_in("norm", self.norm, ("spectral", "frobenius"))
        if self.maxrank is not None and self.maxrank < 0:
            raise ConfigurationError(f"maxrank must be >= 0, got {self.maxrank}")

    def with_maxrank(self, maxrank: int | None) -> "TruncationRule":
        """A copy of this rule with a different rank cap."""
        return TruncationRule(self.eps, self.norm, self.relative, maxrank)


def truncation_rank(singular_values: np.ndarray, rule: TruncationRule) -> int:
    """Number of singular values to keep under ``rule``.

    ``singular_values`` must be sorted in non-increasing order (as returned
    by SVD routines).  The result respects ``rule.maxrank`` when set; the
    cap silently truncates (the accuracy guarantee is then void, mirroring
    HiCMA-Prev's behaviour with a saturated static descriptor).
    """
    s = np.asarray(singular_values, dtype=np.float64)
    if s.size == 0:
        return 0
    threshold = rule.eps * (s[0] if rule.relative else 1.0)
    if rule.norm == "spectral":
        k = int(np.count_nonzero(s > threshold))
    else:  # frobenius: keep smallest k with tail energy <= threshold
        tail = np.sqrt(np.cumsum(s[::-1] ** 2))[::-1]  # tail[i] = ||s[i:]||_2
        keep = tail > threshold
        k = int(np.count_nonzero(keep))
    if rule.maxrank is not None:
        k = min(k, rule.maxrank)
    return k


def compress_block(
    a: np.ndarray,
    rule: TruncationRule,
    *,
    backend=None,
    seed=None,
) -> LowRankTile:
    """Compress a dense block into a :class:`LowRankTile`.

    Dispatches to a :class:`~repro.linalg.backends.CompressionBackend`
    (an instance, a registry name like ``"rsvd"``, or ``None`` for the
    default exact SVD).  The singular values are folded symmetrically
    into both factors (``U = U_s * sqrt(s)``, ``V = V_s * sqrt(s)``) to
    balance their norms — this keeps downstream QR recompressions
    well-conditioned.  ``seed`` pins the randomness of stochastic
    backends (deterministic ones ignore it).
    """
    from .backends import get_backend

    return get_backend(backend).compress(a, rule, seed=seed)


def compress_tile(
    tile: DenseTile,
    rule: TruncationRule,
    *,
    backend=None,
    seed=None,
) -> LowRankTile:
    """Compress a :class:`DenseTile` (convenience wrapper)."""
    return compress_block(tile.data, rule, backend=backend, seed=seed)


@dataclass
class RecompressionResult:
    """Outcome of a recompression, including the memory-pool drive signals.

    Attributes
    ----------
    tile:
        The rounded low-rank tile.
    rank_before:
        Storage rank of the *stacked* representation entering the QR stage
        (= k_c + k_update); this is the transient memory high-water mark.
    rank_after:
        Rank retained after truncation.
    grew:
        True when ``rank_after`` exceeds the rank the destination tile had
        before the update — the condition under which PaRSEC-HiCMA-New
        reallocates and re-associates the tile's memory.
    """

    tile: LowRankTile
    rank_before: int
    rank_after: int
    grew: bool


def recompress(
    u_stack: np.ndarray,
    v_stack: np.ndarray,
    rule: TruncationRule,
    *,
    previous_rank: int | None = None,
    backend=None,
) -> RecompressionResult:
    """Round a low-rank representation ``u_stack @ v_stack.T`` to ``rule``.

    Parameters
    ----------
    u_stack, v_stack:
        Factors of shape ``(m, r)`` and ``(n, r)``; typically horizontal
        concatenations of the destination tile's factors and the update's
        factors, so ``r = k_c + k_ab``.
    rule:
        Truncation rule.
    previous_rank:
        Rank of the destination tile before the update, used to flag rank
        growth; defaults to ``r`` (never flags growth).
    backend:
        Compression backend (instance, registry name, or ``None`` for the
        default); all backends share the QR-QR-SVD rounding scheme.

    Returns
    -------
    RecompressionResult
    """
    from .backends import get_backend

    return get_backend(backend).recompress(
        u_stack, v_stack, rule, previous_rank=previous_rank
    )
