"""Kernel taxonomy and arithmetic-complexity model (Table I of the paper).

Section VI distinguishes six tile *regions* in the BAND-DENSE-TLR matrix
and ten ``(region)-kernel`` combinations.  With band width ``BAND_SIZE``
(number of dense sub-diagonals, diagonal included) and the band predicate
``on_band(m, n) := m - n < BAND_SIZE``, the update kernels of a
right-looking Cholesky classify as follows (``C = A[m,n]``, ``A = A[m,k]``,
``B = A[n,k]``, with ``k < n <= m``; note ``n - k <= m - k`` forces
*A dense ⇒ B dense* and *C low-rank ⇒ A low-rank*):

=======================  =============  ==========  ==========  ==========
kernel                   C              A           B           Table I
=======================  =============  ==========  ==========  ==========
(1)-POTRF                dense diag     —           —           b³/3
(1)-TRSM                 dense          —           —           b³
(4)-TRSM                 low-rank       —           —           b²·k
(1)-SYRK                 dense diag     dense       —           b³
(3)-SYRK                 dense diag     low-rank    —           2b²k + 4bk²
(1)-GEMM                 dense          dense       dense       2b³
(2)-GEMM                 dense          low-rank    dense       4b²k
(3)-GEMM (new)           dense          low-rank    low-rank    2b²k + 4bk²
(5)-GEMM (new)           low-rank       low-rank    dense       34bk² + 157k³
(6)-GEMM                 low-rank       low-rank    low-rank    36bk² + 157k³
=======================  =============  ==========  ==========  ==========

The printed Table I is followed literally (same constants) so the
BAND_SIZE auto-tuner reproduces Algorithm 1's decisions.  For kernels with
several operand ranks the paper's single ``k`` is interpreted as the rank
driving each term (documented per formula below).

A global, thread-free :class:`FlopCounter` records *modelled* flops per
kernel class during real executions, which the benchmarks use to report
flop totals (Figs. 6b, 6c, 10).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from ..utils.exceptions import KernelError

__all__ = [
    "KernelClass",
    "flops_potrf_dense",
    "flops_trsm_dense",
    "flops_trsm_lr",
    "flops_syrk_dense",
    "flops_syrk_lr",
    "flops_gemm_dense",
    "flops_gemm_dense_lrd",
    "flops_gemm_dense_lrlr",
    "flops_gemm_lr_update_dense",
    "flops_gemm_lr",
    "flops_gemm_lr_general",
    "flops_gemm_lr_dense_general",
    "kernel_flops",
    "FlopCounter",
    "dense_cholesky_flops",
]


class KernelClass(Enum):
    """The ten ``(region)-kernel`` types of Section VI."""

    POTRF_DENSE = "(1)-POTRF"
    TRSM_DENSE = "(1)-TRSM"
    TRSM_LR = "(4)-TRSM"
    SYRK_DENSE = "(1)-SYRK"
    SYRK_LR = "(3)-SYRK"
    GEMM_DENSE = "(1)-GEMM"
    GEMM_DENSE_LRD = "(2)-GEMM"
    GEMM_DENSE_LRLR = "(3)-GEMM"
    GEMM_LR_DENSE = "(5)-GEMM"
    GEMM_LR = "(6)-GEMM"

    @property
    def is_dense_output(self) -> bool:
        """True when the kernel writes a dense tile."""
        return self in (
            KernelClass.POTRF_DENSE,
            KernelClass.TRSM_DENSE,
            KernelClass.SYRK_DENSE,
            KernelClass.SYRK_LR,
            KernelClass.GEMM_DENSE,
            KernelClass.GEMM_DENSE_LRD,
            KernelClass.GEMM_DENSE_LRLR,
        )

    @property
    def is_band_kernel(self) -> bool:
        """True for region-(1) kernels — the all-dense band, eligible for
        the recursive (nested) formulation of Section VII-D."""
        return self in (
            KernelClass.POTRF_DENSE,
            KernelClass.TRSM_DENSE,
            KernelClass.SYRK_DENSE,
            KernelClass.GEMM_DENSE,
        )


# ----------------------------------------------------------------------
# Table I formulas (flops, double precision, multiply+add counted as 2)
# ----------------------------------------------------------------------
def flops_potrf_dense(b: int) -> float:
    """(1)-POTRF: ``b³/3``."""
    return b**3 / 3.0


def flops_trsm_dense(b: int) -> float:
    """(1)-TRSM: ``b³``."""
    return float(b**3)


def flops_trsm_lr(b: int, k: int) -> float:
    """(4)-TRSM: ``b²·k`` — the triangular solve touches only the V factor."""
    return float(b**2 * k)


def flops_syrk_dense(b: int) -> float:
    """(1)-SYRK: ``b³``."""
    return float(b**3)


def flops_syrk_lr(b: int, k: int) -> float:
    """(3)-SYRK: ``2b²k + 4bk²`` with ``k`` the rank of the panel tile."""
    return float(2 * b**2 * k + 4 * b * k**2)


def flops_gemm_dense(b: int) -> float:
    """(1)-GEMM: ``2b³``."""
    return float(2 * b**3)


def flops_gemm_dense_lrd(b: int, k: int) -> float:
    """(2)-GEMM: ``4b²k`` — dense C, one low-rank operand of rank ``k``."""
    return float(4 * b**2 * k)


def flops_gemm_dense_lrlr(b: int, ka: int, kb: int) -> float:
    """(3)-GEMM: ``2b²k + 4bk²`` — dense C, both operands low-rank.

    With unequal operand ranks the b²-term is driven by the rank of the
    expansion (k_b) and the bk² term by the cross products (k_a·k_b);
    Table I's single-k form is recovered when ``ka == kb``.
    """
    return float(2 * b**2 * kb + 4 * b * ka * kb)


def flops_gemm_lr_update_dense(b: int, k: int) -> float:
    """(5)-GEMM: ``34bk² + 157k³`` — low-rank C, dense B operand.

    The Table I constants bundle the stacked-QR (≈ the 34bk² term) and the
    small-core SVD (≈ the 157k³ term) of the recompression; the rank-k
    product formation against the dense operand is charged to the same
    ``k`` by the paper's model and we follow it literally.
    """
    return float(34 * b * k**2 + 157 * k**3)


def flops_gemm_lr(b: int, k: int) -> float:
    """(6)-GEMM: ``36bk² + 157k³`` — all three tiles low-rank."""
    return float(36 * b * k**2 + 157 * k**3)


def flops_gemm_lr_general(b: int, kc: int, ka: int, kb: int) -> float:
    """Rank-exact cost of (6)-GEMM with heterogeneous operand ranks.

    The update ``U_A (V_A^T V_B) U_B^T`` has rank ``min(ka, kb)``; the
    recompression QRs run on stacks of rank ``r = kc + min(ka, kb)`` and
    the core SVD on an ``r x r`` matrix.  Coefficients are chosen so the
    formula *reduces exactly to Table I's* ``36bk² + 157k³`` when
    ``ka = kb = kc = k`` (up to the small formation terms Table I folds
    in):  ``9 b r² = 36 b k²`` and ``157/8 · r³ = 157 k³`` at ``r = 2k``.

    Used by the graph builders and the executor's counters; Algorithm 1
    keeps the published equal-rank form (the paper's model).
    """
    k_upd = min(ka, kb)
    r = kc + k_upd
    formation = 2.0 * b * ka * kb + 2.0 * b * ka * k_upd
    return formation + 9.0 * b * r * r + (157.0 / 8.0) * r**3


def flops_gemm_lr_dense_general(b: int, kc: int, ka: int) -> float:
    """Rank-exact cost of (5)-GEMM (low-rank C, dense B operand).

    The rank-``ka`` update is formed against the dense operand
    (``2 b² ka``) and recompressed at stacked rank ``r = kc + ka``.
    """
    r = kc + ka
    return 2.0 * b * b * ka + 9.0 * b * r * r + (157.0 / 8.0) * r**3


def kernel_flops(kind: KernelClass, b: int, k: int = 0, k2: int = 0) -> float:
    """Dispatch Table I by kernel class.

    Parameters
    ----------
    kind:
        Kernel class.
    b:
        Tile size.
    k:
        Primary rank (the updating operand's rank); ignored by all-dense
        kernels.
    k2:
        Secondary rank for (3)-GEMM (rank of the B operand); defaults to
        ``k`` when 0.
    """
    if kind is KernelClass.POTRF_DENSE:
        return flops_potrf_dense(b)
    if kind is KernelClass.TRSM_DENSE:
        return flops_trsm_dense(b)
    if kind is KernelClass.TRSM_LR:
        return flops_trsm_lr(b, k)
    if kind is KernelClass.SYRK_DENSE:
        return flops_syrk_dense(b)
    if kind is KernelClass.SYRK_LR:
        return flops_syrk_lr(b, k)
    if kind is KernelClass.GEMM_DENSE:
        return flops_gemm_dense(b)
    if kind is KernelClass.GEMM_DENSE_LRD:
        return flops_gemm_dense_lrd(b, k)
    if kind is KernelClass.GEMM_DENSE_LRLR:
        return flops_gemm_dense_lrlr(b, k, k2 or k)
    if kind is KernelClass.GEMM_LR_DENSE:
        return flops_gemm_lr_update_dense(b, k)
    if kind is KernelClass.GEMM_LR:
        return flops_gemm_lr(b, k)
    raise KernelError(f"unknown kernel class {kind!r}")


def dense_cholesky_flops(n: int) -> float:
    """Classic dense Cholesky flop count ``n³/3`` (reference baseline)."""
    return n**3 / 3.0


@dataclass
class FlopCounter:
    """Accumulates modelled flops per kernel class.

    Used by the executor and the benchmarks to report flop decompositions
    the way Fig. 6(b,c) and Fig. 10 do.
    """

    per_class: dict[KernelClass, float] = field(default_factory=dict)
    per_class_count: dict[KernelClass, int] = field(default_factory=dict)

    def add(self, kind: KernelClass, flops: float, count: int = 1) -> None:
        """Record ``flops`` under kernel class ``kind``.

        ``count`` is the number of *logical* kernel invocations this call
        represents: a batched execution of ``k`` same-shape kernels reports
        their summed flops with ``count=k`` so per-class invocation counts
        (and hence per-task GFLOP/s) stay comparable across batch modes.
        """
        self.per_class[kind] = self.per_class.get(kind, 0.0) + flops
        self.per_class_count[kind] = self.per_class_count.get(kind, 0) + count

    @property
    def total(self) -> float:
        """Total flops across every class."""
        return sum(self.per_class.values())

    def total_for(self, *kinds: KernelClass) -> float:
        """Total flops restricted to the given classes."""
        return sum(self.per_class.get(kind, 0.0) for kind in kinds)

    def merge(self, other: "FlopCounter") -> None:
        """Fold ``other``'s counts into this counter."""
        for kind, fl in other.per_class.items():
            self.per_class[kind] = self.per_class.get(kind, 0.0) + fl
        for kind, ct in other.per_class_count.items():
            self.per_class_count[kind] = self.per_class_count.get(kind, 0) + ct

    def report(self) -> str:
        """Human-readable breakdown, largest class first."""
        lines = ["kernel            flops          tasks"]
        for kind in sorted(self.per_class, key=self.per_class.get, reverse=True):
            lines.append(
                f"{kind.value:<12} {self.per_class[kind]:>14.3e} "
                f"{self.per_class_count.get(kind, 0):>10d}"
            )
        lines.append(f"{'total':<12} {self.total:>14.3e}")
        return "\n".join(lines)
