"""Tile-matrix containers and memory accounting."""

from .descriptor import TileDescriptor
from .memory import (
    BYTES_PER_ELEMENT,
    MemoryReport,
    MemoryTracker,
    footprint_report,
)
from .io import load_matrix, save_matrix
from .tlr_matrix import BandTLRMatrix

__all__ = [
    "TileDescriptor",
    "BandTLRMatrix",
    "save_matrix",
    "load_matrix",
    "MemoryReport",
    "MemoryTracker",
    "footprint_report",
    "BYTES_PER_ELEMENT",
]
