"""Serialization of BAND-DENSE-TLR matrices to ``.npz`` archives.

Compressing a large covariance problem is the expensive step of the
pipeline (one SVD per tile); persisting the compressed matrix lets MLE
runs, benchmarks, and post-mortem analyses reload it instantly.  The
format is a flat NumPy archive:

* ``__meta__`` — ``[n, tile_size, band_size, eps-mantissa...]`` header;
* per tile ``(i, j)``: ``D_i_j`` for dense data, or ``U_i_j`` / ``V_i_j``
  for low-rank factors.

Only NumPy is involved — no pickle — so archives are portable and safe
to load from untrusted sources.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from ..linalg.compression import TruncationRule
from ..linalg.tiles import DenseTile, LowRankTile
from ..utils.exceptions import ConfigurationError
from .descriptor import TileDescriptor
from .tlr_matrix import BandTLRMatrix

__all__ = ["save_matrix", "load_matrix"]

_FORMAT_VERSION = 1


def save_matrix(matrix: BandTLRMatrix, path: str | Path) -> Path:
    """Write a matrix (compressed or factorized) to ``path`` (.npz)."""
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    arrays: dict[str, np.ndarray] = {}
    meta = {
        "version": _FORMAT_VERSION,
        "n": matrix.n,
        "tile_size": matrix.desc.tile_size,
        "band_size": matrix.band_size,
        "rule": {
            "eps": matrix.rule.eps,
            "norm": matrix.rule.norm,
            "relative": matrix.rule.relative,
            "maxrank": matrix.rule.maxrank,
        },
    }
    arrays["__meta__"] = np.frombuffer(
        json.dumps(meta).encode("utf-8"), dtype=np.uint8
    ).copy()
    for (i, j), tile in matrix.tiles.items():
        if isinstance(tile, DenseTile):
            arrays[f"D_{i}_{j}"] = tile.data
        else:
            arrays[f"U_{i}_{j}"] = tile.u
            arrays[f"V_{i}_{j}"] = tile.v
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(path, **arrays)
    return path


def load_matrix(path: str | Path) -> BandTLRMatrix:
    """Load a matrix previously written by :func:`save_matrix`."""
    path = Path(path)
    if not path.exists():
        raise ConfigurationError(f"no such file: {path}")
    with np.load(path) as data:
        if "__meta__" not in data:
            raise ConfigurationError(f"{path} is not a repro matrix archive")
        meta = json.loads(bytes(data["__meta__"]).decode("utf-8"))
        if meta.get("version") != _FORMAT_VERSION:
            raise ConfigurationError(
                f"unsupported archive version {meta.get('version')!r}"
            )
        rule = TruncationRule(
            eps=meta["rule"]["eps"],
            norm=meta["rule"]["norm"],
            relative=meta["rule"]["relative"],
            maxrank=meta["rule"]["maxrank"],
        )
        desc = TileDescriptor(meta["n"], meta["tile_size"])
        matrix = BandTLRMatrix(
            desc=desc, band_size=meta["band_size"], rule=rule
        )
        dense_keys = [k for k in data.files if k.startswith("D_")]
        u_keys = [k for k in data.files if k.startswith("U_")]
        for key in dense_keys:
            _, i, j = key.split("_")
            matrix.tiles[(int(i), int(j))] = DenseTile(data[key])
        for key in u_keys:
            _, i, j = key.split("_")
            vkey = f"V_{i}_{j}"
            if vkey not in data:
                raise ConfigurationError(f"archive missing factor {vkey}")
            matrix.tiles[(int(i), int(j))] = LowRankTile(data[key], data[vkey])

    expected = set(desc.lower_tiles())
    if set(matrix.tiles) != expected:
        missing = expected - set(matrix.tiles)
        raise ConfigurationError(
            f"archive incomplete: {len(missing)} tiles missing (e.g. "
            f"{sorted(missing)[:3]})"
        )
    return matrix
