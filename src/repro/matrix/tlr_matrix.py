"""The BAND-DENSE-TLR symmetric tile matrix container.

One container covers the paper's three operating points:

* ``band_size = 1`` — classic TLR (only the diagonal is dense): the
  PaRSEC-HiCMA-Prev layout;
* ``1 < band_size < NT`` — BAND-DENSE-TLR: the paper's contribution;
* ``band_size >= NT`` — fully dense tiled storage: the dense baseline.

Only the lower triangle is stored (the matrix is symmetric; the paper's
Fig. 3a).  On-band tiles are :class:`DenseTile`; off-band tiles are
:class:`LowRankTile` compressed to the container's truncation rule.

The container also implements the *densification/regeneration* step of the
BAND_SIZE auto-tuning pipeline (Section VIII-B): after tuning picks a wider
band, :meth:`with_band_size` regenerates on-band tiles in dense format from
the original problem (cheap — ``O(NT * band_size)`` tiles) without touching
the off-band compressed tiles.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .. import obs
from ..linalg.backends import CompressionBackend, get_backend, tile_seed
from ..linalg.compression import TruncationRule
from ..linalg.precision import PrecisionPolicy, resolve_precision
from ..linalg.tiles import DenseTile, LowRankTile, Tile
from ..statistics.problem import CovarianceProblem
from ..utils.exceptions import ConfigurationError
from ..utils.validation import check_positive_int
from .descriptor import TileDescriptor

__all__ = ["BandTLRMatrix"]


@dataclass
class BandTLRMatrix:
    """Symmetric positive-definite matrix in BAND-DENSE-TLR tile storage.

    Attributes
    ----------
    desc:
        Blocking geometry.
    band_size:
        Number of dense sub-diagonals (diagonal included).
    rule:
        Truncation rule used for off-band tiles.
    tiles:
        Mapping ``(i, j) -> Tile`` over the lower triangle ``i >= j``.
    backend:
        Compression backend used for off-band tiles (and remembered so
        :meth:`with_band_size` and factorizations recompress with the
        same numerics); ``None`` means the process default (exact SVD).
    precision:
        Storage-dtype policy for off-band low-rank tiles (see
        :class:`~repro.linalg.precision.PrecisionPolicy`); ``None``
        keeps the historical all-float64 behaviour.  A mode name
        (``"adaptive"``, ``"fp32"``) is resolved on construction.
    """

    desc: TileDescriptor
    band_size: int
    rule: TruncationRule
    tiles: dict[tuple[int, int], Tile] = field(default_factory=dict)
    backend: CompressionBackend | None = None
    precision: PrecisionPolicy | None = None

    def __post_init__(self) -> None:
        check_positive_int("band_size", self.band_size)
        if self.backend is not None:
            self.backend = get_backend(self.backend)
        if self.precision is not None:
            self.precision = resolve_precision(self.precision)

    def _compress(self, block: np.ndarray, i: int, j: int) -> LowRankTile:
        """Compress one off-band block with the matrix's backend.

        The seed is derived from the tile coordinates alone, so parallel
        assembly with a randomized backend stays bitwise reproducible
        across worker counts.
        """
        backend = get_backend(self.backend)
        tile = backend.compress(
            block, self.rule, seed=tile_seed(backend.seed, i, j)
        )
        if self.precision is not None:
            target = self.precision.storage_dtype(
                eps=self.rule.eps, distance=i - j, band_size=self.band_size
            )
            if tile.dtype != target:
                tile = tile.astype(target)
        return tile

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_problem(
        cls,
        problem: CovarianceProblem,
        rule: TruncationRule,
        band_size: int = 1,
        *,
        backend: CompressionBackend | str | None = None,
        precision: PrecisionPolicy | str | None = None,
        n_workers: int | None = None,
    ) -> "BandTLRMatrix":
        """Generate + compress a covariance problem into tile storage.

        On-band tiles are generated dense; off-band tiles are generated
        dense then immediately compressed and the dense buffer dropped —
        the STARS-H -> HiCMA streaming pipeline, which never holds the full
        dense matrix.  Tiles are independent, so generation + compression
        fans out over ``n_workers`` threads; per-tile compression seeds
        make the result bitwise identical for every worker count.
        """
        desc = TileDescriptor(problem.n, problem.tile_size)
        mat = cls(desc=desc, band_size=band_size, rule=rule, backend=backend,
                  precision=precision)

        def build(ij: tuple[int, int]) -> Tile:
            i, j = ij
            block = problem.tile(i, j)
            if desc.on_band(i, j, band_size):
                return DenseTile(block)
            return mat._compress(block, i, j)

        mat._assemble(build, n_workers)
        return mat

    @classmethod
    def from_dense(
        cls,
        a: np.ndarray,
        tile_size: int,
        rule: TruncationRule,
        band_size: int = 1,
        *,
        backend: CompressionBackend | str | None = None,
        precision: PrecisionPolicy | str | None = None,
        n_workers: int | None = None,
    ) -> "BandTLRMatrix":
        """Tile + compress an explicit dense symmetric matrix (tests, demos)."""
        a = np.asarray(a, dtype=np.float64)
        if a.ndim != 2 or a.shape[0] != a.shape[1]:
            raise ConfigurationError(f"matrix must be square, got {a.shape}")
        desc = TileDescriptor(a.shape[0], tile_size)
        mat = cls(desc=desc, band_size=band_size, rule=rule, backend=backend,
                  precision=precision)

        def build(ij: tuple[int, int]) -> Tile:
            i, j = ij
            block = a[desc.tile_slice(i), desc.tile_slice(j)].copy()
            if desc.on_band(i, j, band_size):
                return DenseTile(block)
            return mat._compress(block, i, j)

        mat._assemble(build, n_workers)
        return mat

    def _assemble(self, build, n_workers: int | None) -> None:
        """Fill ``self.tiles`` by mapping ``build`` over the lower triangle.

        With an active :mod:`repro.obs` observation the assembly is one
        ``"assemble"`` span, every tile build is a nested span, and the
        post-assembly rank spectrum (the auto-tuner's input) lands in the
        ``tile_rank`` histogram under ``stage="assembly"``.
        """
        # Lazy import: repro.runtime's package init pulls in modules that
        # import this one.
        from ..runtime.workpool import parallel_map

        coords = list(self.desc.lower_tiles())
        with obs.span(
            "assemble",
            "assembly",
            tiles=len(coords),
            band_size=self.band_size,
            workers=n_workers,
        ):
            built = parallel_map(
                build, coords, n_workers, label="build_tile", category="assembly"
            )
        for ij, tile in zip(coords, built):
            self.tiles[ij] = tile
        if obs.enabled():
            dense = lowrank = 0
            for tile in built:
                if isinstance(tile, LowRankTile):
                    lowrank += 1
                    obs.histogram_observe("tile_rank", tile.rank, stage="assembly")
                else:
                    dense += 1
            obs.counter_add("assembly_tiles", dense, format="dense")
            obs.counter_add("assembly_tiles", lowrank, format="lowrank")

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def tile(self, i: int, j: int) -> Tile:
        """The stored tile ``(i, j)``, lower triangle only (``i >= j``)."""
        if i < j:
            raise ConfigurationError(
                f"only the lower triangle is stored, requested ({i}, {j})"
            )
        return self.tiles[(i, j)]

    def set_tile(self, i: int, j: int, tile: Tile) -> None:
        """Replace tile ``(i, j)`` (used by factorizations and the runtime)."""
        if i < j:
            raise ConfigurationError(
                f"only the lower triangle is stored, requested ({i}, {j})"
            )
        expected = self.desc.tile_shape(i, j)
        if tile.shape != expected:
            raise ConfigurationError(
                f"tile ({i}, {j}) must have shape {expected}, got {tile.shape}"
            )
        self.tiles[(i, j)] = tile

    def is_dense(self, i: int, j: int) -> bool:
        """True when tile ``(i, j)`` currently holds dense data."""
        return isinstance(self.tile(i, j), DenseTile)

    @property
    def ntiles(self) -> int:
        """Tile count per dimension."""
        return self.desc.ntiles

    @property
    def n(self) -> int:
        """Matrix dimension."""
        return self.desc.n

    # ------------------------------------------------------------------
    # Rank & memory reporting (drives Figs. 1, 2b, 8)
    # ------------------------------------------------------------------
    def rank_grid(self) -> np.ndarray:
        """``NT x NT`` array of off-band tile ranks (−1 elsewhere).

        On-band (dense) tiles and the strict upper triangle are marked −1
        so rank statistics can mask them out, as the paper's heat maps do.
        """
        nt = self.ntiles
        grid = np.full((nt, nt), -1, dtype=np.int64)
        for (i, j), tile in self.tiles.items():
            if isinstance(tile, LowRankTile):
                grid[i, j] = tile.rank
        return grid

    def rank_stats(self) -> tuple[int, float, int]:
        """``(minrank, avgrank, maxrank)`` over compressed tiles.

        Returns ``(0, 0.0, 0)`` when no tile is compressed (dense layout).
        """
        ranks = [t.rank for t in self.tiles.values() if isinstance(t, LowRankTile)]
        if not ranks:
            return (0, 0.0, 0)
        return (int(min(ranks)), float(np.mean(ranks)), int(max(ranks)))

    def memory_elements(self, *, static_maxrank: int | None = None) -> int:
        """Total float64 elements stored in the lower triangle.

        With ``static_maxrank`` the compressed tiles are accounted at the
        PaRSEC-HiCMA-Prev static footprint ``2 * maxrank * b``; without it,
        at the dynamic exact footprint ``2 * k * b`` (PaRSEC-HiCMA-New).
        """
        total = 0
        for tile in self.tiles.values():
            if isinstance(tile, LowRankTile) and static_maxrank is not None:
                total += tile.memory_elements(maxrank=static_maxrank)
            else:
                total += tile.memory_elements()
        return total

    # ------------------------------------------------------------------
    # Band re-generation (auto-tuning pipeline step 3)
    # ------------------------------------------------------------------
    def with_band_size(
        self, band_size: int, problem: CovarianceProblem
    ) -> "BandTLRMatrix":
        """Re-target the matrix to a different ``band_size``.

        Tiles that enter the band are regenerated dense from ``problem``;
        tiles that leave the band are compressed from their dense data.
        Off-band compressed tiles are shared (not copied) — regeneration
        touches only ``O(NT * band_size)`` tiles, which is why Fig. 6d
        finds its cost negligible.
        """
        check_positive_int("band_size", band_size)
        if problem.n != self.n or problem.tile_size != self.desc.tile_size:
            raise ConfigurationError(
                "problem geometry does not match the matrix descriptor"
            )
        out = BandTLRMatrix(
            desc=self.desc,
            band_size=band_size,
            rule=self.rule,
            backend=self.backend,
            precision=self.precision,
        )
        for (i, j), tile in self.tiles.items():
            now_banded = self.desc.on_band(i, j, band_size)
            if now_banded and isinstance(tile, LowRankTile):
                out.tiles[(i, j)] = DenseTile(problem.tile(i, j))
            elif not now_banded and isinstance(tile, DenseTile):
                out.tiles[(i, j)] = out._compress(tile.data, i, j)
            else:
                out.tiles[(i, j)] = tile
        return out

    # ------------------------------------------------------------------
    # Conversion / verification helpers
    # ------------------------------------------------------------------
    def to_dense(self, *, lower_only: bool = False) -> np.ndarray:
        """Materialize the full matrix (small problems / tests).

        With ``lower_only`` the strict upper triangle is left zero —
        useful for comparing Cholesky factors.
        """
        n = self.n
        out = np.zeros((n, n))
        for (i, j), tile in self.tiles.items():
            si, sj = self.desc.tile_slice(i), self.desc.tile_slice(j)
            block = tile.to_dense()
            out[si, sj] = block
            if i != j and not lower_only:
                out[sj, si] = block.T
        return out

    def copy(self) -> "BandTLRMatrix":
        """Deep copy (tiles included)."""
        out = BandTLRMatrix(
            desc=self.desc,
            band_size=self.band_size,
            rule=self.rule,
            backend=self.backend,
            precision=self.precision,
        )
        out.tiles = {ij: t.copy() for ij, t in self.tiles.items()}
        return out

    def compression_error(self, reference: np.ndarray) -> float:
        """Relative Frobenius error against a dense reference matrix."""
        diff = self.to_dense() - reference
        return float(np.linalg.norm(diff) / np.linalg.norm(reference))
