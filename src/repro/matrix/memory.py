"""Memory-footprint accounting: static descriptor vs dynamic designation.

Reproduces the bookkeeping behind Fig. 8: PaRSEC-HiCMA-Prev allocates every
compressed tile at ``2 * maxrank * b`` elements inside a rigid ScaLAPACK-like
descriptor, while PaRSEC-HiCMA-New allocates ``2 * k * b`` exactly and
reallocates when recompression grows a rank.  The tracker records the
high-water mark including transient stacked buffers, which is what bounds
the largest solvable problem on a fixed node budget (Section VIII-F).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .. import obs
from ..utils.exceptions import ConfigurationError
from .tlr_matrix import BandTLRMatrix

__all__ = ["MemoryReport", "footprint_report", "MemoryTracker", "BYTES_PER_ELEMENT"]

#: Double precision storage.
BYTES_PER_ELEMENT = 8


@dataclass(frozen=True)
class MemoryReport:
    """Side-by-side footprint of the two allocation strategies.

    Attributes
    ----------
    static_elements:
        Elements under the Prev scheme (compressed tiles at maxrank).
    dynamic_elements:
        Elements under the New scheme (compressed tiles at exact rank).
    dense_elements:
        Elements a fully dense lower-triangular storage would need.
    maxrank:
        The static scheme's rank cap used for the comparison.
    """

    static_elements: int
    dynamic_elements: int
    dense_elements: int
    maxrank: int

    @property
    def reduction_factor(self) -> float:
        """Static / dynamic footprint ratio (the paper reports up to 44x)."""
        if self.dynamic_elements == 0:
            return float("inf")
        return self.static_elements / self.dynamic_elements

    @property
    def static_bytes(self) -> int:
        return self.static_elements * BYTES_PER_ELEMENT

    @property
    def dynamic_bytes(self) -> int:
        return self.dynamic_elements * BYTES_PER_ELEMENT

    @property
    def dense_bytes(self) -> int:
        return self.dense_elements * BYTES_PER_ELEMENT


def footprint_report(
    matrix: BandTLRMatrix, maxrank: int | None = None
) -> MemoryReport:
    """Compute the Fig. 8 style memory comparison for a tile matrix.

    Parameters
    ----------
    matrix:
        The compressed matrix.
    maxrank:
        Static rank cap of the Prev scheme; defaults to HiCMA's competitive
        limit ``b / 2``.
    """
    b = matrix.desc.tile_size
    if maxrank is None:
        maxrank = b // 2
    if maxrank < 1:
        raise ConfigurationError(f"maxrank must be >= 1, got {maxrank}")
    static = matrix.memory_elements(static_maxrank=maxrank)
    dynamic = matrix.memory_elements()
    dense = sum(
        int(np.prod(matrix.desc.tile_shape(i, j)))
        for (i, j) in matrix.desc.lower_tiles()
    )
    return MemoryReport(
        static_elements=static,
        dynamic_elements=dynamic,
        dense_elements=dense,
        maxrank=maxrank,
    )


@dataclass
class MemoryTracker:
    """Live allocation tracker used during factorizations.

    The executor reports every tile (re)allocation and transient stacked
    buffer; the tracker maintains the current and peak footprints so the
    benchmarks can report before/after-factorization memory like Fig. 8
    and Section VIII-F do.
    """

    current_elements: int = 0
    peak_elements: int = 0
    reallocations: int = 0
    _tile_sizes: dict[tuple[int, int], int] = field(default_factory=dict)

    def register_matrix(self, matrix: BandTLRMatrix) -> None:
        """Seed the tracker with a matrix's initial tile allocations."""
        for (i, j), tile in matrix.tiles.items():
            self.allocate_tile((i, j), tile)

    def allocate_tile(self, key: tuple[int, int], tile) -> None:
        """Record the allocation (or replacement) of a tile's buffers."""
        size = tile.memory_elements()
        old = self._tile_sizes.get(key)
        if old is not None:
            self.current_elements -= old
            if size != old:
                self.reallocations += 1
        self._tile_sizes[key] = size
        self.current_elements += size
        self.peak_elements = max(self.peak_elements, self.current_elements)
        if obs.enabled():
            obs.sample("memory_elements", self.current_elements)
            obs.gauge_set(
                "memory_peak_elements", self.peak_elements, stat="tiles"
            )

    def transient(self, elements: int) -> None:
        """Record a short-lived buffer (e.g. recompression stacks) that
        contributes to the peak but not to the steady-state footprint."""
        if elements < 0:
            raise ConfigurationError("transient size must be >= 0")
        self.peak_elements = max(self.peak_elements, self.current_elements + elements)
        if obs.enabled():
            obs.gauge_set(
                "memory_peak_elements", self.peak_elements, stat="with_transients"
            )

    @property
    def current_bytes(self) -> int:
        return self.current_elements * BYTES_PER_ELEMENT

    @property
    def peak_bytes(self) -> int:
        return self.peak_elements * BYTES_PER_ELEMENT
