"""Tile-matrix descriptors.

A :class:`TileDescriptor` captures the blocking geometry of an ``n x n``
symmetric tile matrix — tile size ``b``, tile count ``NT``, band
membership — without owning any data.  It replaces ScaLAPACK's rigid
uniform-block descriptor with the minimal geometry the rank-aware runtime
needs; rank information lives alongside it (see
:class:`repro.matrix.tlr_matrix.BandTLRMatrix`), which is precisely the
"bridge" the paper builds between the library and the runtime.

Band vocabulary (Section V): sub-diagonal ``d = m - n`` of tile ``(m, n)``
has ``BAND_ID = d + 1``; tiles with ``BAND_ID <= BAND_SIZE`` are *on-band*
(stored dense in BAND-DENSE-TLR), the rest are *off-band* (compressed).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..utils.exceptions import ConfigurationError
from ..utils.validation import check_positive_int

__all__ = ["TileDescriptor"]


@dataclass(frozen=True)
class TileDescriptor:
    """Blocking geometry of a symmetric ``n x n`` tile matrix.

    Attributes
    ----------
    n:
        Matrix dimension (number of rows = columns).
    tile_size:
        Nominal tile dimension ``b``; the last tile in each direction is
        smaller when ``b`` does not divide ``n``.
    """

    n: int
    tile_size: int

    def __post_init__(self) -> None:
        check_positive_int("n", self.n)
        check_positive_int("tile_size", self.tile_size)
        if self.tile_size > self.n:
            raise ConfigurationError(
                f"tile_size {self.tile_size} exceeds matrix size {self.n}"
            )

    @property
    def ntiles(self) -> int:
        """Number of tile rows/columns ``NT = ceil(n / b)``."""
        return -(-self.n // self.tile_size)

    def tile_dim(self, i: int) -> int:
        """Row (= column) count of tile index ``i``."""
        self._check(i)
        if i == self.ntiles - 1:
            return self.n - i * self.tile_size
        return self.tile_size

    def tile_slice(self, i: int) -> slice:
        """Global index range covered by tile row/column ``i``."""
        self._check(i)
        lo = i * self.tile_size
        return slice(lo, min(lo + self.tile_size, self.n))

    def tile_shape(self, i: int, j: int) -> tuple[int, int]:
        """Shape of tile ``(i, j)``."""
        return (self.tile_dim(i), self.tile_dim(j))

    # ------------------------------------------------------------------
    # Band predicates
    # ------------------------------------------------------------------
    @staticmethod
    def band_id(i: int, j: int) -> int:
        """``BAND_ID`` of tile ``(i, j)``: 1 on the diagonal, 2 on the first
        sub-diagonal, and so on (Fig. 3a)."""
        return abs(i - j) + 1

    @staticmethod
    def on_band(i: int, j: int, band_size: int) -> bool:
        """True when tile ``(i, j)`` lies within ``band_size`` sub-diagonals."""
        return abs(i - j) < band_size

    # ------------------------------------------------------------------
    # Iteration helpers (lower-triangular storage)
    # ------------------------------------------------------------------
    def lower_tiles(self):
        """Yield all lower-triangular tile indices ``(i, j)`` with ``i >= j``."""
        nt = self.ntiles
        for i in range(nt):
            for j in range(i + 1):
                yield (i, j)

    def subdiagonal_tiles(self, d: int):
        """Yield the tile indices on sub-diagonal ``d`` (``d = 0`` is the
        diagonal); there are ``NT - d`` of them."""
        if not (0 <= d < self.ntiles):
            raise ConfigurationError(
                f"sub-diagonal {d} out of range [0, {self.ntiles})"
            )
        for j in range(self.ntiles - d):
            yield (j + d, j)

    def count_on_band(self, band_size: int) -> int:
        """Number of lower-triangular tiles with ``BAND_ID <= band_size``."""
        band_size = check_positive_int("band_size", band_size)
        nt = self.ntiles
        total = 0
        for d in range(min(band_size, nt)):
            total += nt - d
        return total

    def count_off_band(self, band_size: int) -> int:
        """Number of lower-triangular tiles outside the band."""
        nt = self.ntiles
        return nt * (nt + 1) // 2 - self.count_on_band(band_size)

    def _check(self, i: int) -> None:
        if not (0 <= i < self.ntiles):
            raise ConfigurationError(
                f"tile index {i} out of range [0, {self.ntiles})"
            )
