"""Binary cluster trees for hierarchical (HODLR) matrices.

Section II situates TLR among the hierarchical low-rank formats: HODLR
(Hierarchically Off-Diagonal Low-Rank) is the canonical *weak
admissibility* representative — every off-diagonal block of a recursive
2x2 partition is compressed whole.  We implement it as a measurable
baseline for the paper's claim that weak admissibility suits 2D problems
while 3D problems (high off-diagonal ranks) favour TLR's flat tiling.

The cluster tree splits an index interval recursively in half down to a
leaf size; Morton-ordered points make the intervals spatially meaningful,
the same locality argument TLR tiles rely on.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..utils.validation import check_positive_int

__all__ = ["ClusterNode", "build_cluster_tree"]


@dataclass
class ClusterNode:
    """A node of the dyadic cluster tree over ``range(lo, hi)``.

    Attributes
    ----------
    lo, hi:
        Half-open index interval covered by the node.
    left, right:
        Children (``None`` for leaves).
    """

    lo: int
    hi: int
    left: "ClusterNode | None" = None
    right: "ClusterNode | None" = None

    @property
    def size(self) -> int:
        return self.hi - self.lo

    @property
    def is_leaf(self) -> bool:
        return self.left is None

    @property
    def depth(self) -> int:
        """Height of the subtree rooted here (0 for a leaf)."""
        if self.is_leaf:
            return 0
        return 1 + max(self.left.depth, self.right.depth)  # type: ignore[union-attr]

    def leaves(self):
        """Yield the leaf nodes left-to-right."""
        if self.is_leaf:
            yield self
        else:
            yield from self.left.leaves()  # type: ignore[union-attr]
            yield from self.right.leaves()  # type: ignore[union-attr]


def build_cluster_tree(n: int, leaf_size: int) -> ClusterNode:
    """Balanced dyadic tree over ``range(n)`` with leaves <= ``leaf_size``.

    Intervals are halved (left child gets the extra element on odd sizes)
    until they fit in a leaf.
    """
    check_positive_int("n", n)
    check_positive_int("leaf_size", leaf_size)

    def build(lo: int, hi: int) -> ClusterNode:
        node = ClusterNode(lo, hi)
        if hi - lo > leaf_size:
            mid = lo + (hi - lo + 1) // 2
            node.left = build(lo, mid)
            node.right = build(mid, hi)
        return node

    return build(0, n)
