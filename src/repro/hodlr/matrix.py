"""HODLR matrices: weak-admissibility compression as a TLR baseline.

A symmetric HODLR matrix stores, at each level of the cluster tree, the
*entire* off-diagonal block ``A[left, right]`` in low-rank form, and
recurses on the two diagonal blocks until dense leaves.  Storage is
``O(n log n · k)`` when the off-diagonal ranks ``k`` stay bounded — the
weak-admissibility assumption that Section II says "is well suited for
... typically 2D problems" and breaks down in 3D, where the top-level
blocks couple large clusters at short distances and carry high ranks.

Only the lower/left off-diagonal factors are stored (symmetry); the
format supports compression, reconstruction, matvec, and rank/memory
reporting — the quantities the 2D-vs-3D baseline comparison needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..linalg.compression import TruncationRule, compress_block
from ..linalg.tiles import LowRankTile
from ..statistics.problem import CovarianceProblem
from ..utils.exceptions import ConfigurationError
from .tree import ClusterNode, build_cluster_tree

__all__ = ["HODLRMatrix"]


@dataclass
class HODLRMatrix:
    """Symmetric HODLR representation of an SPD matrix.

    Attributes
    ----------
    tree:
        The dyadic cluster tree.
    rule:
        Truncation rule used for the off-diagonal blocks.
    offdiag:
        ``(lo_left, lo_right) -> LowRankTile`` of block
        ``A[left-interval, right-interval]`` per internal node.
    leaf_blocks:
        ``lo -> dense ndarray`` per leaf's diagonal block.
    """

    tree: ClusterNode
    rule: TruncationRule
    offdiag: dict[tuple[int, int], LowRankTile] = field(default_factory=dict)
    leaf_blocks: dict[int, np.ndarray] = field(default_factory=dict)

    # ------------------------------------------------------------------
    @classmethod
    def from_problem(
        cls,
        problem: CovarianceProblem,
        rule: TruncationRule,
        *,
        leaf_size: int | None = None,
    ) -> "HODLRMatrix":
        """Compress a covariance problem into HODLR form.

        Blocks are assembled lazily from the problem's points (never the
        full matrix), exactly like the TLR pipeline.
        """
        from ..geometry.distance import block_distances
        from ..statistics.matern import matern

        leaf = leaf_size or problem.tile_size
        tree = build_cluster_tree(problem.n, leaf)
        mat = cls(tree=tree, rule=rule)
        pts = problem.points

        def block(rows: slice, cols: slice, *, diagonal: bool = False) -> np.ndarray:
            dist = block_distances(pts[rows], pts[cols])
            if diagonal:
                # Self-distances are exactly zero; clear GEMM round-off.
                np.fill_diagonal(dist, 0.0)
            return matern(dist, problem.params)

        def visit(node: ClusterNode) -> None:
            if node.is_leaf:
                d = block(
                    slice(node.lo, node.hi), slice(node.lo, node.hi),
                    diagonal=True,
                )
                d[np.diag_indices_from(d)] += problem.nugget
                mat.leaf_blocks[node.lo] = d
                return
            l, r = node.left, node.right
            off = block(slice(l.lo, l.hi), slice(r.lo, r.hi))
            mat.offdiag[(l.lo, r.lo)] = compress_block(off, rule)
            visit(l)
            visit(r)

        visit(tree)
        return mat

    @classmethod
    def from_dense(
        cls, a: np.ndarray, rule: TruncationRule, leaf_size: int
    ) -> "HODLRMatrix":
        """Compress an explicit symmetric matrix (tests, small demos)."""
        a = np.asarray(a, dtype=np.float64)
        if a.ndim != 2 or a.shape[0] != a.shape[1]:
            raise ConfigurationError(f"matrix must be square, got {a.shape}")
        tree = build_cluster_tree(a.shape[0], leaf_size)
        mat = cls(tree=tree, rule=rule)

        def visit(node: ClusterNode) -> None:
            if node.is_leaf:
                mat.leaf_blocks[node.lo] = a[node.lo : node.hi, node.lo : node.hi].copy()
                return
            l, r = node.left, node.right
            mat.offdiag[(l.lo, r.lo)] = compress_block(
                a[l.lo : l.hi, r.lo : r.hi], rule
            )
            visit(l)
            visit(r)

        visit(tree)
        return mat

    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        return self.tree.size

    @property
    def levels(self) -> int:
        """Depth of the cluster tree."""
        return self.tree.depth

    def to_dense(self) -> np.ndarray:
        """Materialize the full symmetric matrix."""
        out = np.zeros((self.n, self.n))

        def visit(node: ClusterNode) -> None:
            if node.is_leaf:
                out[node.lo : node.hi, node.lo : node.hi] = self.leaf_blocks[node.lo]
                return
            l, r = node.left, node.right
            blk = self.offdiag[(l.lo, r.lo)].to_dense()
            out[l.lo : l.hi, r.lo : r.hi] = blk
            out[r.lo : r.hi, l.lo : l.hi] = blk.T
            visit(l)
            visit(r)

        visit(self.tree)
        return out

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """``A @ x`` in ``O(n log n · k)``."""
        x = np.asarray(x, dtype=np.float64)
        squeeze = x.ndim == 1
        if squeeze:
            x = x[:, None]
        if x.shape[0] != self.n:
            raise ConfigurationError(
                f"x has {x.shape[0]} rows but the matrix is {self.n}x{self.n}"
            )
        y = np.zeros_like(x)

        def visit(node: ClusterNode) -> None:
            if node.is_leaf:
                y[node.lo : node.hi] += self.leaf_blocks[node.lo] @ x[node.lo : node.hi]
                return
            l, r = node.left, node.right
            t = self.offdiag[(l.lo, r.lo)]
            if t.rank > 0:
                y[l.lo : l.hi] += t.u @ (t.v.T @ x[r.lo : r.hi])
                y[r.lo : r.hi] += t.v @ (t.u.T @ x[l.lo : l.hi])
            visit(l)
            visit(r)

        visit(self.tree)
        return y[:, 0] if squeeze else y

    # ------------------------------------------------------------------
    def memory_elements(self) -> int:
        """Float64 elements stored (dense leaves + low-rank factors)."""
        total = sum(b.size for b in self.leaf_blocks.values())
        total += sum(t.memory_elements() for t in self.offdiag.values())
        return total

    def rank_profile(self) -> list[tuple[int, int, int]]:
        """``(block_size, rank, level)`` per off-diagonal block, largest
        blocks first — the quantity that explodes in 3D."""
        out = []

        def visit(node: ClusterNode, level: int) -> None:
            if node.is_leaf:
                return
            l, r = node.left, node.right
            t = self.offdiag[(l.lo, r.lo)]
            out.append((max(t.shape), t.rank, level))
            visit(l, level + 1)
            visit(r, level + 1)

        visit(self.tree, 0)
        return sorted(out, reverse=True)

    def max_rank(self) -> int:
        """Largest off-diagonal block rank."""
        return max((t.rank for t in self.offdiag.values()), default=0)

    def compression_error(self, reference: np.ndarray) -> float:
        """Relative Frobenius error against a dense reference."""
        diff = self.to_dense() - reference
        return float(np.linalg.norm(diff) / np.linalg.norm(reference))
