"""HODLR (weak admissibility) baseline format — Section II's contrast."""

from .matrix import HODLRMatrix
from .tree import ClusterNode, build_cluster_tree

__all__ = ["HODLRMatrix", "ClusterNode", "build_cluster_tree"]
