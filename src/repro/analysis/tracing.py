"""Chrome-tracing export of simulated and real execution traces.

``chrome://tracing`` / Perfetto consume a simple JSON event format; the
simulator's per-task trace maps onto it directly (one complete event per
task, one "thread" per reconstructed core lane).  This is how PaRSEC
users actually look at executions (via OTF2/Chrome converters), so the
reproduction ships the same workflow for its simulated runs — and for
*real* parallel runs: the parallel executor's report
(:class:`~repro.runtime.parallel.ParallelExecutionReport`) carries the
same ``trace``/``makespan``/``nodes`` surface, so one exporter serves
both.

The actual serialization lives in :func:`repro.obs.exporters.write_chrome_trace`
(which also accepts live :class:`~repro.obs.tracer.Tracer` objects); this
module keeps the historical entry point and its
:class:`~repro.utils.exceptions.ConfigurationError` contract.

.. deprecated::
    New code should call :func:`repro.obs.exporters.write_chrome_trace`
    directly (or record the run with ``--obs`` and use the written
    ``trace.json``); this wrapper exists only for callers relying on the
    pre-obs import path and error type.
"""

from __future__ import annotations

from pathlib import Path

from ..obs.exporters import write_chrome_trace
from ..runtime.parallel import ParallelExecutionReport
from ..runtime.simulator import SimResult
from ..utils.exceptions import ConfigurationError

__all__ = ["export_chrome_trace"]


def export_chrome_trace(
    result: SimResult | ParallelExecutionReport, path: str | Path
) -> Path:
    """Write the trace as a Chrome-tracing JSON file.

    Processes map to tracing *pids*, reconstructed core lanes to *tids*;
    durations are exported in microseconds (the format's unit).  For a
    parallel-executor report, each worker thread is one pid.

    Parameters
    ----------
    result:
        A simulation result or parallel-execution report produced with
        ``collect_trace=True``.
    path:
        Output file; ``.json`` appended when missing.

    Raises
    ------
    ConfigurationError
        When the result carries no trace (``collect_trace`` was off).
    """
    if result.trace is None:
        raise ConfigurationError(
            "result has no trace; simulate with collect_trace=True"
        )
    return write_chrome_trace(result, path)
