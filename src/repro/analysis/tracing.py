"""Chrome-tracing export of simulated and real execution traces.

``chrome://tracing`` / Perfetto consume a simple JSON event format; the
simulator's per-task trace maps onto it directly (one complete event per
task, one "thread" per reconstructed core lane).  This is how PaRSEC
users actually look at executions (via OTF2/Chrome converters), so the
reproduction ships the same workflow for its simulated runs — and for
*real* parallel runs: the parallel executor's report
(:class:`~repro.runtime.parallel.ParallelExecutionReport`) carries the
same ``trace``/``makespan``/``nodes`` surface, so one exporter serves
both.
"""

from __future__ import annotations

import json
from pathlib import Path

from ..runtime.parallel import ParallelExecutionReport
from ..runtime.simulator import SimResult
from ..utils.exceptions import ConfigurationError

__all__ = ["export_chrome_trace"]


def export_chrome_trace(
    result: SimResult | ParallelExecutionReport, path: str | Path
) -> Path:
    """Write the trace as a Chrome-tracing JSON file.

    Processes map to tracing *pids*, reconstructed core lanes to *tids*;
    durations are exported in microseconds (the format's unit).  For a
    parallel-executor report, each worker thread is one pid.

    Parameters
    ----------
    result:
        A simulation result or parallel-execution report produced with
        ``collect_trace=True``.
    path:
        Output file; ``.json`` appended when missing.
    """
    if result.trace is None:
        raise ConfigurationError(
            "result has no trace; simulate with collect_trace=True"
        )
    path = Path(path)
    if path.suffix != ".json":
        path = path.with_suffix(path.suffix + ".json")

    # Greedy core-lane reconstruction (same scheme as analysis.gantt).
    lanes: dict[int, list[float]] = {}
    events = []
    for tid, proc, start, end in sorted(result.trace, key=lambda r: (r[1], r[2])):
        ends = lanes.setdefault(proc, [])
        for lane, t_end in enumerate(ends):
            if start >= t_end - 1e-15:
                ends[lane] = end
                break
        else:
            lane = len(ends)
            ends.append(end)
        kind = tid[0].value if hasattr(tid[0], "value") else str(tid[0])
        events.append(
            {
                "name": "_".join(str(x) for x in tid),
                "cat": kind,
                "ph": "X",
                "ts": start * 1e6,
                "dur": max(end - start, 0.0) * 1e6,
                "pid": int(proc),
                "tid": int(lane),
            }
        )
    doc = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "makespan_s": result.makespan,
            "nodes": result.nodes,
            "cores_per_node": result.cores_per_node,
        },
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(doc))
    return path
