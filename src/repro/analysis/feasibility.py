"""Memory-feasibility analysis: the largest problem a machine can hold.

Section VIII-E: "PaRSEC-HiCMA-Prev could factorize matrix sizes up to
3.24M on 512 nodes ... because of the memory limit per node 128 GB",
while the dynamic designation pushes far beyond (Section VIII-F reports
9-12 GB/node at 8.64M).  These helpers compute the modelled per-node
footprint of a matrix under either allocation scheme and search for the
maximum tile count that fits a machine — regenerating the paper's
"largest solvable size" comparison without allocating anything.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..matrix.memory import BYTES_PER_ELEMENT
from ..runtime.machine import MachineSpec
from ..utils.exceptions import ConfigurationError
from ..utils.validation import check_positive_int
from .ranks import RankModel

__all__ = ["footprint_per_node_gb", "max_feasible_matrix_size", "FeasibilityReport"]


def footprint_per_node_gb(
    ntiles: int,
    model: RankModel,
    machine: MachineSpec,
    *,
    band_size: int = 1,
    static_maxrank: int | None = None,
    growth: bool = True,
) -> float:
    """Modelled per-node memory (GB) of the factorized matrix.

    Parameters
    ----------
    ntiles:
        Tile count per dimension.
    model:
        Rank field; :meth:`RankModel.final` is used when ``growth`` so the
        footprint includes factorization-time rank growth (the paper's
        before/after distinction in Fig. 8a).
    machine:
        Supplies the node count (tiles spread evenly, the block-cyclic
        ideal).
    band_size:
        Dense band width.
    static_maxrank:
        When given, compressed tiles are accounted at the static
        descriptor size ``2·maxrank·b`` (PaRSEC-HiCMA-Prev); otherwise at
        their exact rank (New).
    """
    check_positive_int("ntiles", ntiles)
    b = model.tile_size
    # The model's rank depends only on the sub-diagonal distance, so the
    # O(NT²) tile sum collapses to an O(NT) sweep over sub-diagonals
    # (NT - d tiles at distance d).
    total = 0
    for d in range(ntiles):
        count = ntiles - d
        if d < band_size:
            total += count * b * b
        elif static_maxrank is not None:
            total += count * 2 * b * static_maxrank
        else:
            k = model.final(d, 0) if growth else model.rank(d, 0)
            total += count * 2 * b * k
    return total * BYTES_PER_ELEMENT / machine.nodes / 2**30


@dataclass(frozen=True)
class FeasibilityReport:
    """Outcome of the maximum-size search.

    Attributes
    ----------
    max_ntiles:
        Largest NT whose footprint fits the per-node capacity.
    max_matrix_size:
        ``max_ntiles * b``.
    footprint_gb:
        Per-node GB at that size.
    """

    max_ntiles: int
    max_matrix_size: int
    footprint_gb: float


def max_feasible_matrix_size(
    model: RankModel,
    machine: MachineSpec,
    *,
    band_size: int = 1,
    static_maxrank: int | None = None,
    capacity_fraction: float = 0.8,
    nt_cap: int = 4096,
) -> FeasibilityReport:
    """Largest matrix (in tiles) fitting ``capacity_fraction`` of memory.

    Binary-searches NT; the footprint is monotone in NT, and a fraction
    below 1.0 leaves headroom for vectors, communication buffers, and the
    transient recompression stacks.
    """
    if not (0.0 < capacity_fraction <= 1.0):
        raise ConfigurationError(
            f"capacity_fraction must be in (0, 1], got {capacity_fraction}"
        )
    budget = machine.memory_per_node_GB * capacity_fraction

    def fits(nt: int) -> bool:
        return (
            footprint_per_node_gb(
                nt, model, machine,
                band_size=band_size, static_maxrank=static_maxrank,
            )
            <= budget
        )

    if not fits(1):
        return FeasibilityReport(0, 0, 0.0)
    lo, hi = 1, 2
    while hi <= nt_cap and fits(hi):
        lo, hi = hi, hi * 2
    hi = min(hi, nt_cap)
    while lo < hi:
        mid = (lo + hi + 1) // 2
        if fits(mid):
            lo = mid
        else:
            hi = mid - 1
    return FeasibilityReport(
        max_ntiles=lo,
        max_matrix_size=lo * model.tile_size,
        footprint_gb=footprint_per_node_gb(
            lo, model, machine, band_size=band_size, static_maxrank=static_maxrank
        ),
    )
