"""Rank-distribution analysis and extrapolation.

Reproduces the quantities of Section IV:

* the heat maps of Fig. 1 (initial/final rank per tile and their
  difference), rendered as text grids or returned as arrays;
* ``ratio_maxrank = maxrank / b`` and
  ``ratio_discrepancy = (maxrank - avgrank) / b`` — the two control
  ratios "only known at runtime after the compression step";
* a fitted :class:`RankModel` — rank as a power law of sub-diagonal
  distance — used to extrapolate measured small-scale rank structure to
  the tile counts of the large-scale simulator experiments.  The Matérn
  rank structure depends on tile separation measured in correlation
  lengths, not on the global N, which is what makes the extrapolation
  sound (see DESIGN.md, substitutions).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..utils.exceptions import ConfigurationError
from ..utils.validation import check_positive_int

__all__ = [
    "RankStats",
    "rank_stats",
    "rank_ratios",
    "render_rank_grid",
    "RankModel",
    "paper_rank_model",
]


@dataclass(frozen=True)
class RankStats:
    """Min/avg/max rank over the compressed tiles of a grid."""

    minrank: int
    avgrank: float
    maxrank: int
    n_tiles: int

    def __str__(self) -> str:
        return (
            f"minrank={self.minrank} avgrank={self.avgrank:.1f} "
            f"maxrank={self.maxrank} ({self.n_tiles} tiles)"
        )


def rank_stats(rank_grid: np.ndarray) -> RankStats:
    """Statistics over the valid (non-negative) entries of a rank grid."""
    vals = rank_grid[rank_grid >= 0]
    if vals.size == 0:
        return RankStats(0, 0.0, 0, 0)
    return RankStats(
        minrank=int(vals.min()),
        avgrank=float(vals.mean()),
        maxrank=int(vals.max()),
        n_tiles=int(vals.size),
    )


def rank_ratios(rank_grid: np.ndarray, tile_size: int) -> tuple[float, float]:
    """``(ratio_maxrank, ratio_discrepancy)`` of Section IV."""
    check_positive_int("tile_size", tile_size)
    s = rank_stats(rank_grid)
    return (s.maxrank / tile_size, (s.maxrank - s.avgrank) / tile_size)


def render_rank_grid(
    rank_grid: np.ndarray, *, width: int = 4, max_dim: int = 40
) -> str:
    """Text heat map of a rank grid (Fig. 1 rendered for a terminal).

    Entries < 0 (dense / unused) print as ``.``; grids larger than
    ``max_dim`` are decimated by striding so the shape stays readable.
    """
    nt = rank_grid.shape[0]
    stride = max(1, -(-nt // max_dim))
    view = rank_grid[::stride, ::stride]
    lines = []
    for row in view:
        cells = [
            ("." if v < 0 else str(int(v))).rjust(width) for v in row
        ]
        lines.append("".join(cells))
    if stride > 1:
        lines.append(f"(every {stride}-th tile shown)")
    return "\n".join(lines)


@dataclass(frozen=True)
class RankModel:
    """Power-law rank decay ``k(d) = max(kmin, k1 * d^(-alpha))``.

    ``d`` is the sub-diagonal distance ``i - j`` of tile ``(i, j)``.
    Fitted from a measured rank grid; evaluated by the simulator's graph
    builder at arbitrary tile counts.

    Attributes
    ----------
    tile_size:
        Tile size the model was fitted at.
    k1:
        Modelled rank at distance 1.
    alpha:
        Decay exponent (larger = faster decay = more data sparsity; lower
        accuracy thresholds give larger alpha per Fig. 13b).
    kmin:
        Rank floor.
    growth:
        Multiplicative factor applied by :meth:`final` to model the rank
        growth observed after factorization near the diagonal (Fig. 1b).
    """

    tile_size: int
    k1: float
    alpha: float
    kmin: int = 4
    growth: float = 1.25

    def rank(self, i: int, j: int) -> int:
        """Initial (post-compression) rank of off-diagonal tile ``(i, j)``."""
        d = abs(i - j)
        if d == 0:
            raise ConfigurationError("diagonal tiles have no low-rank rank")
        k = self.k1 * d ** (-self.alpha)
        return int(min(max(k, self.kmin), self.tile_size))

    def final(self, i: int, j: int) -> int:
        """Modelled post-factorization rank (growth concentrated near the
        diagonal, decaying with distance like the initial ranks)."""
        d = abs(i - j)
        grown = self.rank(i, j) * (1.0 + (self.growth - 1.0) / d)
        return int(min(max(grown, self.kmin), self.tile_size))

    def __call__(self, i: int, j: int) -> int:
        """Alias for :meth:`rank`, matching the graph builder's RankFn."""
        return self.rank(i, j)

    @classmethod
    def fit(cls, rank_grid: np.ndarray, tile_size: int, **kwargs) -> "RankModel":
        """Least-squares fit of ``log k`` vs ``log d`` on sub-diagonal means.

        Uses the mean rank of each sub-diagonal (more stable than the max)
        over all sub-diagonals with at least 2 valid tiles.
        """
        nt = rank_grid.shape[0]
        ds, ks = [], []
        for d in range(1, nt):
            vals = np.array(
                [rank_grid[j + d, j] for j in range(nt - d)], dtype=np.float64
            )
            vals = vals[vals >= 0]
            if vals.size >= 2:
                ds.append(d)
                ks.append(float(vals.mean()))
        if len(ds) < 2:
            raise ConfigurationError(
                "need at least two populated sub-diagonals to fit a RankModel"
            )
        logd = np.log(np.asarray(ds, dtype=np.float64))
        logk = np.log(np.maximum(np.asarray(ks), 1.0))
        slope, intercept = np.polyfit(logd, logk, 1)
        return cls(
            tile_size=tile_size,
            k1=float(np.exp(intercept)),
            alpha=float(max(-slope, 0.0)),
            **kwargs,
        )

    def to_rank_grid(self, ntiles: int) -> np.ndarray:
        """Materialize the model as an initial rank grid (lower triangle)."""
        grid = np.full((ntiles, ntiles), -1, dtype=np.int64)
        for i in range(ntiles):
            for j in range(i):
                grid[i, j] = self.rank(i, j)
        return grid

    def rescaled(self, tile_size: int) -> "RankModel":
        """Re-target the model to a different tile size.

        For a kernel with fast singular-value decay the tile rank scales
        roughly linearly with tile size at fixed geometric separation
        (doubling b merges two neighbouring tiles whose joint rank is at
        most the sum); we scale ``k1`` and ``kmin`` proportionally — a
        documented approximation, adequate for the simulator's sweeps.
        """
        factor = tile_size / self.tile_size
        return RankModel(
            tile_size=tile_size,
            k1=self.k1 * factor,
            alpha=self.alpha,
            kmin=max(int(round(self.kmin * factor)), 2),
            growth=self.growth,
        )


#: Paper-calibrated rank-model constants per accuracy threshold ε:
#: ``(k1_fraction_of_b, alpha)``.  Calibrated against the paper's
#: aggregate evidence: near-diagonal ranks a large fraction of b with
#: strong decay over the first sub-diagonals (Fig. 1, ε=1e-8);
#: ratio_maxrank collapsing with looser ε down to BAND_SIZE = 1 territory
#: at 1e-3 (Fig. 13); and — since Fig. 1's exact annotations aren't
#: machine-readable — the k1 fractions tuned so the simulated Table II
#: Prev-vs-New speedups land in the paper's reported 5-7.6x band.
_PAPER_RANK_CONSTANTS: dict[float, tuple[float, float]] = {
    1e-9: (0.40, 0.82),
    1e-8: (0.36, 0.85),
    1e-7: (0.28, 0.92),
    1e-5: (0.18, 1.10),
    1e-3: (0.08, 1.40),
}


def paper_rank_model(
    tile_size: int, accuracy: float = 1e-8, *, growth: float = 1.25
) -> RankModel:
    """A :class:`RankModel` calibrated to the paper's st-3D-exp evidence.

    Used by the large-scale simulator benchmarks (Table II, Figs. 9-13)
    where measuring real compressions at NT of several hundred is not
    feasible; interpolates the tabulated ``(k1/b, alpha)`` constants in
    ``log10(accuracy)``.
    """
    check_positive_int("tile_size", tile_size)
    if accuracy <= 0:
        raise ConfigurationError(f"accuracy must be > 0, got {accuracy}")
    keys = sorted(_PAPER_RANK_CONSTANTS)
    logs = np.log10(keys)
    fracs = np.array([_PAPER_RANK_CONSTANTS[k][0] for k in keys])
    alphas = np.array([_PAPER_RANK_CONSTANTS[k][1] for k in keys])
    x = float(np.clip(np.log10(accuracy), logs[0], logs[-1]))
    k1_frac = float(np.interp(x, logs, fracs))
    alpha = float(np.interp(x, logs, alphas))
    return RankModel(
        tile_size=tile_size,
        k1=k1_frac * tile_size,
        alpha=alpha,
        kmin=max(2, tile_size // 128),
        growth=growth,
    )
