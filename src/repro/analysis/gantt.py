"""Text-mode execution-trace rendering (Gantt charts & timelines).

The paper's Fig. 11 is built from execution traces; the simulator can
collect the same per-task records (``collect_trace=True``), and so can
the real parallel executor (:mod:`repro.runtime.parallel`) — its report
exposes the same ``trace``/``makespan`` surface, so every helper here
accepts either.  These helpers turn a trace into terminal-friendly
views:

* :func:`gantt` — one row per (process, core): time bucketed into
  columns, each cell showing the kernel class that dominated the bucket;
* :func:`utilization_timeline` — busy-core counts over time, the classic
  "how full was the machine" curve.

.. deprecated::
    This module predates :mod:`repro.obs` and survives as a thin view
    layer: lane reconstruction is delegated to
    :func:`repro.obs.exporters.assign_lanes` (the same scheme the Chrome
    exporter uses), and recorded runs are better served by
    ``python -m repro analyze`` /
    :func:`repro.obs.analytics.occupancy`, which work from real task
    spans instead of simulator tuples.  No removal planned while the
    simulator keeps producing tuple traces.
"""

from __future__ import annotations

import numpy as np

from ..obs.exporters import assign_lanes
from ..runtime.parallel import ParallelExecutionReport
from ..runtime.simulator import SimResult
from ..runtime.task import TaskKind
from ..utils.exceptions import ConfigurationError

__all__ = ["gantt", "utilization_timeline"]

#: One-character glyph per task class for the Gantt cells.
_GLYPH = {
    TaskKind.POTRF: "P",
    TaskKind.TRSM: "T",
    TaskKind.SYRK: "S",
    TaskKind.GEMM: "g",
}


def _require_trace(result: SimResult | ParallelExecutionReport) -> list[tuple]:
    if result.trace is None:
        raise ConfigurationError(
            "result has no trace; simulate with collect_trace=True"
        )
    return result.trace


def gantt(
    result: SimResult | ParallelExecutionReport,
    *,
    width: int = 80,
    max_rows: int = 32,
) -> str:
    """Render the trace as one text row per busy process-core.

    Tasks are assigned to core lanes greedily in start order (the
    simulator doesn't pin tasks to cores — lanes are a faithful
    reconstruction since core counts are respected).  ``.`` marks idle
    buckets; letters mark the kind of the task covering the bucket
    (``P``\\ OTRF, ``T``\\ RSM, ``S``\\ YRK, ``g``\\ EMM).
    """
    trace = _require_trace(result)
    if not trace or result.makespan <= 0:
        return "(empty trace)"
    width = max(10, width)

    # Greedy lane assignment per process (shared with the Chrome exporter).
    rows: dict[tuple[int, int], list[tuple]] = {}
    for tid, proc, lane, start, end in assign_lanes(trace):
        rows.setdefault((proc, lane), []).append((tid, start, end))

    dt = result.makespan / width
    out = []
    for (proc, lane) in sorted(rows)[:max_rows]:
        cells = ["."] * width
        for tid, start, end in rows[(proc, lane)]:
            kind = tid[0] if isinstance(tid[0], TaskKind) else None
            glyph = _GLYPH.get(kind, "#")
            c0 = min(int(start / dt), width - 1)
            c1 = min(int(max(end - 1e-15, start) / dt), width - 1)
            for c in range(c0, c1 + 1):
                cells[c] = glyph
        out.append(f"p{proc:<3}c{lane:<3}|" + "".join(cells) + "|")
    if len(rows) > max_rows:
        out.append(f"... ({len(rows) - max_rows} more lanes)")
    out.append(
        f"0{'':.<{width - 2}}{result.makespan:.3g}s   "
        "P=potrf T=trsm S=syrk g=gemm .=idle"
    )
    return "\n".join(out)


def utilization_timeline(
    result: SimResult | ParallelExecutionReport, *, buckets: int = 60
) -> tuple[np.ndarray, np.ndarray]:
    """Busy-core count per time bucket.

    Returns
    -------
    (times, busy):
        Bucket midpoints and the average number of busy cores in each.
    """
    trace = _require_trace(result)
    buckets = max(1, buckets)
    edges = np.linspace(0.0, max(result.makespan, 1e-300), buckets + 1)
    busy = np.zeros(buckets)
    for _, _, start, end in trace:
        if end <= start:
            continue
        lo = np.searchsorted(edges, start, side="right") - 1
        hi = np.searchsorted(edges, end, side="left")
        for bkt in range(max(lo, 0), min(hi, buckets)):
            overlap = min(end, edges[bkt + 1]) - max(start, edges[bkt])
            if overlap > 0:
                busy[bkt] += overlap / (edges[bkt + 1] - edges[bkt])
    mids = 0.5 * (edges[:-1] + edges[1:])
    return mids, busy
