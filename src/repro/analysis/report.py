"""Plain-text table/series rendering for the benchmark harness.

The benchmarks print the same rows/series the paper's tables and figures
report; these helpers keep the formatting uniform and also write CSV next
to the printed output so results are machine-readable.
"""

from __future__ import annotations

import csv
import io
from collections.abc import Sequence
from pathlib import Path

from ..utils.exceptions import ConfigurationError

__all__ = ["format_table", "write_csv", "format_series"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    *,
    title: str | None = None,
    floatfmt: str = ".3f",
) -> str:
    """Render an aligned ASCII table.

    Floats are formatted with ``floatfmt``; everything else with ``str``.
    """
    if any(len(r) != len(headers) for r in rows):
        raise ConfigurationError("row length does not match header length")

    def fmt(x) -> str:
        if isinstance(x, bool):
            return str(x)
        if isinstance(x, float):
            return format(x, floatfmt)
        return str(x)

    cells = [[fmt(x) for x in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
        for i, h in enumerate(headers)
    ]
    sep = "-+-".join("-" * w for w in widths)
    out = io.StringIO()
    if title:
        out.write(title + "\n")
    out.write(" | ".join(h.ljust(w) for h, w in zip(headers, widths)) + "\n")
    out.write(sep + "\n")
    for r in cells:
        out.write(" | ".join(c.rjust(w) for c, w in zip(r, widths)) + "\n")
    return out.getvalue()


def format_series(
    x_label: str,
    y_labels: Sequence[str],
    points: Sequence[tuple],
    *,
    title: str | None = None,
) -> str:
    """Render an (x, y1, y2, ...) series as a table — a text 'figure'."""
    return format_table([x_label, *y_labels], points, title=title)


def write_csv(
    path: str | Path, headers: Sequence[str], rows: Sequence[Sequence]
) -> Path:
    """Write a results CSV, creating parent directories."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(headers)
        writer.writerows(rows)
    return path
