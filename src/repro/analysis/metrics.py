"""Performance metrics derived from simulated or real executions.

Helpers behind the evaluation figures: occupancy summaries (Fig. 11),
panel-release comparisons (Fig. 9), speedup tables (Table II), and
strong/weak scaling efficiency (Fig. 12).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..runtime.simulator import SimResult
from ..utils.exceptions import ConfigurationError

__all__ = [
    "OccupancySummary",
    "occupancy_summary",
    "panel_release_gain",
    "speedup",
    "strong_scaling_efficiency",
    "weak_scaling_efficiency",
]


@dataclass(frozen=True)
class OccupancySummary:
    """Busy/idle decomposition of a simulated run (Fig. 11).

    Attributes
    ----------
    makespan:
        Simulated seconds.
    busy_per_process:
        Core-seconds of work per process.
    idle_per_process:
        Core-seconds of idleness per process.
    mean_occupancy:
        Average fraction of core time spent busy.
    imbalance:
        ``max(busy) / mean(busy) - 1`` — load imbalance across processes
        (0 = perfectly balanced).
    achieved_gflops:
        Aggregate modelled throughput.
    """

    makespan: float
    busy_per_process: np.ndarray
    idle_per_process: np.ndarray
    mean_occupancy: float
    imbalance: float
    achieved_gflops: float


def occupancy_summary(result) -> OccupancySummary:
    """Summarize per-process busy/idle time from a simulation result (or
    any object with the same ``busy``/``makespan``/``occupancy`` surface,
    e.g. a parallel-executor report, whose workers read as processes)."""
    capacity = result.cores_per_node * result.makespan
    idle = np.maximum(capacity - result.busy, 0.0)
    mean_busy = float(result.busy.mean()) if result.busy.size else 0.0
    imbalance = (
        float(result.busy.max() / mean_busy - 1.0) if mean_busy > 0 else 0.0
    )
    return OccupancySummary(
        makespan=result.makespan,
        busy_per_process=result.busy,
        idle_per_process=idle,
        mean_occupancy=float(result.occupancy.mean()),
        imbalance=imbalance,
        achieved_gflops=result.achieved_gflops,
    )


def panel_release_gain(
    baseline: SimResult, improved: SimResult
) -> np.ndarray:
    """Relative panel-release advance of ``improved`` over ``baseline``.

    Entry ``k`` is ``(t_base[k] - t_new[k]) / t_base[k]`` — the fraction of
    the baseline's release time saved for panel ``k`` (Fig. 9 shows every
    panel released significantly earlier in PaRSEC-HiCMA-New).
    """
    tb = np.asarray(baseline.panel_done, dtype=np.float64)
    tn = np.asarray(improved.panel_done, dtype=np.float64)
    if tb.shape != tn.shape:
        raise ConfigurationError(
            f"panel counts differ: {tb.shape} vs {tn.shape}"
        )
    with np.errstate(divide="ignore", invalid="ignore"):
        gain = np.where(tb > 0, (tb - tn) / tb, 0.0)
    return gain


def speedup(baseline_seconds: float, improved_seconds: float) -> float:
    """Classic speedup ratio; guards division by zero."""
    if improved_seconds <= 0:
        raise ConfigurationError("improved time must be positive")
    return baseline_seconds / improved_seconds


def strong_scaling_efficiency(
    times: dict[int, float], *, base_nodes: int | None = None
) -> dict[int, float]:
    """Strong-scaling efficiency ``T(p0)·p0 / (T(p)·p)`` per node count."""
    if not times:
        raise ConfigurationError("no timings supplied")
    p0 = base_nodes if base_nodes is not None else min(times)
    t0 = times[p0]
    return {p: (t0 * p0) / (t * p) for p, t in sorted(times.items())}


def weak_scaling_efficiency(
    times: dict[int, float], *, base_nodes: int | None = None
) -> dict[int, float]:
    """Weak-scaling efficiency ``T(p0) / T(p)`` per node count
    (work per node held fixed by the caller)."""
    if not times:
        raise ConfigurationError("no timings supplied")
    p0 = base_nodes if base_nodes is not None else min(times)
    t0 = times[p0]
    return {p: t0 / t for p, t in sorted(times.items())}
