"""Analysis & reporting: rank structure, performance metrics, tables."""

from .feasibility import (
    FeasibilityReport,
    footprint_per_node_gb,
    max_feasible_matrix_size,
)
from .metrics import (
    OccupancySummary,
    occupancy_summary,
    panel_release_gain,
    speedup,
    strong_scaling_efficiency,
    weak_scaling_efficiency,
)
from .ranks import (
    RankModel,
    RankStats,
    paper_rank_model,
    rank_ratios,
    rank_stats,
    render_rank_grid,
)
from .report import format_series, format_table, write_csv

__all__ = [
    "FeasibilityReport",
    "footprint_per_node_gb",
    "max_feasible_matrix_size",
    "RankModel",
    "RankStats",
    "rank_stats",
    "rank_ratios",
    "render_rank_grid",
    "paper_rank_model",
    "OccupancySummary",
    "occupancy_summary",
    "panel_release_gain",
    "speedup",
    "strong_scaling_efficiency",
    "weak_scaling_efficiency",
    "format_table",
    "format_series",
    "write_csv",
]
