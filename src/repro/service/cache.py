"""Factor cache: geometry-keyed, LRU-by-bytes store of Cholesky factors.

The service's economics rest on one asymmetry: a BAND-DENSE-TLR
factorization costs :math:`O(N b^2 NT)` while a solve against the factor
costs :math:`O(N b + N k NT)` — orders of magnitude apart at the paper's
scales.  H2OPUS-TLR (PAPERS.md, 2108.11932) wins its throughput by
amortizing setup across repeated use; this module is that amortization
for the solve-serving workload: factorize once per *factor identity*,
keep the factor resident, serve every later request from memory.

A factor identity (:class:`FactorKey`) is the full tuple of inputs that
determine the factor's numerical content:

* the **geometry hash** — SHA-256 over the problem's point coordinates,
  tile size, and nugget (the literal bytes; any perturbation is a new
  identity);
* the **kernel** name and its **θ** parameter vector;
* the truncation **ε** and optional rank cap;
* the dense **band** width (``"auto"`` is part of the identity — the
  tuner's choice is deterministic for a given problem, but an explicit
  band is a different request even when the integers coincide);
* the ε-resolved **precision identity** (see below).

Precision is the subtle field.  ``"adaptive"`` is a request, not a
storage fact — what the factor holds depends on ε versus the policy
floor.  Both sides of the cache resolve through the *same* function
(:func:`repro.linalg.precision.precision_identity` on the request side,
:attr:`MixedPrecisionReport.identity
<repro.linalg.precision.MixedPrecisionReport.identity>` on the realized
side), and :meth:`FactorCache.install` refuses any entry whose realized
identity is incompatible with its key — so an fp32-adaptive factor can
never be served to an fp64-strict request, by construction rather than
by convention.

Eviction is LRU by resident bytes (factors are large and few; counting
entries would let one dense-band giant evict everything).  A warm-start
tier rehydrates from PR-4 panel-frontier checkpoints: when a
``warm_dir`` is configured, each factor identity gets its own checkpoint
subdirectory, cold builds write checkpoints there, and a later cache
miss resumes from the completed frontier instead of refactorizing.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from .. import obs
from ..core.api import TLRSolver
from ..core.factorize import FactorizationReport
from ..linalg.precision import identity_compatible, precision_identity
from ..matrix.tlr_matrix import BandTLRMatrix
from ..statistics.problem import CovarianceProblem
from ..utils.exceptions import ConfigurationError

__all__ = [
    "geometry_hash",
    "FactorKey",
    "FactorRecipe",
    "CacheEntry",
    "CacheStats",
    "FactorCache",
]


def geometry_hash(problem: CovarianceProblem) -> str:
    """SHA-256 of a problem's point cloud and tiling (hex digest).

    Hashes the literal float64 coordinate bytes plus the array shape,
    tile size, and nugget — everything about the problem that shapes
    the covariance matrix other than the kernel parameters (which the
    :class:`FactorKey` carries explicitly as ``kernel``/``theta``).
    """
    h = hashlib.sha256()
    pts = np.ascontiguousarray(problem.points, dtype=np.float64)
    h.update(repr(pts.shape).encode())
    h.update(pts.tobytes())
    h.update(repr(("tile_size", problem.tile_size)).encode())
    h.update(repr(("nugget", float(problem.nugget))).encode())
    return h.hexdigest()


@dataclass(frozen=True)
class FactorKey:
    """One factor identity: (geometry hash, kernel, θ, ε, band, precision).

    Hashable and order-stable — the cache keys on it directly.  Build
    one with :meth:`from_problem` (or through a :class:`FactorRecipe`),
    which resolves the precision spec to its ε-resolved identity via
    :func:`~repro.linalg.precision.precision_identity`.
    """

    geometry: str
    kernel: str
    theta: tuple[float, ...]
    eps: float
    band_size: int | str
    precision: str
    maxrank: int | None = None

    @classmethod
    def from_problem(
        cls,
        problem: CovarianceProblem,
        *,
        accuracy: float,
        band_size: int | str = "auto",
        precision=None,
        maxrank: int | None = None,
    ) -> "FactorKey":
        return cls(
            geometry=geometry_hash(problem),
            kernel="matern",
            theta=problem.params.as_tuple(),
            eps=float(accuracy),
            band_size=band_size,
            precision=precision_identity(precision, accuracy),
            maxrank=maxrank,
        )

    def digest(self, length: int = 12) -> str:
        """Short stable hex digest for labels and warm-dir names."""
        h = hashlib.sha256()
        h.update(repr((
            self.geometry, self.kernel, self.theta, self.eps,
            self.band_size, self.precision, self.maxrank,
        )).encode())
        return h.hexdigest()[:length]


@dataclass(frozen=True)
class FactorRecipe:
    """A :class:`FactorKey` plus everything needed to *build* its factor.

    The key identifies the factor's numerical content; the recipe adds
    the build-only knobs that change cost but not identity (compression
    backend, batching, assembly/factorization worker counts) and the
    original precision *spec* (the key holds only its ε-resolved
    identity, but the build needs the policy itself).
    """

    problem: CovarianceProblem
    accuracy: float = 1e-8
    band_size: int | str = "auto"
    compression: str | None = "auto"
    precision: object = None
    maxrank: int | None = None
    n_workers: int | None = None
    batch: bool = True

    def key(self) -> FactorKey:
        return FactorKey.from_problem(
            self.problem,
            accuracy=self.accuracy,
            band_size=self.band_size,
            precision=self.precision,
            maxrank=self.maxrank,
        )

    def build(
        self, *, checkpoint=None, resume: bool = False
    ) -> tuple[BandTLRMatrix, FactorizationReport]:
        """Compress + factorize from scratch (or resume a checkpoint)."""
        solver = TLRSolver.from_problem(
            self.problem,
            accuracy=self.accuracy,
            band_size=self.band_size,
            maxrank=self.maxrank,
            compression=self.compression,
            precision=self.precision,
            n_workers=self.n_workers,
        )
        report = solver.factorize(
            n_workers=self.n_workers,
            batch=self.batch,
            checkpoint=checkpoint,
            resume=resume,
        )
        return solver.matrix, report


@dataclass
class CacheEntry:
    """One resident factor with its provenance and byte accounting."""

    key: FactorKey
    matrix: BandTLRMatrix
    report: FactorizationReport | None
    nbytes: int
    hits: int = 0

    @property
    def realized_precision(self) -> str:
        """ε-resolved identity of what the factor actually stores."""
        if self.report is not None and self.report.precision_report is not None:
            return self.report.precision_report.identity
        return "fp64"


@dataclass(frozen=True)
class CacheStats:
    """Point-in-time snapshot of the cache's counters."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    warm_starts: int = 0
    factorizations: int = 0
    installs: int = 0
    resident_entries: int = 0
    resident_bytes: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class FactorCache:
    """LRU-by-bytes factor store with single-flight builds and warm start.

    Parameters
    ----------
    max_bytes:
        Resident-byte budget; ``None`` disables eviction.  The entry
        just inserted is never evicted (a single factor larger than the
        budget stays resident until something else displaces it).
    warm_dir:
        Warm-start tier root.  Each factor identity checkpoints into
        ``warm_dir/<key.digest()>`` during cold builds; later misses on
        the same identity resume from the completed panel frontier via
        the PR-4 checkpoint machinery instead of refactorizing.

    Thread safety: lookups and installs are guarded by one lock; builds
    run *outside* it under a per-key build lock, so concurrent misses on
    the same identity factorize exactly once (single-flight) while
    different identities build in parallel.
    """

    def __init__(
        self,
        max_bytes: int | None = None,
        warm_dir: str | Path | None = None,
    ) -> None:
        if max_bytes is not None and max_bytes <= 0:
            raise ConfigurationError(
                f"max_bytes must be positive or None, got {max_bytes}"
            )
        self.max_bytes = max_bytes
        self.warm_dir = Path(warm_dir) if warm_dir is not None else None
        self._lock = threading.Lock()
        self._entries: OrderedDict[FactorKey, CacheEntry] = OrderedDict()
        self._building: dict[FactorKey, threading.Lock] = {}
        self._resident_bytes = 0
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._warm_starts = 0
        self._factorizations = 0
        self._installs = 0

    # -- lookups ---------------------------------------------------------
    def get(self, key: FactorKey) -> CacheEntry | None:
        """LRU lookup; counts a hit or a miss and updates recency."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
                obs.counter_add("service_cache_miss")
                return None
            self._entries.move_to_end(key)
            entry.hits += 1
            self._hits += 1
            obs.counter_add("service_cache_hit")
            return entry

    def _peek(self, key: FactorKey) -> CacheEntry | None:
        """Lookup without touching counters or recency (build re-check)."""
        with self._lock:
            return self._entries.get(key)

    def __contains__(self, key: FactorKey) -> bool:
        with self._lock:
            return key in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    # -- installs / eviction --------------------------------------------
    @staticmethod
    def factor_nbytes(matrix: BandTLRMatrix) -> int:
        return sum(t.memory_bytes() for t in matrix.tiles.values())

    def install(
        self,
        key: FactorKey,
        matrix: BandTLRMatrix,
        report: FactorizationReport | None = None,
    ) -> CacheEntry:
        """Insert a factorized matrix under ``key`` (most-recent position).

        Refuses entries whose realized precision identity is
        incompatible with the key — the satellite invariant: a factor
        whose :attr:`FactorizationReport.precision_report` says fp32
        storage was used can never sit behind an fp64-strict key.
        """
        entry = CacheEntry(
            key=key,
            matrix=matrix,
            report=report,
            nbytes=self.factor_nbytes(matrix),
        )
        if not identity_compatible(key.precision, entry.realized_precision):
            raise ConfigurationError(
                f"factor precision identity {entry.realized_precision!r} "
                f"cannot serve cache key precision {key.precision!r}: an "
                f"fp32-touched factor must never answer an fp64-strict "
                f"request"
            )
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self._resident_bytes -= old.nbytes
            self._entries[key] = entry
            self._resident_bytes += entry.nbytes
            self._installs += 1
            self._evict_locked()
            obs.gauge_set("service_cache_bytes", self._resident_bytes)
            obs.gauge_set("service_cache_entries", len(self._entries))
        return entry

    def _evict_locked(self) -> None:
        if self.max_bytes is None:
            return
        while self._resident_bytes > self.max_bytes and len(self._entries) > 1:
            _, victim = self._entries.popitem(last=False)
            self._resident_bytes -= victim.nbytes
            self._evictions += 1
            obs.counter_add("service_cache_eviction")

    # -- the miss path ---------------------------------------------------
    def get_or_build(self, recipe: FactorRecipe) -> CacheEntry:
        """Return the recipe's factor, building (or warm-starting) on miss.

        Single-flight per identity: concurrent misses on the same key
        block on one build; the losers re-check and take the winner's
        entry as a hit.  A cache-warm identity therefore never
        refactorizes, no matter how many requests race.
        """
        key = recipe.key()
        entry = self.get(key)
        if entry is not None:
            return entry
        with self._lock:
            build_lock = self._building.setdefault(key, threading.Lock())
        with build_lock:
            entry = self._peek(key)
            if entry is not None:
                # built while we waited for the lock: a hit, not a build
                with self._lock:
                    self._hits += 1
                    self._misses -= 1  # the earlier get() overcounted
                    entry.hits += 1
                obs.counter_add("service_cache_hit")
                return entry
            checkpoint, resume = self._warm_state(key)
            with obs.span(
                "service_factorize", "service",
                key=key.digest(), resume=resume,
            ):
                matrix, report = recipe.build(
                    checkpoint=checkpoint, resume=resume
                )
            with self._lock:
                self._factorizations += 1
                if resume and report.tasks_resumed:
                    self._warm_starts += 1
            if resume and report.tasks_resumed:
                obs.counter_add("service_cache_warm_start")
            return self.install(key, matrix, report)

    def _warm_state(self, key: FactorKey) -> tuple[str | None, bool]:
        """Per-key checkpoint directory and whether it holds a frontier."""
        if self.warm_dir is None:
            return None, False
        ckpt_dir = self.warm_dir / key.digest()
        resume = any(ckpt_dir.glob("ckpt-*.json"))
        return str(ckpt_dir), resume

    # -- introspection ---------------------------------------------------
    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                warm_starts=self._warm_starts,
                factorizations=self._factorizations,
                installs=self._installs,
                resident_entries=len(self._entries),
                resident_bytes=self._resident_bytes,
            )

    def keys(self) -> list[FactorKey]:
        """Resident keys, least- to most-recently used."""
        with self._lock:
            return list(self._entries.keys())
