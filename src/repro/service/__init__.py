"""Solver service: factorize-once/solve-many serving (``repro.service``).

The production consumption pattern for the paper's workload — 3D
geospatial covariance Cholesky — is many solves against few
factorizations (the Matérn-estimation traffic of PAPERS.md 2402.09356).
This package is that serving layer:

* :mod:`~repro.service.cache` — :class:`FactorCache`: factors keyed by
  (geometry hash, kernel, θ, ε, band, precision identity), LRU-by-bytes
  eviction, single-flight builds, checkpoint warm-start;
* :mod:`~repro.service.database` — :class:`ServiceDatabase`: request
  lifecycle bookkeeping with update handlers and atomic bounded
  admission (the SNIPPETS #2/#3 scheduler-database idiom);
* :mod:`~repro.service.server` — :class:`SolverService`: sharded worker
  threads, multi-RHS batching via stacked
  :func:`~repro.core.solve.solve_many` calls, deadlines, backpressure;
* :mod:`~repro.service.loadgen` — closed-loop load generator reporting
  p50/p95/p99 serving latency into the shared perf history.

Quickstart::

    from repro.service import ServiceConfig, SolverService

    with SolverService(ServiceConfig(n_workers=2)) as svc:
        session = svc.session(problem, accuracy=1e-6)
        x = session.solve(rhs)

CLI: ``python -m repro serve`` (demo traffic + report) and
``python -m repro bench-service`` (batched-vs-solo latency benchmark).
"""

from .cache import (
    CacheEntry,
    CacheStats,
    FactorCache,
    FactorKey,
    FactorRecipe,
    geometry_hash,
)
from .database import EVENTS, ServiceDatabase
from .loadgen import LoadReport, records_from_load, run_load
from .server import (
    ServiceConfig,
    ServiceSession,
    ServiceStats,
    SolverService,
    SolveTicket,
    percentiles,
)

__all__ = [
    "geometry_hash",
    "FactorKey",
    "FactorRecipe",
    "CacheEntry",
    "CacheStats",
    "FactorCache",
    "EVENTS",
    "ServiceDatabase",
    "ServiceConfig",
    "SolverService",
    "ServiceSession",
    "ServiceStats",
    "SolveTicket",
    "percentiles",
    "LoadReport",
    "run_load",
    "records_from_load",
]
