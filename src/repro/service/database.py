"""Dispatch bookkeeping in the scheduler-database style (SNIPPETS #2/#3).

The ray-scheduler prototype keeps every object the scheduler reasons
about in a handful of explicit dictionaries (``_pending_needs``,
``_executing_tasks``, ``_finished_objects``, ...) and funnels *every*
state change through registered update handlers, so policy code reacts
to transitions instead of polling shared state.  This module is that
idiom for the solver service's request lifecycle:

* every request is in **exactly one** of ``pending`` → ``executing`` →
  finished (an outcome counter + a bounded recent-history ring);
* every transition goes through :meth:`ServiceDatabase.update`, which
  fires the handlers registered for that event under no lock (handlers
  observe, they don't mutate the database);
* **admission control lives at the transition boundary**: the
  ``submitted`` transition is atomic with the bounded-depth check, so
  the queue depth can never exceed ``max_depth`` — rejection is an
  explicit ``rejected`` transition, not a silent drop.

The service registers obs handlers on construction (queue-depth gauge,
per-outcome counters), which is how the instrumentation stays complete
without the worker code sprinkling metric calls at every return path.

Events: ``submitted``, ``rejected``, ``started``, ``completed``,
``failed``, ``dropped``.
"""

from __future__ import annotations

import threading
from collections import Counter, OrderedDict, deque

__all__ = ["EVENTS", "ServiceDatabase"]

#: The request-lifecycle transitions, in the order a request can see them.
EVENTS = (
    "submitted",   # admitted into pending
    "rejected",    # refused at admission (queue full / service closed)
    "started",     # pending -> executing (a worker took it)
    "completed",   # executing -> finished, result delivered
    "failed",      # executing -> finished, error delivered
    "dropped",     # pending/executing -> finished, deadline passed
)

_FINISHED = ("completed", "failed", "dropped", "rejected")


class ServiceDatabase:
    """Request-state database with update handlers and bounded admission.

    Parameters
    ----------
    max_depth:
        Bounded pending depth; ``None`` disables admission control.
    history:
        How many finished ``(request_id, outcome)`` pairs to retain in
        the recent ring (full counts are kept forever in the outcome
        counter; the ring is for debugging/introspection only).
    """

    def __init__(
        self, max_depth: int | None = None, history: int = 256
    ) -> None:
        self.max_depth = max_depth
        self._lock = threading.Lock()
        self._pending: OrderedDict[int, object] = OrderedDict()
        self._executing: dict[int, object] = {}
        self._outcomes: Counter = Counter()
        self._recent: deque = deque(maxlen=history)
        self._handlers: dict[str, list] = {e: [] for e in EVENTS}

    # -- handlers --------------------------------------------------------
    def on(self, event: str, handler) -> None:
        """Register ``handler(event, request, db)`` for a transition."""
        if event not in self._handlers:
            raise KeyError(f"unknown event {event!r}; one of {EVENTS}")
        self._handlers[event].append(handler)

    def _fire(self, event: str, request) -> None:
        for handler in self._handlers[event]:
            handler(event, request, self)

    # -- transitions -----------------------------------------------------
    def admit(self, request) -> bool:
        """``submitted`` transition, atomic with the depth check.

        Returns ``False`` (after firing ``rejected``) when the pending
        set is at ``max_depth``; the request never enters the database.
        """
        with self._lock:
            if (
                self.max_depth is not None
                and len(self._pending) >= self.max_depth
            ):
                self._outcomes["rejected"] += 1
                self._recent.append((request.id, "rejected"))
                rejected = True
            else:
                self._pending[request.id] = request
                rejected = False
        self._fire("rejected" if rejected else "submitted", request)
        return not rejected

    def start(self, request) -> None:
        """``started`` transition: pending → executing."""
        with self._lock:
            self._pending.pop(request.id, None)
            self._executing[request.id] = request
        self._fire("started", request)

    def finish(self, request, outcome: str) -> None:
        """Terminal transition: ``completed``/``failed``/``dropped``."""
        if outcome not in _FINISHED:
            raise KeyError(
                f"unknown outcome {outcome!r}; one of {_FINISHED}"
            )
        with self._lock:
            self._pending.pop(request.id, None)
            self._executing.pop(request.id, None)
            self._outcomes[outcome] += 1
            self._recent.append((request.id, outcome))
        self._fire(outcome, request)

    # -- introspection ---------------------------------------------------
    def depth(self) -> int:
        """Pending requests (the admission-controlled quantity)."""
        with self._lock:
            return len(self._pending)

    def executing(self) -> int:
        with self._lock:
            return len(self._executing)

    def outcome_counts(self) -> dict[str, int]:
        with self._lock:
            return dict(self._outcomes)

    def recent(self) -> list[tuple[int, str]]:
        with self._lock:
            return list(self._recent)

    def pending_requests(self) -> list:
        """Snapshot of pending requests in FIFO order (for shutdown)."""
        with self._lock:
            return list(self._pending.values())
