"""Closed-loop load generator for the solver service.

The serving claim this repo makes — multi-RHS batching beats
one-at-a-time serving under concurrency — needs a measurement harness,
not an anecdote.  This module is that harness:

* **closed-loop clients**: each of ``clients`` threads keeps exactly
  one request in flight (submit → wait → submit), the standard model
  for latency benchmarking because offered load adapts to service rate
  instead of queueing unboundedly;
* **factorize outside the window**: :func:`run_load` warms the session
  first, so the measured distribution is pure serving latency (the
  factorization cost is the cache's business and is reported
  separately);
* **latency percentiles**: per-request submit→complete intervals are
  collected client-side and summarized as p50/p95/p99 — medians for the
  typical request, tails for what batching and admission control do
  under load;
* **bounded-memory streaming stats**: every client-observed latency is
  also folded into a :class:`~repro.obs.sketch.LogHistogram`
  (``report.sketch``) and — when the service carries a live aggregator —
  streamed as ``client_latency_s``, so long-running load keeps a live
  p50/p95/p99 without the raw list being required for them (the raw
  ``times_s`` path stays, for ``BenchRecord``/``repro compare``
  compatibility);
* **history records**: :func:`records_from_load` converts a report into
  :class:`repro.perf.BenchRecord` rows whose ``times_s`` are the raw
  latency samples, so the median *is* the p50 and the IQR travels with
  the record — the same noise-aware dual gate (`python -m repro
  compare`) that protects every other benchmark protects the serving
  path too.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

import numpy as np

from ..obs.sketch import LogHistogram
from ..utils.exceptions import DeadlineExceededError, QueueFullError
from .server import ServiceSession, percentiles

__all__ = ["LoadReport", "run_load", "records_from_load"]

#: Cap on latency samples persisted per record (history rows stay small).
MAX_RECORD_SAMPLES = 1000


@dataclass
class LoadReport:
    """Outcome of one closed-loop load run."""

    clients: int
    requests_per_client: int
    completed: int = 0
    rejected: int = 0
    dropped: int = 0
    failed: int = 0
    wall_s: float = 0.0
    p50_ms: float = 0.0
    p95_ms: float = 0.0
    p99_ms: float = 0.0
    mean_batch_width: float = 0.0
    max_batch_width: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    factorizations: int = 0
    warm_starts: int = 0
    latencies_s: tuple = field(default_factory=tuple, repr=False)
    sketch: LogHistogram | None = field(default=None, repr=False)

    @property
    def throughput_rps(self) -> float:
        return self.completed / self.wall_s if self.wall_s > 0 else 0.0


def run_load(
    session: ServiceSession,
    *,
    clients: int = 8,
    requests_per_client: int = 10,
    seed: int = 0,
    deadline_s: float | None = None,
    retry_rejected: bool = True,
    retry_sleep_s: float = 0.001,
) -> LoadReport:
    """Drive a warmed session with closed-loop concurrent clients.

    Each client thread draws its own RNG stream (``seed + client``) and
    keeps one request in flight at a time.  A
    :class:`~repro.utils.exceptions.QueueFullError` is counted as a
    rejection and — with ``retry_rejected`` — retried after a short
    sleep, so the closed loop completes its request quota while still
    recording how often admission control pushed back.  Deadline drops
    and failures are counted and *not* retried.

    The session is warmed before the clock starts: the report measures
    serving, not factorization.
    """
    session.warm()
    n = session.recipe.problem.n
    report = LoadReport(clients=clients, requests_per_client=requests_per_client)
    report.sketch = LogHistogram()
    live = getattr(session.service, "live", None)
    lock = threading.Lock()
    latencies: list[float] = []

    def client(cid: int) -> None:
        rng = np.random.default_rng(seed + cid)
        done = 0
        while done < requests_per_client:
            rhs = rng.standard_normal(n)
            try:
                ticket = session.submit(rhs, deadline_s=deadline_s)
                ticket.result()
            except QueueFullError:
                with lock:
                    report.rejected += 1
                if not retry_rejected:
                    done += 1
                    continue
                time.sleep(retry_sleep_s)
                continue
            except DeadlineExceededError:
                with lock:
                    report.dropped += 1
                done += 1
                continue
            except Exception:
                with lock:
                    report.failed += 1
                done += 1
                continue
            latency = ticket.latency_s
            report.sketch.add(latency)  # thread-safe streaming path
            if live is not None:
                live.emit_latency("client_latency_s", latency)
            with lock:
                report.completed += 1
                latencies.append(latency)
            done += 1

    threads = [
        threading.Thread(target=client, args=(cid,), name=f"loadgen-{cid}")
        for cid in range(clients)
    ]
    t0 = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    report.wall_s = time.perf_counter() - t0

    report.latencies_s = tuple(latencies)
    p50, p95, p99 = percentiles(latencies)
    report.p50_ms, report.p95_ms, report.p99_ms = (
        p50 * 1e3, p95 * 1e3, p99 * 1e3,
    )
    stats = session.service.stats()
    report.mean_batch_width = stats.mean_batch_width
    report.max_batch_width = stats.max_batch_width
    cache = stats.cache
    report.cache_hits = cache.hits
    report.cache_misses = cache.misses
    report.factorizations = cache.factorizations
    report.warm_starts = cache.warm_starts
    return report


def records_from_load(
    report: LoadReport,
    *,
    name: str,
    run: str | None = None,
    config: dict | None = None,
    warmup: int = 0,
):
    """One :class:`~repro.perf.BenchRecord` whose samples are latencies.

    ``timing.median_s`` is then exactly the run's p50, and the IQR is
    the latency spread — so ``python -m repro compare`` applies its
    dual (relative + noise) gate to serving latency unchanged.  Samples
    are capped at :data:`MAX_RECORD_SAMPLES` by even subsampling to
    keep history rows bounded.
    """
    from .. import perf

    samples = list(report.latencies_s)
    if len(samples) > MAX_RECORD_SAMPLES:
        idx = np.linspace(0, len(samples) - 1, MAX_RECORD_SAMPLES)
        samples = [samples[int(i)] for i in idx]
    if not samples:
        samples = [0.0]
    cfg = {
        "clients": report.clients,
        "requests_per_client": report.requests_per_client,
        "completed": report.completed,
        "rejected": report.rejected,
        "dropped": report.dropped,
        "mean_batch_width": round(report.mean_batch_width, 3),
        "p95_ms": round(report.p95_ms, 3),
        "p99_ms": round(report.p99_ms, 3),
        "throughput_rps": round(report.throughput_rps, 3),
    }
    cfg.update(config or {})
    return perf.BenchRecord(
        name=name,
        run=run or ("service-" + time.strftime("%Y%m%dT%H%M%SZ", time.gmtime())),
        timing=perf.Timing(times_s=tuple(samples)),
        config=cfg,
        ts=time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        warmup=warmup,
    )
