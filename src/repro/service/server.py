"""The solver service: sharded workers, batched solves, bounded queues.

:class:`SolverService` is the factorize-once/solve-many runtime the
production workload (ROADMAP item 2) consumes: clients open a
:class:`ServiceSession` for a covariance problem and fire right-hand
sides at it; the service keys the problem into the
:class:`~repro.service.cache.FactorCache`, factorizes at most once per
identity, and serves every solve from the resident factor.

Architecture, in the order a request sees it:

1. **Admission** — :meth:`ServiceSession.submit` runs the bounded-depth
   check atomically in the scheduler database
   (:class:`~repro.service.database.ServiceDatabase`).  A full queue is
   an explicit :class:`~repro.utils.exceptions.QueueFullError`; a
   stopped service is a
   :class:`~repro.utils.exceptions.ServiceClosedError`.  Backpressure
   is the caller's signal, never silent buffering.
2. **Sharding** — admitted requests land on the worker shard owning
   their factor identity (``key.digest() mod n_workers``).  A factor is
   resident with exactly one worker, so every request against it meets
   the warm cache *and* the batcher, and workers never contend on the
   same factor.
3. **Batching** — a worker drains its shard queue and groups up to
   ``max_batch`` same-key requests into one stacked
   :func:`~repro.core.solve.solve_many` call: one substitution sweep,
   one ``solve_triangular`` per diagonal tile for *all* pending
   columns (the :mod:`repro.linalg.batched` marshaling idiom on the
   solve side).  Requests for other keys keep their FIFO positions.
4. **Deadlines** — a request whose deadline passed while queued is
   dropped at dequeue (``dropped`` transition,
   :class:`~repro.utils.exceptions.DeadlineExceededError` to the
   waiter) — a dead request must not widen a live batch.

Obs instrumentation rides the database's update handlers (queue-depth
gauge, per-outcome counters) plus worker-side spans: a
``service_batch`` span per stacked solve, a replayed ``service_request``
span per request covering its full queue-to-completion lifetime, and
histograms of batch width and request latency.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from .. import obs
from ..core.api import TLRSolver
from ..core.solve import solve_many, solve_spd
from ..utils.exceptions import (
    ConfigurationError,
    DeadlineExceededError,
    QueueFullError,
    ServiceClosedError,
)
from .cache import FactorCache, FactorKey, FactorRecipe
from .database import ServiceDatabase

__all__ = [
    "ServiceConfig",
    "SolveTicket",
    "ServiceSession",
    "ServiceStats",
    "SolverService",
    "percentiles",
]


def percentiles(
    samples, pcts: tuple[float, ...] = (50.0, 95.0, 99.0)
) -> tuple[float, ...]:
    """Latency percentiles by linear interpolation (empty → zeros).

    The service reports p50/p95/p99 of *client-observed* latency —
    submit to completion, queueing included — which is the quantity a
    serving SLO is written against (the median says what a typical
    request sees; the tails say what admission control and batching do
    under load).
    """
    if len(samples) == 0:
        return tuple(0.0 for _ in pcts)
    arr = np.asarray(list(samples), dtype=np.float64)
    return tuple(float(np.percentile(arr, p)) for p in pcts)


@dataclass(frozen=True)
class ServiceConfig:
    """Service-level knobs (per-session solver knobs live on the session).

    Attributes
    ----------
    n_workers:
        Solver worker threads = shard count.  Each factor identity is
        owned by exactly one shard.
    max_queue_depth:
        Bounded pending depth across all shards; submissions beyond it
        raise :class:`~repro.utils.exceptions.QueueFullError`.
    max_batch:
        Most same-factor requests stacked into one
        :func:`~repro.core.solve.solve_many` call.  ``1`` disables
        batching (the bench's one-at-a-time arm).
    cache_bytes:
        :class:`~repro.service.cache.FactorCache` LRU budget
        (``None`` = unbounded).
    warm_dir:
        Checkpoint warm-start tier root (``None`` = off).
    default_deadline_s:
        Deadline budget applied to requests that don't carry their own
        (``None`` = requests wait forever).
    """

    n_workers: int = 2
    max_queue_depth: int = 64
    max_batch: int = 16
    cache_bytes: int | None = None
    warm_dir: str | Path | None = None
    default_deadline_s: float | None = None

    def __post_init__(self) -> None:
        if self.n_workers < 1:
            raise ConfigurationError("n_workers must be >= 1")
        if self.max_queue_depth < 1:
            raise ConfigurationError("max_queue_depth must be >= 1")
        if self.max_batch < 1:
            raise ConfigurationError("max_batch must be >= 1")


class SolveTicket:
    """One in-flight solve request: a waitable result slot.

    Created by :meth:`ServiceSession.submit`; resolved by a worker.
    ``submitted_s``/``started_s``/``completed_s`` are monotonic-clock
    stamps; :attr:`latency_s` is the client-observed submit→complete
    interval and :attr:`wait_s` the queue share of it.
    """

    __slots__ = (
        "id", "key", "rhs", "deadline_s", "submitted_s", "started_s",
        "completed_s", "batch_width", "_obs_submit", "_event",
        "_result", "_error",
    )

    def __init__(
        self,
        request_id: int,
        key: FactorKey,
        rhs: np.ndarray,
        deadline_s: float | None,
    ) -> None:
        self.id = request_id
        self.key = key
        self.rhs = rhs
        self.deadline_s = deadline_s          # absolute, monotonic clock
        self.submitted_s = time.monotonic()
        self.started_s: float | None = None
        self.completed_s: float | None = None
        self.batch_width = 0
        self._obs_submit = obs.clock()
        self._event = threading.Event()
        self._result: np.ndarray | None = None
        self._error: BaseException | None = None

    # -- waiter side -----------------------------------------------------
    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: float | None = None) -> np.ndarray:
        """Block for the solution; re-raises the request's failure."""
        if not self._event.wait(timeout):
            raise TimeoutError(
                f"request {self.id} not finished within {timeout}s"
            )
        if self._error is not None:
            raise self._error
        return self._result

    @property
    def latency_s(self) -> float | None:
        if self.completed_s is None:
            return None
        return self.completed_s - self.submitted_s

    @property
    def wait_s(self) -> float | None:
        if self.started_s is None:
            return None
        return self.started_s - self.submitted_s

    # -- worker side -----------------------------------------------------
    def _finish(self, result=None, error=None) -> None:
        self.completed_s = time.monotonic()
        self._result = result
        self._error = error
        self._event.set()

    def expired(self, now: float | None = None) -> bool:
        if self.deadline_s is None:
            return False
        return (time.monotonic() if now is None else now) > self.deadline_s


@dataclass
class ServiceStats:
    """Point-in-time service counters + latency percentiles."""

    completed: int = 0
    failed: int = 0
    rejected: int = 0
    dropped: int = 0
    batches: int = 0
    queue_depth: int = 0
    mean_batch_width: float = 0.0
    max_batch_width: int = 0
    p50_ms: float = 0.0
    p95_ms: float = 0.0
    p99_ms: float = 0.0
    cache: object = None
    latencies_s: tuple = field(default_factory=tuple, repr=False)


class _Shard:
    """One worker's queue: a condition-guarded FIFO list.

    A list (not a deque) because the batcher extracts same-key items
    from the middle while preserving every other request's position.
    """

    def __init__(self) -> None:
        self.cond = threading.Condition()
        self.items: list[SolveTicket] = []


class ServiceSession:
    """A client's handle on one factor identity.

    Bind a problem (plus solver knobs) once; every :meth:`submit` /
    :meth:`solve` then routes to the same cached factor.  Sessions are
    cheap — the factor builds lazily on first use (or eagerly via
    :meth:`warm`) and is shared with any other session of the same
    identity.
    """

    def __init__(
        self, service: "SolverService", recipe: FactorRecipe
    ) -> None:
        self.service = service
        self.recipe = recipe
        self.key = recipe.key()

    def warm(self):
        """Ensure the factor is resident (factorize/warm-start now).

        Runs on the calling thread, outside the request queue — the
        "factorize once" half of factorize-once/solve-many.  Returns
        the :class:`~repro.service.cache.CacheEntry`.
        """
        return self.service.cache.get_or_build(self.recipe)

    def submit(
        self, rhs: np.ndarray, *, deadline_s: float | None = None
    ) -> SolveTicket:
        """Enqueue a solve; returns immediately with a waitable ticket.

        ``deadline_s`` is a *relative* budget from now (defaults to the
        service's ``default_deadline_s``); a request still queued when
        it lapses is dropped, and :meth:`SolveTicket.result` raises
        :class:`~repro.utils.exceptions.DeadlineExceededError`.
        """
        return self.service._submit(self, rhs, deadline_s=deadline_s)

    def solve(
        self, rhs: np.ndarray, *, timeout: float | None = None
    ) -> np.ndarray:
        """Synchronous submit + wait."""
        return self.submit(rhs).result(timeout)


class SolverService:
    """Factorization-cache + solve-serving runtime (see module docs).

    Usage::

        with SolverService(ServiceConfig(n_workers=2)) as svc:
            session = svc.session(problem, accuracy=1e-6)
            x = session.solve(rhs)                   # sync
            tickets = [session.submit(b) for b in rhs_batch]
            xs = [t.result() for t in tickets]       # concurrent

    Requests may be submitted before :meth:`start`; they queue and run
    when the workers come up (the tests use this to fill the queue
    deterministically).
    """

    def __init__(
        self,
        config: ServiceConfig | None = None,
        *,
        cache: FactorCache | None = None,
        live=None,
    ) -> None:
        self.config = config or ServiceConfig()
        self.cache = cache or FactorCache(
            max_bytes=self.config.cache_bytes,
            warm_dir=self.config.warm_dir,
        )
        self.db = ServiceDatabase(max_depth=self.config.max_queue_depth)
        self._shards = [_Shard() for _ in range(self.config.n_workers)]
        self._threads: list[threading.Thread] = []
        self._recipes: dict[FactorKey, FactorRecipe] = {}
        self._recipes_lock = threading.Lock()
        self._id_lock = threading.Lock()
        self._next_id = 0
        self._started = False
        self._stopping = False
        self._stats_lock = threading.Lock()
        self._latencies: list[float] = []
        self._batch_widths: list[int] = []
        self.live = live
        self._worker_busy_s = [0.0] * self.config.n_workers
        self._worker_t0: float | None = None
        self._install_obs_handlers()
        if live is not None:
            self._register_live_providers(live)

    # -- obs wiring ------------------------------------------------------
    def _install_obs_handlers(self) -> None:
        """Queue-depth gauge + per-outcome counters, via db handlers.

        Every transition also streams to the live aggregator (when one
        is attached) — a ring-buffer append, so the admission path never
        blocks on the monitoring plane.
        """

        def _on_transition(event, request, db) -> None:
            obs.counter_add(f"service_request_{event}")
            obs.gauge_set("service_queue_depth", db.depth())
            live = self.live
            if live is not None:
                live.emit_counter(f"service_request_{event}")
                live.emit_gauge("service_queue_depth", db.depth())

        for event in ("submitted", "rejected", "started",
                      "completed", "failed", "dropped"):
            self.db.on(event, _on_transition)

    def _register_live_providers(self, live) -> None:
        """Pull-side state for ``/stats``: cache, queues, occupancy."""

        def _cache() -> dict:
            cs = self.cache.stats()
            return {
                "hits": cs.hits,
                "misses": cs.misses,
                "evictions": cs.evictions,
                "warm_starts": cs.warm_starts,
                "factorizations": cs.factorizations,
                "resident_bytes": cs.resident_bytes,
                "hit_rate": round(cs.hit_rate, 4),
            }

        def _queue() -> dict:
            return {
                "depth": self.db.depth(),
                "shards": [len(s.items) for s in self._shards],
            }

        def _workers() -> dict:
            if self._worker_t0 is None:
                return {"n_workers": self.config.n_workers, "occupancy": []}
            up = max(time.monotonic() - self._worker_t0, 1e-9)
            return {
                "n_workers": self.config.n_workers,
                "occupancy": [
                    round(min(b / up, 1.0), 4) for b in self._worker_busy_s
                ],
            }

        live.register_provider("cache", _cache)
        live.register_provider("queue", _queue)
        live.register_provider("workers", _workers)

    # -- lifecycle -------------------------------------------------------
    def start(self) -> "SolverService":
        if self._started:
            return self
        if self._stopping:
            raise ServiceClosedError("service was stopped; build a new one")
        self._started = True
        self._worker_t0 = time.monotonic()
        for wid in range(self.config.n_workers):
            t = threading.Thread(
                target=self._worker, args=(wid,),
                name=f"solver-worker-{wid}", daemon=True,
            )
            t.start()
            self._threads.append(t)
        return self

    def stop(self, *, drain: bool = True) -> None:
        """Stop the workers; by default finish everything queued first.

        With ``drain=False`` still-pending requests fail with
        :class:`~repro.utils.exceptions.ServiceClosedError`.
        """
        self._stopping = True
        if not drain:
            for shard in self._shards:
                with shard.cond:
                    orphans, shard.items = shard.items, []
                for req in orphans:
                    self.db.finish(req, "failed")
                    req._finish(error=ServiceClosedError(
                        "service stopped before the request ran"
                    ))
        for shard in self._shards:
            with shard.cond:
                shard.cond.notify_all()
        for t in self._threads:
            t.join()
        self._threads.clear()
        # anything still queued (service never started, or drain=False
        # raced a submit) must not leave its waiter hanging
        for shard in self._shards:
            with shard.cond:
                orphans, shard.items = shard.items, []
            for req in orphans:
                self.db.finish(req, "failed")
                req._finish(error=ServiceClosedError(
                    "service stopped before the request ran"
                ))

    def __enter__(self) -> "SolverService":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- sessions / registration ----------------------------------------
    def session(
        self,
        problem,
        *,
        accuracy: float = 1e-8,
        band_size: int | str = "auto",
        compression: str | None = "auto",
        precision=None,
        maxrank: int | None = None,
        n_workers: int | None = None,
        batch: bool = True,
    ) -> ServiceSession:
        """Open a session for a problem (same knobs as ``TLRSolver``)."""
        recipe = FactorRecipe(
            problem=problem,
            accuracy=accuracy,
            band_size=band_size,
            compression=compression,
            precision=precision,
            maxrank=maxrank,
            n_workers=n_workers,
            batch=batch,
        )
        with self._recipes_lock:
            self._recipes.setdefault(recipe.key(), recipe)
        return ServiceSession(self, recipe)

    def register_solver(self, solver: TLRSolver) -> ServiceSession:
        """Adopt an already-factorized :class:`TLRSolver` into the cache.

        The factorize-anywhere/serve-here path: the solver's factor is
        installed under its derived key (precision identity taken from
        its :attr:`FactorizationReport.precision_report`), so sessions
        on the same identity start cache-warm with zero service-side
        factorizations.
        """
        if not solver.is_factorized:
            raise ConfigurationError(
                "register_solver needs a factorized TLRSolver"
            )
        if solver.problem is None:
            raise ConfigurationError(
                "register_solver needs solver.problem for the geometry key"
            )
        matrix = solver.matrix
        pr = solver.report.precision_report if solver.report else None
        precision = pr.mode if pr is not None and pr.mode else None
        if precision is None and matrix.precision is not None:
            precision = matrix.precision
        recipe = FactorRecipe(
            problem=solver.problem,
            accuracy=matrix.rule.eps,
            band_size=matrix.band_size,
            precision=precision,
            maxrank=matrix.rule.maxrank,
        )
        key = recipe.key()  # == solver.factor_key() by construction
        self.cache.install(key, matrix, solver.report)
        with self._recipes_lock:
            self._recipes[key] = recipe
        return ServiceSession(self, recipe)

    # -- submission ------------------------------------------------------
    def _submit(
        self,
        session: ServiceSession,
        rhs: np.ndarray,
        *,
        deadline_s: float | None = None,
    ) -> SolveTicket:
        if self._stopping:
            raise ServiceClosedError("service is stopped")
        budget = (
            deadline_s if deadline_s is not None
            else self.config.default_deadline_s
        )
        deadline = time.monotonic() + budget if budget is not None else None
        with self._id_lock:
            self._next_id += 1
            rid = self._next_id
        ticket = SolveTicket(rid, session.key, np.asarray(rhs), deadline)
        if not self.db.admit(ticket):
            raise QueueFullError(
                f"queue at max depth {self.config.max_queue_depth}; "
                f"request {rid} rejected"
            )
        shard = self._shards[self._shard_of(session.key)]
        with shard.cond:
            shard.items.append(ticket)
            shard.cond.notify()
        return ticket

    def _shard_of(self, key: FactorKey) -> int:
        return int(key.digest(8), 16) % self.config.n_workers

    # -- worker loop -----------------------------------------------------
    def _worker(self, wid: int) -> None:
        shard = self._shards[wid]
        while True:
            with shard.cond:
                while not shard.items and not self._stopping:
                    shard.cond.wait(timeout=0.1)
                if not shard.items:
                    if self._stopping:
                        return
                    continue
                group = self._take_group_locked(shard)
            t0 = time.monotonic()
            self._execute_group(group)
            # own-slot write: occupancy accounting needs no lock
            self._worker_busy_s[wid] += time.monotonic() - t0

    def _take_group_locked(self, shard: _Shard) -> list[SolveTicket]:
        """Pop the head request plus same-key followers, up to max_batch.

        Non-matching requests keep their queue positions — batching
        must never starve a different factor's requests.
        """
        group = [shard.items.pop(0)]
        if self.config.max_batch > 1:
            i = 0
            while i < len(shard.items) and len(group) < self.config.max_batch:
                if shard.items[i].key == group[0].key:
                    group.append(shard.items.pop(i))
                else:
                    i += 1
        return group

    def _execute_group(self, group: list[SolveTicket]) -> None:
        now = time.monotonic()
        live: list[SolveTicket] = []
        for req in group:
            if req.expired(now):
                self.db.finish(req, "dropped")
                req._finish(error=DeadlineExceededError(
                    f"request {req.id} missed its deadline by "
                    f"{now - req.deadline_s:.3f}s while queued"
                ))
            else:
                live.append(req)
        if not live:
            return
        for req in live:
            req.started_s = now
            self.db.start(req)
        key = live[0].key
        try:
            with self._recipes_lock:
                recipe = self._recipes.get(key)
            if recipe is None:
                raise ConfigurationError(
                    f"no recipe registered for factor key {key.digest()}"
                )
            entry = self.cache.get_or_build(recipe)
            width = len(live)
            with obs.span(
                "service_batch", "service", key=key.digest(), width=width,
            ):
                if width == 1:
                    results = [solve_spd(entry.matrix, live[0].rhs)]
                else:
                    results = solve_many(
                        entry.matrix, [req.rhs for req in live]
                    )
        except BaseException as err:  # noqa: BLE001 - delivered to waiters
            for req in live:
                self.db.finish(req, "failed")
                req._finish(error=err)
            return
        end_clock = obs.clock()
        latencies = []
        for req, x in zip(live, results):
            req.batch_width = width
            req._finish(result=x)
            self.db.finish(req, "completed")
            latency = req.latency_s
            latencies.append(latency)
            obs.record_span(
                "service_request", "service",
                start=req._obs_submit, end=end_clock,
                request=req.id, key=key.digest(),
                batch=width, wait_s=round(req.wait_s, 6),
            )
            obs.histogram_observe("service_request_latency_s", latency)
        obs.histogram_observe("service_batch_width", width)
        live = self.live
        if live is not None:
            for latency in latencies:
                live.emit_latency("service_latency_s", latency)
            live.emit_counter("service_batches")
            live.emit_gauge("service_batch_width", width)
        with self._stats_lock:
            self._latencies.extend(latencies)
            self._batch_widths.append(width)

    # -- introspection ---------------------------------------------------
    def stats(self) -> ServiceStats:
        outcomes = self.db.outcome_counts()
        with self._stats_lock:
            lats = tuple(self._latencies)
            widths = tuple(self._batch_widths)
        p50, p95, p99 = percentiles(lats)
        return ServiceStats(
            completed=outcomes.get("completed", 0),
            failed=outcomes.get("failed", 0),
            rejected=outcomes.get("rejected", 0),
            dropped=outcomes.get("dropped", 0),
            batches=len(widths),
            queue_depth=self.db.depth(),
            mean_batch_width=(
                sum(widths) / len(widths) if widths else 0.0
            ),
            max_batch_width=max(widths) if widths else 0,
            p50_ms=p50 * 1e3,
            p95_ms=p95 * 1e3,
            p99_ms=p99 * 1e3,
            cache=self.cache.stats(),
            latencies_s=lats,
        )
