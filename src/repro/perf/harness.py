"""Benchmark harness: warmup/repeat timing with median-and-IQR statistics.

The ROADMAP's mandate — "every PR makes a hot path measurably faster" —
needs a measurement discipline, not ad-hoc ``time.perf_counter`` pairs.
This module is that discipline:

* :func:`measure` — run a callable ``warmup`` times untimed, then
  ``repeats`` times timed, and summarize as a :class:`Timing`
  (median + inter-quartile range; the IQR is the noise floor the
  regression gate compares deltas against);
* :class:`BenchRecord` / :func:`append_history` /
  :func:`load_history` — schema-versioned JSON-lines persistence
  (``BENCH_history.jsonl``): every ``python -m repro bench`` invocation
  appends one record per benchmark, so the file is the repo's
  performance trajectory and any two points of it are comparable with
  ``python -m repro compare``;
* :func:`default_suite` / :func:`run_suite` — the standing benchmark
  suite over the pipeline's hot paths (compression backends, sequential
  and parallel factorization, triangular solve) at ``--smoke`` or full
  sizes.

Medians (not means) because timing noise is one-sided — preemption and
cache pollution only ever make a run *slower* — and the IQR travels with
every record so the comparison side can tell signal from spread without
re-running the base.
"""

from __future__ import annotations

import json
import math
import platform
import time
from dataclasses import dataclass, field
from pathlib import Path

__all__ = [
    "SCHEMA_VERSION",
    "Timing",
    "BenchRecord",
    "measure",
    "append_history",
    "load_history",
    "runs_in_history",
    "records_for_run",
    "latest_run",
    "records_from_tune",
    "default_suite",
    "run_suite",
]

#: Bump when the record layout changes; readers skip newer-schema rows.
SCHEMA_VERSION = 1

#: Default history file name (repo root by convention).
HISTORY_FILE = "BENCH_history.jsonl"


def _median(xs: list[float]) -> float:
    s = sorted(xs)
    n = len(s)
    mid = n // 2
    return s[mid] if n % 2 else 0.5 * (s[mid - 1] + s[mid])


def _quantile(xs: list[float], p: float) -> float:
    s = sorted(xs)
    n = len(s)
    if n == 1:
        return s[0]
    idx = p * (n - 1)
    lo = math.floor(idx)
    hi = math.ceil(idx)
    return s[lo] + (s[hi] - s[lo]) * (idx - lo)


@dataclass(frozen=True)
class Timing:
    """Summary statistics of one benchmark's repeated timed runs."""

    times_s: tuple[float, ...]

    @property
    def median_s(self) -> float:
        return _median(list(self.times_s))

    @property
    def q1_s(self) -> float:
        return _quantile(list(self.times_s), 0.25)

    @property
    def q3_s(self) -> float:
        return _quantile(list(self.times_s), 0.75)

    @property
    def iqr_s(self) -> float:
        return self.q3_s - self.q1_s

    @property
    def min_s(self) -> float:
        return min(self.times_s)


def measure(
    fn,
    *,
    warmup: int = 1,
    repeats: int = 5,
    setup=None,
) -> Timing:
    """Time ``fn`` with warmup/repeat discipline.

    ``setup`` (when given) runs untimed before *every* invocation —
    warmup and timed alike — so benchmarks that mutate their input
    (in-place factorization) can rebuild it outside the clock.
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    for _ in range(max(0, warmup)):
        arg = setup() if setup is not None else None
        fn(arg) if setup is not None else fn()
    times = []
    for _ in range(repeats):
        arg = setup() if setup is not None else None
        t0 = time.perf_counter()
        fn(arg) if setup is not None else fn()
        times.append(time.perf_counter() - t0)
    return Timing(times_s=tuple(times))


@dataclass
class BenchRecord:
    """One benchmark × one harness invocation, as persisted to history."""

    name: str
    run: str
    timing: Timing
    config: dict = field(default_factory=dict)
    ts: str = ""
    warmup: int = 1

    def to_json(self) -> dict:
        return {
            "schema": SCHEMA_VERSION,
            "run": self.run,
            "ts": self.ts,
            "name": self.name,
            "median_s": round(self.timing.median_s, 9),
            "iqr_s": round(self.timing.iqr_s, 9),
            "q1_s": round(self.timing.q1_s, 9),
            "q3_s": round(self.timing.q3_s, 9),
            "min_s": round(self.timing.min_s, 9),
            "repeats": len(self.timing.times_s),
            "warmup": self.warmup,
            "times_s": [round(t, 9) for t in self.timing.times_s],
            "config": self.config,
            "env": {
                "python": platform.python_version(),
                "machine": platform.machine(),
            },
        }

    @classmethod
    def from_json(cls, doc: dict) -> "BenchRecord":
        return cls(
            name=doc["name"],
            run=doc.get("run", ""),
            timing=Timing(times_s=tuple(doc.get("times_s", [doc["median_s"]]))),
            config=doc.get("config", {}),
            ts=doc.get("ts", ""),
            warmup=doc.get("warmup", 0),
        )


def append_history(records: list[BenchRecord], path: str | Path) -> Path:
    """Append records to a JSON-lines history file (created on demand)."""
    path = Path(path)
    if path.is_dir():
        path = path / HISTORY_FILE
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("a") as fh:
        for rec in records:
            fh.write(json.dumps(rec.to_json()) + "\n")
    return path


def load_history(path: str | Path) -> list[BenchRecord]:
    """Read every readable record from a history file.

    Rows with a newer schema than this reader are skipped (forward
    compatibility); malformed lines raise — a corrupt history should be
    noticed, not silently truncated.
    """
    path = Path(path)
    if path.is_dir():
        path = path / HISTORY_FILE
    records = []
    for line in path.read_text().splitlines():
        if not line.strip():
            continue
        doc = json.loads(line)
        if doc.get("schema", 0) > SCHEMA_VERSION:
            continue
        records.append(BenchRecord.from_json(doc))
    return records


def runs_in_history(records: list[BenchRecord]) -> list[str]:
    """Distinct run labels in append (chronological) order."""
    seen: dict[str, None] = {}
    for rec in records:
        seen.setdefault(rec.run, None)
    return list(seen)


def records_for_run(records: list[BenchRecord], run: str) -> list[BenchRecord]:
    return [r for r in records if r.run == run]


def latest_run(records: list[BenchRecord]) -> list[BenchRecord]:
    """The records of the most recently appended run label."""
    runs = runs_in_history(records)
    if not runs:
        return []
    return records_for_run(records, runs[-1])


def records_from_tune(
    result, *, run: str | None = None, label: str | None = None
) -> list[BenchRecord]:
    """Bench-history records of one autotuning result (the TuneRecord).

    Persists the winner's *predicted* makespan — and, when the result
    was verified, the *realized* one — so ``BENCH_history.jsonl``
    tracks the tuner's selections over time and ``repro compare`` can
    gate a tuner change exactly like any other perf change.  ``result``
    is a :class:`repro.tune.TuneResult`.
    """
    run = run or label or time.strftime("%Y%m%dT%H%M%SZ", time.gmtime())
    ts = time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())
    winner = result.winner
    config = {
        **result.config(),
        "rates_mode": result.rates_mode,
        "algorithm1_band": result.algorithm1_band,
        "candidates": len(result.candidates),
    }
    records = [
        BenchRecord(
            name="tune_predicted_makespan",
            run=run,
            timing=Timing(times_s=(winner.makespan_s,)),
            config=config,
            ts=ts,
            warmup=0,
        )
    ]
    if result.verify is not None:
        realized = float(result.verify.get("realized_makespan_s", 0.0))
        if realized > 0.0:
            records.append(
                BenchRecord(
                    name="tune_realized_makespan",
                    run=run,
                    timing=Timing(times_s=(realized,)),
                    config={
                        **config,
                        "gate_passed": bool(result.verify.get("gate_passed")),
                    },
                    ts=ts,
                    warmup=0,
                )
            )
    return records


# ----------------------------------------------------------------------
# The standing suite
# ----------------------------------------------------------------------
def default_suite(*, smoke: bool = False) -> list[dict]:
    """The repo's standing benchmarks over the pipeline's hot paths.

    Each entry is ``{"name", "config", "setup", "fn"}`` consumable by
    :func:`run_suite`.  ``--smoke`` sizes finish in seconds on a laptop
    CI runner; full sizes match the ablation benchmarks.  Note the
    compression benches measure *backend* cost (rsvd is slower than svd
    below the crossover near tile size 200 — see
    ``benchmarks/bench_ablation_compression.py``), so a smoke-scale
    rsvd-slower-than-svd reading is expected, not a regression.

    The factorize/solve benches run the library's recommended hot-path
    configuration — the ``auto`` compression backend plus batched kernel
    dispatch (``batch=True``) — so the history tracks what users
    actually get; the per-backend compression benches keep svd and rsvd
    separately comparable across the crossover.
    """
    from .. import TLRSolver, st_3d_exp_problem
    from ..linalg.backends import get_backend

    n, b = (512, 64) if smoke else (2000, 250)
    accuracy = 1e-6

    def problem():
        return st_3d_exp_problem(n=n, tile_size=b)

    def build(compression):
        return TLRSolver.from_problem(
            problem(), accuracy=accuracy, band_size=2, compression=compression
        )

    suite: list[dict] = []
    base_cfg = {"n": n, "tile_size": b, "accuracy": accuracy, "band_size": 2}
    for backend in ("svd", "rsvd"):
        suite.append(
            {
                "name": f"compress_{backend}",
                "config": {**base_cfg, "backend": backend},
                "setup": None,
                "fn": (lambda be: lambda: build(get_backend(be)))(backend),
            }
        )
    suite.append(
        {
            "name": "factorize_seq",
            "config": {**base_cfg, "backend": "auto", "batch": True},
            "setup": lambda: build("auto"),
            "fn": lambda solver: solver.factorize(batch=True),
        }
    )
    suite.append(
        {
            "name": "factorize_par2",
            "config": {**base_cfg, "backend": "auto", "batch": True,
                       "n_workers": 2},
            "setup": lambda: build("auto"),
            "fn": lambda solver: solver.factorize(n_workers=2, batch=True),
        }
    )

    def solve_setup():
        import numpy as np

        solver = build("auto")
        solver.factorize(batch=True)
        rng = np.random.default_rng(7)
        return solver, rng.standard_normal(n)

    suite.append(
        {
            "name": "solve",
            "config": base_cfg,
            "setup": solve_setup,
            "fn": lambda arg: arg[0].solve(arg[1]),
        }
    )
    return suite


def run_suite(
    *,
    smoke: bool = False,
    warmup: int = 1,
    repeats: int = 5,
    label: str | None = None,
    name_filter: str | None = None,
    progress=None,
) -> list[BenchRecord]:
    """Measure the standing suite; returns un-persisted records.

    ``label`` names the run (defaults to a UTC timestamp); ``name_filter``
    keeps benchmarks whose name contains the substring; ``progress`` is
    an optional callable receiving one line per finished benchmark.
    """
    run = label or time.strftime("%Y%m%dT%H%M%SZ", time.gmtime())
    ts = time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())
    records = []
    for bench in default_suite(smoke=smoke):
        if name_filter and name_filter not in bench["name"]:
            continue
        timing = measure(
            bench["fn"], warmup=warmup, repeats=repeats, setup=bench["setup"]
        )
        rec = BenchRecord(
            name=bench["name"],
            run=run,
            timing=timing,
            config={**bench["config"], "smoke": smoke},
            ts=ts,
            warmup=warmup,
        )
        records.append(rec)
        if progress is not None:
            progress(
                f"{rec.name:<16} median {timing.median_s:.4f} s  "
                f"IQR {timing.iqr_s:.4f} s  ({repeats} repeats)"
            )
    return records
