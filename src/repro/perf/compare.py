"""Noise-aware benchmark comparison: the ``python -m repro compare`` gate.

A timing delta is only evidence of a regression when it clears **both**
conditions:

1. *relative*: ``head_median > base_median * (1 + threshold)`` — small
   slips below the threshold are never actionable; and
2. *absolute vs noise*: ``head_median - base_median >
   max(base_iqr, head_iqr)`` — a delta inside either run's own
   inter-quartile spread is indistinguishable from scheduler jitter,
   whatever its relative size.

The dual gate is what lets CI fail *hard* on real regressions without
flaking on noisy shared runners: a quiet machine has a tiny IQR so the
relative threshold dominates; a noisy machine inflates the IQR and
automatically widens its own tolerance.  The same rule is applied
per-kernel-class by :func:`repro.obs.analytics.trace_diff`.
"""

from __future__ import annotations

from dataclasses import dataclass

from .harness import BenchRecord

__all__ = ["BenchDelta", "CompareResult", "compare_records", "render_compare"]

#: Default relative threshold (25% — generous on purpose; CI runners
#: differ in absolute speed, the gate is about *drift*, not speed).
DEFAULT_THRESHOLD = 0.25


@dataclass
class BenchDelta:
    """One benchmark's base-to-head change."""

    name: str
    base: BenchRecord | None
    head: BenchRecord | None
    regressed: bool = False
    improved: bool = False

    @property
    def ratio(self) -> float:
        if self.base is None or self.head is None:
            return float("nan")
        b = self.base.timing.median_s
        return self.head.timing.median_s / b if b > 0 else float("inf")


@dataclass
class CompareResult:
    """All deltas of one base/head comparison plus the gate verdict."""

    deltas: list[BenchDelta]
    threshold: float

    @property
    def regressions(self) -> list[BenchDelta]:
        return [d for d in self.deltas if d.regressed]

    @property
    def has_regression(self) -> bool:
        return bool(self.regressions)


def compare_records(
    base: list[BenchRecord],
    head: list[BenchRecord],
    *,
    threshold: float = DEFAULT_THRESHOLD,
) -> CompareResult:
    """Compare two record sets benchmark-by-benchmark (matched on name).

    Benchmarks present on only one side are reported but never gate —
    adding or retiring a benchmark is not a performance event.
    """
    base_by = {r.name: r for r in base}
    head_by = {r.name: r for r in head}
    deltas = []
    for name in sorted(set(base_by) | set(head_by)):
        b = base_by.get(name)
        h = head_by.get(name)
        d = BenchDelta(name, b, h)
        if b is not None and h is not None and b.timing.median_s > 0:
            grow = h.timing.median_s - b.timing.median_s
            noise = max(b.timing.iqr_s, h.timing.iqr_s)
            if grow > threshold * b.timing.median_s and grow > noise:
                d.regressed = True
            shrink = b.timing.median_s - h.timing.median_s
            if shrink > threshold * b.timing.median_s and shrink > noise:
                d.improved = True
        deltas.append(d)
    return CompareResult(deltas=deltas, threshold=threshold)


def render_compare(result: CompareResult) -> str:
    """Terminal rendering of a :class:`CompareResult`."""
    lines = ["repro bench compare", "==================="]
    lines.append(
        f"{'benchmark':<18} {'base median':>12} {'head median':>12} "
        f"{'ratio':>7}  verdict"
    )
    for d in result.deltas:
        b = d.base.timing.median_s if d.base else float("nan")
        h = d.head.timing.median_s if d.head else float("nan")
        if d.base is None:
            verdict = "new"
        elif d.head is None:
            verdict = "removed"
        elif d.regressed:
            verdict = "REGRESSED"
        elif d.improved:
            verdict = "improved"
        else:
            verdict = "ok"
        lines.append(
            f"{d.name:<18} {b:>10.4f} s {h:>10.4f} s {d.ratio:>6.2f}x  {verdict}"
        )
    lines.append("")
    if result.has_regression:
        names = ", ".join(d.name for d in result.regressions)
        lines.append(
            f"REGRESSION: {names} exceeded the "
            f"{result.threshold * 100:.0f}% threshold and the measured IQR"
        )
    else:
        lines.append(
            "no regression: every delta within the "
            f"{result.threshold * 100:.0f}% threshold or inside the IQR noise"
        )
    return "\n".join(lines)
