"""Continuous performance harness (``repro.perf``).

The measurement half of the ROADMAP's "every PR makes a hot path
measurably faster" loop:

* :mod:`repro.perf.harness` — warmup/repeat timing with median + IQR
  statistics, a standing benchmark suite over the pipeline's hot paths,
  and schema-versioned JSON-lines persistence (``BENCH_history.jsonl``);
* :mod:`repro.perf.compare` — the noise-aware regression gate: a delta
  is a regression only when it exceeds both a relative threshold and the
  measured inter-quartile range.

CLI surface: ``python -m repro bench`` records a run; ``python -m repro
compare BASE HEAD`` gates two runs (bench histories or ``--obs`` trace
directories).  See ``docs/performance.md``.
"""

from .compare import (
    DEFAULT_THRESHOLD,
    BenchDelta,
    CompareResult,
    compare_records,
    render_compare,
)
from .harness import (
    HISTORY_FILE,
    SCHEMA_VERSION,
    BenchRecord,
    Timing,
    append_history,
    default_suite,
    latest_run,
    load_history,
    measure,
    records_for_run,
    records_from_tune,
    run_suite,
    runs_in_history,
)

__all__ = [
    "SCHEMA_VERSION",
    "HISTORY_FILE",
    "DEFAULT_THRESHOLD",
    "Timing",
    "BenchRecord",
    "measure",
    "run_suite",
    "default_suite",
    "append_history",
    "load_history",
    "runs_in_history",
    "records_for_run",
    "records_from_tune",
    "latest_run",
    "BenchDelta",
    "CompareResult",
    "compare_records",
    "render_compare",
]
