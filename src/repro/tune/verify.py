"""Close the loop: execute the chosen configuration and grade the DES.

The sweep's winner is a *prediction*; this module executes that exact
configuration for real, rebuilds both sides as
:class:`~repro.obs.analytics.RunTrace` objects over the same task
graph, and gates the prediction two ways:

* :func:`repro.obs.analytics.prediction_accuracy` — signed relative
  errors on makespan (task window), realized critical path, and mean
  occupancy; the makespan error must land inside the documented
  tolerance (see ``docs/tuning.md`` for how it was chosen);
* :func:`repro.obs.analytics.trace_diff` — the same dual relative+IQR
  per-kernel-class rule ``python -m repro compare`` applies, predicted
  as base and realized as head, so a kernel class the simulator
  modelled too optimistically trips the same gate a perf regression
  would.

The realized factorization's bytes are digested (SHA-256 over the
lower-triangular dense factor) so the emitted config can be checked to
reproduce the run bitwise through ``repro execute --config``.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from pathlib import Path

from ..obs.analytics import (
    PredictionAccuracy,
    RunTrace,
    TaskSpan,
    prediction_accuracy,
    trace_diff,
)
from .calibrate import Calibration
from .sweep import TuneResult

__all__ = [
    "DEFAULT_TOLERANCE",
    "VerifyReport",
    "predicted_run",
    "factor_digest",
    "verify_prediction",
]

#: Documented makespan tolerance (relative, symmetric).  CI-scale runs
#: are short enough that scheduler jitter and interpreter overhead are a
#: visible fraction of the window; docs/tuning.md records the
#: methodology behind the 50% default and when to tighten it.
DEFAULT_TOLERANCE = 0.5


def predicted_run(graph, sim) -> RunTrace:
    """A :class:`RunTrace` view of a simulated schedule.

    Spans replay the DES trace (one per task, threads named
    ``rank-<p>``), annotated with each task's kernel class and modelled
    flops; the dependency document rides along so the analytics layer
    computes the predicted critical path exactly like a realized one.
    """
    from ..obs import graph_document
    from ..runtime.task import task_name

    if sim.trace is None:
        raise ValueError(
            "simulated run carries no trace; simulate with "
            "collect_trace=True"
        )
    # The DES records which *process* ran a task but not which core;
    # recover core slots by greedy interval partitioning per rank so
    # thread-level metrics (occupancy above all) stay in [0, 1] and
    # compare meaningfully against a realized run's worker threads.
    slot_free: dict[tuple[int, int], float] = {}
    tasks = []
    for tid, proc, start, end in sorted(
        sim.trace, key=lambda rec: (rec[2], rec[3], str(rec[0]))
    ):
        slot = 0
        while slot_free.get((proc, slot), 0.0) > start + 1e-15:
            slot += 1
        slot_free[(proc, slot)] = end
        tasks.append(
            TaskSpan(
                name=task_name(tid),
                start=float(start),
                end=float(end),
                thread=f"rank-{proc}-c{slot}",
                kernel=graph.tasks[tid].kernel.value,
                flops=float(graph.tasks[tid].flops),
            )
        )
    return RunTrace(
        tasks=tasks,
        graph=graph_document(graph, task_name),
        wall_s=float(sim.makespan),
        meta={"predicted": True},
    )


def factor_digest(matrix) -> str:
    """SHA-256 of the factorized matrix's lower-triangular dense bytes."""
    dense = matrix.to_dense(lower_only=True)
    return "sha256:" + hashlib.sha256(dense.tobytes()).hexdigest()


@dataclass
class VerifyReport:
    """Predicted-vs-realized verdict for the sweep's winner."""

    accuracy: PredictionAccuracy
    tolerance: float
    within_tolerance: bool
    diff_regressed: bool
    factor_digest: str
    realized_wall_s: float

    @property
    def gate_passed(self) -> bool:
        """Both conditions: tolerance met AND no dual-gate regression."""
        return self.within_tolerance and not self.diff_regressed

    def to_dict(self) -> dict:
        a = self.accuracy
        return {
            "tolerance": self.tolerance,
            "within_tolerance": self.within_tolerance,
            "diff_regressed": self.diff_regressed,
            "gate_passed": self.gate_passed,
            "factor_digest": self.factor_digest,
            "realized_wall_s": self.realized_wall_s,
            "predicted_makespan_s": a.predicted_makespan_s,
            "realized_makespan_s": a.realized_makespan_s,
            "makespan_rel_err": a.makespan_rel_err,
            "predicted_cp_s": a.predicted_cp_s,
            "realized_cp_s": a.realized_cp_s,
            "cp_rel_err": a.cp_rel_err,
            "predicted_occupancy": a.predicted_occupancy,
            "realized_occupancy": a.realized_occupancy,
            "occupancy_abs_err": a.occupancy_abs_err,
        }


def _write_trace_dir(run: RunTrace, outdir, meta: dict) -> None:
    """Persist a RunTrace as standard --obs artifacts (for repro compare)."""
    from .. import obs

    ob = obs.Observation(meta=meta)
    ob.graph = run.graph
    for t in run.tasks:
        ob.tracer.record(
            t.name,
            "task",
            t.start,
            t.end,
            thread=t.thread,
            kernel=t.kernel,
            flops=t.flops,
        )
    ob._wall = max(run.wall_s, run.window_s)
    ob.write(outdir)


def verify_prediction(
    calibration: Calibration,
    result: TuneResult,
    *,
    tolerance: float = DEFAULT_TOLERANCE,
    threshold: float = 0.25,
    obs_out: str | Path | None = None,
) -> VerifyReport:
    """Execute the sweep winner for real and grade the DES prediction.

    Rebuilds the problem from the result's recorded parameters at the
    winning band, re-simulates the winner (deterministic — identical to
    the sweep's evaluation), executes the same graph on the real
    backend the config names, and compares.  With ``obs_out`` the
    predicted and realized traces are written as standard ``--obs``
    artifact directories (``<obs_out>/predicted``, ``<obs_out>/
    realized``) so ``python -m repro compare`` can re-run the gate
    standalone.
    """
    from .. import obs
    from ..matrix import BandTLRMatrix
    from ..obs.analytics import run_from_observation
    from ..runtime import build_cholesky_graph, get_executor
    from ..runtime.simulator import simulate_schedule
    from repro import TruncationRule, st_3d_exp_problem

    cfg = result.config()
    w = result.winner.candidate
    problem = st_3d_exp_problem(cfg["n"], cfg["tile"], seed=cfg["seed"])
    matrix = BandTLRMatrix.from_problem(
        problem,
        TruncationRule(eps=cfg["accuracy"]),
        band_size=cfg["band"],
        backend=cfg["compression"],
        precision=cfg["precision"],
        n_workers=cfg["workers"],
    )
    grid = matrix.rank_grid()

    def rank_fn(i: int, j: int) -> int:
        return int(max(grid[i, j], 1))

    graph = build_cholesky_graph(
        matrix.ntiles, cfg["band"], cfg["tile"], rank_fn
    )

    sim = simulate_schedule(
        graph,
        ranks=w.ranks,
        cores=w.cores,
        rates=calibration.rates,
        scheduler=w.scheduler,
        distribution=w.distribution,
        collect_trace=True,
    )
    predicted = predicted_run(graph, sim)

    if cfg["executor"] == "processes":
        ex = get_executor("processes", n_ranks=w.ranks)
        use_batch = False  # batching needs shared-memory tiles
    else:
        ex = get_executor(
            "threads", n_workers=w.cores, scheduler=w.scheduler
        )
        use_batch = bool(cfg["batch"])
    with obs.observe(meta={"verify": True, **cfg}) as ob:
        ex.execute(graph, matrix, batch=use_batch)
    realized = run_from_observation(ob)

    if obs_out is not None:
        outdir = Path(obs_out)
        _write_trace_dir(
            predicted, outdir / "predicted", {"side": "predicted", **cfg}
        )
        ob.write(outdir / "realized")

    acc = prediction_accuracy(predicted, realized)
    diff = trace_diff(predicted, realized, threshold=threshold)
    return VerifyReport(
        accuracy=acc,
        tolerance=tolerance,
        within_tolerance=acc.within(tolerance),
        diff_regressed=diff.has_regression,
        factor_digest=factor_digest(matrix),
        realized_wall_s=realized.wall_s,
    )
