"""Configuration sweep through the discrete-event simulator.

The sweep evaluates a grid of candidate configurations — BAND_SIZE
(every band Algorithm 1's [0.67, 1] fluctuation window admits, plus its
point decision), scheduler policy, distribution variant, and
process/core counts — by simulating the calibrated task graph through
:func:`repro.runtime.simulate_schedule` on the PR-1 workpool, then
ranks candidates by predicted makespan.

Determinism: the grid enumerates in a fixed order, the DES is
deterministic, and the ranking key is a pure function of the simulated
metrics and the candidate coordinates — no wall clock, no RNG, no
dict-iteration ambiguity.  Equal-makespan candidates resolve by the
shared tie-break of :func:`repro.core.tie_break_band` (smallest band
first — the conservative side of Section VIII-B), then by scheduler,
distribution, rank and core order.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from ..core.autotuner import band_candidates, tune_band_size
from ..runtime.graph import build_cholesky_graph
from ..runtime.simulator import DISTRIBUTION_NAMES, simulate_schedule
from ..runtime.workpool import parallel_map
from ..utils.exceptions import ConfigurationError
from .calibrate import Calibration

__all__ = [
    "SCHEDULERS",
    "TuneCandidate",
    "TuneGrid",
    "parse_grid",
    "CandidateReport",
    "TuneResult",
    "default_bands",
    "sweep",
]

#: Scheduler policies in sweep (and tie-break) order.
SCHEDULERS = ("priority", "fifo", "lifo")


@dataclass(frozen=True)
class TuneCandidate:
    """One point of the configuration grid."""

    band_size: int
    scheduler: str = "priority"
    distribution: str = "band"
    ranks: int = 1
    cores: int = 2

    def to_dict(self) -> dict:
        return {
            "band_size": self.band_size,
            "scheduler": self.scheduler,
            "distribution": self.distribution,
            "ranks": self.ranks,
            "cores": self.cores,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "TuneCandidate":
        return cls(**d)

    def sort_key(self) -> tuple:
        """Deterministic secondary ordering (after predicted makespan).

        Ascending band first — this *is* the shared tie-break rule of
        :func:`repro.core.tie_break_band` applied through a sort key —
        then scheduler/distribution in declaration order, then fewer
        ranks/cores (cheaper deployments win ties).
        """
        return (
            self.band_size,
            SCHEDULERS.index(self.scheduler),
            DISTRIBUTION_NAMES.index(self.distribution),
            self.ranks,
            self.cores,
        )


@dataclass(frozen=True)
class TuneGrid:
    """The candidate axes of one sweep (``None`` bands = derived)."""

    bands: tuple[int, ...] | None = None
    schedulers: tuple[str, ...] = SCHEDULERS
    distributions: tuple[str, ...] = ("band",)
    ranks: tuple[int, ...] = (1,)
    cores: tuple[int, ...] | None = None


def parse_grid(spec: str) -> TuneGrid:
    """Parse a ``--grid`` spec like ``band=1,2,3;scheduler=priority,fifo``.

    Axes: ``band`` (ints), ``scheduler`` (priority/fifo/lifo), ``dist``
    (band/2d/1d), ``ranks`` (ints), ``cores`` (ints).  Omitted axes keep
    their defaults; unknown axes or values raise
    :class:`ConfigurationError`.
    """
    kwargs: dict = {}
    for part in spec.split(";"):
        part = part.strip()
        if not part:
            continue
        if "=" not in part:
            raise ConfigurationError(
                f"grid axis {part!r} is not of the form key=v1,v2"
            )
        key, _, vals = part.partition("=")
        key = key.strip()
        items = tuple(v.strip() for v in vals.split(",") if v.strip())
        if not items:
            raise ConfigurationError(f"grid axis {key!r} has no values")
        if key == "band":
            kwargs["bands"] = tuple(int(v) for v in items)
        elif key == "scheduler":
            for v in items:
                if v not in SCHEDULERS:
                    raise ConfigurationError(
                        f"unknown scheduler {v!r} (choose from {SCHEDULERS})"
                    )
            kwargs["schedulers"] = items
        elif key == "dist":
            for v in items:
                if v not in DISTRIBUTION_NAMES:
                    raise ConfigurationError(
                        f"unknown distribution {v!r} "
                        f"(choose from {DISTRIBUTION_NAMES})"
                    )
            kwargs["distributions"] = items
        elif key == "ranks":
            kwargs["ranks"] = tuple(int(v) for v in items)
        elif key == "cores":
            kwargs["cores"] = tuple(int(v) for v in items)
        else:
            raise ConfigurationError(
                f"unknown grid axis {key!r} "
                "(axes: band, scheduler, dist, ranks, cores)"
            )
    return TuneGrid(**kwargs)


@dataclass
class CandidateReport:
    """Simulated metrics of one evaluated candidate."""

    candidate: TuneCandidate
    makespan_s: float
    critical_path_s: float
    mean_occupancy: float
    bytes_sent: int
    messages: int
    total_flops: float
    n_tasks: int

    def to_dict(self) -> dict:
        return {
            "candidate": self.candidate.to_dict(),
            "makespan_s": self.makespan_s,
            "critical_path_s": self.critical_path_s,
            "mean_occupancy": self.mean_occupancy,
            "bytes_sent": self.bytes_sent,
            "messages": self.messages,
            "total_flops": self.total_flops,
            "n_tasks": self.n_tasks,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "CandidateReport":
        d = dict(d)
        d["candidate"] = TuneCandidate.from_dict(d["candidate"])
        return cls(**d)


@dataclass
class TuneResult:
    """Outcome of one sweep: ranked candidates plus provenance."""

    candidates: list[CandidateReport]
    algorithm1_band: int
    fluctuation_window: tuple[int, int]
    problem: dict = field(default_factory=dict)
    calibrated_from: tuple[str, ...] = ()
    rates_mode: str = "mean-replay"
    verify: dict | None = None

    @property
    def winner(self) -> CandidateReport:
        return self.candidates[0]

    def config(self) -> dict:
        """The winning configuration as an ``execute --config`` document."""
        w = self.winner.candidate
        p = self.problem
        return {
            "n": int(p.get("n", 0)),
            "tile": int(p.get("tile", 0)),
            "band": w.band_size,
            "accuracy": float(p.get("accuracy", 1e-8)),
            "seed": int(p.get("seed", 0)),
            "compression": p.get("compression", "auto"),
            "precision": p.get("precision", "fp64"),
            "executor": "threads" if w.ranks == 1 else "processes",
            "workers": w.cores,
            "ranks": w.ranks,
            "scheduler": w.scheduler,
            "batch": bool(p.get("batch", True)),
        }

    def to_json(self) -> str:
        return json.dumps(
            {
                "candidates": [c.to_dict() for c in self.candidates],
                "algorithm1_band": self.algorithm1_band,
                "fluctuation_window": list(self.fluctuation_window),
                "problem": self.problem,
                "calibrated_from": list(self.calibrated_from),
                "rates_mode": self.rates_mode,
                "verify": self.verify,
            },
            indent=2,
        )

    @classmethod
    def from_json(cls, text: str) -> "TuneResult":
        d = json.loads(text)
        return cls(
            candidates=[CandidateReport.from_dict(c) for c in d["candidates"]],
            algorithm1_band=d["algorithm1_band"],
            fluctuation_window=tuple(d["fluctuation_window"]),
            problem=d.get("problem", {}),
            calibrated_from=tuple(d.get("calibrated_from", ())),
            rates_mode=d.get("rates_mode", "mean-replay"),
            verify=d.get("verify"),
        )

    def write(self, path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_json())
        return path


def _predicted_critical_path(graph, sim) -> float:
    from ..obs.analytics import critical_path
    from .verify import predicted_run

    run = predicted_run(graph, sim)
    if not run.tasks:
        return 0.0
    return critical_path(run).length_s


def default_bands(calibration: Calibration, ntiles: int) -> tuple[int, ...]:
    """Algorithm 1's fluctuation-window candidates ∪ its point decision."""
    decision = tune_band_size(
        calibration.rank_grid_for(ntiles), calibration.tile_size
    )
    return tuple(
        sorted(set(band_candidates(decision)) | {decision.band_size})
    )


def sweep(
    calibration: Calibration,
    *,
    grid: TuneGrid | None = None,
    ntiles: int | None = None,
    workers: int | None = None,
    smoke: bool = False,
) -> TuneResult:
    """Evaluate the candidate grid through the DES; rank by makespan.

    ``ntiles`` targets a different problem size than recorded (the rank
    model extrapolates and the rates switch to per-class GFLOP/s
    extrapolation); by default the sweep targets the recorded geometry,
    where median replay makes per-kernel medians agree with a realized
    run by construction.  ``workers`` bounds the sweep's own evaluation
    parallelism (the PR-1 workpool); ``smoke`` trims the grid for CI.
    """
    grid = grid or TuneGrid()
    nt = ntiles or calibration.ntiles
    decision = tune_band_size(
        calibration.rank_grid_for(nt), calibration.tile_size
    )
    bands = grid.bands or default_bands(calibration, nt)
    bands = tuple(sorted({b for b in bands if 1 <= b <= nt}))
    if not bands:
        raise ConfigurationError("the sweep has no feasible band candidate")
    schedulers = grid.schedulers
    cores = grid.cores or (max(calibration.n_workers, 2),)
    if smoke:
        bands = bands[:3]
        schedulers = tuple(s for s in schedulers if s in ("priority", "fifo"))

    rates = calibration.rates
    if nt != calibration.ntiles and rates.class_gflops:
        from dataclasses import replace

        rates = replace(rates, extrapolate=True)
        rates_mode = "extrapolate"
    else:
        rates_mode = "mean-replay"

    rank_fn = calibration.rank_fn(nt)
    graphs = {
        band: build_cholesky_graph(
            nt, band, calibration.tile_size, rank_fn
        )
        for band in bands
    }

    candidates = [
        TuneCandidate(
            band_size=band,
            scheduler=s,
            distribution=d,
            ranks=r,
            cores=c,
        )
        for band in bands
        for s in schedulers
        for d in grid.distributions
        for r in grid.ranks
        for c in cores
    ]

    def evaluate(cand: TuneCandidate) -> CandidateReport:
        graph = graphs[cand.band_size]
        sim = simulate_schedule(
            graph,
            ranks=cand.ranks,
            cores=cand.cores,
            rates=rates,
            scheduler=cand.scheduler,
            distribution=cand.distribution,
            collect_trace=True,
        )
        return CandidateReport(
            candidate=cand,
            makespan_s=float(sim.makespan),
            critical_path_s=_predicted_critical_path(graph, sim),
            mean_occupancy=float(sim.occupancy.mean()),
            bytes_sent=int(sim.comm.bytes_sent),
            messages=int(sim.comm.messages),
            total_flops=float(sim.total_flops),
            n_tasks=graph.n_tasks,
        )

    n_workers = workers if workers and workers > 0 else min(len(candidates), 8)
    reports = parallel_map(
        evaluate, candidates, n_workers, label="tune-sweep"
    )
    reports.sort(key=lambda r: (r.makespan_s, r.candidate.sort_key()))
    meta = calibration.meta
    recorded_n = meta.get("n", calibration.ntiles * calibration.tile_size)
    problem = {
        "n": recorded_n if nt == calibration.ntiles
        else nt * calibration.tile_size,
        "tile": meta.get("tile", calibration.tile_size),
        "ntiles": nt,
        "accuracy": meta.get("accuracy", 1e-8),
        "seed": meta.get("seed", 0),
        "compression": meta.get("compression", "auto"),
        "precision": meta.get("precision", "fp64"),
        "batch": meta.get("batch", True),
    }
    return TuneResult(
        candidates=reports,
        algorithm1_band=decision.band_size,
        fluctuation_window=decision.band_size_range,
        problem=problem,
        calibrated_from=calibration.sources,
        rates_mode=rates_mode,
    )
