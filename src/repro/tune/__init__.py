"""Simulator-guided autotuning (``repro.tune``).

The closed loop ROADMAP item 5 asks for, as a library and a CLI
subcommand (``python -m repro tune --from-run DIR``):

1. **Calibrate** (:mod:`repro.tune.calibrate`) — recover the initial
   rank grid and per-kernel-class rates from one or more recorded
   ``--obs`` runs; fit a power-law rank model for extrapolation.
2. **Sweep** (:mod:`repro.tune.sweep`) — evaluate BAND_SIZE (Algorithm
   1's [0.67, 1] fluctuation window and beyond), scheduler policy,
   distribution variant, and rank/core counts through the
   discrete-event simulator in parallel; rank deterministically by
   predicted makespan with the shared
   :func:`repro.core.tie_break_band` tie-break.
3. **Verify** (:mod:`repro.tune.verify`) — execute the winner for real
   and gate predicted-vs-realized makespan/critical-path/occupancy
   through the same dual relative+IQR rule as ``repro compare``.

The winning configuration round-trips as JSON through
``repro execute --config config.json``, which reproduces the
factorization bitwise (the executors are deterministic across worker
counts and schedulers).
"""

from .calibrate import Calibration, ranks_from_run
from .sweep import (
    SCHEDULERS,
    CandidateReport,
    TuneCandidate,
    TuneGrid,
    TuneResult,
    default_bands,
    parse_grid,
    sweep,
)
from .verify import (
    DEFAULT_TOLERANCE,
    VerifyReport,
    factor_digest,
    predicted_run,
    verify_prediction,
)

__all__ = [
    "Calibration",
    "ranks_from_run",
    "SCHEDULERS",
    "TuneCandidate",
    "TuneGrid",
    "parse_grid",
    "CandidateReport",
    "TuneResult",
    "default_bands",
    "sweep",
    "DEFAULT_TOLERANCE",
    "VerifyReport",
    "predicted_run",
    "factor_digest",
    "verify_prediction",
]
