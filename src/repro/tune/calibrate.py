"""Calibration from recorded runs: rank grids, rank models, kernel rates.

A recorded ``--obs`` run carries everything the autotuner needs to
predict *other* configurations of the same problem family:

* the dependency document (``graph.json``) stores each task's Table-I
  kernel class and modelled flops, from which the **initial rank grid**
  is recovered exactly — a ``(4)-TRSM`` on tile ``(i, j)`` costs
  ``b²·k``, so ``k = flops / b²`` with no rounding ambiguity;
* the recovered grid fits a :class:`~repro.analysis.ranks.RankModel`
  (rank as a power law of sub-diagonal distance) for extrapolating the
  rank structure to tile counts never measured;
* the task spans calibrate :class:`~repro.runtime.calibration
  .MeasuredRates` — median replay for same-geometry sweeps, per-class
  GFLOP/s extrapolation when the target size differs.

Several runs of the same geometry pool into one :class:`Calibration`
(element-wise max of rank grids — conservative, like Algorithm 1's
per-sub-diagonal maxrank — and pooled kernel durations).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..analysis.ranks import RankModel, paper_rank_model
from ..runtime.calibration import MeasuredRates, rates_from_runs
from ..utils.exceptions import ConfigurationError

__all__ = ["Calibration", "ranks_from_run"]

#: The kernel class whose flops invert exactly to the tile rank.
_TRSM_LR = "(4)-TRSM"


def ranks_from_run(run) -> np.ndarray:
    """Recover the initial rank grid from a recorded run's graph document.

    ``run`` is a :class:`~repro.obs.analytics.RunTrace` whose ``graph``
    holds the :func:`repro.obs.graph_document` of the executed DAG.
    Every off-band tile ``(i, j)`` received one ``(4)-TRSM`` costing
    ``b²·k`` flops, so its initial rank is ``flops / b²`` exactly.
    Tiles inside the recorded band (and the diagonal) report −1 — the
    same convention as :meth:`repro.matrix.BandTLRMatrix.rank_grid`.
    Record calibration runs at ``--band 1`` so every off-diagonal rank
    is visible to the sweep.
    """
    graph = getattr(run, "graph", None)
    if graph is None:
        raise ConfigurationError(
            "run has no recorded dependency graph; record with a graph "
            "executor (e.g. 'repro execute --obs DIR') so graph.json "
            "captures per-task kernels and flops"
        )
    nt = graph.get("ntiles")
    b = graph.get("tile_size")
    if not nt or not b:
        raise ConfigurationError(
            "recorded graph document lacks ntiles/tile_size; re-record "
            "with a current repro version"
        )
    grid = np.full((nt, nt), -1, dtype=np.int64)
    for info in graph.get("tasks", {}).values():
        if info.get("kernel") != _TRSM_LR:
            continue
        i, j = info["out_tile"]
        k = int(round(float(info["flops"]) / (b * b)))
        grid[i, j] = max(grid[i, j], k)
    return grid


@dataclass
class Calibration:
    """Everything the sweep needs, fitted from one or more recorded runs."""

    tile_size: int
    ntiles: int
    band_size: int
    rank_grid: np.ndarray
    rank_model: RankModel
    rates: MeasuredRates
    n_workers: int
    meta: dict = field(default_factory=dict)
    sources: tuple[str, ...] = ()

    @classmethod
    def from_runs(cls, runs, *, sources: tuple[str, ...] = ()) -> "Calibration":
        """Pool several recorded runs of one geometry into a calibration.

        All runs must agree on ``(ntiles, tile_size)``; their rank grids
        merge element-wise max (conservative, matching Algorithm 1's
        per-sub-diagonal maxrank) and their task spans pool into one
        :class:`MeasuredRates`.  Raises :class:`ConfigurationError` on
        geometry mismatch.

        The runs may differ in *band size* — deliberately.  A band-1
        run exposes every tile's initial rank but exercises no dense
        off-diagonal kernel class, so a sweep that densifies predicts
        those classes from the flops fallback (badly: dense BLAS-3
        sustains far higher GFLOP/s than rank-k updates).  Pooling the
        band-1 run with one recorded at the tuned band covers both
        regimes: ranks from the former, dense-class medians from the
        latter.  See docs/tuning.md's refinement loop.
        """
        if not runs:
            raise ConfigurationError(
                "Calibration.from_runs needs at least one recorded run"
            )
        grids = []
        bands = []
        geom = None
        for run in runs:
            g = ranks_from_run(run)
            doc = run.graph
            this = (doc["ntiles"], doc["tile_size"])
            if geom is None:
                geom = this
            elif this != geom:
                raise ConfigurationError(
                    f"calibration runs disagree on geometry: "
                    f"(ntiles, tile) {geom} vs {this}"
                )
            bands.append(int(doc.get("band_size") or 1))
            grids.append(g)
        nt, b = geom
        # The smallest recorded band has the widest LR coverage; it is
        # the calibration's nominal band (the rank grid merge fills any
        # in-band entries the wider-band runs left dense).
        band = min(bands)
        grid = np.maximum.reduce(grids)
        try:
            model = RankModel.fit(grid, b)
        except ConfigurationError:
            # Too few populated sub-diagonals (tiny smoke runs): fall
            # back to the paper-calibrated constants at the recorded ε.
            accuracy = float(runs[0].meta.get("accuracy", 1e-8) or 1e-8)
            model = paper_rank_model(b, accuracy=accuracy)
        return cls(
            tile_size=b,
            ntiles=nt,
            band_size=band if band else 1,
            rank_grid=grid,
            rank_model=model,
            # Means, not medians: the sweep predicts *makespan*, and the
            # simulated aggregate busy time only matches the recorded one
            # when each class replays its mean (durations are
            # right-skewed).  The verify gate still compares medians.
            rates=rates_from_runs(runs, stat="mean"),
            n_workers=max(run.n_workers for run in runs),
            meta=dict(runs[0].meta),
            sources=tuple(sources),
        )

    def rank_fn(self, ntiles: int):
        """A graph-builder ``RankFn`` for a target tile count.

        At the recorded tile count the exact measured grid answers
        (dense/unknown entries clamp to rank 1, matching how the CLI
        builds graphs from measured grids); at any other tile count the
        fitted power-law model extrapolates.
        """
        if ntiles == self.ntiles:
            grid = self.rank_grid

            def exact(i: int, j: int) -> int:
                return int(max(grid[i, j], 1))

            return exact
        return self.rank_model

    def rank_grid_for(self, ntiles: int) -> np.ndarray:
        """A band-1 rank grid at ``ntiles`` (measured or extrapolated)."""
        if ntiles == self.ntiles:
            return self.rank_grid
        return self.rank_model.to_rank_grid(ntiles)
