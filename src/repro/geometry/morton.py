"""Morton (Z-order) space-filling-curve encoding in 2-D and 3-D.

The paper orders the spatial locations along a Morton curve before tiling
(Section IV: "We use Morton ordering for a good compression ratio").
Neighbouring points on the curve are spatially close, so tiles built from
contiguous index ranges correspond to spatially compact clusters, which is
what makes off-diagonal covariance tiles numerically low-rank.

The encoders are fully vectorized: coordinates are quantized to ``bits``
levels per dimension and their bits interleaved with the classic
"magic-number" bit-spreading scheme, using 64-bit integer arithmetic.
"""

from __future__ import annotations

import numpy as np

from ..utils.exceptions import ConfigurationError

__all__ = [
    "part1by1",
    "part1by2",
    "compact1by1",
    "compact1by2",
    "morton_encode_2d",
    "morton_encode_3d",
    "morton_decode_2d",
    "morton_decode_3d",
    "morton_argsort",
]

#: Maximum number of quantization bits per dimension supported in 3-D.
MAX_BITS_3D = 21  # 3 * 21 = 63 bits fits in int64
#: Maximum number of quantization bits per dimension supported in 2-D.
MAX_BITS_2D = 31  # 2 * 31 = 62 bits fits in int64


def part1by1(x: np.ndarray) -> np.ndarray:
    """Spread the low 31 bits of ``x``, inserting one zero between each bit.

    ``abcd`` becomes ``0a0b0c0d``.  Input must be non-negative int64.
    """
    x = np.asarray(x, dtype=np.uint64)
    x = x & np.uint64(0x7FFFFFFF)  # no in-place op: asarray may alias the input
    x = (x | (x << np.uint64(16))) & np.uint64(0x0000FFFF0000FFFF)
    x = (x | (x << np.uint64(8))) & np.uint64(0x00FF00FF00FF00FF)
    x = (x | (x << np.uint64(4))) & np.uint64(0x0F0F0F0F0F0F0F0F)
    x = (x | (x << np.uint64(2))) & np.uint64(0x3333333333333333)
    x = (x | (x << np.uint64(1))) & np.uint64(0x5555555555555555)
    return x


def part1by2(x: np.ndarray) -> np.ndarray:
    """Spread the low 21 bits of ``x``, inserting two zeros between bits.

    ``abc`` becomes ``00a00b00c``.  Input must be non-negative int64.
    """
    x = np.asarray(x, dtype=np.uint64)
    x = x & np.uint64(0x1FFFFF)  # no in-place op: asarray may alias the input
    x = (x | (x << np.uint64(32))) & np.uint64(0x1F00000000FFFF)
    x = (x | (x << np.uint64(16))) & np.uint64(0x1F0000FF0000FF)
    x = (x | (x << np.uint64(8))) & np.uint64(0x100F00F00F00F00F)
    x = (x | (x << np.uint64(4))) & np.uint64(0x10C30C30C30C30C3)
    x = (x | (x << np.uint64(2))) & np.uint64(0x1249249249249249)
    return x


def compact1by1(x: np.ndarray) -> np.ndarray:
    """Inverse of :func:`part1by1`: gather every second bit."""
    x = np.asarray(x, dtype=np.uint64)
    x = x & np.uint64(0x5555555555555555)  # no in-place op: asarray may alias
    x = (x ^ (x >> np.uint64(1))) & np.uint64(0x3333333333333333)
    x = (x ^ (x >> np.uint64(2))) & np.uint64(0x0F0F0F0F0F0F0F0F)
    x = (x ^ (x >> np.uint64(4))) & np.uint64(0x00FF00FF00FF00FF)
    x = (x ^ (x >> np.uint64(8))) & np.uint64(0x0000FFFF0000FFFF)
    x = (x ^ (x >> np.uint64(16))) & np.uint64(0x00000000FFFFFFFF)
    return x.astype(np.int64)


def compact1by2(x: np.ndarray) -> np.ndarray:
    """Inverse of :func:`part1by2`: gather every third bit."""
    x = np.asarray(x, dtype=np.uint64)
    x = x & np.uint64(0x1249249249249249)  # no in-place op: asarray may alias
    x = (x ^ (x >> np.uint64(2))) & np.uint64(0x10C30C30C30C30C3)
    x = (x ^ (x >> np.uint64(4))) & np.uint64(0x100F00F00F00F00F)
    x = (x ^ (x >> np.uint64(8))) & np.uint64(0x1F0000FF0000FF)
    x = (x ^ (x >> np.uint64(16))) & np.uint64(0x1F00000000FFFF)
    x = (x ^ (x >> np.uint64(32))) & np.uint64(0x1FFFFF)
    return x.astype(np.int64)


def _check_codes(ix: np.ndarray, bits: int, ndim: int) -> np.ndarray:
    ix = np.asarray(ix)
    if np.any(ix < 0):
        raise ConfigurationError("Morton encoding requires non-negative cell indices")
    limit = 1 << bits
    if np.any(ix >= limit):
        raise ConfigurationError(
            f"cell index exceeds {bits}-bit range for {ndim}-D Morton encoding"
        )
    return ix.astype(np.int64)


def morton_encode_2d(ix: np.ndarray, iy: np.ndarray, bits: int = MAX_BITS_2D) -> np.ndarray:
    """Interleave two integer grid coordinates into Morton codes.

    Parameters
    ----------
    ix, iy:
        Integer cell coordinates, each in ``[0, 2**bits)``.
    bits:
        Quantization bits per dimension, at most :data:`MAX_BITS_2D`.
    """
    if not (1 <= bits <= MAX_BITS_2D):
        raise ConfigurationError(f"bits must be in [1, {MAX_BITS_2D}], got {bits}")
    ix = _check_codes(ix, bits, 2)
    iy = _check_codes(iy, bits, 2)
    return (part1by1(ix) | (part1by1(iy) << np.uint64(1))).astype(np.int64)


def morton_encode_3d(
    ix: np.ndarray, iy: np.ndarray, iz: np.ndarray, bits: int = MAX_BITS_3D
) -> np.ndarray:
    """Interleave three integer grid coordinates into Morton codes."""
    if not (1 <= bits <= MAX_BITS_3D):
        raise ConfigurationError(f"bits must be in [1, {MAX_BITS_3D}], got {bits}")
    ix = _check_codes(ix, bits, 3)
    iy = _check_codes(iy, bits, 3)
    iz = _check_codes(iz, bits, 3)
    code = part1by2(ix) | (part1by2(iy) << np.uint64(1)) | (part1by2(iz) << np.uint64(2))
    return code.astype(np.int64)


def morton_decode_2d(code: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Recover ``(ix, iy)`` from 2-D Morton codes."""
    code = np.asarray(code, dtype=np.uint64)
    return compact1by1(code), compact1by1(code >> np.uint64(1))


def morton_decode_3d(code: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Recover ``(ix, iy, iz)`` from 3-D Morton codes."""
    code = np.asarray(code, dtype=np.uint64)
    return (
        compact1by2(code),
        compact1by2(code >> np.uint64(1)),
        compact1by2(code >> np.uint64(2)),
    )


def morton_argsort(points: np.ndarray, bits: int | None = None) -> np.ndarray:
    """Return the permutation that sorts ``points`` along a Morton curve.

    Points (shape ``(n, d)`` with d in {2, 3}) are quantized to a uniform
    grid of ``2**bits`` cells per dimension spanning their bounding box,
    then sorted by Morton code.  Ties (points in the same cell) are broken
    by original index, making the permutation deterministic.

    Parameters
    ----------
    points:
        Array of shape ``(n, 2)`` or ``(n, 3)`` of coordinates.
    bits:
        Bits per dimension; defaults to the maximum supported for the
        dimensionality.

    Returns
    -------
    numpy.ndarray
        Integer permutation ``p`` such that ``points[p]`` is Morton-ordered.
    """
    pts = np.asarray(points, dtype=np.float64)
    if pts.ndim != 2 or pts.shape[1] not in (2, 3):
        raise ConfigurationError(
            f"points must have shape (n, 2) or (n, 3), got {pts.shape}"
        )
    n, d = pts.shape
    if n == 0:
        return np.empty(0, dtype=np.int64)
    if bits is None:
        bits = MAX_BITS_2D if d == 2 else MAX_BITS_3D

    lo = pts.min(axis=0)
    hi = pts.max(axis=0)
    span = np.where(hi > lo, hi - lo, 1.0)
    cells = (1 << bits) - 1
    # Quantize into [0, 2**bits - 1]; clip guards the hi edge from round-up.
    q = np.clip(((pts - lo) / span * cells).astype(np.int64), 0, cells)

    if d == 2:
        codes = morton_encode_2d(q[:, 0], q[:, 1], bits=bits)
    else:
        codes = morton_encode_3d(q[:, 0], q[:, 1], q[:, 2], bits=bits)
    return np.argsort(codes, kind="stable")
