"""Generators of spatial location sets for covariance problems.

The paper's experiments place ``n`` locations in the unit cube (3-D) or
unit square (2-D).  STARS-H (the paper's generator) uses a regular grid
perturbed by small uniform noise so no two points coincide; we reproduce
that default and also provide purely uniform random clouds.

All generators return an array of shape ``(n, d)`` in ``[0, 1]^d`` and are
deterministic given a seed.
"""

from __future__ import annotations

import numpy as np

from ..utils.exceptions import ConfigurationError
from ..utils.validation import check_positive_int
from .morton import morton_argsort

__all__ = [
    "perturbed_grid",
    "uniform_cloud",
    "grid_side_for",
    "generate_locations",
]


def grid_side_for(n: int, ndim: int) -> int:
    """Smallest per-dimension grid side ``m`` with ``m**ndim >= n``."""
    n = check_positive_int("n", n)
    if ndim not in (2, 3):
        raise ConfigurationError(f"ndim must be 2 or 3, got {ndim}")
    m = int(round(n ** (1.0 / ndim)))
    while m**ndim < n:
        m += 1
    return m


def perturbed_grid(
    n: int,
    ndim: int = 3,
    *,
    jitter: float = 0.4,
    seed: int | None = 0,
) -> np.ndarray:
    """Regular grid in the unit cube with uniform jitter (STARS-H style).

    A regular ``m x m (x m)`` lattice with spacing ``h = 1/m`` is laid down
    and each coordinate is shifted by ``U(-jitter*h/2, +jitter*h/2)``.  The
    first ``n`` lattice sites (in lexicographic order) are used, so ``n``
    need not be a perfect square/cube.

    Parameters
    ----------
    n:
        Number of locations.
    ndim:
        Spatial dimension, 2 or 3.
    jitter:
        Perturbation magnitude as a fraction of the lattice spacing; 0
        yields an exact regular grid.  Must lie in ``[0, 1)`` so points
        cannot swap cells.
    seed:
        Seed for :class:`numpy.random.default_rng`; ``None`` draws entropy
        from the OS.

    Returns
    -------
    numpy.ndarray
        Shape ``(n, ndim)`` array of locations in the unit cube.
    """
    n = check_positive_int("n", n)
    if ndim not in (2, 3):
        raise ConfigurationError(f"ndim must be 2 or 3, got {ndim}")
    if not (0.0 <= jitter < 1.0):
        raise ConfigurationError(f"jitter must be in [0, 1), got {jitter}")

    m = grid_side_for(n, ndim)
    h = 1.0 / m
    axes = [np.arange(m, dtype=np.float64) for _ in range(ndim)]
    mesh = np.meshgrid(*axes, indexing="ij")
    lattice = np.stack([g.ravel() for g in mesh], axis=1)[:n]
    pts = (lattice + 0.5) * h

    if jitter > 0.0:
        rng = np.random.default_rng(seed)
        pts = pts + rng.uniform(-jitter * h / 2.0, jitter * h / 2.0, size=pts.shape)
    return np.clip(pts, 0.0, 1.0)


def uniform_cloud(n: int, ndim: int = 3, *, seed: int | None = 0) -> np.ndarray:
    """``n`` i.i.d. uniform locations in the unit cube."""
    n = check_positive_int("n", n)
    if ndim not in (2, 3):
        raise ConfigurationError(f"ndim must be 2 or 3, got {ndim}")
    rng = np.random.default_rng(seed)
    return rng.uniform(0.0, 1.0, size=(n, ndim))


def generate_locations(
    n: int,
    ndim: int = 3,
    *,
    layout: str = "perturbed-grid",
    jitter: float = 0.4,
    seed: int | None = 0,
    morton: bool = True,
) -> np.ndarray:
    """Generate and (optionally) Morton-order a set of spatial locations.

    This is the one-stop entry point the covariance problems use: it matches
    the paper's pipeline of STARS-H generation followed by Morton ordering
    for compression-friendly tile clustering.

    Parameters
    ----------
    n:
        Number of locations.
    ndim:
        2 or 3.
    layout:
        ``"perturbed-grid"`` (STARS-H default) or ``"uniform"``.
    jitter:
        Jitter fraction for the perturbed grid (ignored for uniform).
    seed:
        RNG seed.
    morton:
        When true (the default, as in the paper) the points are re-ordered
        along a Morton space-filling curve.

    Returns
    -------
    numpy.ndarray
        Shape ``(n, ndim)`` locations, Morton-ordered when requested.
    """
    if layout == "perturbed-grid":
        pts = perturbed_grid(n, ndim, jitter=jitter, seed=seed)
    elif layout == "uniform":
        pts = uniform_cloud(n, ndim, seed=seed)
    else:
        raise ConfigurationError(
            f"layout must be 'perturbed-grid' or 'uniform', got {layout!r}"
        )
    if morton:
        pts = pts[morton_argsort(pts)]
    return pts
