"""Pairwise Euclidean distance computation.

Covariance tiles need the distance matrix between two *blocks* of
locations.  We compute it with the vectorized identity

    ||x - y||^2 = ||x||^2 + ||y||^2 - 2 <x, y>

which turns the double loop into one GEMM — the dominant cost of matrix
generation — plus cheap broadcasting, in line with the HPC guides
(vectorize, lean on BLAS).  A tiny floor clamps the inevitable negative
round-off before the square root.
"""

from __future__ import annotations

import numpy as np

from ..utils.exceptions import ConfigurationError

__all__ = ["pairwise_distances", "block_distances"]


def _as_points(name: str, x: np.ndarray) -> np.ndarray:
    x = np.asarray(x, dtype=np.float64)
    if x.ndim == 1:
        x = x[:, None]
    if x.ndim != 2:
        raise ConfigurationError(f"{name} must be (n, d) points, got shape {x.shape}")
    return x


def block_distances(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Distance matrix ``D[i, j] = ||x_i - y_j||`` between two point blocks.

    Parameters
    ----------
    x:
        Shape ``(m, d)``.
    y:
        Shape ``(n, d)`` with the same ``d``.

    Returns
    -------
    numpy.ndarray
        Shape ``(m, n)`` matrix of Euclidean distances.
    """
    x = _as_points("x", x)
    y = _as_points("y", y)
    if x.shape[1] != y.shape[1]:
        raise ConfigurationError(
            f"dimension mismatch: x has d={x.shape[1]}, y has d={y.shape[1]}"
        )
    x2 = np.einsum("ij,ij->i", x, x)
    y2 = np.einsum("ij,ij->i", y, y)
    sq = x2[:, None] + y2[None, :] - 2.0 * (x @ y.T)
    np.maximum(sq, 0.0, out=sq)
    return np.sqrt(sq, out=sq)


def pairwise_distances(x: np.ndarray) -> np.ndarray:
    """Symmetric distance matrix of one point set with an exactly-zero diagonal."""
    d = block_distances(x, x)
    np.fill_diagonal(d, 0.0)
    return d
