"""Spatial geometry: location generation, Morton ordering, distances."""

from .distance import block_distances, pairwise_distances
from .grids import generate_locations, grid_side_for, perturbed_grid, uniform_cloud
from .morton import (
    morton_argsort,
    morton_decode_2d,
    morton_decode_3d,
    morton_encode_2d,
    morton_encode_3d,
)

__all__ = [
    "block_distances",
    "pairwise_distances",
    "generate_locations",
    "grid_side_for",
    "perturbed_grid",
    "uniform_cloud",
    "morton_argsort",
    "morton_encode_2d",
    "morton_encode_3d",
    "morton_decode_2d",
    "morton_decode_3d",
]
