"""Command-line interface: ``python -m repro <command>``.

Nine focused commands mirroring the library's main entry points:

* ``info``      — version and subsystem inventory;
* ``demo``      — compress → auto-tune → factorize → solve, with a report;
* ``tune``      — run Algorithm 1 on a problem and print its cost table;
* ``simulate``  — replay a Cholesky DAG on the machine simulator;
* ``execute``   — run the DAG for real on a selectable backend
  (``--executor threads`` thread pool, ``--executor processes``
  multi-process ranks, ``--executor sim`` DES prediction), with
  occupancy/Gantt/Chrome-trace artifacts;
* ``report``    — render the telemetry of a ``--obs`` run as a text report;
* ``analyze``   — trace analytics on a ``--obs`` run: realized critical
  path, per-worker occupancy, per-kernel achieved GFLOP/s;
* ``bench``     — run the standing benchmark suite and append
  median/IQR records to ``BENCH_history.jsonl``;
* ``compare``   — noise-aware regression gate between two bench runs or
  two ``--obs`` trace directories (exit 1 on a gated regression);
* ``serve``     — run the factorize-once/solve-many solver service
  against generated closed-loop traffic and print the serving report
  (latency percentiles, batch widths, cache + queue outcomes);
* ``bench-service`` — the batched-vs-one-at-a-time serving latency
  benchmark: two load-generator arms against the same problem, p50/p95/
  p99 recorded to the bench history (full gate behind
  ``REPRO_BENCH_SERVICE_FULL=1``).

``demo`` and ``execute`` accept ``--obs DIR``: the run executes under an
active :mod:`repro.obs` observation and writes the standard artifacts
(``trace.json``, ``events.jsonl``, ``summary.json``, ``metrics.prom``,
plus ``graph.json`` when a graph executor ran) into ``DIR``.
"""

from __future__ import annotations

import argparse
import sys
import time


def _observed(args: argparse.Namespace, body) -> int:
    """Run ``body`` under an observation when ``--obs DIR`` was given.

    Writes the standard artifact set into the directory afterwards and
    prints where they landed; without ``--obs`` this is a plain call.
    """
    outdir = getattr(args, "obs", None)
    if outdir is None:
        return body()
    from repro import obs

    meta = {
        k: v
        for k, v in vars(args).items()
        if v is not None and isinstance(v, (str, int, float, bool))
    }
    with obs.observe(meta=meta) as run:
        rc = body()
    paths = run.write(outdir)
    print(f"observability artifacts in {outdir}: "
          + ", ".join(p.name for p in sorted(paths.values())))
    print(f"render with: python -m repro report {outdir}")
    return rc


def _cmd_info(args: argparse.Namespace) -> int:
    import repro

    print(f"repro {repro.__version__}")
    print(__doc__.splitlines()[0])
    print()
    print("subsystems:")
    for name, what in [
        ("repro.geometry", "point clouds, Morton ordering, distances"),
        ("repro.statistics", "Matérn kernels, covariance problems (STARS-H role)"),
        ("repro.linalg", "tiles, compression, HCORE kernels, flop models"),
        ("repro.matrix", "BAND-DENSE-TLR containers, memory accounting, I/O"),
        ("repro.distribution", "2D/1D block-cyclic + hybrid band layouts"),
        ("repro.runtime", "PTG/DTD graphs, executor, machine simulator"),
        ("repro.core", "factorization, auto-tuner, solves, MLE, API"),
        ("repro.analysis", "rank models, metrics, Gantt, reporting"),
    ]:
        print(f"  {name:<20} {what}")
    return 0


def _fault_plan(args: argparse.Namespace):
    """The seeded ``FaultPlan`` of ``--faults``/``--fault-seed``, or None."""
    if args.faults is None:
        return None
    from repro.testing import FaultPlan

    return FaultPlan.parse(args.faults, seed=args.fault_seed)


def _print_resilience(rep) -> None:
    """One line summarizing what the recovery engine did, if anything."""
    r = getattr(rep, "resilience", None)
    if r is None:
        return
    parts = [f"retries={r.retries}", f"recovered={r.recoveries}"]
    if r.npd_shifts:
        parts.append(f"npd_shifts={r.npd_shifts}")
    if r.densify_fallbacks:
        parts.append(f"densified={r.densify_fallbacks}")
    if r.watchdog_requeues:
        parts.append(f"watchdog_requeues={r.watchdog_requeues}")
    if r.checkpoints_written:
        parts.append(f"checkpoints={r.checkpoints_written}")
    if r.tasks_resumed:
        parts.append(f"resumed={r.tasks_resumed}")
    print("resilience: " + ", ".join(parts))


def _apply_config(args: argparse.Namespace) -> int:
    """Overlay an emitted ``tune`` config.json onto the parsed namespace.

    Only keys the subcommand actually defines are applied (``demo`` has
    no ``--band``/``--executor``, so those entries are ignored there);
    explicit command-line flags are overridden by the config — the file
    is the single source of truth for a reproduced run.  Returns 2 on a
    missing or unparsable path, 0 otherwise.
    """
    path = getattr(args, "config", None)
    if path is None:
        return 0
    import json
    from pathlib import Path

    p = Path(path)
    if not p.is_file():
        print(f"error: --config {p} does not exist", file=sys.stderr)
        return 2
    try:
        doc = json.loads(p.read_text())
    except json.JSONDecodeError as exc:
        print(f"error: --config {p} is not valid JSON: {exc}",
              file=sys.stderr)
        return 2
    if not isinstance(doc, dict):
        print(f"error: --config {p} must hold a JSON object",
              file=sys.stderr)
        return 2
    for key, value in doc.items():
        if hasattr(args, key):
            setattr(args, key, value)
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    rc = _apply_config(args)
    if rc:
        return rc
    return _observed(args, lambda: _run_demo(args))


def _run_demo(args: argparse.Namespace) -> int:
    import numpy as np

    from repro import TLRSolver, st_3d_exp_problem

    print(f"generating st-3D-exp problem: n={args.n}, tile={args.tile}")
    problem = st_3d_exp_problem(args.n, args.tile, seed=args.seed)
    solver = TLRSolver.from_problem(
        problem,
        accuracy=args.accuracy,
        compression=args.compression,
        precision=args.precision,
        n_workers=args.workers,
    )
    mn, avg, mx = solver.matrix.rank_stats()
    print(f"compressed at eps={args.accuracy:g} [{args.compression}] "
          f"precision={args.precision}: band={solver.band_size}, "
          f"ranks {mn}/{avg:.1f}/{mx}")

    t0 = time.perf_counter()
    rep = solver.factorize(
        n_workers=args.workers,
        batch=args.batch,
        faults=_fault_plan(args),
        checkpoint=args.checkpoint,
        resume=args.resume,
    )
    how = f" on {args.workers} workers" if args.workers else ""
    how += " [batched]" if args.batch else ""
    print(f"factorized in {time.perf_counter() - t0:.2f}s{how} "
          f"({rep.counter.total / 1e9:.2f} modelled Gflop)")
    pr = rep.precision_report
    if pr is not None and pr.mode != "fp64":
        print(f"mixed precision [{pr.mode}]: {pr.demoted_tiles} fp32 tiles, "
              f"off-band bytes {pr.offband_saving_factor:.2f}x smaller")
    _print_resilience(rep)

    rng = np.random.default_rng(args.seed)
    x_true = rng.standard_normal(args.n)
    rhs = np.asarray(problem.dense() @ x_true)
    x = solver.solve(rhs)
    err = float(np.linalg.norm(x - x_true) / np.linalg.norm(x_true))
    print(f"solve relative error: {err:.2e}")
    mem = solver.memory_report()
    print(f"memory: static {mem.static_bytes / 2**20:.1f} MiB, dynamic "
          f"{mem.dynamic_bytes / 2**20:.1f} MiB "
          f"({mem.reduction_factor:.2f}x)")
    return 0


def _cmd_tune(args: argparse.Namespace) -> int:
    if args.from_run:
        return _run_tune_sweep(args)
    from repro import TruncationRule, st_3d_exp_problem
    from repro.analysis import format_table
    from repro.core import tune_band_size
    from repro.matrix import BandTLRMatrix

    problem = st_3d_exp_problem(args.n, args.tile, seed=args.seed)
    matrix = BandTLRMatrix.from_problem(
        problem, TruncationRule(eps=args.accuracy), band_size=1
    )
    decision = tune_band_size(
        matrix.rank_grid(), args.tile, fluctuation=args.fluctuation
    )
    rows = [
        (c.band_id, c.maxrank, round(c.dense_flops / 1e9, 2),
         round(c.tlr_flops / 1e9, 2))
        for c in decision.costs[: args.rows]
    ]
    print(format_table(
        ["band_id", "maxrank", "dense_Gflop", "tlr_Gflop"], rows,
        title=f"Algorithm 1 cost model (n={args.n}, b={args.tile}, "
              f"eps={args.accuracy:g})"))
    print(f"tuned BAND_SIZE = {decision.band_size} "
          f"(fluctuation={args.fluctuation}, box={decision.band_size_range})")
    return 0


def _run_tune_sweep(args: argparse.Namespace) -> int:
    """``tune --from-run``: the simulator-guided calibrate/sweep/verify loop."""
    from pathlib import Path

    from repro import perf
    from repro.analysis import format_table
    from repro.obs.analytics import load_run, render_prediction
    from repro.tune import (
        Calibration,
        parse_grid,
        sweep,
        verify_prediction,
    )
    from repro.utils.exceptions import ConfigurationError

    runs = []
    for src in args.from_run:
        if not (Path(src) / "events.jsonl").exists():
            print(f"error: {src} is not an --obs run directory "
                  f"(no events.jsonl)", file=sys.stderr)
            return 2
        runs.append(load_run(src))
    try:
        cal = Calibration.from_runs(runs, sources=tuple(args.from_run))
        grid = parse_grid(args.grid) if args.grid else None
        result = sweep(
            cal,
            grid=grid,
            ntiles=args.target_nt,
            workers=args.workers,
            smoke=args.smoke,
        )
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    rows = [
        (i + 1, c.candidate.band_size, c.candidate.scheduler,
         c.candidate.distribution, c.candidate.ranks, c.candidate.cores,
         round(c.makespan_s * 1e3, 3), round(c.critical_path_s * 1e3, 3),
         round(c.mean_occupancy, 3), round(c.bytes_sent / 2**20, 3),
         c.messages)
        for i, c in enumerate(result.candidates)
    ]
    print(format_table(
        ["#", "band", "sched", "dist", "ranks", "cores", "makespan_ms",
         "critpath_ms", "occupancy", "MiB_sent", "msgs"],
        rows,
        title=f"simulated sweep over {len(result.candidates)} candidates "
              f"({result.rates_mode} rates, "
              f"calibrated from {len(runs)} run(s))",
    ))
    w = result.winner.candidate
    print(f"tuned BAND_SIZE = {w.band_size} via simulated makespan "
          f"(Algorithm 1: {result.algorithm1_band}, "
          f"window={result.fluctuation_window}); winner: "
          f"scheduler={w.scheduler}, dist={w.distribution}, "
          f"ranks={w.ranks}, cores={w.cores}")

    rc = 0
    if args.verify:
        report = verify_prediction(
            cal, result,
            tolerance=args.tolerance,
            obs_out=args.verify_obs,
        )
        result.verify = report.to_dict()
        print()
        print(render_prediction(report.accuracy))
        print(f"factor digest: {report.factor_digest}")
        if args.verify_obs:
            print(f"re-run the gate with: python -m repro compare "
                  f"{args.verify_obs}/predicted {args.verify_obs}/realized")
        if report.gate_passed:
            print(f"verify gate passed: |makespan err| "
                  f"{abs(report.accuracy.makespan_rel_err):.3f} <= "
                  f"{report.tolerance} and no kernel-class regression")
        else:
            print(f"FAIL: verify gate — makespan err "
                  f"{report.accuracy.makespan_rel_err:+.3f} vs tolerance "
                  f"{report.tolerance}, kernel-class regression="
                  f"{report.diff_regressed}", file=sys.stderr)
            rc = 1

    if args.emit:
        import json as _json

        out = Path(args.emit)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(_json.dumps(result.config(), indent=2) + "\n")
        print(f"winning config written to {out}")
        print(f"reproduce with: python -m repro execute --config {out}")
    if args.report:
        path = result.write(args.report)
        print(f"ranked tune report written to {path}")
    if args.out:
        records = perf.records_from_tune(result)
        path = perf.append_history(records, args.out)
        print(f"{len(records)} tune record(s) appended to {path}")
    return rc


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.analysis import (
        format_table,
        occupancy_summary,
        paper_rank_model,
    )
    from repro.core import tune_band_size
    from repro.obs import gantt
    from repro.distribution import BandDistribution, ProcessGrid
    from repro.runtime import MachineSpec, build_cholesky_graph, simulate

    model = paper_rank_model(args.tile, accuracy=args.accuracy)
    band = tune_band_size(model.to_rank_grid(args.nt), args.tile).band_size
    g = build_cholesky_graph(
        args.nt, band, args.tile, model,
        recursive_split=args.split if args.split > 1 else None,
    )
    machine = MachineSpec(
        nodes=args.nodes, cores_per_node=args.cores, gpus_per_node=args.gpus
    )
    dist = BandDistribution(ProcessGrid.squarest(args.nodes), band_size=band)
    res = simulate(
        g, dist, machine,
        scheduler=args.scheduler,
        work_stealing=args.steal,
        collect_trace=args.gantt,
    )
    s = occupancy_summary(res)
    print(format_table(
        ["metric", "value"],
        [
            ("tasks", g.n_tasks),
            ("tuned band", band),
            ("makespan (s)", round(res.makespan, 3)),
            ("mean occupancy", round(s.mean_occupancy, 3)),
            ("imbalance", round(s.imbalance, 3)),
            ("achieved Gflop/s", round(res.achieved_gflops, 1)),
            ("gpu busy (s)",
             0.0 if res.gpu_busy is None else round(float(res.gpu_busy.sum()), 2)),
            ("messages", res.comm.messages),
            ("GiB sent", round(res.comm.bytes_sent / 2**30, 3)),
        ],
        title=f"simulated NT={args.nt}, b={args.tile} on {args.nodes}x{args.cores} cores",
    ))
    if args.gantt:
        print()
        print(gantt(res, width=args.width))
    return 0


def _cmd_execute(args: argparse.Namespace) -> int:
    rc = _apply_config(args)
    if rc:
        return rc
    return _observed(args, lambda: _run_execute(args))


def _run_execute(args: argparse.Namespace) -> int:
    import numpy as np

    from repro import TruncationRule, st_3d_exp_problem
    from repro.analysis import format_table, occupancy_summary
    from repro.core import tlr_cholesky
    from repro.obs import gantt, write_chrome_trace
    from repro.matrix import BandTLRMatrix
    from repro.runtime import build_cholesky_graph, get_executor

    problem = st_3d_exp_problem(args.n, args.tile, seed=args.seed)
    rule = TruncationRule(eps=args.accuracy)
    matrix = BandTLRMatrix.from_problem(
        problem,
        rule,
        band_size=args.band,
        backend=args.compression,
        precision=args.precision,
        n_workers=args.workers,
    )
    if matrix.precision is not None:
        from repro.linalg import apply_precision

        apply_precision(matrix, matrix.precision)
    grid = matrix.rank_grid()

    def rank_fn(i: int, j: int) -> int:
        return int(max(grid[i, j], 1))

    graph = build_cholesky_graph(
        matrix.ntiles, args.band, args.tile, rank_fn
    )

    if args.executor == "sim":
        return _execute_sim(args, graph)

    t_seq = None
    if args.compare_sequential:
        seq = matrix.copy()
        t0 = time.perf_counter()
        tlr_cholesky(seq)
        t_seq = time.perf_counter() - t0

    want_trace = args.gantt or args.trace is not None
    if args.executor == "processes":
        ex = get_executor(
            "processes", n_ranks=args.ranks, shard_dir=args.shards
        )
    else:
        ex = get_executor(
            "threads", n_workers=args.workers, scheduler=args.scheduler
        )
    # Batching needs shared-memory tiles: only the thread executor (and
    # the sequential reference) supports it, so the flag is dropped for
    # the processes backend instead of erroring on the default.
    use_batch = args.batch and args.executor == "threads"
    res = ex.execute(
        graph, matrix,
        collect_trace=want_trace,
        batch=use_batch,
        faults=_fault_plan(args),
        checkpoint=args.checkpoint,
        resume=args.resume,
    ).report
    s = occupancy_summary(res)
    rows = [
        ("tasks", res.tasks_executed),
        ("workers", res.n_workers),
        ("wall-clock (s)", round(res.makespan, 3)),
        ("busy core-s", round(float(res.busy.sum()), 3)),
        ("mean occupancy", round(s.mean_occupancy, 3)),
        ("modelled Gflop", round(res.counter.total / 1e9, 2)),
        ("max rank seen", res.max_rank_seen),
        ("pool hit rate", round(res.pool.stats.hit_rate, 3)),
        ("batched", "on" if use_batch else "off"),
        ("precision", args.precision),
    ]
    if args.executor == "processes":
        c = res.comm
        rows += [
            ("LOCAL edges", c.local_edges),
            ("REMOTE edges", c.remote_edges),
            ("messages (modelled)", c.messages),
            ("MiB sent (modelled)", round(c.bytes_sent / 2**20, 3)),
            ("broadcasts", c.broadcasts),
            ("wire messages", res.wire_messages),
            ("MiB on wire", round(res.wire_bytes / 2**20, 3)),
        ]
        if res.rank_restarts:
            rows.append(("rank restarts", res.rank_restarts))
        if res.shard_merge is not None:
            m = res.shard_merge
            rows += [
                ("obs shards merged", m.n_shards),
                ("merged spans", m.merged_spans),
                ("span conservation",
                 "ok" if m.conserved else "VIOLATED"),
                ("comm edges realized", m.comm_edges),
            ]
    if res.resilience is not None:
        rows.append(("task retries", res.resilience.retries))
        rows.append(("tasks recovered", res.resilience.recoveries))
        if res.resilience.checkpoints_written:
            rows.append(("checkpoints written",
                         res.resilience.checkpoints_written))
        if res.tasks_resumed:
            rows.append(("tasks resumed", res.tasks_resumed))
    if t_seq is not None:
        rows.append(("sequential (s)", round(t_seq, 3)))
        rows.append(("speedup", round(t_seq / max(res.makespan, 1e-12), 2)))
    print(format_table(
        ["metric", "value"], rows,
        title=f"real execution [{args.executor}]: "
              f"n={args.n}, b={args.tile}, band={args.band}",
    ))
    if getattr(args, "config", None):
        from repro.tune import factor_digest

        print(f"factor digest: {factor_digest(matrix)}")
    if args.verify:
        l = matrix.to_dense(lower_only=True)
        a = problem.dense()
        err = float(np.linalg.norm(l @ l.T - a) / np.linalg.norm(a))
        print(f"backward error |LL^T - A|/|A|: {err:.2e}")
    if args.gantt:
        print()
        print(gantt(res, width=args.width))
    if args.trace is not None:
        out = write_chrome_trace(res, args.trace)
        print(f"Chrome trace written to {out}")
    if args.executor == "processes" and res.shard_merge is not None:
        print(f"merged cross-rank trace: {res.shard_merge.out_path}")
        if not res.shard_merge.conserved:
            print("error: merged trace lost spans (conservation check "
                  "failed)", file=sys.stderr)
            return 1
    return 0


def _execute_sim(args: argparse.Namespace, graph) -> int:
    """``execute --executor sim``: predict the run instead of doing it.

    Simulates the same DAG on one single-core node per rank and replays
    the predicted schedule into the active observation, so the ``--obs``
    directory holds the same artifact shapes as a real run — feed both to
    ``python -m repro compare`` for the predicted-vs-realized trace diff.
    With ``--calibrate-from REALDIR`` the simulator's kernel costs are
    the median measured durations of the real run's trace, isolating
    scheduling/communication model error from kernel-rate error.
    """
    from repro import obs
    from repro.analysis import format_table
    from repro.obs import gantt
    from repro.runtime import MachineSpec, SimExecutor, rates_from_run
    from repro.runtime.task import task_name

    if args.verify:
        print("error: --verify needs a factorized matrix; the sim "
              "executor only predicts the run", file=sys.stderr)
        return 2

    machine = None
    if args.calibrate_from is not None:
        from repro.obs.analytics import load_run

        machine = MachineSpec(
            nodes=args.ranks, cores_per_node=1,
            rates=rates_from_run(load_run(args.calibrate_from)),
        )
    ex = SimExecutor(n_ranks=args.ranks, machine=machine,
                     scheduler=args.scheduler)
    res = ex.execute(graph, None, collect_trace=True).report

    # Replay the predicted schedule as spans so --obs yields a trace the
    # analytics layer (and `repro compare`) reads like a realized one.
    if obs.enabled():
        obs.graph_observed(graph, task_name)
        t0 = obs.clock()
        for tid, proc, start, end in res.trace:
            task = graph.tasks[tid]
            obs.record_span(
                task_name(tid), "task",
                start=t0 + start, end=t0 + end,
                thread=f"rank-{proc}", worker=proc,
                kernel=task.kernel.value, flops=task.flops,
            )
        obs.gauge_set("makespan_s", res.makespan, executor="sim")
        obs.gauge_set("remote_messages", res.comm.messages)
        obs.gauge_set("remote_bytes", res.comm.bytes_sent)

    print(format_table(
        ["metric", "value"],
        [
            ("tasks", graph.n_tasks),
            ("ranks", args.ranks),
            ("predicted makespan (s)", round(res.makespan, 3)),
            ("mean occupancy", round(float(res.occupancy.mean()), 3)),
            ("LOCAL edges", res.comm.local_edges),
            ("REMOTE edges", res.comm.remote_edges),
            ("messages", res.comm.messages),
            ("MiB sent", round(res.comm.bytes_sent / 2**20, 3)),
            ("broadcasts", res.comm.broadcasts),
            ("kernel rates", "measured" if machine is not None
             else "Shaheen-II-like"),
        ],
        title=f"predicted execution [sim]: n={args.n}, b={args.tile}, "
              f"band={args.band}, ranks={args.ranks}",
    ))
    if args.gantt:
        print()
        print(gantt(res, width=args.width))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.obs.report import load_summary, render_report

    summary = load_summary(args.path)
    print(render_report(summary, width=args.width))
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    from repro.obs.analytics import load_run, render_analysis

    run = load_run(args.path)
    print(render_analysis(run, width=args.width, buckets=args.buckets))
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro import perf

    kind = "smoke" if args.smoke else "full"
    print(f"running {kind} benchmark suite "
          f"(warmup={args.warmup}, repeats={args.repeats})")
    records = perf.run_suite(
        smoke=args.smoke,
        warmup=args.warmup,
        repeats=args.repeats,
        label=args.label,
        name_filter=args.filter,
        progress=print,
    )
    if not records:
        print("no benchmarks matched --filter")
        return 1
    path = perf.append_history(records, args.out)
    print(f"{len(records)} records appended to {path} "
          f"(run '{records[0].run}', schema v{perf.SCHEMA_VERSION})")
    print(f"gate with: python -m repro compare BASE.jsonl {path}")
    return 0


def _is_obs_dir(path: str) -> bool:
    from pathlib import Path

    return (Path(path) / "events.jsonl").exists()


def _cmd_compare(args: argparse.Namespace) -> int:
    from pathlib import Path

    if _is_obs_dir(args.base) and _is_obs_dir(args.head):
        from repro.obs.analytics import load_run, render_diff, trace_diff

        diff = trace_diff(
            load_run(args.base), load_run(args.head),
            threshold=args.threshold,
        )
        print(render_diff(diff))
        return 1 if diff.has_regression else 0

    from repro import perf

    base_p, head_p = Path(args.base), Path(args.head)
    for p in (base_p, head_p):
        if not (p.is_file() or (p.is_dir() and (p / perf.HISTORY_FILE).exists())):
            print(f"error: {p} is neither an --obs run directory nor a "
                  f"bench history (.jsonl / directory containing "
                  f"{perf.HISTORY_FILE})", file=sys.stderr)
            return 2
    base = perf.latest_run(perf.load_history(base_p))
    head = perf.latest_run(perf.load_history(head_p))
    result = perf.compare_records(base, head, threshold=args.threshold)
    print(perf.render_compare(result))
    return 1 if result.has_regression else 0


def _band_arg(value: str):
    """``--band`` values for the service commands: ``auto`` or an int."""
    if value == "auto":
        return value
    try:
        return int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"band must be 'auto' or an integer, got {value!r}"
        ) from None


def _cmd_serve(args: argparse.Namespace) -> int:
    return _observed(args, lambda: _run_serve(args))


def _parse_listen(spec: str) -> tuple[str, int]:
    """``--listen`` values: ``HOST:PORT`` or a bare ``PORT`` (port 0 = OS
    picks a free one)."""
    host, _, port = spec.rpartition(":")
    if not host:
        host = "127.0.0.1"
    try:
        return host, int(port)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"listen address must be HOST:PORT or PORT, got {spec!r}"
        ) from None


def _run_serve(args: argparse.Namespace) -> int:
    from repro import st_3d_exp_problem
    from repro.analysis import format_table
    from repro.obs import LiveAggregator, MonitoringServer, parse_slo
    from repro.service import ServiceConfig, SolverService, run_load

    live = None
    monitor = None
    if args.listen is not None or args.slo is not None:
        try:
            slo = parse_slo(args.slo) if args.slo is not None else None
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        live = LiveAggregator(slo=slo)
        live.start()
        if args.listen is not None:
            monitor = MonitoringServer(live, host=args.listen[0],
                                       port=args.listen[1])
            monitor.start()
            print(f"monitoring plane on {monitor.url} "
                  f"(/metrics /healthz /stats)")

    problem = st_3d_exp_problem(args.n, args.tile, seed=args.seed)
    config = ServiceConfig(
        n_workers=args.service_workers,
        max_queue_depth=args.max_queue,
        max_batch=args.max_batch,
        cache_bytes=(
            args.cache_mb * 2**20 if args.cache_mb is not None else None
        ),
        warm_dir=args.warm_dir,
        default_deadline_s=(
            args.deadline_ms / 1e3 if args.deadline_ms is not None else None
        ),
    )
    print(f"serving st-3D-exp n={args.n}, b={args.tile} at "
          f"eps={args.accuracy:g} [{args.compression}] "
          f"precision={args.precision}: {config.n_workers} workers, "
          f"queue<={config.max_queue_depth}, batch<={config.max_batch}")
    try:
        with SolverService(config, live=live) as svc:
            session = svc.session(
                problem,
                accuracy=args.accuracy,
                band_size=args.band,
                compression=args.compression,
                precision=args.precision,
            )
            t0 = time.perf_counter()
            entry = session.warm()
            print(f"factor resident in {time.perf_counter() - t0:.2f}s "
                  f"({entry.nbytes / 2**20:.1f} MiB, key "
                  f"{session.key.digest()}, precision "
                  f"{entry.realized_precision})")
            report = run_load(
                session,
                clients=args.clients,
                requests_per_client=args.requests,
                seed=args.seed,
            )
            stats = svc.stats()
            if args.linger > 0 and monitor is not None:
                print(f"lingering {args.linger:g}s for live scrapes "
                      f"({monitor.url})")
                time.sleep(args.linger)
    finally:
        if monitor is not None:
            monitor.stop()
        if live is not None:
            live.stop()
    cache = stats.cache
    print(format_table(
        ["metric", "value"],
        [
            ("clients x requests", f"{args.clients} x {args.requests}"),
            ("completed", report.completed),
            ("rejected (backpressure)", report.rejected),
            ("dropped (deadline)", report.dropped),
            ("failed", report.failed),
            ("throughput (req/s)", round(report.throughput_rps, 1)),
            ("p50 latency (ms)", round(report.p50_ms, 3)),
            ("p95 latency (ms)", round(report.p95_ms, 3)),
            ("p99 latency (ms)", round(report.p99_ms, 3)),
            ("mean batch width", round(report.mean_batch_width, 2)),
            ("max batch width", report.max_batch_width),
            ("cache hits / misses", f"{cache.hits} / {cache.misses}"),
            ("factorizations", cache.factorizations),
            ("warm starts", cache.warm_starts),
            ("resident factors (MiB)",
             round(cache.resident_bytes / 2**20, 1)),
        ],
        title=f"solver service: {report.completed} solves, "
              f"{stats.batches} batches",
    ))
    if live is not None:
        health = live.health()
        print(f"final health: {health['status']}"
              + (f" ({health['note']})" if "note" in health else ""))
        if health["status"] == "failing":
            return 1
    return 0


def _cmd_bench_service(args: argparse.Namespace) -> int:
    import os

    from repro import perf, st_3d_exp_problem
    from repro.analysis import format_table
    from repro.service import (
        ServiceConfig,
        SolverService,
        records_from_load,
        run_load,
    )

    n = 512 if args.smoke else args.n
    tile = 64 if args.smoke else args.tile
    requests = min(args.requests, 5) if args.smoke else args.requests
    problem = st_3d_exp_problem(n, tile, seed=args.seed)

    def arm(max_batch: int):
        config = ServiceConfig(
            n_workers=1,                      # both arms serialize on one
            max_queue_depth=max(64, 2 * args.clients),  # worker: the delta
            max_batch=max_batch,              # is batching, nothing else
        )
        with SolverService(config) as svc:
            session = svc.session(
                problem, accuracy=args.accuracy, band_size=args.band,
            )
            return run_load(
                session,
                clients=args.clients,
                requests_per_client=requests,
                seed=args.seed,
            )

    print(f"bench-service: n={n}, b={tile}, eps={args.accuracy:g}, "
          f"{args.clients} closed-loop clients x {requests} requests")
    solo = arm(1)
    batched = arm(args.max_batch)
    ratio = solo.p50_ms / batched.p50_ms if batched.p50_ms > 0 else 0.0

    run = args.label or ("svc-" + time.strftime("%Y%m%dT%H%M%SZ",
                                                time.gmtime()))
    shared = {"n": n, "tile": tile, "accuracy": args.accuracy,
              "smoke": args.smoke}
    records = [
        records_from_load(solo, name="service_solve_solo", run=run,
                          config={**shared, "max_batch": 1}),
        records_from_load(batched, name="service_solve_batched", run=run,
                          config={**shared, "max_batch": args.max_batch}),
    ]
    path = perf.append_history(records, args.out)
    print(format_table(
        ["arm", "p50 ms", "p95 ms", "p99 ms", "req/s", "mean width"],
        [
            ("one-at-a-time", round(solo.p50_ms, 3), round(solo.p95_ms, 3),
             round(solo.p99_ms, 3), round(solo.throughput_rps, 1), 1.0),
            ("batched", round(batched.p50_ms, 3), round(batched.p95_ms, 3),
             round(batched.p99_ms, 3), round(batched.throughput_rps, 1),
             round(batched.mean_batch_width, 2)),
        ],
        title=f"serving latency at {args.clients} clients "
              f"(p50 ratio {ratio:.2f}x)",
    ))
    print(f"2 records appended to {path} (run '{run}')")
    if os.environ.get("REPRO_BENCH_SERVICE_FULL"):
        if ratio < 1.5:
            print(f"FAIL: batched p50 must beat one-at-a-time by >= 1.5x "
                  f"at {args.clients} clients; measured {ratio:.2f}x",
                  file=sys.stderr)
            return 1
        print(f"full gate passed: {ratio:.2f}x >= 1.5x")
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    from repro.obs import run_top

    return run_top(
        args.url,
        interval=args.interval,
        iterations=args.iterations,
        once=args.once,
    )


def _cmd_obs_merge(args: argparse.Namespace) -> int:
    from repro.obs import merge_shards

    try:
        report = merge_shards(args.shards, out=args.out)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    offsets = ", ".join(
        f"rank{r}={off * 1e3:+.3f}ms" for r, off in sorted(report.offsets_s.items())
    )
    print(f"merged {report.n_shards} shard(s), {report.merged_spans} spans, "
          f"{report.comm_edges} comm edges -> {report.out_path}")
    print(f"clock offsets: {offsets}")
    print(f"makespan (aligned): {report.makespan_s:.4f}s")
    if report.comm_unmatched:
        print(f"warning: {report.comm_unmatched} comm edge(s) unmatched",
              file=sys.stderr)
    if not report.conserved:
        shard_total = sum(report.shard_spans.values())
        print(f"error: span conservation violated: merged "
              f"{report.merged_spans} != shard total {shard_total}",
              file=sys.stderr)
        return 1
    print("span conservation: ok "
          f"(merged == {sum(report.shard_spans.values())} shard spans)")
    return 0


def _add_resilience_args(sp: argparse.ArgumentParser) -> None:
    """Fault-injection and checkpoint flags shared by demo/execute."""
    sp.add_argument("--faults", type=str, default=None, metavar="SPEC",
                    help="inject faults: comma-separated kind:kernel:rate"
                         "[:param] clauses, e.g. 'transient:gemm:0.05,"
                         "nan:*:0.01' (kinds: transient, nan, oom, stall)")
    sp.add_argument("--fault-seed", type=int, default=0,
                    help="seed of the deterministic fault draws")
    sp.add_argument("--checkpoint", type=str, default=None, metavar="DIR",
                    help="write panel-frontier checkpoints into DIR during "
                         "the factorization")
    sp.add_argument("--resume", action="store_true",
                    help="restore the latest checkpoint from --checkpoint "
                         "DIR and skip completed tasks")


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    p = argparse.ArgumentParser(
        prog="repro",
        description="BAND-DENSE-TLR Cholesky with a rank-aware task runtime",
    )
    sub = p.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="version and subsystem inventory")

    d = sub.add_parser("demo", help="end-to-end compress/tune/factorize/solve")
    d.add_argument("--n", type=int, default=2048)
    d.add_argument("--tile", type=int, default=128)
    d.add_argument("--accuracy", type=float, default=1e-8)
    d.add_argument("--seed", type=int, default=0)
    d.add_argument("--workers", type=int, default=None,
                   help="factorize on the parallel executor with N threads "
                        "(also parallelizes matrix assembly)")
    d.add_argument("--compression", choices=["svd", "rsvd", "auto"],
                   default="auto",
                   help="compression backend: exact SVD, adaptive "
                        "randomized SVD, or auto (exact below the "
                        "crossover tile size, randomized above)")
    d.add_argument("--precision", choices=["fp64", "adaptive", "fp32"],
                   default="fp64",
                   help="off-band low-rank storage precision: fp64, "
                        "adaptive (fp32 when the accuracy threshold "
                        "permits), or fp32 (forced)")
    d.add_argument("--batch", action=argparse.BooleanOptionalAction,
                   default=True,
                   help="group same-shape kernels into stacked BLAS/LAPACK "
                        "calls (bitwise-identical factor; --no-batch "
                        "disables)")
    d.add_argument("--obs", type=str, default=None, metavar="DIR",
                   help="record spans + metrics and write trace/summary/"
                        "Prometheus artifacts into DIR")
    d.add_argument("--config", type=str, default=None, metavar="PATH",
                   help="overlay a 'tune --emit' config.json (matching "
                        "keys override the flags)")
    _add_resilience_args(d)

    t = sub.add_parser(
        "tune",
        help="BAND_SIZE auto-tuner: Algorithm 1's cost table, or — with "
             "--from-run — the simulator-guided calibrate/sweep/verify "
             "loop over band, scheduler, distribution and rank/core "
             "counts",
    )
    t.add_argument("--n", type=int, default=4050)
    t.add_argument("--tile", type=int, default=270)
    t.add_argument("--accuracy", type=float, default=1e-4)
    t.add_argument("--fluctuation", type=float, default=0.67)
    t.add_argument("--seed", type=int, default=0)
    t.add_argument("--rows", type=int, default=10)
    t.add_argument("--from-run", action="append", default=None,
                   metavar="DIR", dest="from_run",
                   help="calibrate rank grid + kernel rates from a "
                        "recorded --obs run directory (repeatable; runs "
                        "of one geometry pool)")
    t.add_argument("--grid", type=str, default=None, metavar="SPEC",
                   help="candidate axes, e.g. 'band=1,2,3;scheduler="
                        "priority,fifo;dist=band,2d;ranks=1,2;cores=2,4' "
                        "(omitted axes keep defaults: fluctuation-window "
                        "bands, all schedulers, band distribution, 1 "
                        "rank, recorded worker count)")
    t.add_argument("--target-nt", type=int, default=None, metavar="NT",
                   help="sweep a different tile count than recorded "
                        "(rank model extrapolates; rates switch to "
                        "per-class GFLOP/s)")
    t.add_argument("--verify", action="store_true",
                   help="execute the winning config for real and gate "
                        "predicted-vs-realized makespan through the "
                        "--tolerance plus the dual relative+IQR "
                        "kernel-class rule (exit 1 on failure)")
    t.add_argument("--tolerance", type=float, default=0.5,
                   help="relative makespan error the verify gate "
                        "accepts (see docs/tuning.md for methodology)")
    t.add_argument("--smoke", action="store_true",
                   help="trim the grid for CI runners (<=3 bands, "
                        "priority+fifo schedulers)")
    t.add_argument("--workers", type=int, default=None,
                   help="threads evaluating sweep candidates in "
                        "parallel (default: min(candidates, 8))")
    t.add_argument("--emit", type=str, default=None, metavar="PATH",
                   help="write the winning config as JSON consumable "
                        "by 'execute --config PATH'")
    t.add_argument("--report", type=str, default=None, metavar="PATH",
                   help="write the full ranked TuneResult as JSON")
    t.add_argument("--verify-obs", type=str, default=None, metavar="DIR",
                   help="with --verify: write predicted/ and realized/ "
                        "--obs artifact directories under DIR for "
                        "standalone 'repro compare'")
    t.add_argument("--out", type=str, default=None, metavar="PATH",
                   help="append tune records (predicted + realized "
                        "makespan) to this bench history")

    s = sub.add_parser("simulate", help="replay a Cholesky DAG on the simulator")
    s.add_argument("--nt", type=int, default=48)
    s.add_argument("--tile", type=int, default=1200)
    s.add_argument("--accuracy", type=float, default=1e-8)
    s.add_argument("--nodes", type=int, default=16)
    s.add_argument("--cores", type=int, default=31)
    s.add_argument("--split", type=int, default=4)
    s.add_argument("--scheduler", choices=["priority", "fifo", "lifo"],
                   default="priority")
    s.add_argument("--steal", action="store_true",
                   help="enable inter-process work stealing")
    s.add_argument("--gpus", type=int, default=0,
                   help="accelerators per node for the dense band")
    s.add_argument("--gantt", action="store_true", help="print a text Gantt")
    s.add_argument("--width", type=int, default=100)

    e = sub.add_parser(
        "execute",
        help="run the Cholesky DAG for real on the parallel executor",
    )
    e.add_argument("--n", type=int, default=2048)
    e.add_argument("--tile", type=int, default=128)
    e.add_argument("--band", type=int, default=2)
    e.add_argument("--accuracy", type=float, default=1e-8)
    e.add_argument("--seed", type=int, default=0)
    e.add_argument("--workers", type=int, default=None,
                   help="worker threads (default: cpu count); with "
                        "--executor processes this only parallelizes "
                        "matrix assembly")
    e.add_argument("--executor", choices=["threads", "processes", "sim"],
                   default="threads",
                   help="backend: shared-memory worker threads, true "
                        "multi-process ranks with explicit tile "
                        "communication, or the discrete-event simulator "
                        "(predicts without factorizing)")
    e.add_argument("--ranks", type=int, default=2,
                   help="rank count for --executor processes/sim "
                        "(tiles placed by the hybrid band distribution)")
    e.add_argument("--calibrate-from", type=str, default=None,
                   metavar="DIR",
                   help="with --executor sim: drive the simulator with "
                        "per-kernel median durations measured from the "
                        "--obs directory of a real run")
    e.add_argument("--compression", choices=["svd", "rsvd", "auto"],
                   default="auto",
                   help="compression backend: exact SVD, adaptive "
                        "randomized SVD, or auto (exact below the "
                        "crossover tile size, randomized above)")
    e.add_argument("--precision", choices=["fp64", "adaptive", "fp32"],
                   default="fp64",
                   help="off-band low-rank storage precision: fp64, "
                        "adaptive (fp32 when the accuracy threshold "
                        "permits), or fp32 (forced)")
    e.add_argument("--batch", action=argparse.BooleanOptionalAction,
                   default=True,
                   help="group same-shape kernels into stacked BLAS/LAPACK "
                        "calls (threads executor only; bitwise-identical "
                        "factor; --no-batch disables)")
    e.add_argument("--scheduler", choices=["priority", "fifo", "lifo"],
                   default="priority")
    e.add_argument("--compare-sequential", action="store_true",
                   help="also time the sequential loops and report speedup")
    e.add_argument("--verify", action="store_true",
                   help="check the backward error against the dense matrix")
    e.add_argument("--gantt", action="store_true", help="print a text Gantt")
    e.add_argument("--width", type=int, default=100)
    e.add_argument("--trace", type=str, default=None, metavar="PATH",
                   help="write a Chrome-tracing JSON of the real run")
    e.add_argument("--shards", type=str, default=None, metavar="DIR",
                   help="with --executor processes: each rank writes a "
                        "clock-synced observation shard into DIR and the "
                        "controller merges them into one cross-rank "
                        "Chrome trace (trace_merged.json) with per-rank "
                        "lanes and realized comm edges")
    e.add_argument("--obs", type=str, default=None, metavar="DIR",
                   help="record spans + metrics and write trace/summary/"
                        "Prometheus artifacts into DIR")
    e.add_argument("--config", type=str, default=None, metavar="PATH",
                   help="overlay a 'tune --emit' config.json (matching "
                        "keys override the flags) and print the factor "
                        "digest for bitwise-reproduction checks")
    _add_resilience_args(e)

    r = sub.add_parser(
        "report",
        help="render the telemetry of a --obs run as a text report",
    )
    r.add_argument("path", help="--obs directory (or a summary.json inside one)")
    r.add_argument("--width", type=int, default=80,
                   help="report width in characters")

    a = sub.add_parser(
        "analyze",
        help="trace analytics on a --obs run: critical path, occupancy, "
             "per-kernel flop rates",
    )
    a.add_argument("path", help="--obs directory (or a file inside one)")
    a.add_argument("--width", type=int, default=80,
                   help="report width in characters")
    a.add_argument("--buckets", type=int, default=60,
                   help="time buckets of the occupancy timeline")

    b = sub.add_parser(
        "bench",
        help="run the standing benchmark suite and append median/IQR "
             "records to the history file",
    )
    b.add_argument("--smoke", action="store_true",
                   help="small sizes for CI runners (seconds, not minutes)")
    b.add_argument("--out", type=str, default="BENCH_history.jsonl",
                   metavar="PATH",
                   help="history file (or directory) to append to")
    b.add_argument("--repeats", type=int, default=5,
                   help="timed repetitions per benchmark")
    b.add_argument("--warmup", type=int, default=1,
                   help="untimed warmup runs per benchmark")
    b.add_argument("--label", type=str, default=None,
                   help="run label recorded with every record "
                        "(default: UTC timestamp)")
    b.add_argument("--filter", type=str, default=None, metavar="SUBSTR",
                   help="only run benchmarks whose name contains SUBSTR")

    c = sub.add_parser(
        "compare",
        help="noise-aware regression gate between two bench runs or two "
             "--obs trace directories (exit 1 on regression)",
    )
    c.add_argument("base", help="baseline: bench history (.jsonl) or --obs "
                                "run directory; the latest run in a history "
                                "is used")
    c.add_argument("head", help="candidate: same forms as BASE")
    c.add_argument("--threshold", type=float, default=0.25,
                   help="relative slowdown that may gate; a delta must "
                        "also exceed the measured IQR to count")

    v = sub.add_parser(
        "serve",
        help="run the factorize-once/solve-many solver service against "
             "closed-loop traffic and print the serving report",
    )
    v.add_argument("--n", type=int, default=1024)
    v.add_argument("--tile", type=int, default=64)
    v.add_argument("--accuracy", type=float, default=1e-6)
    v.add_argument("--seed", type=int, default=0)
    v.add_argument("--band", type=_band_arg, default="auto",
                   help="dense band width: 'auto' (Algorithm 1) or an int")
    v.add_argument("--compression", choices=["svd", "rsvd", "auto"],
                   default="auto",
                   help="compression backend: exact SVD, adaptive "
                        "randomized SVD, or auto (exact below the "
                        "crossover tile size, randomized above)")
    v.add_argument("--precision", choices=["fp64", "adaptive", "fp32"],
                   default="fp64",
                   help="off-band low-rank storage precision; part of "
                        "the factor's cache identity (an fp32-adaptive "
                        "factor never serves an fp64-strict session)")
    v.add_argument("--service-workers", type=int, default=2,
                   help="solver worker threads (= factor shards)")
    v.add_argument("--max-queue", type=int, default=64,
                   help="bounded pending depth; submissions beyond it "
                        "are rejected (explicit backpressure)")
    v.add_argument("--max-batch", type=int, default=16,
                   help="most same-factor requests stacked into one "
                        "multi-RHS solve (1 disables batching)")
    v.add_argument("--cache-mb", type=int, default=None, metavar="MB",
                   help="factor-cache LRU budget in MiB "
                        "(default: unbounded)")
    v.add_argument("--warm-dir", type=str, default=None, metavar="DIR",
                   help="checkpoint warm-start tier: factors checkpoint "
                        "into DIR and later cache misses resume from "
                        "the completed panel frontier")
    v.add_argument("--deadline-ms", type=float, default=None, metavar="MS",
                   help="per-request deadline budget; requests still "
                        "queued when it lapses are dropped")
    v.add_argument("--clients", type=int, default=4,
                   help="closed-loop client threads")
    v.add_argument("--requests", type=int, default=8,
                   help="solve requests per client")
    v.add_argument("--obs", type=str, default=None, metavar="DIR",
                   help="record spans + metrics and write trace/summary/"
                        "Prometheus artifacts into DIR")
    v.add_argument("--listen", type=_parse_listen, default=None,
                   metavar="HOST:PORT",
                   help="expose the live monitoring plane over HTTP: "
                        "/metrics (Prometheus exposition), /healthz "
                        "(SLO state), /stats (JSON); port 0 picks a "
                        "free port")
    v.add_argument("--slo", type=str, default=None, metavar="SPEC",
                   help="serving objective evaluated over the rolling "
                        "window, e.g. 'error-rate=0.01,p99-ms=50,"
                        "window=60'; /healthz returns 503 (and the "
                        "command exits 1) when it burns at >2x budget")
    v.add_argument("--linger", type=float, default=0.0, metavar="SECONDS",
                   help="keep the monitoring endpoints up SECONDS after "
                        "the load completes (CI scrapes, repro top)")

    tp = sub.add_parser(
        "top",
        help="live terminal dashboard for a running 'serve --listen' "
             "monitoring plane",
    )
    tp.add_argument("url", help="monitoring base URL, e.g. "
                                "http://127.0.0.1:9100")
    tp.add_argument("--interval", type=float, default=1.0,
                    help="seconds between refreshes")
    tp.add_argument("--iterations", type=int, default=None, metavar="N",
                    help="stop after N refreshes (default: until ^C)")
    tp.add_argument("--once", action="store_true",
                    help="render a single snapshot and exit")

    om = sub.add_parser(
        "obs-merge",
        help="merge per-rank observation shards (execute --shards DIR) "
             "into one clock-aligned cross-rank Chrome trace",
    )
    om.add_argument("shards", help="directory of shard-rank*.json files")
    om.add_argument("-o", "--out", type=str, default=None, metavar="PATH",
                    help="merged trace path (default: "
                         "SHARDS/trace_merged.json)")

    bs = sub.add_parser(
        "bench-service",
        help="batched vs one-at-a-time serving latency benchmark; "
             "appends p50/p95/p99 records to the bench history",
    )
    bs.add_argument("--n", type=int, default=2048)
    bs.add_argument("--tile", type=int, default=128)
    bs.add_argument("--accuracy", type=float, default=1e-4)
    bs.add_argument("--seed", type=int, default=0)
    bs.add_argument("--band", type=_band_arg, default=1,
                    help="dense band width: 'auto' (Algorithm 1) or an int")
    bs.add_argument("--clients", type=int, default=8,
                    help="closed-loop client threads (the acceptance "
                         "gate is stated at 8)")
    bs.add_argument("--requests", type=int, default=10,
                    help="solve requests per client per arm")
    bs.add_argument("--max-batch", type=int, default=16,
                    help="batch width of the batched arm")
    bs.add_argument("--smoke", action="store_true",
                    help="small sizes for CI runners; the >=1.5x gate "
                         "arms only under REPRO_BENCH_SERVICE_FULL=1")
    bs.add_argument("--label", type=str, default=None,
                    help="run label recorded with both arms' records "
                         "(default: UTC timestamp)")
    bs.add_argument("--out", type=str, default="BENCH_history.jsonl",
                    metavar="PATH",
                    help="history file (or directory) to append to")
    return p


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "info": _cmd_info,
        "demo": _cmd_demo,
        "tune": _cmd_tune,
        "simulate": _cmd_simulate,
        "execute": _cmd_execute,
        "report": _cmd_report,
        "analyze": _cmd_analyze,
        "bench": _cmd_bench,
        "compare": _cmd_compare,
        "serve": _cmd_serve,
        "top": _cmd_top,
        "obs-merge": _cmd_obs_merge,
        "bench-service": _cmd_bench_service,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
