"""Exception hierarchy for :mod:`repro`.

All library errors derive from :class:`ReproError` so callers can catch a
single base class.  Sub-classes delineate the layer that raised the error:
problem construction, numerical kernels, the runtime, or configuration.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "ProblemError",
    "CompressionError",
    "KernelError",
    "NotPositiveDefiniteError",
    "DistributionError",
    "RuntimeSystemError",
    "SchedulingError",
    "MemoryPoolError",
]


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` library."""


class ConfigurationError(ReproError):
    """An invalid parameter combination was supplied by the user."""


class ProblemError(ReproError):
    """Problem generation (geometry or covariance kernel) failed."""


class CompressionError(ReproError):
    """A tile could not be compressed to the requested accuracy envelope."""


class KernelError(ReproError):
    """A numerical (HCORE) kernel received incompatible operands."""


class NotPositiveDefiniteError(KernelError):
    """Cholesky factorization hit a non-positive pivot.

    Attributes
    ----------
    tile_index:
        Index ``(k, k)`` of the diagonal tile where the failure occurred,
        or ``None`` when unknown.
    """

    def __init__(self, message: str, tile_index: tuple[int, int] | None = None):
        super().__init__(message)
        self.tile_index = tile_index


class DistributionError(ReproError):
    """A data-distribution query was inconsistent (tile out of range, ...)."""


class RuntimeSystemError(ReproError):
    """Generic failure inside the task runtime (executor or simulator)."""


class SchedulingError(RuntimeSystemError):
    """The scheduler detected an impossible state (cycle, orphan task...)."""


class MemoryPoolError(RuntimeSystemError):
    """The dynamic memory allocator detected a misuse (double free, ...)."""
