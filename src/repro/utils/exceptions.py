"""Exception hierarchy for :mod:`repro`.

All library errors derive from :class:`ReproError` so callers can catch a
single base class.  Sub-classes delineate the layer that raised the error:
problem construction, numerical kernels, the runtime, or configuration.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "ProblemError",
    "CompressionError",
    "KernelError",
    "NotPositiveDefiniteError",
    "DistributionError",
    "RuntimeSystemError",
    "SchedulingError",
    "MemoryPoolError",
    "TransientFaultError",
    "PoolExhaustedError",
    "StalledTaskError",
    "CorruptedOutputError",
    "TaskAbortedError",
    "CheckpointError",
    "FaultSpecError",
    "ServiceError",
    "QueueFullError",
    "DeadlineExceededError",
    "ServiceClosedError",
]


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` library."""


class ConfigurationError(ReproError):
    """An invalid parameter combination was supplied by the user."""


class ProblemError(ReproError):
    """Problem generation (geometry or covariance kernel) failed."""


class CompressionError(ReproError):
    """A tile could not be compressed to the requested accuracy envelope."""


class KernelError(ReproError):
    """A numerical (HCORE) kernel received incompatible operands."""


class NotPositiveDefiniteError(KernelError):
    """Cholesky factorization hit a non-positive pivot.

    Attributes
    ----------
    tile_index:
        Index ``(k, k)`` of the diagonal tile where the failure occurred,
        or ``None`` when unknown.
    """

    def __init__(self, message: str, tile_index: tuple[int, int] | None = None):
        super().__init__(message)
        self.tile_index = tile_index


class DistributionError(ReproError):
    """A data-distribution query was inconsistent (tile out of range, ...)."""


class RuntimeSystemError(ReproError):
    """Generic failure inside the task runtime (executor or simulator)."""


class SchedulingError(RuntimeSystemError):
    """The scheduler detected an impossible state (cycle, orphan task...)."""


class MemoryPoolError(RuntimeSystemError):
    """The dynamic memory allocator detected a misuse (double free, ...)."""


class TransientFaultError(RuntimeSystemError):
    """A task failed in a way expected to succeed on re-execution.

    The recovery policy engine (:mod:`repro.runtime.resilience`) treats
    this class — and its subclasses below — as *retryable*: the task's
    destination tile is rolled back to its pre-attempt state and the task
    is re-dispatched with capped exponential backoff.

    Attributes
    ----------
    tid:
        Task id the fault hit, or ``None`` when unknown.
    """

    def __init__(self, message: str, tid: tuple | None = None):
        super().__init__(message)
        self.tid = tid


class PoolExhaustedError(TransientFaultError, MemoryPoolError):
    """A :class:`MemoryPool` allocation could not be served (simulated or
    real out-of-memory).  Retryable: peers release buffers over time."""


class StalledTaskError(TransientFaultError):
    """A task exceeded the watchdog timeout and was requeued.

    Raised *inside* the stalled task by the cooperative cancellation
    event — worker threads cannot be preempted, so stalls abort at the
    next cancellation point (fault-injected stalls poll the event)."""


class CorruptedOutputError(TransientFaultError):
    """A kernel's output failed the NaN/inf post-condition validation."""


class TaskAbortedError(RuntimeSystemError):
    """A task exhausted its retry budget; the original fault is chained."""


class CheckpointError(RuntimeSystemError):
    """A checkpoint archive is missing, incomplete, or does not match the
    graph/matrix it is being restored into."""


class FaultSpecError(ConfigurationError):
    """A fault-plan specification string could not be parsed."""


class ServiceError(ReproError):
    """Base class for solver-service (:mod:`repro.service`) failures."""


class QueueFullError(ServiceError):
    """Admission control rejected a request: the queue is at its bounded
    depth.  Backpressure is explicit — the caller decides whether to
    retry, shed, or slow down; the service never buffers unboundedly."""


class DeadlineExceededError(ServiceError):
    """A request's deadline passed before a worker could serve it; the
    request was dropped from the queue without being solved."""


class ServiceClosedError(ServiceError):
    """The service is stopped (or stopping) and accepts no new requests."""
