"""Shared utilities: exceptions, validation, timing."""

from .exceptions import (
    CompressionError,
    ConfigurationError,
    DistributionError,
    KernelError,
    MemoryPoolError,
    NotPositiveDefiniteError,
    ProblemError,
    ReproError,
    RuntimeSystemError,
    SchedulingError,
)
from .timing import Stopwatch, Timer
from .validation import (
    check_in,
    check_index,
    check_matrix,
    check_nonnegative_int,
    check_positive_float,
    check_positive_int,
    check_probability,
    check_square_matrix,
)

__all__ = [
    "ReproError",
    "ConfigurationError",
    "ProblemError",
    "CompressionError",
    "KernelError",
    "NotPositiveDefiniteError",
    "DistributionError",
    "RuntimeSystemError",
    "SchedulingError",
    "MemoryPoolError",
    "Timer",
    "Stopwatch",
    "check_positive_int",
    "check_nonnegative_int",
    "check_positive_float",
    "check_probability",
    "check_in",
    "check_matrix",
    "check_square_matrix",
    "check_index",
]
