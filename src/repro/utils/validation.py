"""Lightweight argument-validation helpers.

These helpers centralize the repetitive bounds / type checks used across the
library so error messages stay uniform.  Every helper raises
:class:`~repro.utils.exceptions.ConfigurationError` on failure and returns
the (possibly normalized) value on success, which keeps call sites terse::

    b = check_positive_int("tile_size", b)
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Any

import numpy as np

from .exceptions import ConfigurationError

__all__ = [
    "check_positive_int",
    "check_nonnegative_int",
    "check_positive_float",
    "check_probability",
    "check_in",
    "check_matrix",
    "check_square_matrix",
    "check_index",
]


def check_positive_int(name: str, value: Any) -> int:
    """Validate that ``value`` is an integer ``>= 1`` and return it as int."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise ConfigurationError(f"{name} must be an integer, got {value!r}")
    value = int(value)
    if value < 1:
        raise ConfigurationError(f"{name} must be >= 1, got {value}")
    return value


def check_nonnegative_int(name: str, value: Any) -> int:
    """Validate that ``value`` is an integer ``>= 0`` and return it as int."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise ConfigurationError(f"{name} must be an integer, got {value!r}")
    value = int(value)
    if value < 0:
        raise ConfigurationError(f"{name} must be >= 0, got {value}")
    return value


def check_positive_float(name: str, value: Any) -> float:
    """Validate that ``value`` is a finite float ``> 0`` and return it."""
    try:
        value = float(value)
    except (TypeError, ValueError):
        raise ConfigurationError(f"{name} must be a number, got {value!r}") from None
    if not np.isfinite(value) or value <= 0.0:
        raise ConfigurationError(f"{name} must be finite and > 0, got {value}")
    return value


def check_probability(name: str, value: Any) -> float:
    """Validate that ``value`` lies in the closed interval [0, 1]."""
    try:
        value = float(value)
    except (TypeError, ValueError):
        raise ConfigurationError(f"{name} must be a number, got {value!r}") from None
    if not (0.0 <= value <= 1.0):
        raise ConfigurationError(f"{name} must be in [0, 1], got {value}")
    return value


def check_in(name: str, value: Any, allowed: Sequence[Any]) -> Any:
    """Validate that ``value`` is one of ``allowed``."""
    if value not in allowed:
        raise ConfigurationError(
            f"{name} must be one of {list(allowed)!r}, got {value!r}"
        )
    return value


def check_matrix(name: str, a: Any, dtype=np.float64) -> np.ndarray:
    """Coerce ``a`` to a 2-D contiguous ndarray of ``dtype``."""
    arr = np.asarray(a, dtype=dtype)
    if arr.ndim != 2:
        raise ConfigurationError(f"{name} must be 2-D, got shape {arr.shape}")
    return np.ascontiguousarray(arr)


def check_square_matrix(name: str, a: Any, dtype=np.float64) -> np.ndarray:
    """Coerce ``a`` to a square 2-D ndarray of ``dtype``."""
    arr = check_matrix(name, a, dtype=dtype)
    if arr.shape[0] != arr.shape[1]:
        raise ConfigurationError(f"{name} must be square, got shape {arr.shape}")
    return arr


def check_index(name: str, value: Any, upper: int) -> int:
    """Validate that ``value`` is an integer index in ``[0, upper)``."""
    value = check_nonnegative_int(name, value)
    if value >= upper:
        raise ConfigurationError(f"{name} must be < {upper}, got {value}")
    return value
