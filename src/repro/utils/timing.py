"""Wall-clock timing utilities used by benchmarks and the auto-tuner.

The :class:`Stopwatch` accumulates named intervals so a benchmark can report
per-phase timings (e.g. "compression", "auto-tuning", "factorization") the
way the paper's Fig. 6(d) splits tuning cost from factorization cost.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field

__all__ = ["Timer", "Stopwatch"]


class Timer:
    """A context manager measuring a single wall-clock interval.

    Examples
    --------
    >>> with Timer() as t:
    ...     sum(range(100))
    4950
    >>> t.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self.start: float = 0.0
        self.elapsed: float = 0.0

    def __enter__(self) -> "Timer":
        self.start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.elapsed = time.perf_counter() - self.start


@dataclass
class Stopwatch:
    """Accumulates named wall-clock intervals.

    Examples
    --------
    >>> sw = Stopwatch()
    >>> with sw.measure("phase_a"):
    ...     _ = sum(range(10))
    >>> "phase_a" in sw.totals
    True
    """

    totals: dict[str, float] = field(default_factory=dict)
    counts: dict[str, int] = field(default_factory=dict)

    @contextmanager
    def measure(self, name: str):
        """Time the enclosed block and add it to the ``name`` bucket."""
        start = time.perf_counter()
        try:
            yield self
        finally:
            dt = time.perf_counter() - start
            self.totals[name] = self.totals.get(name, 0.0) + dt
            self.counts[name] = self.counts.get(name, 0) + 1

    def total(self, name: str) -> float:
        """Total seconds accumulated under ``name`` (0.0 if never measured)."""
        return self.totals.get(name, 0.0)

    def mean(self, name: str) -> float:
        """Mean seconds per interval under ``name`` (0.0 if never measured)."""
        n = self.counts.get(name, 0)
        return self.totals.get(name, 0.0) / n if n else 0.0

    def report(self) -> str:
        """Human-readable multi-line summary, longest phase first."""
        lines = ["phase                          total(s)   calls    mean(s)"]
        for name in sorted(self.totals, key=self.totals.get, reverse=True):
            lines.append(
                f"{name:<28} {self.totals[name]:>10.4f} {self.counts[name]:>7d} "
                f"{self.mean(name):>10.6f}"
            )
        return "\n".join(lines)
