"""Task model for the tile-Cholesky parameterized task graph.

PaRSEC's PTG describes the Cholesky DAG with four parameterized task
classes; we mirror them:

* ``POTRF(k)``        — factor diagonal tile ``(k, k)``;
* ``TRSM(m, k)``      — panel solve on tile ``(m, k)``, ``m > k``;
* ``SYRK(n, k)``      — diagonal update of ``(n, n)`` from panel ``k``;
* ``GEMM(m, n, k)``   — off-diagonal update of ``(m, n)``, ``m > n > k``.

Task identity is the tuple ``(kind, indices...)``, hashable and compact.
Each task records the Table-I kernel class it will execute and its modelled
flops; the graph builder (:mod:`repro.runtime.graph`) wires dependencies.

Dataflow edges carry the tile that flows and its element count; Section
VII-A's LOCAL/REMOTE classification is a function of the data distribution
and lives on the edge.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from ..linalg.flops import KernelClass

__all__ = [
    "TaskKind",
    "TaskId",
    "Task",
    "Edge",
    "EdgeKind",
    "task_sort_key",
    "task_name",
]


def task_name(tid: "TaskId") -> str:
    """Canonical human-readable task id, e.g. ``GEMM_3_1_0``.

    The single naming scheme shared by the executors' trace spans, the
    ``graph.json`` dependency export, and the analytics layer's
    span-to-DAG join — change it in one place or the join breaks.
    """
    return "_".join([tid[0].name, *(str(x) for x in tid[1:])])


class TaskKind(Enum):
    """The four parameterized task classes of the Cholesky PTG."""

    POTRF = "POTRF"
    TRSM = "TRSM"
    SYRK = "SYRK"
    GEMM = "GEMM"


#: Task identity: ``(TaskKind, *indices)`` — POTRF(k), TRSM(m,k),
#: SYRK(n,k), GEMM(m,n,k).
TaskId = tuple


class EdgeKind(Enum):
    """LOCAL edges connect tasks on one process; REMOTE edges post
    communications (Section VII-A)."""

    LOCAL = "local"
    REMOTE = "remote"


@dataclass(frozen=True)
class Edge:
    """A dataflow dependency ``src -> dst`` carrying one tile.

    Attributes
    ----------
    src, dst:
        Task ids.
    tile:
        The ``(i, j)`` index of the tile whose data flows along the edge.
    elements:
        Number of float64 elements transferred (``b²`` dense, ``2bk``
        compressed) — 0 for pure ordering edges.
    """

    src: TaskId
    dst: TaskId
    tile: tuple[int, int]
    elements: int


# Execution-priority order of kinds within one panel: the factorization
# kernels on the critical path go first.
_KIND_ORDER = {
    TaskKind.POTRF: 0,
    TaskKind.TRSM: 1,
    TaskKind.SYRK: 2,
    TaskKind.GEMM: 3,
}


@dataclass
class Task:
    """One schedulable tile task.

    Attributes
    ----------
    tid:
        Identity tuple ``(kind, *indices)``.
    kind:
        Task class.
    kernel:
        The Table-I kernel class this task executes (depends on the band
        layout and operand formats).
    flops:
        Modelled flops.
    out_tile:
        Tile ``(i, j)`` the task writes.
    deps:
        Incoming edges.
    panel:
        The panel index ``k`` the task belongs to (drives the scheduling
        priority; nested sub-tasks inherit their parent's panel).
    rank_hint:
        Representative operand rank for low-rank kernels (drives the
        simulator's throughput curve); 0 for dense kernels.
    """

    tid: TaskId
    kind: TaskKind
    kernel: KernelClass
    flops: float
    out_tile: tuple[int, int]
    deps: list[Edge] = field(default_factory=list)
    panel: int = 0
    rank_hint: int = 0


def task_sort_key(task: Task) -> tuple:
    """Default scheduling priority: earlier panel first, then POTRF >
    TRSM > SYRK > GEMM, then lexicographic indices.

    This mirrors PaRSEC's priority hints for Cholesky: panel tasks are
    promoted so the next panel is discovered as early as possible
    (lookahead), which Section VII-D identifies as the makespan driver.

    The identity elements are stringified so keys stay totally ordered
    even for the fork/sub/join ids of recursive expansions.
    """
    return (
        task.panel,
        _KIND_ORDER[task.kind],
        tuple(str(x) for x in task.tid),
    )
