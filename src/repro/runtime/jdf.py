"""A JDF-like textual DSL for parameterized task graphs.

Section III-C: PaRSEC's PTG frontend "uses a concise, parameterized,
task-graph description known as Job Data Flow (JDF)".  This module
implements a compact JDF-flavoured notation and compiles it into the same
:class:`~repro.runtime.graph.TaskGraph` the programmatic builders produce
— the productivity story of the paper's DSL, demonstrated on its own
algorithm (the Cholesky JDF ships below as :data:`CHOLESKY_JDF`).

Grammar (line-oriented; ``#`` starts a comment)::

    task NAME(i, j, ...)            # declare a task class
      range: i = 0..NT-1; j = 0..i  # index space (Python expressions)
      kind: POTRF                   # TaskKind name
      kernel: <python expr>         # KernelClass, may use indices/env
      flops: <python expr>          # float, may use indices/env
      writes: (i, j)                # output tile
      rank_hint: <python expr>      # optional
      dep: NAME2(e1, e2) tile=(a,b) elems=<expr> if <cond>   # 0+ lines

Expressions are evaluated with the task's indices plus a caller-supplied
environment (``NT``, ``b``, ``band``, ``rank`` function, KernelClass
members...).  Dependencies whose guard is false, or whose source indices
fall outside the source task's declared range, are skipped — this is how
JDF expresses boundary cases like ``(k > 0) ? GEMM(m, n, k-1)``.

This is a teaching-scale subset of real JDF (no anti-dependency
annotations, no data-distribution clauses), but it is a *working
compiler*: the shipped Cholesky JDF is property-tested equivalent to the
hand-written PTG builder.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from ..linalg.flops import KernelClass
from ..utils.exceptions import ConfigurationError
from .graph import TaskGraph
from .task import Edge, Task, TaskKind

__all__ = ["parse_jdf", "compile_jdf", "CHOLESKY_JDF", "cholesky_graph_from_jdf"]

_TASK_RE = re.compile(r"^task\s+(\w+)\s*\(([^)]*)\)\s*$")
_DEP_RE = re.compile(
    r"^dep:\s*(\w+)\s*\(([^)]*)\)\s*tile=\(([^)]*)\)\s*elems=(.+?)"
    r"(?:\s+if\s+(.+))?$"
)


@dataclass
class TaskClassSpec:
    """One parsed ``task`` block."""

    name: str
    indices: list[str]
    ranges: list[tuple[str, str, str]] = field(default_factory=list)
    kind: str = ""
    kernel_expr: str = ""
    flops_expr: str = "0"
    writes_expr: str = ""
    rank_hint_expr: str = "0"
    deps: list[tuple[str, str, str, str, str | None]] = field(default_factory=list)


def parse_jdf(text: str) -> dict[str, TaskClassSpec]:
    """Parse JDF text into task-class specifications."""
    specs: dict[str, TaskClassSpec] = {}
    current: TaskClassSpec | None = None
    for lineno, raw in enumerate(text.splitlines(), 1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        m = _TASK_RE.match(line)
        if m:
            name = m.group(1)
            if name in specs:
                raise ConfigurationError(f"line {lineno}: duplicate task {name}")
            current = TaskClassSpec(
                name=name,
                indices=[s.strip() for s in m.group(2).split(",") if s.strip()],
            )
            specs[name] = current
            continue
        if current is None:
            raise ConfigurationError(f"line {lineno}: statement outside a task block")
        if line.startswith("range:"):
            for part in line[len("range:"):].split(";"):
                part = part.strip()
                if not part:
                    continue
                var, _, bounds = part.partition("=")
                lo, sep, hi = bounds.partition("..")
                if not sep:
                    raise ConfigurationError(
                        f"line {lineno}: range needs 'lo..hi', got {part!r}"
                    )
                current.ranges.append((var.strip(), lo.strip(), hi.strip()))
        elif line.startswith("kind:"):
            current.kind = line[len("kind:"):].strip()
        elif line.startswith("kernel:"):
            current.kernel_expr = line[len("kernel:"):].strip()
        elif line.startswith("flops:"):
            current.flops_expr = line[len("flops:"):].strip()
        elif line.startswith("writes:"):
            current.writes_expr = line[len("writes:"):].strip()
        elif line.startswith("rank_hint:"):
            current.rank_hint_expr = line[len("rank_hint:"):].strip()
        elif line.startswith("dep:"):
            m = _DEP_RE.match(line)
            if not m:
                raise ConfigurationError(f"line {lineno}: malformed dep: {line!r}")
            current.deps.append(
                (m.group(1), m.group(2), m.group(3), m.group(4), m.group(5))
            )
        else:
            raise ConfigurationError(f"line {lineno}: unknown statement {line!r}")
    if not specs:
        raise ConfigurationError("JDF text declares no tasks")
    return specs


def _index_space(spec: TaskClassSpec, env: dict):
    """Yield every index assignment in the spec's (triangular) range."""
    if not spec.ranges:
        yield {}
        return

    def rec(pos: int, bound: dict):
        if pos == len(spec.ranges):
            yield dict(bound)
            return
        var, lo_e, hi_e = spec.ranges[pos]
        scope = {**env, **bound}
        lo = int(eval(lo_e, {"__builtins__": {}}, scope))  # noqa: S307
        hi = int(eval(hi_e, {"__builtins__": {}}, scope))  # noqa: S307
        for v in range(lo, hi + 1):
            bound[var] = v
            yield from rec(pos + 1, bound)
        bound.pop(var, None)

    yield from rec(0, {})


def _in_range(spec: TaskClassSpec, idx: tuple, env: dict) -> bool:
    """True when the index tuple lies inside the spec's declared range."""
    bound = dict(zip(spec.indices, idx))
    for var, lo_e, hi_e in spec.ranges:
        scope = {**env, **bound}
        lo = int(eval(lo_e, {"__builtins__": {}}, scope))  # noqa: S307
        hi = int(eval(hi_e, {"__builtins__": {}}, scope))  # noqa: S307
        if not (lo <= bound[var] <= hi):
            return False
    return True


def compile_jdf(text: str, env: dict) -> TaskGraph:
    """Compile JDF text into a :class:`TaskGraph`.

    Parameters
    ----------
    text:
        The JDF source.
    env:
        Evaluation environment: must provide ``NT`` (tile count), ``b``
        (tile size), ``band`` (band width) plus anything the expressions
        reference (e.g. a ``rank(i, j)`` callable and the ``KernelClass``
        members by name).
    """
    specs = parse_jdf(text)
    for need in ("NT", "b", "band"):
        if need not in env:
            raise ConfigurationError(f"env must define {need!r}")
    g = TaskGraph(
        ntiles=int(env["NT"]), band_size=int(env["band"]), tile_size=int(env["b"])
    )
    safe = {"__builtins__": {}, "min": min, "max": max, "abs": abs}

    def ev(expr: str, scope: dict):
        return eval(expr, safe, {**env, **scope})  # noqa: S307

    for spec in specs.values():
        try:
            kind = TaskKind[spec.kind]
        except KeyError:
            raise ConfigurationError(
                f"task {spec.name}: unknown kind {spec.kind!r}"
            ) from None
        for bound in _index_space(spec, env):
            idx = tuple(bound[v] for v in spec.indices)
            tid = (kind, *idx)
            kernel = ev(spec.kernel_expr, bound)
            if not isinstance(kernel, KernelClass):
                raise ConfigurationError(
                    f"task {spec.name}{idx}: kernel expression must yield a "
                    f"KernelClass, got {kernel!r}"
                )
            writes = tuple(ev(f"({spec.writes_expr})", bound))
            deps: list[Edge] = []
            for src_name, src_idx_e, tile_e, elems_e, guard in spec.deps:
                if guard is not None and not ev(guard, bound):
                    continue
                src_spec = specs.get(src_name)
                if src_spec is None:
                    raise ConfigurationError(
                        f"task {spec.name}: dep on unknown task {src_name}"
                    )
                src_idx = tuple(ev(f"({src_idx_e},)", bound))
                if not _in_range(src_spec, src_idx, env):
                    continue  # boundary dep, like JDF's conditional flows
                src_kind = TaskKind[src_spec.kind]
                tile = tuple(ev(f"({tile_e})", bound))
                elems = int(ev(elems_e, bound))
                deps.append(Edge((src_kind, *src_idx), tid, tile, elems))
            g.add_task(
                Task(
                    tid=tid,
                    kind=kind,
                    kernel=kernel,
                    flops=float(ev(spec.flops_expr, bound)),
                    out_tile=writes,  # type: ignore[arg-type]
                    deps=deps,
                    panel=idx[-1] if idx else 0,
                    rank_hint=int(ev(spec.rank_hint_expr, bound)),
                )
            )
    g.validate()
    return g


#: The BAND-DENSE-TLR Cholesky written in the JDF-like DSL — the same
#: dataflow Fig. 3(c) draws.  ``rank(i, j)``, ``elems(i, j)``,
#: ``gemm_kernel(m, n, k)`` and ``gemm_flops(m, n, k)`` come from the env.
CHOLESKY_JDF = """
task POTRF(k)
  range: k = 0..NT-1
  kind: POTRF
  kernel: POTRF_DENSE
  flops: b**3 / 3
  writes: k, k
  dep: SYRK(k, k-1) tile=(k, k) elems=b*b if k > 0

task TRSM(m, k)
  range: k = 0..NT-1; m = k+1..NT-1
  kind: TRSM
  kernel: TRSM_DENSE if m - k < band else TRSM_LR
  flops: b**3 if m - k < band else b*b*rank(m, k)
  rank_hint: 0 if m - k < band else rank(m, k)
  writes: m, k
  dep: POTRF(k) tile=(k, k) elems=b*b
  dep: GEMM(m, k, k-1) tile=(m, k) elems=elems(m, k) if k > 0

task SYRK(n, k)
  range: k = 0..NT-1; n = k+1..NT-1
  kind: SYRK
  kernel: SYRK_DENSE if n - k < band else SYRK_LR
  flops: b**3 if n - k < band else 2*b*b*rank(n, k) + 4*b*rank(n, k)**2
  rank_hint: 0 if n - k < band else rank(n, k)
  writes: n, n
  dep: TRSM(n, k) tile=(n, k) elems=elems(n, k)
  dep: SYRK(n, k-1) tile=(n, n) elems=b*b if k > 0

task GEMM(m, n, k)
  range: k = 0..NT-1; n = k+1..NT-1; m = n+1..NT-1
  kind: GEMM
  kernel: gemm_kernel(m, n, k)
  flops: gemm_flops(m, n, k)
  rank_hint: gemm_rank_hint(m, n, k)
  writes: m, n
  dep: TRSM(m, k) tile=(m, k) elems=elems(m, k)
  dep: TRSM(n, k) tile=(n, k) elems=elems(n, k)
  dep: GEMM(m, n, k-1) tile=(m, n) elems=elems(m, n) if k > 0
"""


def cholesky_graph_from_jdf(
    ntiles: int, band_size: int, tile_size: int, rank_fn
) -> TaskGraph:
    """Compile :data:`CHOLESKY_JDF` with the standard environment.

    Produces a graph equivalent to
    :func:`repro.runtime.graph.build_cholesky_graph` (tested property) —
    the JDF route just gets there through the DSL compiler.
    """
    from ..linalg.flops import (
        flops_gemm_dense,
        flops_gemm_dense_lrd,
        flops_gemm_dense_lrlr,
        flops_gemm_lr_dense_general,
        flops_gemm_lr_general,
    )
    from .graph import _tile_elements, classify_gemm

    b = tile_size

    def rank_of(i, j):
        return rank_fn(i, j) if (i - j) >= band_size else 0

    def gemm_kernel(m, n, k):
        return classify_gemm(m, n, k, band_size)

    def gemm_flops(m, n, k):
        kc = classify_gemm(m, n, k, band_size)
        ra, rb, rc = rank_of(m, k), rank_of(n, k), rank_of(m, n)
        if kc is KernelClass.GEMM_DENSE:
            return flops_gemm_dense(b)
        if kc is KernelClass.GEMM_DENSE_LRD:
            return flops_gemm_dense_lrd(b, ra)
        if kc is KernelClass.GEMM_DENSE_LRLR:
            return flops_gemm_dense_lrlr(b, ra, rb)
        if kc is KernelClass.GEMM_LR_DENSE:
            return flops_gemm_lr_dense_general(b, rc, max(ra, 1))
        return flops_gemm_lr_general(b, rc, max(ra, 1), max(rb, 1))

    def gemm_rank_hint(m, n, k):
        return max(rank_of(m, k), rank_of(n, k), rank_of(m, n))

    env = {
        "NT": ntiles,
        "b": tile_size,
        "band": band_size,
        "rank": rank_fn,
        "elems": lambda i, j: _tile_elements(i, j, b, band_size, rank_fn),
        "gemm_kernel": gemm_kernel,
        "gemm_flops": gemm_flops,
        "gemm_rank_hint": gemm_rank_hint,
        **{k.name: k for k in KernelClass},
    }
    return compile_jdf(CHOLESKY_JDF, env)
