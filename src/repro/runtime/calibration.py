"""Machine-model calibration against the host's real kernels.

The simulator's default rates are Shaheen-II-like constants; for studies
on *this* machine, :func:`calibrate_machine` measures the host's actual
dense-GEMM throughput and TLR-GEMM efficiency curve (the Fig. 2a
quantities) and builds a :class:`KernelRateModel` from them — closing the
loop between the measured single-core benchmarks and the simulated
distributed runs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..linalg.compression import TruncationRule
from ..linalg.hcore import gemm_dense, gemm_lr
from ..linalg.tiles import DenseTile, LowRankTile
from ..utils.validation import check_positive_int
from .machine import KernelRateModel, MachineSpec

__all__ = [
    "measure_dense_gflops",
    "measure_lr_efficiency",
    "calibrate_machine",
    "MeasuredRates",
    "rates_from_run",
    "rates_from_runs",
]


def _best_of(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def measure_dense_gflops(b: int = 512, *, repeats: int = 3) -> float:
    """Sustained dense-GEMM throughput (Gflop/s) at tile size ``b``."""
    check_positive_int("b", b)
    rng = np.random.default_rng(0)
    a = DenseTile(rng.standard_normal((b, b)))
    c = DenseTile(rng.standard_normal((b, b)))
    bt = DenseTile(rng.standard_normal((b, b)))
    secs = _best_of(lambda: gemm_dense(a, bt, c), repeats)
    return 2.0 * b**3 / secs / 1e9


def measure_lr_efficiency(
    b: int = 512, k: int | None = None, *, repeats: int = 3
) -> float:
    """TLR-GEMM throughput at rank ``k`` relative to dense GEMM.

    Defaults to the mid-rank regime ``k = b/8`` where Fig. 2a reports the
    ≈ 1/3 plateau.
    """
    check_positive_int("b", b)
    k = k or max(b // 8, 4)
    rng = np.random.default_rng(1)
    rule = TruncationRule(eps=1e-8)
    tiles = [
        LowRankTile(rng.standard_normal((b, k)), rng.standard_normal((b, k)))
        for _ in range(3)
    ]
    secs = _best_of(lambda: gemm_lr(tiles[0], tiles[1], tiles[2], rule), repeats)
    lr_gflops = (36 * b * k**2 + 157 * k**3) / secs / 1e9
    return lr_gflops / measure_dense_gflops(b, repeats=repeats)


def calibrate_machine(
    nodes: int = 1,
    cores_per_node: int = 1,
    *,
    b: int = 512,
    repeats: int = 3,
    **machine_kwargs,
) -> MachineSpec:
    """A :class:`MachineSpec` whose rates reflect this host's kernels.

    Network parameters keep their defaults (there is no network to
    measure on one host) unless overridden via ``machine_kwargs``.
    """
    dense = measure_dense_gflops(b, repeats=repeats)
    lr_frac = measure_lr_efficiency(b, repeats=repeats)
    rates = KernelRateModel(
        dense_gflops=dense,
        lr_peak_fraction=min(max(lr_frac, 0.05), 1.0),
    )
    return MachineSpec(
        nodes=nodes, cores_per_node=cores_per_node, rates=rates, **machine_kwargs
    )


@dataclass
class MeasuredRates:
    """Kernel durations replayed from a recorded run's task spans.

    Where :class:`~repro.runtime.machine.KernelRateModel` is an analytic
    throughput curve, this rates object answers ``seconds(...)`` with the
    *median measured duration* of that kernel class in a real trace — the
    DES then replays the measured per-task costs over the modelled
    network, which is exactly the "predicted vs realized" reconciliation
    a trace diff wants: per-kernel medians agree by construction, and any
    residual disagreement isolates scheduling/communication modelling
    error rather than kernel-rate error.
    """

    durations: dict[str, float] = field(default_factory=dict)
    fallback_gflops: float = 10.0
    class_gflops: dict[str, float] = field(default_factory=dict)
    extrapolate: bool = False

    def seconds(self, kernel, flops: float, b: int, k: int) -> float:
        """Median measured duration of ``kernel``; flops-based fallback."""
        name = getattr(kernel, "value", str(kernel))
        if self.extrapolate:
            g = self.class_gflops.get(name)
            if g and g > 0.0 and flops > 0.0:
                return flops / (g * 1e9)
        d = self.durations.get(name)
        if d is not None:
            return d
        if flops <= 0.0:
            return 0.0
        return flops / (self.fallback_gflops * 1e9)


def rates_from_run(
    run, *, extrapolate: bool = False, stat: str = "median"
) -> MeasuredRates:
    """Build :class:`MeasuredRates` from a loaded run trace.

    ``run`` is an :class:`~repro.obs.analytics.RunTrace` (from
    :func:`repro.obs.load_run` or :func:`repro.obs.run_from_observation`)
    whose task spans carry ``kernel`` annotations — any graph-executor
    run recorded under :func:`repro.obs.observe` qualifies.
    """
    return rates_from_runs([run], extrapolate=extrapolate, stat=stat)


def rates_from_runs(
    runs, *, extrapolate: bool = False, stat: str = "median"
) -> MeasuredRates:
    """Pool several recorded runs into one :class:`MeasuredRates`.

    Per-kernel-class durations from all runs are merged before taking
    the summary statistic, and per-class GFLOP/s (``class_gflops``) is
    computed from the pooled flops/seconds totals.  With
    ``extrapolate=False`` (the default) ``seconds`` replays the pooled
    per-class duration — the right mode when the sweep targets the
    *recorded* geometry.  With ``extrapolate=True`` the per-class
    throughput scales durations with each task's modelled flops — the
    right mode when tuning for a *different* N or tile size than was
    recorded.

    ``stat`` selects the replayed statistic: ``"median"`` (default)
    makes predicted and realized per-kernel *medians* agree by
    construction — what a trace diff compares; ``"mean"`` makes the
    simulated *aggregate busy time* match the recorded one — what a
    makespan prediction needs, because measured task durations are
    right-skewed (preemption and cache pollution only ever slow a task
    down), so Σ medians undershoots Σ durations by the skew factor.
    The autotuner calibrates with ``"mean"`` for exactly that reason
    (see docs/tuning.md).
    """
    from ..obs.analytics import flop_attribution

    if not runs:
        raise ValueError("rates_from_runs needs at least one run")
    if stat not in ("median", "mean"):
        raise ValueError(f"stat must be 'median' or 'mean', got {stat!r}")
    pooled_durations: dict[str, list[float]] = {}
    pooled_flops: dict[str, float] = {}
    pooled_secs: dict[str, float] = {}
    for run in runs:
        for kernel, r in flop_attribution(run).items():
            pooled_durations.setdefault(kernel, []).extend(r.durations)
            pooled_flops[kernel] = pooled_flops.get(kernel, 0.0) + r.flops
            pooled_secs[kernel] = pooled_secs.get(kernel, 0.0) + r.seconds
    summarize = np.median if stat == "median" else np.mean
    durations = {
        kernel: float(summarize(ds))
        for kernel, ds in pooled_durations.items()
        if ds
    }
    class_gflops = {
        kernel: pooled_flops[kernel] / pooled_secs[kernel] / 1e9
        for kernel in pooled_flops
        if pooled_secs.get(kernel, 0.0) > 0.0 and pooled_flops[kernel] > 0.0
    }
    total_flops = sum(pooled_flops.values())
    total_secs = sum(pooled_secs.values())
    fallback = total_flops / total_secs / 1e9 if total_secs > 0 else 10.0
    return MeasuredRates(
        durations=durations,
        fallback_gflops=fallback,
        class_gflops=class_gflops,
        extrapolate=extrapolate,
    )
