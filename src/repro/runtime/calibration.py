"""Machine-model calibration against the host's real kernels.

The simulator's default rates are Shaheen-II-like constants; for studies
on *this* machine, :func:`calibrate_machine` measures the host's actual
dense-GEMM throughput and TLR-GEMM efficiency curve (the Fig. 2a
quantities) and builds a :class:`KernelRateModel` from them — closing the
loop between the measured single-core benchmarks and the simulated
distributed runs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..linalg.compression import TruncationRule
from ..linalg.hcore import gemm_dense, gemm_lr
from ..linalg.tiles import DenseTile, LowRankTile
from ..utils.validation import check_positive_int
from .machine import KernelRateModel, MachineSpec

__all__ = [
    "measure_dense_gflops",
    "measure_lr_efficiency",
    "calibrate_machine",
    "MeasuredRates",
    "rates_from_run",
]


def _best_of(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def measure_dense_gflops(b: int = 512, *, repeats: int = 3) -> float:
    """Sustained dense-GEMM throughput (Gflop/s) at tile size ``b``."""
    check_positive_int("b", b)
    rng = np.random.default_rng(0)
    a = DenseTile(rng.standard_normal((b, b)))
    c = DenseTile(rng.standard_normal((b, b)))
    bt = DenseTile(rng.standard_normal((b, b)))
    secs = _best_of(lambda: gemm_dense(a, bt, c), repeats)
    return 2.0 * b**3 / secs / 1e9


def measure_lr_efficiency(
    b: int = 512, k: int | None = None, *, repeats: int = 3
) -> float:
    """TLR-GEMM throughput at rank ``k`` relative to dense GEMM.

    Defaults to the mid-rank regime ``k = b/8`` where Fig. 2a reports the
    ≈ 1/3 plateau.
    """
    check_positive_int("b", b)
    k = k or max(b // 8, 4)
    rng = np.random.default_rng(1)
    rule = TruncationRule(eps=1e-8)
    tiles = [
        LowRankTile(rng.standard_normal((b, k)), rng.standard_normal((b, k)))
        for _ in range(3)
    ]
    secs = _best_of(lambda: gemm_lr(tiles[0], tiles[1], tiles[2], rule), repeats)
    lr_gflops = (36 * b * k**2 + 157 * k**3) / secs / 1e9
    return lr_gflops / measure_dense_gflops(b, repeats=repeats)


def calibrate_machine(
    nodes: int = 1,
    cores_per_node: int = 1,
    *,
    b: int = 512,
    repeats: int = 3,
    **machine_kwargs,
) -> MachineSpec:
    """A :class:`MachineSpec` whose rates reflect this host's kernels.

    Network parameters keep their defaults (there is no network to
    measure on one host) unless overridden via ``machine_kwargs``.
    """
    dense = measure_dense_gflops(b, repeats=repeats)
    lr_frac = measure_lr_efficiency(b, repeats=repeats)
    rates = KernelRateModel(
        dense_gflops=dense,
        lr_peak_fraction=min(max(lr_frac, 0.05), 1.0),
    )
    return MachineSpec(
        nodes=nodes, cores_per_node=cores_per_node, rates=rates, **machine_kwargs
    )


@dataclass
class MeasuredRates:
    """Kernel durations replayed from a recorded run's task spans.

    Where :class:`~repro.runtime.machine.KernelRateModel` is an analytic
    throughput curve, this rates object answers ``seconds(...)`` with the
    *median measured duration* of that kernel class in a real trace — the
    DES then replays the measured per-task costs over the modelled
    network, which is exactly the "predicted vs realized" reconciliation
    a trace diff wants: per-kernel medians agree by construction, and any
    residual disagreement isolates scheduling/communication modelling
    error rather than kernel-rate error.
    """

    durations: dict[str, float] = field(default_factory=dict)
    fallback_gflops: float = 10.0

    def seconds(self, kernel, flops: float, b: int, k: int) -> float:
        """Median measured duration of ``kernel``; flops-based fallback."""
        d = self.durations.get(getattr(kernel, "value", str(kernel)))
        if d is not None:
            return d
        if flops <= 0.0:
            return 0.0
        return flops / (self.fallback_gflops * 1e9)


def rates_from_run(run) -> MeasuredRates:
    """Build :class:`MeasuredRates` from a loaded run trace.

    ``run`` is an :class:`~repro.obs.analytics.RunTrace` (from
    :func:`repro.obs.load_run` or :func:`repro.obs.run_from_observation`)
    whose task spans carry ``kernel`` annotations — any graph-executor
    run recorded under :func:`repro.obs.observe` qualifies.
    """
    from ..obs.analytics import flop_attribution

    rates = flop_attribution(run)
    durations = {
        kernel: r.median_s for kernel, r in rates.items() if r.durations
    }
    total_flops = sum(r.flops for r in rates.values())
    total_secs = sum(r.seconds for r in rates.values())
    fallback = total_flops / total_secs / 1e9 if total_secs > 0 else 10.0
    return MeasuredRates(durations=durations, fallback_gflops=fallback)
