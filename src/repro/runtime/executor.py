"""In-process executor: runs a Cholesky task graph with real numerics.

The executor walks the same :class:`~repro.runtime.graph.TaskGraph` the
simulator replays, but actually performs every HCORE kernel on a
:class:`~repro.matrix.BandTLRMatrix` — validating that the unfolded DAG
computes the same factor as the sequential reference algorithm (and hence
that the simulator's timing applies to a correct execution).

Tasks run in dependency (priority-topological) order on one process; the
point here is numerical fidelity, not parallel speed — on this machine the
BLAS underneath already uses the cores.

Low-rank destinations exercise the dynamic-memory path: recompression
output factors are re-associated with a :class:`MemoryPool` and rank-growth
reallocations are counted, mirroring Section VII-B.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .. import obs
from ..linalg import hcore
from ..linalg.compression import TruncationRule
from ..linalg.flops import FlopCounter
from ..linalg.tiles import LowRankTile
from ..matrix.memory import MemoryTracker
from ..matrix.tlr_matrix import BandTLRMatrix
from ..utils.exceptions import RuntimeSystemError
from .graph import TaskGraph
from .memory_pool import MemoryPool
from .task import TaskKind

__all__ = ["ExecutionReport", "execute_graph"]


@dataclass
class ExecutionReport:
    """Artifacts of a real (numerical) graph execution.

    Attributes
    ----------
    counter:
        Modelled flops actually incurred, by kernel class.
    tracker:
        Live memory accounting (current/peak/reallocations).
    pool:
        The dynamic memory pool used for low-rank factors.
    rank_growth_events:
        Number of recompressions whose output rank exceeded the
        destination tile's previous rank (each triggers a reallocation).
    max_rank_seen:
        Largest low-rank tile rank observed during the factorization
        (the paper's final maxrank, cf. Fig. 1).
    tasks_executed:
        Total tasks run.
    """

    counter: FlopCounter = field(default_factory=FlopCounter)
    tracker: MemoryTracker = field(default_factory=MemoryTracker)
    pool: MemoryPool = field(default_factory=MemoryPool)
    rank_growth_events: int = 0
    max_rank_seen: int = 0
    tasks_executed: int = 0


def execute_graph(
    graph: TaskGraph,
    matrix: BandTLRMatrix,
    *,
    rule: TruncationRule | None = None,
    use_pool: bool = True,
    backend=None,
) -> ExecutionReport:
    """Execute a (non-expanded) Cholesky task graph on ``matrix`` in place.

    Parameters
    ----------
    graph:
        Graph built by :func:`repro.runtime.graph.build_cholesky_graph`
        *without* ``recursive_split`` (nested sub-tasks operate on views
        the executor does not materialize; recursion is a simulator-side
        concern — numerically the whole-tile kernel is identical).
    matrix:
        The compressed matrix to factorize; mutated into its Cholesky
        factor (lower triangle).
    rule:
        Truncation rule for recompressions; defaults to the matrix's rule.
    use_pool:
        Re-associate recompression outputs with the pool (exercises the
        dynamic-memory path; disable for pure-numerics runs).
    backend:
        Compression backend for GEMM recompressions; defaults to the
        matrix's backend.

    Returns
    -------
    ExecutionReport
    """
    if graph.ntiles != matrix.ntiles:
        raise RuntimeSystemError(
            f"graph is for NT={graph.ntiles} but the matrix has NT={matrix.ntiles}"
        )
    if graph.band_size != matrix.band_size:
        raise RuntimeSystemError(
            f"graph band_size={graph.band_size} does not match "
            f"matrix band_size={matrix.band_size}"
        )
    rule = rule or matrix.rule
    backend = backend if backend is not None else matrix.backend
    report = ExecutionReport()
    report.tracker.register_matrix(matrix)
    pooled: set[int] = set()  # ids of factor arrays owned by the pool

    observing = obs.enabled()
    for tid in graph.topological_order():
        task = graph.tasks[tid]
        if tid != _canonical_tid(task):
            raise RuntimeSystemError(
                "executor received an expanded graph; build it without "
                "recursive_split"
            )
        kind = task.kind
        if observing:
            span = obs.span(
                "_".join([kind.name, *(str(x) for x in tid[1:])]), "task"
            )
        else:
            span = obs.NULL_SPAN
        with span:
            _execute_task(tid, task, kind, matrix, rule, backend, report,
                          pooled, use_pool)
        report.tasks_executed += 1

    if observing:
        obs.counter_add(
            "tasks_executed", report.tasks_executed, executor="sequential"
        )
        obs.pool_observed(report.pool.stats, pool="executor")
        from ..linalg.backends import get_backend

        obs.pool_observed(
            get_backend(backend).workspace_pool_stats, pool="workspace"
        )
    return report


def _execute_task(
    tid, task, kind, matrix, rule, backend, report, pooled, use_pool
) -> None:
    """Run one graph task's kernel on the matrix (body of the main loop)."""
    if kind is TaskKind.POTRF:
        (_, k) = tid
        hcore.potrf_dense(
            matrix.tile(k, k), counter=report.counter, tile_index=(k, k)
        )
    elif kind is TaskKind.TRSM:
        (_, m, k) = tid
        out = hcore.trsm_auto(
            matrix.tile(k, k), matrix.tile(m, k), counter=report.counter
        )
        matrix.set_tile(m, k, out)
    elif kind is TaskKind.SYRK:
        (_, n, k) = tid
        hcore.syrk_auto(
            matrix.tile(n, k), matrix.tile(n, n), counter=report.counter
        )
    else:  # GEMM
        (_, m, n, k) = tid
        out, _, recomp = hcore.gemm_auto(
            matrix.tile(m, k),
            matrix.tile(n, k),
            matrix.tile(m, n),
            rule,
            counter=report.counter,
            backend=backend,
        )
        if recomp is not None:
            bm, bn = out.shape
            # Transient stacked factors existed during recompression.
            report.tracker.transient((bm + bn) * recomp.rank_before)
            if recomp.grew:
                report.rank_growth_events += 1
            if use_pool:
                # Release the destination's previous factors back to
                # the pool, then re-associate the fresh exact-size
                # buffers — Section VII-B's two-stage designation.
                old = matrix.tile(m, n)
                if isinstance(old, LowRankTile):
                    for arr in (old.u, old.v):
                        if id(arr) in pooled:
                            pooled.discard(id(arr))
                            report.pool.release(arr)
                if isinstance(out, LowRankTile) and out.rank > 0:
                    out = LowRankTile(
                        report.pool.take(out.u), report.pool.take(out.v)
                    )
                    pooled.add(id(out.u))
                    pooled.add(id(out.v))
            report.max_rank_seen = max(report.max_rank_seen, recomp.rank_after)
        matrix.set_tile(m, n, out)
        report.tracker.allocate_tile((m, n), out)


def _canonical_tid(task) -> tuple:
    """The tile-level id a task of this kind/indices should carry."""
    if task.kind is TaskKind.POTRF:
        return (TaskKind.POTRF, task.out_tile[0])
    if task.kind is TaskKind.TRSM:
        return (TaskKind.TRSM, *task.out_tile)
    if task.kind is TaskKind.SYRK:
        return (TaskKind.SYRK, task.out_tile[0], task.panel)
    return (TaskKind.GEMM, *task.out_tile, task.panel)
