"""In-process executor: runs a Cholesky task graph with real numerics.

The executor walks the same :class:`~repro.runtime.graph.TaskGraph` the
simulator replays, but actually performs every HCORE kernel on a
:class:`~repro.matrix.BandTLRMatrix` — validating that the unfolded DAG
computes the same factor as the sequential reference algorithm (and hence
that the simulator's timing applies to a correct execution).

Tasks run in dependency (priority-topological) order on one process; the
point here is numerical fidelity, not parallel speed — on this machine the
BLAS underneath already uses the cores.

Low-rank destinations exercise the dynamic-memory path: recompression
output factors are re-associated with a :class:`MemoryPool` and rank-growth
reallocations are counted, mirroring Section VII-B.

Resilience: pass ``faults`` (a spec string, :class:`FaultPlan`, or
injector) and/or ``recovery`` (a :class:`RecoveryPolicy`) to run every
task under the retry/rollback engine of
:mod:`repro.runtime.resilience`; pass ``checkpoint`` (a directory or
:class:`CheckpointConfig`) to periodically persist the completed-panel
frontier, and ``resume=True`` to restart from the latest checkpoint.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from .. import obs
from ..linalg import hcore
from ..linalg.batched import BatchItem, BatchPlanner, run_batch
from ..linalg.compression import TruncationRule
from ..linalg.flops import FlopCounter
from ..linalg.tiles import LowRankTile
from ..matrix.memory import MemoryTracker
from ..matrix.tlr_matrix import BandTLRMatrix
from ..utils.exceptions import RuntimeSystemError
from .graph import TaskGraph
from .memory_pool import MemoryPool
from .resilience import ResilienceReport, as_checkpointer, build_manager
from .task import TaskKind, task_name, task_sort_key

__all__ = ["ExecutionReport", "execute_graph"]


@dataclass
class ExecutionReport:
    """Artifacts of a real (numerical) graph execution.

    Attributes
    ----------
    counter:
        Modelled flops actually incurred, by kernel class.
    tracker:
        Live memory accounting (current/peak/reallocations).
    pool:
        The dynamic memory pool used for low-rank factors.
    rank_growth_events:
        Number of recompressions whose output rank exceeded the
        destination tile's previous rank (each triggers a reallocation).
    max_rank_seen:
        Largest low-rank tile rank observed during the factorization
        (the paper's final maxrank, cf. Fig. 1).
    tasks_executed:
        Total tasks run (excluding tasks restored from a checkpoint).
    tasks_resumed:
        Tasks skipped because a restored checkpoint had completed them.
    resilience:
        Recovery-engine counters (``None`` when no faults/recovery/
        checkpointing was requested).
    """

    counter: FlopCounter = field(default_factory=FlopCounter)
    tracker: MemoryTracker = field(default_factory=MemoryTracker)
    pool: MemoryPool = field(default_factory=MemoryPool)
    rank_growth_events: int = 0
    max_rank_seen: int = 0
    tasks_executed: int = 0
    tasks_resumed: int = 0
    resilience: ResilienceReport | None = None


def execute_graph(
    graph: TaskGraph,
    matrix: BandTLRMatrix,
    *,
    rule: TruncationRule | None = None,
    use_pool: bool = True,
    backend=None,
    batch: bool = False,
    faults=None,
    recovery=None,
    checkpoint=None,
    resume: bool = False,
) -> ExecutionReport:
    """Execute a (non-expanded) Cholesky task graph on ``matrix`` in place.

    Parameters
    ----------
    graph:
        Graph built by :func:`repro.runtime.graph.build_cholesky_graph`
        *without* ``recursive_split`` (nested sub-tasks operate on views
        the executor does not materialize; recursion is a simulator-side
        concern — numerically the whole-tile kernel is identical).
    matrix:
        The compressed matrix to factorize; mutated into its Cholesky
        factor (lower triangle).
    rule:
        Truncation rule for recompressions; defaults to the matrix's rule.
    use_pool:
        Re-associate recompression outputs with the pool (exercises the
        dynamic-memory path; disable for pure-numerics runs).
    backend:
        Compression backend for GEMM recompressions; defaults to the
        matrix's backend.
    batch:
        Drain the ready set into same-shape kernel buckets and dispatch
        each bucket as one stacked BLAS/LAPACK call (see
        :mod:`repro.linalg.batched`).  Results are bitwise identical to
        unbatched execution.  Ignored (forced off) when the recovery
        engine is active — retry/rollback wraps individual task
        attempts, which batching would fuse.
    faults:
        Fault-injection source: a spec string (see
        :mod:`repro.testing.faults` for the grammar), a ``FaultPlan``, or
        a ready injector.  Implies the recovery engine.
    recovery:
        A :class:`~repro.runtime.resilience.RecoveryPolicy`; ``None``
        with ``faults`` set uses the default policy.
    checkpoint:
        Checkpoint directory (or
        :class:`~repro.runtime.resilience.CheckpointConfig` /
        :class:`~repro.runtime.resilience.Checkpointer`) — the
        completed-panel frontier is persisted there.
    resume:
        Restore the latest checkpoint from ``checkpoint`` before
        executing; completed tasks are skipped.

    Returns
    -------
    ExecutionReport
    """
    if graph.ntiles != matrix.ntiles:
        raise RuntimeSystemError(
            f"graph is for NT={graph.ntiles} but the matrix has NT={matrix.ntiles}"
        )
    if graph.band_size != matrix.band_size:
        raise RuntimeSystemError(
            f"graph band_size={graph.band_size} does not match "
            f"matrix band_size={matrix.band_size}"
        )
    rule = rule or matrix.rule
    backend = backend if backend is not None else matrix.backend
    report = ExecutionReport()
    report.tracker.register_matrix(matrix)
    pooled: dict[int, object] = {}  # id -> factor array owned by the pool
    stats_lock = threading.Lock()

    manager = build_manager(faults, recovery)
    ckptr = as_checkpointer(checkpoint)
    rrep = None
    if manager is not None:
        rrep = manager.report
    elif ckptr is not None:
        rrep = ResilienceReport()
    report.resilience = rrep

    completed: set[tuple] = set()
    panels_total_done = 0
    if resume and ckptr is not None:
        ck = ckptr.load_latest()
        if ck is not None:
            ckptr.validate_against(graph, matrix, ck)
            for ij, tile in ck.matrix.tiles.items():
                matrix.set_tile(*ij, tile)
            completed = set(ck.completed)
            panels_total_done = ck.panels_done
            report.tasks_resumed = len(completed)
            rrep.tasks_resumed = len(completed)

    if manager is not None:

        def _discard(tile) -> None:
            if isinstance(tile, LowRankTile):
                for arr in (tile.u, tile.v):
                    if pooled.pop(id(arr), None) is not None:
                        report.pool.release(arr)

        manager.discard = _discard

    panel_remaining: dict[int, int] = {}
    for tid, task in graph.tasks.items():
        if tid not in completed:
            p = task.panel
            panel_remaining[p] = panel_remaining.get(p, 0) + 1
    panels_since_save = 0

    observing = obs.enabled()
    if observing:
        obs.graph_observed(graph, task_name)

    def finish_task(tid, task) -> None:
        """Post-commit bookkeeping shared by both dispatch loops."""
        nonlocal panels_total_done, panels_since_save
        report.tasks_executed += 1
        completed.add(tid)
        panel_remaining[task.panel] -= 1
        if panel_remaining[task.panel] == 0:
            panels_total_done += 1
            panels_since_save += 1
            if (
                ckptr is not None
                and panels_since_save >= ckptr.config.every
                and len(completed) < len(graph.tasks)
            ):
                ckptr.save(matrix, completed, panels_total_done)
                rrep.checkpoints_written += 1
                panels_since_save = 0

    try:
        if batch and manager is None:
            _run_batched_loop(
                graph, matrix, rule, backend, report, pooled, use_pool,
                stats_lock, completed, finish_task, observing,
            )
        else:
            for tid in graph.topological_order():
                task = graph.tasks[tid]
                if tid != _canonical_tid(task):
                    raise RuntimeSystemError(
                        "executor received an expanded graph; build it "
                        "without recursive_split"
                    )
                if tid in completed:
                    continue
                if observing:
                    span = obs.span(
                        task_name(tid),
                        "task",
                        kernel=task.kernel.value,
                        flops=task.flops,
                    )
                else:
                    span = obs.NULL_SPAN
                with span:
                    if manager is not None:
                        out, recomp = manager.run(
                            task,
                            matrix,
                            lambda: _compute_task(
                                tid, task, matrix, rule, backend,
                                report.counter
                            ),
                        )
                    else:
                        out, recomp = _compute_task(
                            tid, task, matrix, rule, backend, report.counter
                        )
                    _commit_task(
                        tid, task, out, recomp, matrix, report, pooled,
                        use_pool, stats_lock,
                    )
                finish_task(tid, task)
        if ckptr is not None and report.tasks_executed:
            # Final checkpoint: resuming a finished run is a no-op.
            ckptr.save(matrix, completed, panels_total_done)
            rrep.checkpoints_written += 1
    finally:
        if manager is not None:
            manager.close()

    if observing:
        obs.counter_add(
            "tasks_executed", report.tasks_executed, executor="sequential"
        )
        obs.pool_observed(report.pool.stats, pool="executor")
        from ..linalg.backends import get_backend

        obs.pool_observed(
            get_backend(backend).workspace_pool_stats, pool="workspace"
        )
    return report


def _batch_item(tid, task, matrix) -> BatchItem:
    """Wrap a ready task and its operand tiles for the batching layer.

    Safe to build at ready time: a task's input tiles are final once its
    dependencies committed, and nothing rewrites them afterwards (panel
    tiles are final after their TRSM; trailing-tile updates are chained).
    """
    kind = task.kind
    if kind is TaskKind.POTRF:
        (_, k) = tid
        return BatchItem(tid, "potrf", (matrix.tile(k, k),), index=(k, k))
    if kind is TaskKind.TRSM:
        (_, m, k) = tid
        return BatchItem(tid, "trsm", (matrix.tile(k, k), matrix.tile(m, k)))
    if kind is TaskKind.SYRK:
        (_, n, k) = tid
        return BatchItem(tid, "syrk", (matrix.tile(n, k), matrix.tile(n, n)))
    (_, m, n, k) = tid
    return BatchItem(
        tid, "gemm", (matrix.tile(m, k), matrix.tile(n, k), matrix.tile(m, n))
    )


def _record_batch_spans(tids, graph, start, end, worker=None) -> None:
    """Emit per-task spans for one batched window.

    The batch executed as a single fused call; its wall-clock window is
    apportioned to the member tasks proportionally to their modelled
    flops, keeping the spans contiguous and non-overlapping so the
    analytics critical-path/GFLOP/s join keeps working on batched runs.
    """
    tasks = [graph.tasks[tid] for tid in tids]
    weights = [max(task.flops, 1.0) for task in tasks]
    total = sum(weights)
    n = len(tids)
    t = start
    attrs = {} if worker is None else {"worker": worker}
    for tid, task, w in zip(tids, tasks, weights):
        dt = (end - start) * (w / total)
        obs.record_span(
            task_name(tid),
            "task",
            start=t,
            end=t + dt,
            kernel=task.kernel.value,
            flops=task.flops,
            batched=n,
            **attrs,
        )
        t += dt


def _run_batched_loop(
    graph, matrix, rule, backend, report, pooled, use_pool, stats_lock,
    completed, finish_task, observing,
) -> None:
    """Kahn-wave dispatch with same-shape bucket batching.

    Each wave drains the full ready set, partitions it into shape-keyed
    buckets (:class:`~repro.linalg.batched.BatchPlanner`), and runs every
    group through :func:`~repro.linalg.batched.run_batch`.  Commit order
    within a wave follows the scheduler's priority order, so pool/tracker
    accounting stays deterministic; the computed factor is bitwise
    independent of grouping by construction.
    """
    planner = BatchPlanner()
    pending = []
    for tid, task in graph.tasks.items():
        if tid != _canonical_tid(task):
            raise RuntimeSystemError(
                "executor received an expanded graph; build it without "
                "recursive_split"
            )
        if tid not in completed:
            pending.append(tid)
    indeg: dict[tuple, int] = {}
    succs: dict[tuple, list[tuple]] = {tid: [] for tid in graph.tasks}
    for tid in pending:
        sources = {e.src for e in graph.tasks[tid].deps} - completed
        indeg[tid] = len(sources)
        for src in sources:
            succs[src].append(tid)
    ready = [tid for tid in pending if indeg[tid] == 0]
    while ready:
        ready.sort(key=lambda t: task_sort_key(graph.tasks[t]))
        items = [_batch_item(tid, graph.tasks[tid], matrix) for tid in ready]
        next_ready: list[tuple] = []
        for group in planner.partition(items):
            t_start = obs.clock() if observing else 0.0
            results = run_batch(
                group, rule, counter=report.counter, backend=backend
            )
            if observing:
                _record_batch_spans(
                    [item.ref for item in group], graph, t_start, obs.clock()
                )
            for res in results:
                tid = res.ref
                task = graph.tasks[tid]
                _commit_task(
                    tid, task, res.out, res.recomp, matrix, report, pooled,
                    use_pool, stats_lock,
                )
                finish_task(tid, task)
                for succ in succs[tid]:
                    indeg[succ] -= 1
                    if indeg[succ] == 0:
                        next_ready.append(succ)
        ready = next_ready
    if len(completed) != len(graph.tasks):
        raise RuntimeSystemError(
            f"batched execution stalled: {len(completed)} of "
            f"{len(graph.tasks)} tasks completed (cyclic graph?)"
        )


def _compute_task(tid, task, matrix, rule, backend, counter):
    """Run one task's kernel; returns ``(out, recomp)`` without committing.

    ``out`` is the produced tile for TRSM/GEMM and ``None`` for the
    in-place POTRF/SYRK.  No pool or tracker side effects happen here —
    :func:`_commit_task` applies them only after the (possibly
    fault-injected) attempt is validated, so failed attempts never leak
    pool buffers.
    """
    kind = task.kind
    if kind is TaskKind.POTRF:
        (_, k) = tid
        hcore.potrf_dense(
            matrix.tile(k, k), counter=counter, tile_index=(k, k)
        )
        return None, None
    if kind is TaskKind.TRSM:
        (_, m, k) = tid
        out = hcore.trsm_auto(
            matrix.tile(k, k), matrix.tile(m, k), counter=counter
        )
        return out, None
    if kind is TaskKind.SYRK:
        (_, n, k) = tid
        hcore.syrk_auto(
            matrix.tile(n, k), matrix.tile(n, n), counter=counter
        )
        return None, None
    (_, m, n, k) = tid
    out, _, recomp = hcore.gemm_auto(
        matrix.tile(m, k),
        matrix.tile(n, k),
        matrix.tile(m, n),
        rule,
        counter=counter,
        backend=backend,
    )
    return out, recomp


def _commit_task(
    tid, task, out, recomp, matrix, report, pooled, use_pool, stats_lock
) -> None:
    """Publish a validated task result: tile store, pool, tracker.

    Shared by the sequential and parallel executors (``report`` carries
    the same accounting surface in both; ``pooled`` maps buffer id ->
    array for the factors currently owned by the pool, guarded by
    ``stats_lock``).
    """
    kind = task.kind
    if kind in (TaskKind.POTRF, TaskKind.SYRK):
        return  # in-place kernels already updated the stored tile
    dest = task.out_tile
    # Any out-of-place commit displaces the stored tile; factors the pool
    # still owns there must go back to the free lists (a TRSM overwriting
    # a GEMM-recompressed tile would otherwise leak them — the chaos
    # suite's pool audit checks exactly this).  Factors the new tile still
    # references stay live: trsm_lr only solves V and reuses the U array.
    old = matrix.tile(*dest)
    if out is not old and isinstance(old, LowRankTile):
        kept = (
            {id(out.u), id(out.v)} if isinstance(out, LowRankTile) else set()
        )
        for arr in (old.u, old.v):
            if id(arr) in kept:
                continue
            with stats_lock:
                owned = pooled.pop(id(arr), None) is not None
            if owned:
                report.pool.release(arr)
    if kind is TaskKind.GEMM and recomp is not None:
        bm, bn = out.shape
        # Transient stacked factors existed during recompression.
        report.tracker.transient((bm + bn) * recomp.rank_before)
        if use_pool:
            # Re-associate the fresh exact-size factors with the pool —
            # Section VII-B's two-stage designation.
            if isinstance(out, LowRankTile) and out.rank > 0:
                out = LowRankTile(
                    report.pool.take(out.u), report.pool.take(out.v)
                )
                with stats_lock:
                    pooled[id(out.u)] = out.u
                    pooled[id(out.v)] = out.v
        with stats_lock:
            if recomp.grew:
                report.rank_growth_events += 1
            report.max_rank_seen = max(report.max_rank_seen, recomp.rank_after)
    matrix.set_tile(*dest, out)
    if kind is TaskKind.GEMM:
        report.tracker.allocate_tile(dest, out)


def _canonical_tid(task) -> tuple:
    """The tile-level id a task of this kind/indices should carry."""
    if task.kind is TaskKind.POTRF:
        return (TaskKind.POTRF, task.out_tile[0])
    if task.kind is TaskKind.TRSM:
        return (TaskKind.TRSM, *task.out_tile)
    if task.kind is TaskKind.SYRK:
        return (TaskKind.SYRK, task.out_tile[0], task.panel)
    return (TaskKind.GEMM, *task.out_tile, task.panel)
