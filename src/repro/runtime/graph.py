"""Parameterized task-graph builder for the BAND-DENSE-TLR Cholesky.

Builds the full dependency DAG (the unfolding of the PTG) for a given tile
count ``NT``, band width, and per-tile rank information.  The same graph
feeds the real executor (numerics) and the discrete-event simulator
(timing), which is the property the validation strategy relies on.

Dependency structure of the right-looking tile Cholesky::

    POTRF(k)   <- SYRK(k, k-1)                       [tile (k,k), LOCAL chain]
    TRSM(m,k)  <- POTRF(k)                           [tile (k,k), broadcast]
               <- GEMM(m,k,k-1)                      [tile (m,k), LOCAL chain]
    SYRK(n,k)  <- TRSM(n,k)                          [tile (n,k), p2p]
               <- SYRK(n,k-1)                        [tile (n,n), LOCAL chain]
    GEMM(m,n,k)<- TRSM(m,k)                          [tile (m,k), row bcast]
               <- TRSM(n,k)                          [tile (n,k), col bcast]
               <- GEMM(m,n,k-1)                      [tile (m,n), LOCAL chain]

Kernel classes and Table-I costs are derived from the band predicate and
the supplied rank function exactly as in :mod:`repro.linalg.flops`.

Optionally, region-(1) (all-dense band) tasks are *expanded* into their
nested recursive sub-graphs (Section VII-D): each expanded task becomes
``fork -> sub-tasks -> join`` with zero-cost fork/join bookkeeping nodes,
so external edges stay at the tile level while the simulator sees the
extra concurrency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..linalg.flops import (
    KernelClass,
    flops_gemm_dense,
    flops_gemm_dense_lrd,
    flops_gemm_dense_lrlr,
    flops_gemm_lr_dense_general,
    flops_gemm_lr_general,
    flops_potrf_dense,
    flops_syrk_dense,
    flops_syrk_lr,
    flops_trsm_dense,
    flops_trsm_lr,
)
from ..linalg.recursive import recursive_task_costs
from ..utils.exceptions import ConfigurationError, SchedulingError
from ..utils.validation import check_positive_int
from .task import Edge, Task, TaskId, TaskKind, task_sort_key

__all__ = ["TaskGraph", "build_cholesky_graph", "classify_gemm", "RankFn"]

#: Rank accessor: ``rank_fn(i, j) -> int`` for an off-band tile ``(i, j)``.
RankFn = Callable[[int, int], int]


@dataclass
class TaskGraph:
    """An unfolded task DAG with dataflow edges.

    Attributes
    ----------
    ntiles:
        Tile count per dimension.
    band_size:
        Dense band width used to classify kernels.
    tile_size:
        Nominal tile dimension ``b`` used for costs and message sizes.
    tasks:
        ``task id -> Task``.
    succs:
        ``task id -> outgoing edges`` (mirror of every task's ``deps``).
    """

    ntiles: int
    band_size: int
    tile_size: int
    tasks: dict[TaskId, Task] = field(default_factory=dict)
    succs: dict[TaskId, list[Edge]] = field(default_factory=dict)

    def add_task(self, task: Task) -> None:
        """Insert a task and index its dependency edges."""
        if task.tid in self.tasks:
            raise SchedulingError(f"duplicate task {task.tid}")
        self.tasks[task.tid] = task
        self.succs.setdefault(task.tid, [])
        for e in task.deps:
            if e.dst != task.tid:
                raise SchedulingError(f"edge {e} does not target task {task.tid}")
            self.succs.setdefault(e.src, []).append(e)

    @property
    def n_tasks(self) -> int:
        return len(self.tasks)

    def total_flops(self) -> float:
        """Sum of modelled flops over all tasks."""
        return sum(t.flops for t in self.tasks.values())

    def topological_order(self) -> list[TaskId]:
        """Kahn topological order; raises on cycles.

        Ties are broken by the scheduling priority so the order doubles as
        a sensible serial execution order.
        """
        import heapq

        indeg = {tid: len(t.deps) for tid, t in self.tasks.items()}
        heap = [
            (task_sort_key(self.tasks[tid]), tid)
            for tid, d in indeg.items()
            if d == 0
        ]
        heapq.heapify(heap)
        order: list[TaskId] = []
        while heap:
            _, tid = heapq.heappop(heap)
            order.append(tid)
            for e in self.succs.get(tid, []):
                indeg[e.dst] -= 1
                if indeg[e.dst] == 0:
                    heapq.heappush(heap, (task_sort_key(self.tasks[e.dst]), e.dst))
        if len(order) != len(self.tasks):
            raise SchedulingError(
                f"task graph has a cycle: ordered {len(order)} of {len(self.tasks)}"
            )
        return order

    def validate(self) -> None:
        """Structural sanity: every edge endpoint exists, graph acyclic."""
        for tid, t in self.tasks.items():
            for e in t.deps:
                if e.src not in self.tasks:
                    raise SchedulingError(f"task {tid} depends on unknown {e.src}")
        self.topological_order()

    def critical_path_flops(self) -> float:
        """Longest path weight (in flops) through the DAG.

        A machine-independent lower-bound proxy for the makespan; the
        recursive-kernel expansion exists precisely to shrink this.
        """
        order = self.topological_order()
        dist = {tid: 0.0 for tid in order}
        best = 0.0
        for tid in order:
            here = dist[tid] + self.tasks[tid].flops
            best = max(best, here)
            for e in self.succs.get(tid, []):
                if here > dist[e.dst]:
                    dist[e.dst] = here
        return best


def classify_gemm(
    m: int, n: int, k: int, band_size: int
) -> KernelClass:
    """Kernel class of GEMM(m, n, k) under band width ``band_size``.

    Uses the index identities ``n - k <= m - k`` (so *A dense ⇒ B dense*)
    and ``m - k >= m - n`` (so *C low-rank ⇒ A low-rank*); see
    :mod:`repro.linalg.flops`.
    """
    if not (m > n > k >= 0):
        raise ConfigurationError(f"GEMM indices must satisfy m > n > k, got {m},{n},{k}")
    c_dense = (m - n) < band_size
    a_dense = (m - k) < band_size
    b_dense = (n - k) < band_size
    if c_dense:
        if a_dense:  # implies b_dense
            return KernelClass.GEMM_DENSE
        return KernelClass.GEMM_DENSE_LRD if b_dense else KernelClass.GEMM_DENSE_LRLR
    # C low-rank implies A low-rank
    return KernelClass.GEMM_LR_DENSE if b_dense else KernelClass.GEMM_LR


def _tile_elements(i: int, j: int, b: int, band_size: int, rank_fn: RankFn) -> int:
    """Message size (elements) of tile ``(i, j)`` under the band layout."""
    if (i - j) < band_size:
        return b * b
    return 2 * b * rank_fn(i, j)


def build_cholesky_graph(
    ntiles: int,
    band_size: int,
    tile_size: int,
    rank_fn: RankFn,
    *,
    recursive_split: int | None = None,
    recursive_kernels: frozenset[KernelClass] | set[KernelClass] | None = None,
) -> TaskGraph:
    """Unfold the BAND-DENSE-TLR Cholesky PTG into a concrete DAG.

    Parameters
    ----------
    ntiles:
        Number of tile rows/columns ``NT``.
    band_size:
        Dense band width (1 = pure TLR / HiCMA-Prev layout; >= NT = dense).
    tile_size:
        Nominal ``b`` for costs and message sizes.
    rank_fn:
        Rank of off-band tile ``(i, j)`` (used for costs/messages; the
        builder never inspects tile data).
    recursive_split:
        When given (>= 2), region-(1) tasks are expanded into their nested
        sub-graphs with this split factor (Section VII-D).
    recursive_kernels:
        Which region-(1) kernel classes to expand; defaults to all four.
        PaRSEC-HiCMA-Prev recursed only POTRF ("nested computing"), so the
        Table II comparison passes ``{KernelClass.POTRF_DENSE}`` for the
        baseline and the full set for PaRSEC-HiCMA-New.

    Returns
    -------
    TaskGraph
    """
    nt = check_positive_int("ntiles", ntiles)
    band_size = check_positive_int("band_size", band_size)
    b = check_positive_int("tile_size", tile_size)
    if recursive_split is not None and recursive_split < 2:
        raise ConfigurationError("recursive_split must be >= 2 when given")

    g = TaskGraph(ntiles=nt, band_size=band_size, tile_size=b)

    def elements(i: int, j: int) -> int:
        return _tile_elements(i, j, b, band_size, rank_fn)

    for k in range(nt):
        # ---- POTRF(k) -------------------------------------------------
        tid = (TaskKind.POTRF, k)
        deps = []
        if k > 0:
            deps.append(Edge((TaskKind.SYRK, k, k - 1), tid, (k, k), b * b))
        g.add_task(
            Task(
                tid=tid,
                kind=TaskKind.POTRF,
                kernel=KernelClass.POTRF_DENSE,
                flops=flops_potrf_dense(b),
                out_tile=(k, k),
                deps=deps,
                panel=k,
            )
        )

        for m in range(k + 1, nt):
            # ---- TRSM(m, k) -------------------------------------------
            tid = (TaskKind.TRSM, m, k)
            on_band = (m - k) < band_size
            kernel = KernelClass.TRSM_DENSE if on_band else KernelClass.TRSM_LR
            r_trsm = 0 if on_band else rank_fn(m, k)
            fl = flops_trsm_dense(b) if on_band else flops_trsm_lr(b, r_trsm)
            deps = [Edge((TaskKind.POTRF, k), tid, (k, k), b * b)]
            if k > 0:
                deps.append(
                    Edge((TaskKind.GEMM, m, k, k - 1), tid, (m, k), elements(m, k))
                )
            g.add_task(
                Task(
                    tid=tid,
                    kind=TaskKind.TRSM,
                    kernel=kernel,
                    flops=fl,
                    out_tile=(m, k),
                    deps=deps,
                    panel=k,
                    rank_hint=r_trsm,
                )
            )

        for n in range(k + 1, nt):
            # ---- SYRK(n, k) -------------------------------------------
            tid = (TaskKind.SYRK, n, k)
            a_on_band = (n - k) < band_size
            kernel = KernelClass.SYRK_DENSE if a_on_band else KernelClass.SYRK_LR
            r_syrk = 0 if a_on_band else rank_fn(n, k)
            fl = flops_syrk_dense(b) if a_on_band else flops_syrk_lr(b, r_syrk)
            deps = [Edge((TaskKind.TRSM, n, k), tid, (n, k), elements(n, k))]
            if k > 0:
                deps.append(Edge((TaskKind.SYRK, n, k - 1), tid, (n, n), b * b))
            g.add_task(
                Task(
                    tid=tid,
                    kind=TaskKind.SYRK,
                    kernel=kernel,
                    flops=fl,
                    out_tile=(n, n),
                    deps=deps,
                    panel=k,
                    rank_hint=r_syrk,
                )
            )

            for m in range(n + 1, nt):
                # ---- GEMM(m, n, k) ------------------------------------
                tid = (TaskKind.GEMM, m, n, k)
                kernel = classify_gemm(m, n, k, band_size)
                ra = rank_fn(m, k) if (m - k) >= band_size else 0
                rb = rank_fn(n, k) if (n - k) >= band_size else 0
                rc = rank_fn(m, n) if (m - n) >= band_size else 0
                if kernel is KernelClass.GEMM_DENSE:
                    fl = flops_gemm_dense(b)
                elif kernel is KernelClass.GEMM_DENSE_LRD:
                    fl = flops_gemm_dense_lrd(b, ra)
                elif kernel is KernelClass.GEMM_DENSE_LRLR:
                    fl = flops_gemm_dense_lrlr(b, ra, rb)
                elif kernel is KernelClass.GEMM_LR_DENSE:
                    fl = flops_gemm_lr_dense_general(b, rc, max(ra, 1))
                else:
                    fl = flops_gemm_lr_general(b, rc, max(ra, 1), max(rb, 1))
                deps = [
                    Edge((TaskKind.TRSM, m, k), tid, (m, k), elements(m, k)),
                    Edge((TaskKind.TRSM, n, k), tid, (n, k), elements(n, k)),
                ]
                if k > 0:
                    deps.append(
                        Edge((TaskKind.GEMM, m, n, k - 1), tid, (m, n), elements(m, n))
                    )
                g.add_task(
                    Task(
                        tid=tid,
                        kind=TaskKind.GEMM,
                        kernel=kernel,
                        flops=fl,
                        out_tile=(m, n),
                        deps=deps,
                        panel=k,
                        rank_hint=max(ra, rb, rc),
                    )
                )

    if recursive_split is not None:
        g = expand_recursive(g, recursive_split, kernels=recursive_kernels)
    return g


def expand_recursive(
    g: TaskGraph,
    split: int,
    *,
    kernels: frozenset[KernelClass] | set[KernelClass] | None = None,
) -> TaskGraph:
    """Expand region-(1) tasks into nested sub-graphs (fork/join framed).

    Every dense-band task becomes::

        external deps -> FORK -> sub-tasks (recursive graph) -> JOIN -> succs

    Fork/join are zero-flop bookkeeping nodes placed on the same tile so
    the simulator's owner-computes placement keeps the whole nest local —
    PaRSEC's nested tasks likewise never migrate.

    ``kernels`` restricts expansion to a subset of the region-(1) classes
    (default: all four).
    """
    check_positive_int("split", split)
    if kernels is None:
        kernels = {k for k in KernelClass if k.is_band_kernel}
    out = TaskGraph(
        ntiles=g.ntiles, band_size=g.band_size, tile_size=g.tile_size
    )
    # Tasks that expand keep their tid for the JOIN node so external
    # edges (which reference the original tid) stay valid.
    for tid in g.topological_order():
        t = g.tasks[tid]
        if not (t.kernel.is_band_kernel and t.kernel in kernels):
            out.add_task(
                Task(
                    tid=t.tid,
                    kind=t.kind,
                    kernel=t.kernel,
                    flops=t.flops,
                    out_tile=t.out_tile,
                    deps=list(t.deps),
                    panel=t.panel,
                    rank_hint=t.rank_hint,
                )
            )
            continue

        costs = recursive_task_costs(t.kernel, g.tile_size, split)
        fork_id = t.tid + ("fork",)
        out.add_task(
            Task(
                tid=fork_id,
                kind=t.kind,
                kernel=t.kernel,
                flops=0.0,
                out_tile=t.out_tile,
                deps=[Edge(e.src, fork_id, e.tile, e.elements) for e in t.deps],
                panel=t.panel,
            )
        )
        sub_ids = [t.tid + ("sub", idx) for idx in range(len(costs))]
        dependents: set[int] = set()
        for idx, c in enumerate(costs):
            deps = [Edge(sub_ids[d], sub_ids[idx], t.out_tile, 0) for d in c.deps]
            if not c.deps:
                deps.append(Edge(fork_id, sub_ids[idx], t.out_tile, 0))
            dependents.update(c.deps)
            out.add_task(
                Task(
                    tid=sub_ids[idx],
                    kind=t.kind,
                    kernel=c.kind,
                    flops=c.flops,
                    out_tile=t.out_tile,
                    deps=deps,
                    panel=t.panel,
                )
            )
        exits = [sub_ids[i] for i in range(len(costs)) if i not in dependents]
        out.add_task(
            Task(
                tid=t.tid,  # JOIN inherits the original id
                kind=t.kind,
                kernel=t.kernel,
                flops=0.0,
                out_tile=t.out_tile,
                deps=[Edge(x, t.tid, t.out_tile, 0) for x in exits],
                panel=t.panel,
            )
        )
    return out
