"""Dataflow classification and graph export (Section VII-A, Fig. 3c).

The paper classifies Cholesky dataflow into LOCAL edges (within a
process: SYRK→SYRK, SYRK→POTRF, GEMM→GEMM, GEMM→TRSM chains) and REMOTE
edges that post communications (POTRF→TRSM broadcast, TRSM→GEMM row and
column broadcasts, TRSM→SYRK point-to-point).  :func:`classify_dataflow`
computes that breakdown for any graph/distribution pair; the chain edges
come out LOCAL *by construction* of the owner-computes placement — a
property tested rather than assumed.

:func:`to_dot` exports a graph to Graphviz DOT for visual inspection of
small instances.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from ..distribution.distributions import Distribution
from ..utils.validation import check_positive_int
from .graph import TaskGraph
from .task import TaskKind

__all__ = ["DataflowBreakdown", "classify_dataflow", "to_dot"]


@dataclass
class DataflowBreakdown:
    """Edge counts and bytes by (src kind, dst kind, locality).

    Attributes
    ----------
    edges:
        ``(src_kind, dst_kind, "local"|"remote") -> count``.
    bytes_remote:
        ``(src_kind, dst_kind) -> payload bytes`` over remote edges.
    """

    edges: dict[tuple[TaskKind, TaskKind, str], int] = field(default_factory=dict)
    bytes_remote: dict[tuple[TaskKind, TaskKind], int] = field(default_factory=dict)

    def count(self, src: TaskKind, dst: TaskKind, locality: str) -> int:
        return self.edges.get((src, dst, locality), 0)

    @property
    def local_total(self) -> int:
        return sum(v for (s, d, loc), v in self.edges.items() if loc == "local")

    @property
    def remote_total(self) -> int:
        return sum(v for (s, d, loc), v in self.edges.items() if loc == "remote")


def classify_dataflow(graph: TaskGraph, dist: Distribution) -> DataflowBreakdown:
    """LOCAL/REMOTE breakdown of every dataflow edge under ``dist``."""
    out = DataflowBreakdown()
    for tid, task in graph.tasks.items():
        p_dst = dist.owner(*task.out_tile)
        for e in task.deps:
            src = graph.tasks[e.src]
            p_src = dist.owner(*src.out_tile)
            loc = "local" if p_src == p_dst else "remote"
            key = (src.kind, task.kind, loc)
            out.edges[key] = out.edges.get(key, 0) + 1
            if loc == "remote":
                bkey = (src.kind, task.kind)
                out.bytes_remote[bkey] = (
                    out.bytes_remote.get(bkey, 0) + e.elements * 8
                )
    return out


def to_dot(
    graph: TaskGraph,
    path: str | Path | None = None,
    *,
    max_tasks: int = 400,
) -> str:
    """Render the task graph as Graphviz DOT (small graphs only).

    Nodes are coloured by task kind; edges carry their payload size.
    Returns the DOT source; writes it to ``path`` when given.
    """
    check_positive_int("max_tasks", max_tasks)
    if graph.n_tasks > max_tasks:
        raise ValueError(
            f"graph has {graph.n_tasks} tasks; raise max_tasks to render "
            "anyway (large graphs are unreadable)"
        )
    colors = {
        TaskKind.POTRF: "indianred",
        TaskKind.TRSM: "steelblue",
        TaskKind.SYRK: "darkseagreen",
        TaskKind.GEMM: "lightgoldenrod",
    }

    def name(tid) -> str:
        return "_".join(str(x).replace("TaskKind.", "") for x in tid)

    lines = ["digraph cholesky {", "  rankdir=TB;", "  node [style=filled];"]
    for tid, t in graph.tasks.items():
        lines.append(
            f'  "{name(tid)}" [fillcolor={colors.get(t.kind, "white")}];'
        )
    for tid, t in graph.tasks.items():
        for e in t.deps:
            label = f' [label="{e.elements}"]' if e.elements else ""
            lines.append(f'  "{name(e.src)}" -> "{name(tid)}"{label};')
    lines.append("}")
    dot = "\n".join(lines)
    if path is not None:
        Path(path).write_text(dot)
    return dot
