"""A flat thread pool for embarrassingly-parallel tile work.

The Cholesky executor (:mod:`repro.runtime.parallel`) needs a
dependency-driven pool; matrix *assembly* does not — every tile is
generated and compressed independently.  :func:`parallel_map` covers that
case with the same hand-rolled thread style as the PR-1 executor: worker
threads pull item indices from a shared cursor, results land in item
order, and the first worker exception is re-raised in the caller.

NumPy/SciPy release the GIL inside BLAS/LAPACK, so tile generation and
SVD/rsvd compression genuinely overlap across threads.  Determinism is
the caller's job: work submitted here must not depend on execution order
(the matrix builders achieve this with per-tile seeds).
"""

from __future__ import annotations

import threading
from collections.abc import Callable, Sequence

__all__ = ["parallel_map"]


def parallel_map(
    fn: Callable,
    items: Sequence,
    n_workers: int | None = None,
):
    """Apply ``fn`` to every item on ``n_workers`` threads, keeping order.

    ``n_workers`` of ``None``, 0 or 1 runs serially in the calling thread
    (no pool overhead, identical results).  If any call raises, the first
    exception (in item order) propagates and remaining items may be
    skipped.
    """
    items = list(items)
    if n_workers is None or n_workers <= 1 or len(items) <= 1:
        return [fn(item) for item in items]

    n_workers = min(n_workers, len(items))
    results = [None] * len(items)
    errors: list[tuple[int, BaseException]] = []
    cursor = [0]
    lock = threading.Lock()

    def worker() -> None:
        while True:
            with lock:
                if errors or cursor[0] >= len(items):
                    return
                idx = cursor[0]
                cursor[0] += 1
            try:
                results[idx] = fn(items[idx])
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                with lock:
                    errors.append((idx, exc))
                return

    threads = [threading.Thread(target=worker) for _ in range(n_workers)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    if errors:
        raise min(errors)[1]
    return results
