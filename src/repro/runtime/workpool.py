"""A flat thread pool for embarrassingly-parallel tile work.

The Cholesky executor (:mod:`repro.runtime.parallel`) needs a
dependency-driven pool; matrix *assembly* does not — every tile is
generated and compressed independently.  :func:`parallel_map` covers that
case with the same hand-rolled thread style as the PR-1 executor: worker
threads pull item indices from a shared cursor, results land in item
order, and the first worker exception is re-raised in the caller.

NumPy/SciPy release the GIL inside BLAS/LAPACK, so tile generation and
SVD/rsvd compression genuinely overlap across threads.  Determinism is
the caller's job: work submitted here must not depend on execution order
(the matrix builders achieve this with per-tile seeds).
"""

from __future__ import annotations

import threading
from collections.abc import Callable, Sequence

from .. import obs
from ..utils.exceptions import TransientFaultError

__all__ = ["parallel_map"]


def parallel_map(
    fn: Callable,
    items: Sequence,
    n_workers: int | None = None,
    *,
    label: str | None = None,
    category: str = "workpool",
    retries: int = 0,
):
    """Apply ``fn`` to every item on ``n_workers`` threads, keeping order.

    ``n_workers`` of ``None``, 0 or 1 runs serially in the calling thread
    (no pool overhead, identical results).  If any call raises, the first
    exception (in item order) propagates and remaining items may be
    skipped.

    With ``label`` and an active :mod:`repro.obs` observation, every item
    is recorded as one span named ``label`` under ``category`` (carrying
    the item index), and the pool's width and item count land in the
    metrics registry — the workpool's occupancy surface.

    ``retries`` re-runs an item that raised
    :class:`~repro.utils.exceptions.TransientFaultError` up to that many
    extra times (the flat-pool counterpart of the graph executors'
    recovery engine); other exceptions propagate immediately.
    """
    items = list(items)
    if label is not None and obs.enabled():
        obs.counter_add("workpool_items", len(items), label=label)
        inner = fn

        def call(idx: int, item):
            with obs.span(label, category, index=idx):
                return inner(item)

    else:

        def call(idx: int, item):
            return fn(item)

    if retries:
        attempt_once = call

        def call(idx: int, item):
            for attempt in range(retries + 1):
                try:
                    return attempt_once(idx, item)
                except TransientFaultError:
                    if attempt == retries:
                        raise
                    obs.counter_add("task_retried", kind="workpool")

    if n_workers is None or n_workers <= 1 or len(items) <= 1:
        return [call(idx, item) for idx, item in enumerate(items)]

    n_workers = min(n_workers, len(items))
    if label is not None:
        obs.gauge_set("workpool_workers", n_workers, label=label)
    results = [None] * len(items)
    errors: list[tuple[int, BaseException]] = []
    cursor = [0]
    lock = threading.Lock()

    def worker() -> None:
        while True:
            with lock:
                if errors or cursor[0] >= len(items):
                    return
                idx = cursor[0]
                cursor[0] += 1
            try:
                results[idx] = call(idx, items[idx])
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                with lock:
                    errors.append((idx, exc))
                return

    threads = [threading.Thread(target=worker) for _ in range(n_workers)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    if errors:
        raise min(errors)[1]
    return results
