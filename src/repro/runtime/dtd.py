"""Dynamic Task Discovery (DTD) — PaRSEC's second DSL, reimplemented.

Section III-C: PaRSEC offers two ways to describe a DAG — the
Parameterized Task Graph (PTG, used by the paper and by
:mod:`repro.runtime.graph`) and *Dynamic Task Discovery*, where the user
inserts tasks sequentially and the runtime infers dependencies from each
task's declared data accesses (read / write / read-write on tiles).

:class:`TaskInserter` reproduces DTD's discovery semantics:

* a READ of a tile depends on the tile's last WRITER;
* a WRITE/RW of a tile depends on the tile's last writer *and* on every
  reader since (write-after-read), then becomes the new writer.

The result is a plain :class:`~repro.runtime.graph.TaskGraph`, so DTD
programs run on the same executor and simulator as PTG ones.  For the
Cholesky algorithm the two frontends must unfold the *same* dependency
structure — property-tested in ``tests/test_dtd.py`` — which mirrors how
PaRSEC applications can switch DSLs without changing semantics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from ..linalg.flops import KernelClass
from ..utils.exceptions import SchedulingError
from .graph import RankFn, TaskGraph
from .task import Edge, Task, TaskId, TaskKind

__all__ = ["Access", "TaskInserter", "dtd_cholesky_graph"]


class Access(Enum):
    """Data-access mode of one task argument (PaRSEC's IN/OUT/INOUT)."""

    READ = "read"
    WRITE = "write"
    RW = "rw"


@dataclass
class _TileState:
    """Discovery bookkeeping for one tile."""

    last_writer: TaskId | None = None
    readers_since_write: list[TaskId] = field(default_factory=list)


class TaskInserter:
    """Sequential task insertion with automatic dependency discovery.

    Parameters
    ----------
    ntiles, band_size, tile_size:
        Graph geometry (forwarded to the produced :class:`TaskGraph`).
    elements_fn:
        Message size (in elements) of a tile, used to annotate dataflow
        edges; defaults to dense ``b²`` for every tile.
    """

    def __init__(
        self,
        ntiles: int,
        band_size: int,
        tile_size: int,
        elements_fn=None,
    ) -> None:
        self.graph = TaskGraph(
            ntiles=ntiles, band_size=band_size, tile_size=tile_size
        )
        self._state: dict[tuple[int, int], _TileState] = {}
        self._elements = elements_fn or (lambda i, j: tile_size * tile_size)
        self._sealed = False

    def _tile_state(self, tile: tuple[int, int]) -> _TileState:
        return self._state.setdefault(tile, _TileState())

    def insert(
        self,
        tid: TaskId,
        kind: TaskKind,
        kernel: KernelClass,
        flops: float,
        accesses: list[tuple[tuple[int, int], Access]],
        *,
        panel: int = 0,
    ) -> None:
        """Insert one task; dependencies are discovered from ``accesses``.

        ``accesses`` lists ``(tile, mode)`` pairs in argument order.  The
        task's output tile is its first WRITE/RW access (required).
        """
        if self._sealed:
            raise SchedulingError("inserter already sealed")
        deps: dict[TaskId, Edge] = {}
        out_tile: tuple[int, int] | None = None

        for tile, mode in accesses:
            st = self._tile_state(tile)
            if mode in (Access.READ, Access.RW):
                # Read-after-write: the data dependency proper.
                if st.last_writer is not None and st.last_writer != tid:
                    deps.setdefault(
                        st.last_writer,
                        Edge(st.last_writer, tid, tile, self._elements(*tile)),
                    )
            if mode in (Access.WRITE, Access.RW):
                if out_tile is None:
                    out_tile = tile
                # Write-after-write: output dependency on the last writer
                # (pure ordering for a WRITE, already a payload edge for RW).
                if st.last_writer is not None and st.last_writer != tid:
                    deps.setdefault(
                        st.last_writer, Edge(st.last_writer, tid, tile, 0)
                    )
                # Write-after-read: wait for every reader since the last
                # write (pure ordering edges carry no payload).
                for r in st.readers_since_write:
                    if r != tid:
                        deps.setdefault(r, Edge(r, tid, tile, 0))

        if out_tile is None:
            raise SchedulingError(f"task {tid} declares no WRITE access")

        self.graph.add_task(
            Task(
                tid=tid,
                kind=kind,
                kernel=kernel,
                flops=flops,
                out_tile=out_tile,
                deps=list(deps.values()),
                panel=panel,
            )
        )

        # Update discovery state *after* computing dependencies.
        for tile, mode in accesses:
            st = self._tile_state(tile)
            if mode in (Access.WRITE, Access.RW):
                st.last_writer = tid
                st.readers_since_write = []
            elif mode is Access.READ:
                st.readers_since_write.append(tid)

    def seal(self) -> TaskGraph:
        """Finish insertion and return the discovered graph (validated)."""
        self._sealed = True
        self.graph.validate()
        return self.graph


def dtd_cholesky_graph(
    ntiles: int,
    band_size: int,
    tile_size: int,
    rank_fn: RankFn,
) -> TaskGraph:
    """The tile Cholesky written in DTD style: a sequential loop nest
    inserting tasks with data-access annotations only.

    Contrast with :func:`repro.runtime.graph.build_cholesky_graph`, which
    wires every dependency explicitly (PTG style).  Both must produce the
    same dataflow; tests assert graph equivalence.
    """
    from ..linalg.flops import (
        flops_gemm_lr_dense_general,
        flops_gemm_lr_general,
        kernel_flops,
    )
    from .graph import _tile_elements, classify_gemm

    def elements(i: int, j: int) -> int:
        return _tile_elements(i, j, tile_size, band_size, rank_fn)

    ins = TaskInserter(ntiles, band_size, tile_size, elements_fn=elements)
    b = tile_size

    def rank_of(i: int, j: int) -> int:
        return rank_fn(i, j) if (i - j) >= band_size else 0

    for k in range(ntiles):
        ins.insert(
            (TaskKind.POTRF, k),
            TaskKind.POTRF,
            KernelClass.POTRF_DENSE,
            kernel_flops(KernelClass.POTRF_DENSE, b),
            [((k, k), Access.RW)],
            panel=k,
        )
        for m in range(k + 1, ntiles):
            on_band = (m - k) < band_size
            kc = KernelClass.TRSM_DENSE if on_band else KernelClass.TRSM_LR
            ins.insert(
                (TaskKind.TRSM, m, k),
                TaskKind.TRSM,
                kc,
                kernel_flops(kc, b, rank_of(m, k)),
                [((k, k), Access.READ), ((m, k), Access.RW)],
                panel=k,
            )
        for n in range(k + 1, ntiles):
            a_band = (n - k) < band_size
            kc = KernelClass.SYRK_DENSE if a_band else KernelClass.SYRK_LR
            ins.insert(
                (TaskKind.SYRK, n, k),
                TaskKind.SYRK,
                kc,
                kernel_flops(kc, b, rank_of(n, k)),
                [((n, k), Access.READ), ((n, n), Access.RW)],
                panel=k,
            )
            for m in range(n + 1, ntiles):
                kc = classify_gemm(m, n, k, band_size)
                ra, rb, rc = rank_of(m, k), rank_of(n, k), rank_of(m, n)
                if kc is KernelClass.GEMM_DENSE:
                    fl = kernel_flops(kc, b)
                elif kc is KernelClass.GEMM_DENSE_LRD:
                    fl = kernel_flops(kc, b, ra)
                elif kc is KernelClass.GEMM_DENSE_LRLR:
                    fl = kernel_flops(kc, b, ra, rb)
                elif kc is KernelClass.GEMM_LR_DENSE:
                    fl = flops_gemm_lr_dense_general(b, rc, max(ra, 1))
                else:
                    fl = flops_gemm_lr_general(b, rc, max(ra, 1), max(rb, 1))
                ins.insert(
                    (TaskKind.GEMM, m, n, k),
                    TaskKind.GEMM,
                    kc,
                    fl,
                    [
                        ((m, k), Access.READ),
                        ((n, k), Access.READ),
                        ((m, n), Access.RW),
                    ],
                    panel=k,
                )
    return ins.seal()
