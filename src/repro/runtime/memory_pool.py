"""Reusable dynamic memory pool (Section VII-B).

PaRSEC lets user code allocate exactly the memory a task's output needs
from a reusable pool and re-associate it with the runtime — the feature
behind the paper's 44x footprint reduction and its ability to reallocate a
tile between the two stages of a low-rank GEMM when recompression grows
the rank.

:class:`MemoryPool` reproduces those semantics for NumPy buffers: requests
are served from per-size free lists when possible (a *reuse*) and from the
allocator otherwise (a *miss*); releases return buffers to the free lists.
The pool tracks outstanding and peak bytes so executors can report memory
behaviour faithfully.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import prod as _prod

import numpy as np

from ..utils.exceptions import MemoryPoolError

__all__ = ["MemoryPool", "PoolStats"]


@dataclass
class PoolStats:
    """Counters of pool activity."""

    allocations: int = 0
    reuses: int = 0
    releases: int = 0
    outstanding_bytes: int = 0
    peak_bytes: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.allocations + self.reuses
        return self.reuses / total if total else 0.0


class MemoryPool:
    """A size-classed reusable buffer pool for float64/float32 arrays.

    Buffers are keyed by their flat element count and dtype, and reshaped
    on reuse — a ``(b, k)`` factor released by one tile can serve another
    tile's ``(k, b)`` workspace of the same dtype.  Double releases are
    detected and rejected.
    """

    def __init__(self) -> None:
        self._free: dict[tuple[int, str], list[np.ndarray]] = {}
        self._live: set[int] = set()
        self.stats = PoolStats()

    def allocate(self, shape: tuple[int, ...], dtype=np.float64) -> np.ndarray:
        """A buffer of ``shape``/``dtype``, reused when a match exists.

        Reused buffers are *not* zeroed (matching real pool semantics);
        callers must fully overwrite them.
        """
        dtype = np.dtype(dtype)
        nelem = _prod(shape)
        bucket = self._free.get((nelem, dtype.char))
        stats = self.stats
        if bucket:
            buf = bucket.pop().reshape(shape)
            stats.reuses += 1
        else:
            buf = np.empty(shape, dtype=dtype)
            stats.allocations += 1
        self._live.add(id(buf))
        outstanding = stats.outstanding_bytes = stats.outstanding_bytes + buf.nbytes
        if outstanding > stats.peak_bytes:
            stats.peak_bytes = outstanding
        return buf

    def release(self, buf: np.ndarray) -> None:
        """Return a buffer to the pool for reuse."""
        if id(buf) not in self._live:
            raise MemoryPoolError(
                "releasing a buffer the pool does not own (double free?)"
            )
        self._live.discard(id(buf))
        self.stats.releases += 1
        self.stats.outstanding_bytes -= buf.nbytes
        flat = buf.reshape(-1)
        self._free.setdefault((flat.size, flat.dtype.char), []).append(flat)

    def take(self, array: np.ndarray) -> np.ndarray:
        """Adopt an externally created array into the pool's accounting.

        Used when a kernel produced new factors (e.g. recompression output)
        that should live in pool-managed memory from now on: the data is
        copied into a pool buffer, mirroring PaRSEC's re-association of
        freshly sized memory with the runtime.
        """
        buf = self.allocate(array.shape, dtype=array.dtype)
        buf[...] = array
        return buf

    @property
    def free_bytes(self) -> int:
        """Bytes currently parked in the free lists."""
        return sum(
            np.dtype(char).itemsize * n * len(bufs)
            for (n, char), bufs in self._free.items()
        )

    @property
    def live_count(self) -> int:
        """Number of buffers currently checked out of the pool.

        The chaos-stress audit asserts this equals the number of factor
        arrays the factorized matrix still references — anything higher
        is a leak (a failed task attempt that kept its buffers).
        """
        return len(self._live)

    def owns(self, buf: np.ndarray) -> bool:
        """True when ``buf`` is currently checked out of this pool."""
        return id(buf) in self._live
