"""Machine and kernel-rate models for the distributed-memory simulator.

The paper's testbed (Shaheen II, a Cray XC40: 6,174 nodes, 2x16-core Intel
Haswell @ 2.3 GHz, 128 GB/node, Aries interconnect) is unavailable, so the
simulator runs the *same task DAG* against a parametric machine model.
Defaults are calibrated to the paper's own measurements:

* Section VIII-F reports 14.32 Tflop/s Linpack on 16 nodes, i.e. ≈ 28
  Gflop/s sustained per core — our ``dense_gflops`` default;
* Fig. 2(a) shows TLR GEMM reaching ≈ 1/3 of dense GEMM throughput at
  medium ranks and tapering at both rank extremes (memory-bound at small
  k, recompression-dominated at large k) — the shape of
  :meth:`KernelRateModel.efficiency`;
* Cray Aries gives ≈ 8 GB/s injection bandwidth and ≈ 1.5 µs latency.

Absolute seconds from the simulator are *not* expected to match the paper;
the relative shapes (speedups, crossovers, scaling) are.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..linalg.flops import KernelClass
from ..utils.exceptions import ConfigurationError
from ..utils.validation import check_in, check_positive_float, check_positive_int

__all__ = ["KernelRateModel", "MachineSpec", "SHAHEEN_II_LIKE"]


@dataclass(frozen=True)
class KernelRateModel:
    """Per-core sustained throughput per kernel class.

    Attributes
    ----------
    dense_gflops:
        Sustained double-precision rate of large dense Level-3 BLAS.
    potrf_fraction:
        POTRF efficiency relative to GEMM (LAPACK factorizations run a
        little below GEMM peak).
    lr_peak_fraction:
        Peak TLR-GEMM efficiency relative to dense GEMM (Fig. 2a: ~1/3).
    ramp_rank:
        Rank scale of the memory-bound ramp-up at small ``k``.
    decay_rank_fraction:
        Rank (as a fraction of the tile size) where recompression costs
        start to dominate and throughput decays.
    decay_power:
        Sharpness of the high-rank decay.
    mixed_fraction:
        Efficiency of the mixed dense-output kernels ((2)/(3)-GEMM,
        (3)-SYRK, (4)-TRSM) relative to dense GEMM — tall-skinny GEMMs run
        below square-GEMM peak.
    """

    dense_gflops: float = 28.0
    potrf_fraction: float = 0.75
    lr_peak_fraction: float = 0.34
    ramp_rank: int = 24
    decay_rank_fraction: float = 0.40
    decay_power: float = 3.0
    mixed_fraction: float = 0.55

    def __post_init__(self) -> None:
        check_positive_float("dense_gflops", self.dense_gflops)
        check_positive_float("lr_peak_fraction", self.lr_peak_fraction)
        check_positive_int("ramp_rank", self.ramp_rank)

    def efficiency(self, kernel: KernelClass, b: int, k: int) -> float:
        """Throughput of ``kernel`` relative to ``dense_gflops``.

        For the low-rank-output GEMMs the curve is
        ``lr_peak * k/(k + ramp) / (1 + (k / (decay_frac * b))**power)`` —
        rising from the memory-bound regime, peaking mid-rank, decaying
        once recompression dominates, the empirical shape of Fig. 2(a).
        """
        if kernel is KernelClass.POTRF_DENSE:
            return self.potrf_fraction
        if kernel in (
            KernelClass.TRSM_DENSE,
            KernelClass.SYRK_DENSE,
            KernelClass.GEMM_DENSE,
        ):
            return 1.0
        if kernel in (
            KernelClass.TRSM_LR,
            KernelClass.SYRK_LR,
            KernelClass.GEMM_DENSE_LRD,
            KernelClass.GEMM_DENSE_LRLR,
        ):
            return self.mixed_fraction
        # Low-rank-output GEMMs: (5)-GEMM and (6)-GEMM.
        k = max(k, 1)
        ramp = k / (k + self.ramp_rank)
        decay = 1.0 / (1.0 + (k / (self.decay_rank_fraction * b)) ** self.decay_power)
        return self.lr_peak_fraction * ramp * decay

    def seconds(self, kernel: KernelClass, flops: float, b: int, k: int) -> float:
        """Wall-clock seconds for ``flops`` of ``kernel`` on one core."""
        if flops <= 0.0:
            return 0.0
        rate = self.dense_gflops * 1e9 * self.efficiency(kernel, b, k)
        return flops / rate


@dataclass(frozen=True)
class MachineSpec:
    """A distributed-memory machine for the simulator.

    Attributes
    ----------
    nodes:
        Number of processes (the paper runs one process per node).
    cores_per_node:
        Worker cores per process (Shaheen II nodes have 32; one core is
        typically reserved for the runtime's communication thread).
    rates:
        Kernel throughput model.
    latency_s:
        Network point-to-point latency.
    bandwidth_Bps:
        Per-NIC injection bandwidth (bytes/second).
    broadcast:
        ``"tree"`` — logarithmic collective propagation (PaRSEC's PTG
        collectives); ``"flat"`` — the sender serializes one message per
        destination (the StarPU-style baseline of Section III-C).
    memory_per_node_GB:
        Capacity used for feasibility checks (128 GB on Shaheen II).
    gpus_per_node:
        Accelerators per process for the Section IX future-work study
        ("accelerate the tasks on the critical path using GPU hardware
        accelerators"): dense region-(1) kernels may run on a GPU at
        ``gpu_dense_gflops``; low-rank kernels stay on CPU cores.
    gpu_dense_gflops:
        Sustained dense double-precision rate per GPU (V100-class DGEMM
        by default).
    """

    nodes: int = 16
    cores_per_node: int = 31
    rates: KernelRateModel = field(default_factory=KernelRateModel)
    latency_s: float = 1.5e-6
    bandwidth_Bps: float = 8.0e9
    broadcast: str = "tree"
    memory_per_node_GB: float = 128.0
    gpus_per_node: int = 0
    gpu_dense_gflops: float = 1300.0

    def __post_init__(self) -> None:
        check_positive_int("nodes", self.nodes)
        check_positive_int("cores_per_node", self.cores_per_node)
        if self.gpus_per_node < 0:
            raise ConfigurationError("gpus_per_node must be >= 0")
        check_positive_float("gpu_dense_gflops", self.gpu_dense_gflops)
        check_positive_float("latency_s", self.latency_s)
        check_positive_float("bandwidth_Bps", self.bandwidth_Bps)
        check_in("broadcast", self.broadcast, ("tree", "flat"))

    @property
    def total_cores(self) -> int:
        return self.nodes * self.cores_per_node

    def with_nodes(self, nodes: int) -> "MachineSpec":
        """Same machine with a different node count (scaling sweeps)."""
        return MachineSpec(
            nodes=nodes,
            cores_per_node=self.cores_per_node,
            rates=self.rates,
            latency_s=self.latency_s,
            bandwidth_Bps=self.bandwidth_Bps,
            broadcast=self.broadcast,
            memory_per_node_GB=self.memory_per_node_GB,
            gpus_per_node=self.gpus_per_node,
            gpu_dense_gflops=self.gpu_dense_gflops,
        )

    def transfer_seconds(self, nbytes: int) -> float:
        """Point-to-point message time: latency + size/bandwidth."""
        if nbytes < 0:
            raise ConfigurationError("message size must be >= 0")
        return self.latency_s + nbytes / self.bandwidth_Bps


#: The paper's testbed, parametrically.
SHAHEEN_II_LIKE = MachineSpec()
