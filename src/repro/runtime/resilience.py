"""Recovery policies and checkpoint/restart for the task executors.

PaRSEC keeps multi-hour factorizations alive through transient kernel
failures, memory pressure, stragglers, and numerical breakdowns; our
executors previously turned any of those into an immediate
``RuntimeSystemError`` abort.  This module adds the production half of
the resilience story (the adversary half — deterministic fault injection
— lives in :mod:`repro.testing.faults`):

* :class:`RecoveryPolicy` / :class:`RecoveryManager` — per-task retry
  with capped exponential backoff, NaN/inf post-condition validation,
  ``NotPositiveDefiniteError`` recovery via escalating diagonal shifts,
  a dense-tile fallback when a recompression cannot certify (the
  H2OPUS-TLR exact-SVD fallback, taken one step further), and a
  cooperative watchdog that requeues stalled tasks;
* :class:`CheckpointConfig` / :class:`Checkpointer` — periodic
  serialization of the completed-tile frontier of a
  :class:`~repro.matrix.BandTLRMatrix` through :mod:`repro.matrix.io`,
  so a factorization killed mid-run resumes from the last consistent
  state and produces the *same* factor as an uninterrupted run.

Rollback correctness: every Cholesky task writes exactly one tile
(``task.out_tile``).  The manager snapshots that tile before the first
attempt and restores it before every re-attempt, so a retried kernel
sees pristine inputs; all other tiles a task reads were finalized by
dependency predecessors and are never touched.  Kernels are
deterministic functions of their inputs (recompression is QR-QR-SVD,
rank-deterministic), hence a recovered run is bitwise identical to a
fault-free run.

Every recovery event flows through :mod:`repro.obs` (``fault_injected``,
``task_retried``, ``task_recovered``, ``npd_shift_applied``,
``densify_fallback``, ``watchdog_requeued``, ``checkpoint_written``)
and is mirrored in the executor report's :class:`ResilienceReport`.
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from .. import obs
from ..linalg.tiles import DenseTile, LowRankTile
from ..matrix.tlr_matrix import BandTLRMatrix
from ..utils.exceptions import (
    CheckpointError,
    CompressionError,
    CorruptedOutputError,
    NotPositiveDefiniteError,
    TaskAbortedError,
    TransientFaultError,
)
from .task import Task, TaskId, TaskKind

__all__ = [
    "RecoveryPolicy",
    "ResilienceReport",
    "RecoveryManager",
    "CheckpointConfig",
    "Checkpointer",
    "build_manager",
    "as_checkpointer",
    "tid_to_str",
    "str_to_tid",
]


# ----------------------------------------------------------------------
# Recovery policy engine
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RecoveryPolicy:
    """Knobs of the per-task recovery engine.

    Attributes
    ----------
    max_retries:
        Re-dispatch budget per task for *transient* failures (injected
        faults, pool exhaustion, stalls, corrupted outputs).  Exhausting
        it raises :class:`~repro.utils.exceptions.TaskAbortedError`.
    backoff_s / backoff_cap_s:
        Capped exponential backoff between re-attempts:
        ``min(cap, backoff_s * 2**(attempt-1))``.  Deterministic (no
        jitter) so chaos runs stay reproducible.
    validate_outputs:
        Check every task's output tile for NaN/inf after the kernel; a
        violation rolls the tile back and retries (PaRSEC's equivalent
        is user-registered completion callbacks).
    recover_npd / diagonal_shift / max_shifts:
        On ``NotPositiveDefiniteError``, restore the diagonal tile and
        add ``diagonal_shift * mean(|diag|) * 10**(shift-1)`` to its
        diagonal, escalating up to ``max_shifts`` times — the standard
        remedy when accumulated truncation error destroys positive
        definiteness at loose ε.
    densify_fallback:
        On ``CompressionError`` (a recompression that cannot certify its
        accuracy envelope), densify the destination tile and re-run the
        update through the dense GEMM path — exact, no recompression.
    watchdog_timeout_s:
        When set, a monitor thread requeues tasks that run longer than
        this.  Cooperative: the cancellation event interrupts injected
        stalls (and any kernel that polls it); a thread stuck inside
        BLAS cannot be preempted.
    """

    max_retries: int = 3
    backoff_s: float = 0.005
    backoff_cap_s: float = 0.25
    validate_outputs: bool = True
    recover_npd: bool = True
    diagonal_shift: float = 1e-8
    max_shifts: int = 3
    densify_fallback: bool = True
    watchdog_timeout_s: float | None = None


@dataclass
class ResilienceReport:
    """What the recovery engine did during one execution.

    All counters also flow through :mod:`repro.obs` when an observation
    is active; this report is the always-available summary.
    """

    retries: int = 0
    recoveries: int = 0
    npd_shifts: int = 0
    densify_fallbacks: int = 0
    watchdog_requeues: int = 0
    checkpoints_written: int = 0
    tasks_resumed: int = 0

    @property
    def total_events(self) -> int:
        return (self.retries + self.npd_shifts + self.densify_fallbacks
                + self.watchdog_requeues)


def _validate_finite(tile, tid: TaskId) -> None:
    """NaN/inf post-condition on a task's output tile."""
    if isinstance(tile, LowRankTile):
        ok = bool(np.isfinite(tile.u).all()) and bool(np.isfinite(tile.v).all())
    else:
        ok = bool(np.isfinite(tile.data).all())
    if not ok:
        raise CorruptedOutputError(
            f"task {tid} produced non-finite output", tid
        )


class RecoveryManager:
    """Runs task bodies under the recovery policy; shared by executors.

    One manager serves one execution (serial or parallel); all methods
    are thread-safe.  ``run`` wraps a single task attempt loop around a
    ``compute`` closure that performs the kernel *without committing*
    side effects beyond the destination tile — pool re-association and
    tracker accounting happen in the executor only after ``run`` returns
    successfully, so failed attempts never leak pool buffers.
    """

    def __init__(self, policy: RecoveryPolicy | None = None, injector=None):
        self.policy = policy or RecoveryPolicy()
        self.injector = injector
        self.report = ResilienceReport()
        #: Optional callback invoked with a tile the manager permanently
        #: displaces (densify fallback); the executor releases any pool
        #: buffers the displaced tile owned.
        self.discard = None
        self._lock = threading.Lock()
        self._watch: dict[int, list] = {}  # token -> [deadline, event, tid]
        self._watch_lock = threading.Lock()
        self._monitor: threading.Thread | None = None
        self._stop = threading.Event()
        self._token = 0

    # -- watchdog --------------------------------------------------------
    def _ensure_monitor(self) -> None:
        if self._monitor is not None or self.policy.watchdog_timeout_s is None:
            return
        self._monitor = threading.Thread(
            target=self._monitor_loop, name="repro-watchdog", daemon=True
        )
        self._monitor.start()

    def _monitor_loop(self) -> None:
        poll = min(0.02, self.policy.watchdog_timeout_s / 4)
        while not self._stop.wait(poll):
            now = time.monotonic()
            with self._watch_lock:
                expired = [
                    rec for rec in self._watch.values()
                    if now >= rec[0] and not rec[1].is_set()
                ]
                for rec in expired:
                    rec[1].set()
            for rec in expired:
                with self._lock:
                    self.report.watchdog_requeues += 1
                obs.counter_add("watchdog_requeued")
                obs.event("watchdog_requeue", "resilience",
                          task=tid_to_str(rec[2]))

    @contextmanager
    def _window(self, tid: TaskId):
        """Register one task attempt with the watchdog."""
        timeout = self.policy.watchdog_timeout_s
        if timeout is None:
            yield None
            return
        self._ensure_monitor()
        event = threading.Event()
        with self._watch_lock:
            self._token += 1
            token = self._token
            self._watch[token] = [time.monotonic() + timeout, event, tid]
        try:
            yield event
        finally:
            with self._watch_lock:
                self._watch.pop(token, None)

    def close(self) -> None:
        """Stop the watchdog monitor (idempotent)."""
        self._stop.set()
        if self._monitor is not None:
            self._monitor.join(timeout=1.0)
            self._monitor = None

    # -- rollback --------------------------------------------------------
    def _rollback(self, matrix: BandTLRMatrix, dest, snapshot) -> None:
        """Restore the destination tile to ``snapshot``.

        Restores *in place* when the stored tile's type and shape match,
        so arrays owned by the :class:`~repro.runtime.memory_pool
        .MemoryPool` keep their identity across retries (no phantom
        leaks in the pool accounting).  Falls back to replacing the tile
        object — after handing the displaced one to :attr:`discard` —
        when the representation changed (densify fallback).
        """
        current = matrix.tile(*dest)
        if isinstance(current, DenseTile) and isinstance(snapshot, DenseTile):
            np.copyto(current.data, snapshot.data)
            return
        if (
            isinstance(current, LowRankTile)
            and isinstance(snapshot, LowRankTile)
            and current.u.shape == snapshot.u.shape
            and current.v.shape == snapshot.v.shape
        ):
            np.copyto(current.u, snapshot.u)
            np.copyto(current.v, snapshot.v)
            return
        if self.discard is not None:
            self.discard(current)
        matrix.set_tile(*dest, snapshot.copy())

    # -- the attempt loop -------------------------------------------------
    def run(self, task: Task, matrix: BandTLRMatrix, compute):
        """Execute one task under the recovery policy.

        ``compute()`` runs the kernel and returns ``(out, recomp)`` where
        ``out`` is the produced tile for TRSM/GEMM (``None`` for the
        in-place POTRF/SYRK, whose output is the stored destination).
        """
        policy = self.policy
        tid = task.tid
        dest = task.out_tile
        kind = task.kind.name
        # Clean pre-attempt state of the only tile this task writes.
        snapshot = matrix.tile(*dest).copy()
        retries = 0
        shifts = 0
        densified = False
        while True:
            try:
                with self._window(tid) as cancel:
                    if self.injector is not None:
                        self.injector.pre_dispatch(tid, retries, cancel)
                    out, recomp = compute()
                    produced = out if out is not None else matrix.tile(*dest)
                    if self.injector is not None:
                        self.injector.corrupt_output(tid, retries, produced)
                    if policy.validate_outputs:
                        _validate_finite(produced, tid)
            except TransientFaultError as exc:
                retries += 1
                if retries > policy.max_retries:
                    raise TaskAbortedError(
                        f"task {tid} failed after {policy.max_retries} "
                        f"retries: {exc}"
                    ) from exc
                with self._lock:
                    self.report.retries += 1
                obs.counter_add("task_retried", kind=kind)
                self._rollback(matrix, dest, snapshot)
                delay = min(
                    policy.backoff_cap_s,
                    policy.backoff_s * 2 ** (retries - 1),
                ) if policy.backoff_s > 0 else 0.0
                if delay:
                    time.sleep(delay)
            except NotPositiveDefiniteError:
                shifts += 1
                if not policy.recover_npd or shifts > policy.max_shifts:
                    raise
                with self._lock:
                    self.report.npd_shifts += 1
                obs.counter_add("npd_shift_applied")
                shifted = snapshot.copy()
                diag = np.diag(shifted.data)
                scale = float(np.mean(np.abs(diag))) or 1.0
                shift = policy.diagonal_shift * 10 ** (shifts - 1) * scale
                shifted.data[np.diag_indices_from(shifted.data)] += shift
                snapshot = shifted  # later retries keep the shift
                self._rollback(matrix, dest, snapshot)
            except CompressionError:
                if not policy.densify_fallback or densified:
                    raise
                densified = True
                with self._lock:
                    self.report.densify_fallbacks += 1
                obs.counter_add("densify_fallback")
                snapshot = DenseTile(snapshot.to_dense().copy())
                self._rollback(matrix, dest, snapshot)
            else:
                if retries or shifts or densified:
                    with self._lock:
                        self.report.recoveries += 1
                    obs.counter_add("task_recovered", kind=kind)
                return out, recomp


def build_manager(faults, recovery) -> RecoveryManager | None:
    """A :class:`RecoveryManager` for the given executor kwargs.

    ``faults`` may be ``None``, a spec string (parsed with seed 0), a
    :class:`~repro.testing.faults.FaultPlan`, or a ready injector
    (anything with ``pre_dispatch``/``corrupt_output``).  ``recovery``
    may be ``None`` (default policy) or a :class:`RecoveryPolicy`.
    Returns ``None`` when neither is given — the executors then skip
    snapshotting entirely (the historical zero-overhead path).
    """
    if faults is None and recovery is None:
        return None
    injector = None
    if faults is not None:
        # Lazy import: repro.runtime must stay importable without the
        # chaos-testing package.
        from ..testing.faults import FaultPlan

        if isinstance(faults, str):
            faults = FaultPlan.parse(faults)
        injector = faults.injector() if isinstance(faults, FaultPlan) else faults
    return RecoveryManager(recovery, injector)


# ----------------------------------------------------------------------
# Checkpoint / restart
# ----------------------------------------------------------------------
_MANIFEST_VERSION = 1


def tid_to_str(tid: TaskId) -> str:
    """Serialize a task id: ``(TaskKind.GEMM, 3, 2, 1) -> "GEMM:3:2:1"``."""
    return ":".join([tid[0].name, *(str(x) for x in tid[1:])])


#: Index arity of each task class: POTRF(k), TRSM(m,k), SYRK(n,k), GEMM(m,n,k).
_TID_ARITY = {
    TaskKind.POTRF: 1,
    TaskKind.TRSM: 2,
    TaskKind.SYRK: 2,
    TaskKind.GEMM: 3,
}


def str_to_tid(s: str) -> TaskId:
    """Inverse of :func:`tid_to_str`."""
    parts = s.split(":")
    try:
        kind = TaskKind[parts[0]]
        tid = (kind, *(int(x) for x in parts[1:]))
    except (KeyError, ValueError) as exc:
        raise CheckpointError(f"malformed task id {s!r} in manifest") from exc
    if len(tid) - 1 != _TID_ARITY[kind]:
        raise CheckpointError(f"malformed task id {s!r} in manifest")
    return tid


@dataclass(frozen=True)
class CheckpointConfig:
    """Where and how often to checkpoint.

    Attributes
    ----------
    directory:
        Checkpoint directory (created on first write).
    every:
        Write after this many newly *completed panels* — a panel is done
        when its POTRF, TRSMs, SYRKs and GEMMs have all executed, which
        is the factorization's natural consistency frontier.
    keep:
        Retain this many most-recent checkpoints; older ones are pruned.
    """

    directory: str | Path
    every: int = 1
    keep: int = 2


@dataclass
class CheckpointState:
    """A restored checkpoint: the matrix frontier + completed task set."""

    matrix: BandTLRMatrix
    completed: set[TaskId]
    panels_done: int
    seq: int


class Checkpointer:
    """Atomic writer/reader of factorization checkpoints.

    A checkpoint is a pair of files in the configured directory::

        ckpt-<seq>.npz    the full tile state (matrix/io archive)
        ckpt-<seq>.json   manifest: geometry signature + completed tasks

    The manifest is written *after* the matrix archive and is the commit
    point — a crash mid-write leaves at most a dangling ``.npz`` that
    :meth:`load_latest` ignores.  Both files are written to a temporary
    name and atomically renamed.
    """

    def __init__(self, config: CheckpointConfig):
        if config.every < 1:
            raise CheckpointError("CheckpointConfig.every must be >= 1")
        self.config = config
        self.directory = Path(config.directory)
        self._seq = 0
        self._lock = threading.Lock()

    # -- writing ---------------------------------------------------------
    def save(
        self,
        matrix: BandTLRMatrix,
        completed: set[TaskId],
        panels_done: int,
    ) -> Path:
        """Write one checkpoint; returns the manifest path."""
        from ..matrix.io import save_matrix

        with self._lock:
            self._seq += 1
            seq = self._seq
        self.directory.mkdir(parents=True, exist_ok=True)
        npz_tmp = self.directory / f"ckpt-{seq}.tmp.npz"
        npz_final = self.directory / f"ckpt-{seq}.npz"
        save_matrix(matrix, npz_tmp)
        os.replace(npz_tmp, npz_final)
        manifest = {
            "version": _MANIFEST_VERSION,
            "seq": seq,
            "matrix_file": npz_final.name,
            "n": matrix.n,
            "tile_size": matrix.desc.tile_size,
            "band_size": matrix.band_size,
            "ntiles": matrix.ntiles,
            "panels_done": panels_done,
            "completed": sorted(tid_to_str(t) for t in completed),
        }
        json_tmp = self.directory / f"ckpt-{seq}.tmp.json"
        json_final = self.directory / f"ckpt-{seq}.json"
        json_tmp.write_text(json.dumps(manifest))
        os.replace(json_tmp, json_final)
        self._prune(seq)
        obs.counter_add("checkpoint_written")
        obs.event("checkpoint", "resilience", seq=seq,
                  completed=len(completed))
        return json_final

    def _prune(self, newest_seq: int) -> None:
        keep = max(1, self.config.keep)
        for manifest in self.directory.glob("ckpt-*.json"):
            try:
                seq = int(manifest.stem.split("-")[1])
            except (IndexError, ValueError):
                continue
            if seq <= newest_seq - keep:
                manifest.unlink(missing_ok=True)
                (self.directory / f"ckpt-{seq}.npz").unlink(missing_ok=True)

    # -- reading ---------------------------------------------------------
    def load_latest(self) -> CheckpointState | None:
        """The most recent complete checkpoint, or ``None``."""
        from ..matrix.io import load_matrix

        if not self.directory.is_dir():
            return None
        best: tuple[int, Path] | None = None
        for manifest in self.directory.glob("ckpt-*.json"):
            try:
                seq = int(manifest.stem.split("-")[1])
            except (IndexError, ValueError):
                continue
            if best is None or seq > best[0]:
                best = (seq, manifest)
        if best is None:
            return None
        seq, manifest_path = best
        meta = json.loads(manifest_path.read_text())
        if meta.get("version") != _MANIFEST_VERSION:
            raise CheckpointError(
                f"unsupported checkpoint manifest version "
                f"{meta.get('version')!r} in {manifest_path}"
            )
        npz = self.directory / meta["matrix_file"]
        if not npz.exists():
            raise CheckpointError(f"checkpoint matrix archive missing: {npz}")
        matrix = load_matrix(npz)
        completed = {str_to_tid(s) for s in meta["completed"]}
        with self._lock:
            self._seq = max(self._seq, seq)
        return CheckpointState(
            matrix=matrix,
            completed=completed,
            panels_done=int(meta.get("panels_done", 0)),
            seq=seq,
        )

    def validate_against(self, graph, matrix: BandTLRMatrix,
                         state: CheckpointState) -> None:
        """Refuse to restore a checkpoint into the wrong problem."""
        ck = state.matrix
        if (ck.n, ck.desc.tile_size, ck.band_size) != (
            matrix.n, matrix.desc.tile_size, matrix.band_size
        ):
            raise CheckpointError(
                f"checkpoint geometry (n={ck.n}, b={ck.desc.tile_size}, "
                f"band={ck.band_size}) does not match the matrix "
                f"(n={matrix.n}, b={matrix.desc.tile_size}, "
                f"band={matrix.band_size})"
            )
        unknown = [t for t in state.completed if t not in graph.tasks]
        if unknown:
            raise CheckpointError(
                f"checkpoint lists {len(unknown)} tasks not in the graph "
                f"(e.g. {tid_to_str(unknown[0])}) — wrong problem?"
            )


def as_checkpointer(checkpoint) -> Checkpointer | None:
    """Coerce an executor's ``checkpoint`` kwarg.

    Accepts ``None``, a directory path (string or ``Path``), a
    :class:`CheckpointConfig`, or a ready :class:`Checkpointer`.
    """
    if checkpoint is None:
        return None
    if isinstance(checkpoint, Checkpointer):
        return checkpoint
    if isinstance(checkpoint, CheckpointConfig):
        return Checkpointer(checkpoint)
    return Checkpointer(CheckpointConfig(directory=checkpoint))
