"""The task runtime (PaRSEC substitute): graphs, executor, simulator."""

from .calibration import (
    MeasuredRates,
    calibrate_machine,
    measure_dense_gflops,
    measure_lr_efficiency,
    rates_from_run,
    rates_from_runs,
)
from .dataflow import DataflowBreakdown, classify_dataflow, to_dot
from .distributed import (
    DistributedExecutionReport,
    binomial_children,
    execute_graph_distributed,
    placement_of,
)
from .dtd import Access, TaskInserter, dtd_cholesky_graph
from .executor import ExecutionReport, execute_graph
from .graph import TaskGraph, build_cholesky_graph, classify_gemm
from .jdf import CHOLESKY_JDF, cholesky_graph_from_jdf, compile_jdf, parse_jdf
from .machine import SHAHEEN_II_LIKE, KernelRateModel, MachineSpec
from .memory_pool import MemoryPool, PoolStats
from .parallel import (
    ParallelExecutionReport,
    ThreadSafeFlopCounter,
    ThreadSafeMemoryPool,
    ThreadSafeMemoryTracker,
    execute_graph_parallel,
)
from .protocol import (
    EXECUTOR_NAMES,
    Executor,
    ExecutorRun,
    ProcessExecutor,
    SequentialExecutor,
    SimExecutor,
    ThreadExecutor,
    get_executor,
)
from .resilience import (
    CheckpointConfig,
    Checkpointer,
    RecoveryManager,
    RecoveryPolicy,
    ResilienceReport,
)
from .simulator import CommStats, SimResult, simulate, simulate_schedule
from .solve_graph import SolveKind, build_solve_graph
from .task import Edge, EdgeKind, Task, TaskKind, task_sort_key
from .workpool import parallel_map

__all__ = [
    "Access",
    "DataflowBreakdown",
    "classify_dataflow",
    "to_dot",
    "calibrate_machine",
    "measure_dense_gflops",
    "measure_lr_efficiency",
    "MeasuredRates",
    "rates_from_run",
    "rates_from_runs",
    "DistributedExecutionReport",
    "binomial_children",
    "execute_graph_distributed",
    "placement_of",
    "Executor",
    "ExecutorRun",
    "EXECUTOR_NAMES",
    "SequentialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "SimExecutor",
    "get_executor",
    "TaskInserter",
    "dtd_cholesky_graph",
    "TaskGraph",
    "build_cholesky_graph",
    "CHOLESKY_JDF",
    "compile_jdf",
    "parse_jdf",
    "cholesky_graph_from_jdf",
    "classify_gemm",
    "ExecutionReport",
    "execute_graph",
    "MachineSpec",
    "KernelRateModel",
    "SHAHEEN_II_LIKE",
    "MemoryPool",
    "PoolStats",
    "ParallelExecutionReport",
    "ThreadSafeFlopCounter",
    "ThreadSafeMemoryPool",
    "ThreadSafeMemoryTracker",
    "execute_graph_parallel",
    "CheckpointConfig",
    "Checkpointer",
    "RecoveryManager",
    "RecoveryPolicy",
    "ResilienceReport",
    "CommStats",
    "SimResult",
    "simulate",
    "simulate_schedule",
    "SolveKind",
    "build_solve_graph",
    "Task",
    "TaskKind",
    "Edge",
    "EdgeKind",
    "task_sort_key",
    "parallel_map",
]
