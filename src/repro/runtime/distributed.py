"""Multi-process distributed executor: real numerics on SPMD ranks.

The thread executor (:mod:`repro.runtime.parallel`) shares one address
space; the simulator (:mod:`repro.runtime.simulator`) only *predicts*
what a distributed run would do.  This module closes the loop: it runs
the same :class:`~repro.runtime.graph.TaskGraph` on ``N`` OS processes,
places tiles with a real :class:`~repro.distribution.Distribution`
(the paper's hybrid band/off-band layout by default), classifies every
dataflow edge LOCAL vs REMOTE exactly like
:func:`repro.runtime.dataflow.classify_dataflow`, and moves remote tiles
over explicit send/recv channels with binomial broadcast trees for the
panel factors (POTRF and TRSM outputs) — the Section VII-A communication
pattern, executed instead of simulated.

Execution model (owner computes, SPMD):

* every rank walks the *same* deterministic topological order and
  executes only the tasks whose output tile it owns;
* a task's input tiles are LOCAL (produced by an earlier task on the
  same rank — the PTG chain edges) or REMOTE, in which case the rank
  blocks on its inbox until the tile arrives;
* a rank that commits a task whose output has remote consumers sends
  the tile once per consumer rank, routed down a binomial tree whose
  interior nodes are consumer ranks (each forwards to its subtree).

Correctness rests on a property of the Cholesky PTG under
owner-computes placement: every remote edge originates from a POTRF or
TRSM task, and those outputs are the *final* writes to their tile
coordinates.  Remote tiles are therefore immutable snapshots — each
consumer rank receives exactly one version per coordinate, reads it
read-only, and never owns a write to it.  Combined with the total
ordering of writes per tile (the LOCAL chains) and deterministic
kernels, the factor is bitwise identical to the sequential and thread
executors for any rank count.

Resilience carries over wholesale: each rank runs its tasks under its
own :class:`~repro.runtime.resilience.RecoveryManager` (fault draws
depend only on (seed, task, attempt), so chaos runs stay deterministic
across rank counts); checkpoints are coordinated by the controller,
which merges per-rank frontier shards into standard
:class:`~repro.runtime.resilience.Checkpointer` archives that the other
executors can resume, and vice versa.  If a rank process dies mid-run,
the controller relaunches the run from the latest checkpoint (or from
scratch — its own tile state is untouched until the final gather) and
counts a recovery.

The report quacks like a :class:`~repro.runtime.parallel
.ParallelExecutionReport` (``makespan``/``busy``/``trace``/
``occupancy``), so gantt, occupancy summaries and Chrome-trace export
consume distributed runs unchanged, and adds the realized communication
volume: :class:`~repro.runtime.simulator.CommStats` under the
simulator's counting conventions (directly comparable with
``simulate().comm``) plus a realized
:class:`~repro.runtime.dataflow.DataflowBreakdown` that must equal
``classify_dataflow(graph, dist)`` on a fresh run — a tested
reconciliation, not an assumption.
"""

from __future__ import annotations

import queue as _queue
import threading
import time
import traceback
from dataclasses import dataclass, field

import numpy as np

from .. import obs
from ..distribution.distributions import BandDistribution, Distribution
from ..distribution.process_grid import ProcessGrid
from ..linalg.compression import TruncationRule
from ..linalg.flops import FlopCounter
from ..linalg.tiles import LowRankTile
from ..matrix.memory import MemoryTracker
from ..matrix.tlr_matrix import BandTLRMatrix
from ..utils.exceptions import ConfigurationError, RuntimeSystemError
from ..utils.validation import check_positive_int
from .dataflow import DataflowBreakdown
from .executor import ExecutionReport, _canonical_tid, _commit_task, _compute_task
from .graph import TaskGraph
from .memory_pool import MemoryPool
from .resilience import ResilienceReport, as_checkpointer, build_manager
from .simulator import CommStats
from .task import TaskId, task_name

__all__ = [
    "DistributedExecutionReport",
    "binomial_children",
    "execute_graph_distributed",
    "placement_of",
]


def binomial_children(dests: list[int]) -> list[tuple[int, list[int]]]:
    """Split broadcast destinations into binomial ``(child, subtree)`` pairs.

    The sender transmits once per returned pair; each child forwards to
    its subtree recursively, so an ``n``-destination broadcast costs the
    root ``O(log n)`` sends and completes in ``O(log n)`` hops — the
    binomial trees PaRSEC uses for panel broadcasts.
    """
    out: list[tuple[int, list[int]]] = []
    rest = list(dests)
    while rest:
        mid = (len(rest) + 1) // 2
        out.append((rest[0], rest[1:mid]))
        rest = rest[mid:]
    return out


def placement_of(graph: TaskGraph, dist: Distribution) -> dict[TaskId, int]:
    """Owner-computes task placement: task -> rank owning its output tile."""
    return {tid: dist.owner(*t.out_tile) for tid, t in graph.tasks.items()}


def _tile_nbytes(tile) -> int:
    """Actual factor bytes a tile occupies on the wire."""
    if isinstance(tile, LowRankTile):
        return tile.u.nbytes + tile.v.nbytes
    return tile.data.nbytes


def _remote_dest_ranks(graph, placement, tid, completed) -> list[int]:
    """Ranks owning a not-yet-completed remote consumer of ``tid``."""
    me = placement[tid]
    dests = {
        placement[e.dst]
        for e in graph.succs.get(tid, [])
        if placement[e.dst] != me and e.dst not in completed
    }
    return sorted(dests)


class _RankStore:
    """A rank's private tile store, quacking like the matrix for kernels.

    Holds the tiles this rank owns plus read-only snapshots received
    from peers.  Missing tiles are a protocol error, not a KeyError.
    """

    def __init__(self, tiles: dict[tuple[int, int], object]):
        self.tiles = tiles

    def tile(self, i: int, j: int):
        try:
            return self.tiles[(i, j)]
        except KeyError:
            raise RuntimeSystemError(
                f"tile ({i}, {j}) is neither owned by nor received on "
                "this rank — placement/dataflow mismatch"
            ) from None

    def set_tile(self, i: int, j: int, tile) -> None:
        self.tiles[(i, j)] = tile


@dataclass
class _RankConfig:
    """Everything one rank needs; must stay picklable for spawn starts."""

    rank: int
    n_ranks: int
    graph: TaskGraph
    dist: Distribution
    tiles: dict[tuple[int, int], object]
    rule: TruncationRule
    backend_name: str
    use_pool: bool
    completed: frozenset
    resend: tuple
    faults: object
    recovery: object
    ckpt_every: int | None
    collect_trace: bool
    t0_wall: float
    deadline: float | None
    attempt: int
    chaos_kill: tuple[int, int] | None
    shard_dir: str | None = None


class _Aborted(Exception):
    """Internal: the controller signalled abort; exit quietly."""


def _rank_main(cfg: _RankConfig, inboxes, results, abort) -> None:
    """Top-level worker body (one per rank; process or thread).

    Communicates only through the queue objects it was handed, so the
    same function runs on ``multiprocessing`` queues in real processes
    and on ``queue.Queue`` in the in-process harness the tests use.
    """
    try:
        payload = _rank_body(cfg, inboxes, results, abort)
    except _Aborted:
        return
    except BaseException:
        try:
            results.put(("error", cfg.rank, traceback.format_exc()))
        except Exception:
            pass
        return
    results.put(("done", cfg.rank, payload))
    # Drain until the controller's stop: a peer may still route a
    # (defensive) forward through us even though all our tasks are done.
    _drain_until_stop(cfg, inboxes, abort)


def _drain_until_stop(cfg, inboxes, abort) -> None:
    inbox = inboxes[cfg.rank]
    while True:
        try:
            msg = inbox.get(timeout=0.25)
        except _queue.Empty:
            if abort is not None and abort.is_set():
                return
            continue
        if msg[0] == "stop":
            return
        if msg[0] == "tile":
            _, _src_tid, _ij, tile, subtree = msg
            for child, sub in binomial_children(list(subtree)):
                inboxes[child].put(("tile", _src_tid, _ij, tile, sub))


def _rank_body(cfg: _RankConfig, inboxes, results, abort) -> dict:
    # Defensive under fork starts: the child must not write into the
    # parent's (copied) observation sinks — spans are replayed by the
    # controller from the returned trace instead.
    try:
        obs._active.clear()
    except Exception:
        pass

    from ..linalg.backends import get_backend

    graph, dist, me = cfg.graph, cfg.dist, cfg.rank
    placement = placement_of(graph, dist)
    backend = get_backend(cfg.backend_name)
    store = _RankStore(dict(cfg.tiles))
    inbox = inboxes[me]
    completed = set(cfg.completed)

    report = ExecutionReport()
    pooled: dict[int, object] = {}
    stats_lock = threading.Lock()
    manager = build_manager(cfg.faults, cfg.recovery)
    if manager is not None:

        def _discard(tile) -> None:
            if isinstance(tile, LowRankTile):
                for arr in (tile.u, tile.v):
                    if pooled.pop(id(arr), None) is not None:
                        report.pool.release(arr)

        manager.discard = _discard

    # Communication + dataflow accounting, simulator conventions:
    # logical messages/bytes are counted once per (producer task,
    # consumer rank) at the producer; wire counts follow the actual tree
    # hops with actual factor sizes.
    comm = {
        "local_edges": 0, "remote_edges": 0, "messages": 0,
        "bytes_sent": 0, "broadcasts": 0,
        "wire_messages": 0, "wire_bytes": 0,
    }
    df_edges: dict[tuple, int] = {}
    df_bytes: dict[tuple, int] = {}
    arrived: set[TaskId] = set()
    trace: list[tuple] = []
    busy = 0.0
    # Shard telemetry (only when the controller asked for obs shards):
    # clock_sync holds the NTP-style handshake result; comm events are
    # recorded per wire hop so the merger can draw realized edges.
    sharding = cfg.shard_dir is not None
    clock_sync: dict[str, float] = {}
    comm_sends: list[dict] = []
    comm_recvs: list[dict] = []
    kill_budget = None
    if cfg.chaos_kill is not None and cfg.attempt == 0 and \
            cfg.chaos_kill[0] == me:
        kill_budget = int(cfg.chaos_kill[1])

    def _check_liveness() -> None:
        if abort is not None and abort.is_set():
            raise _Aborted()
        if cfg.deadline is not None and time.time() > cfg.deadline:
            raise RuntimeSystemError(
                f"rank {me} exceeded the {cfg.deadline - cfg.t0_wall:.1f}s "
                "distributed-execution deadline"
            )

    def _pump(block: bool) -> bool:
        """Receive one message; forward tree hops; record arrivals."""
        try:
            msg = inbox.get(timeout=0.2) if block else inbox.get_nowait()
        except _queue.Empty:
            _check_liveness()
            return False
        if msg[0] == "stop":  # only sent after we report done
            return False
        if msg[0] == "sync_reply":
            _, t_echo, t_ctrl = msg
            t_recv = time.time()
            clock_sync["offset_s"] = t_ctrl - (t_echo + t_recv) / 2.0
            clock_sync["rtt_s"] = t_recv - t_echo
            return True
        _, src_tid, ij, tile, subtree = msg
        for child, sub in binomial_children(list(subtree)):
            inboxes[child].put(("tile", src_tid, ij, tile, sub))
            comm["wire_messages"] += 1
            comm["wire_bytes"] += _tile_nbytes(tile)
            if sharding:
                comm_sends.append({
                    "task": task_name(src_tid), "dst": child,
                    "t": time.time() - cfg.t0_wall,
                })
        store.set_tile(*ij, tile)
        arrived.add(src_tid)
        if sharding:
            comm_recvs.append({
                "task": task_name(src_tid),
                "t": time.time() - cfg.t0_wall,
            })
        return True

    def _send_output(tid) -> None:
        dests = _remote_dest_ranks(graph, placement, tid, completed_remote)
        if not dests:
            return
        task = graph.tasks[tid]
        tile = store.tile(*task.out_tile)
        elements = next(
            (e.elements for e in graph.succs.get(tid, [])
             if placement[e.dst] != me),
            0,
        )
        comm["messages"] += len(dests)
        comm["bytes_sent"] += elements * 8 * len(dests)
        if len(dests) > 1:
            comm["broadcasts"] += 1
        for child, sub in binomial_children(dests):
            inboxes[child].put(("tile", tid, task.out_tile, tile, sub))
            comm["wire_messages"] += 1
            comm["wire_bytes"] += _tile_nbytes(tile)
            if sharding:
                comm_sends.append({
                    "task": task_name(tid), "dst": child,
                    "t": time.time() - cfg.t0_wall,
                })

    # Consumers already restored from a checkpoint must not be re-sent
    # to; my own completed set grows during the run but remote-dest
    # pruning only ever consults the restored frontier.
    completed_remote = frozenset(completed)

    # My tasks, my panels, my remote inputs.
    order = graph.topological_order()
    mine = [tid for tid in order if placement[tid] == me]
    panel_remaining: dict[int, int] = {}
    for tid in mine:
        if tid not in completed:
            p = graph.tasks[tid].panel
            panel_remaining[p] = panel_remaining.get(p, 0) + 1

    try:
        if sharding:
            # NTP-style clock handshake: the controller echoes our send
            # timestamp with its own clock reading; the midpoint estimate
            # puts this rank's timeline on the controller clock for the
            # shard merger.  Early tile arrivals are handled by the same
            # _pump the wait loop spins on.
            results.put(("sync", me, time.time()))
            while "offset_s" not in clock_sync:
                _pump(block=True)

        # Resume: re-publish the final tile versions that restored-away
        # consumers on other ranks still need (the checkpoint frontier
        # is a per-rank-consistent cut; remote payloads are final tile
        # versions, so resending from restored state is always valid).
        for tid in cfg.resend:
            _send_output(tid)

        for tid in mine:
            if tid in completed:
                continue
            task = graph.tasks[tid]
            for e in task.deps:
                src_owner = placement[e.src]
                loc = "local" if src_owner == me else "remote"
                key = (graph.tasks[e.src].kind, task.kind, loc)
                df_edges[key] = df_edges.get(key, 0) + 1
                if loc == "local":
                    comm["local_edges"] += 1
                else:
                    comm["remote_edges"] += 1
                    bkey = (graph.tasks[e.src].kind, task.kind)
                    df_bytes[bkey] = df_bytes.get(bkey, 0) + e.elements * 8
                    # Block until the producer's tile lands — whether it
                    # was just executed or resent from a restored
                    # checkpoint frontier on the producer's rank.
                    while e.src not in arrived:
                        _pump(block=True)
            start = time.time() - cfg.t0_wall
            if manager is not None:
                out, recomp = manager.run(
                    task, store,
                    lambda: _compute_task(
                        tid, task, store, cfg.rule, backend, report.counter
                    ),
                )
            else:
                out, recomp = _compute_task(
                    tid, task, store, cfg.rule, backend, report.counter
                )
            _commit_task(
                tid, task, out, recomp, store, report, pooled,
                cfg.use_pool, stats_lock,
            )
            end = time.time() - cfg.t0_wall
            busy += end - start
            trace.append((tid, me, start, end))
            report.tasks_executed += 1
            completed.add(tid)
            if kill_budget is not None:
                kill_budget -= 1
                if kill_budget <= 0:
                    import os as _os

                    _os._exit(17)  # simulated rank crash, no cleanup
            _send_output(tid)
            p = task.panel
            panel_remaining[p] -= 1
            if panel_remaining[p] == 0 and cfg.ckpt_every is not None:
                # Frontier shard: this rank's owned-tile state and
                # completed set are a consistent per-rank prefix the
                # controller merges into a global checkpoint.  The tiles
                # MUST be deep-copied: a multiprocessing queue pickles
                # lazily (in the feeder thread), and the in-place
                # POTRF/SYRK kernels would otherwise mutate tiles after
                # ``put`` but before serialization, desynchronizing the
                # shard's tile state from its completed set.
                owned = {
                    ij: t.copy() for ij, t in store.tiles.items()
                    if dist.owner(*ij) == me
                }
                results.put(("panel", me, p, {
                    "tiles": owned,
                    "completed": list(completed),
                }))
            while _pump(block=False):  # keep forwarding latency low
                pass
    finally:
        if manager is not None:
            manager.close()

    if sharding:
        _write_shard(cfg, graph, trace, clock_sync, comm_sends, comm_recvs,
                     comm, busy)

    resilience = manager.report if manager is not None else None
    return {
        "rank": me,
        "tiles": {
            ij: t for ij, t in store.tiles.items() if dist.owner(*ij) == me
        },
        "counter": report.counter,
        "rank_growth_events": report.rank_growth_events,
        "max_rank_seen": report.max_rank_seen,
        "tasks_executed": report.tasks_executed,
        "busy": busy,
        "trace": trace,
        "comm": comm,
        "df_edges": df_edges,
        "df_bytes": df_bytes,
        "resilience": resilience,
        "pool_stats": report.pool.stats,
    }


def _write_shard(
    cfg, graph, trace, clock_sync, comm_sends, comm_recvs, comm, busy
) -> None:
    """Write this rank's obs shard (``shard-rank<R>.json``).

    Each rank persists its own telemetry — task spans with kernel/flop
    annotations, realized per-hop comm events, the controller-clock
    offset from the startup handshake, and a task-duration sketch — for
    :func:`repro.obs.merge.merge_shards` to align and fuse.
    """
    import json
    from pathlib import Path

    from ..obs.sketch import LogHistogram

    sk = LogHistogram()
    spans = []
    for tid, _r, start, end in trace:
        task = graph.tasks[tid]
        spans.append({
            "name": task_name(tid),
            "kind": task.kind.value,
            "kernel": task.kernel.value,
            "flops": task.flops,
            "start": start,
            "end": end,
        })
        sk.add(end - start)
    doc = {
        "rank": cfg.rank,
        "n_ranks": cfg.n_ranks,
        "clock": clock_sync,
        "spans": spans,
        "comm": {"sends": comm_sends, "recvs": comm_recvs},
        "counters": {
            "tasks_executed": len(spans),
            "busy_s": busy,
            "wire_messages": comm["wire_messages"],
            "wire_bytes": comm["wire_bytes"],
        },
        "sketch": sk.to_dict(),
    }
    outdir = Path(cfg.shard_dir)
    outdir.mkdir(parents=True, exist_ok=True)
    (outdir / f"shard-rank{cfg.rank}.json").write_text(json.dumps(doc))


@dataclass
class DistributedExecutionReport:
    """Artifacts of a multi-process (numerical) graph execution.

    Same accounting surface as
    :class:`~repro.runtime.parallel.ParallelExecutionReport` (one rank
    per lane: ``nodes = n_ranks``, ``cores_per_node = 1``) plus the
    realized communication volume.

    Attributes
    ----------
    comm:
        Realized LOCAL/REMOTE edge counts, logical messages/bytes and
        broadcast count under the simulator's conventions — directly
        comparable with ``simulate(...).comm``.
    dataflow:
        Realized per-(src kind, dst kind, locality) edge breakdown; on a
        fresh (non-resumed) run it equals
        ``classify_dataflow(graph, dist)`` exactly.
    wire_messages / wire_bytes:
        Actual tree-hop message count and payload bytes (measured factor
        sizes, including forwarding hops) — the realized counterpart of
        the modelled ``comm.bytes_sent``.
    placement:
        Task id -> owning rank, as executed.
    rank_restarts:
        Times the controller relaunched the run after losing a rank
        process.
    shard_merge:
        The :class:`repro.obs.merge.MergeReport` from the automatic
        cross-rank trace merge when the run was launched with
        ``shard_dir``; ``None`` otherwise.
    """

    counter: FlopCounter = field(default_factory=FlopCounter)
    tracker: MemoryTracker = field(default_factory=MemoryTracker)
    pool: MemoryPool = field(default_factory=MemoryPool)
    rank_growth_events: int = 0
    max_rank_seen: int = 0
    tasks_executed: int = 0
    tasks_resumed: int = 0
    resilience: ResilienceReport | None = None
    n_ranks: int = 1
    makespan: float = 0.0
    busy: np.ndarray = field(default_factory=lambda: np.zeros(1))
    total_flops: float = 0.0
    trace: list[tuple] | None = None
    comm: CommStats = field(default_factory=CommStats)
    dataflow: DataflowBreakdown = field(default_factory=DataflowBreakdown)
    wire_messages: int = 0
    wire_bytes: int = 0
    placement: dict = field(default_factory=dict)
    rank_restarts: int = 0
    shard_merge: object | None = None

    @property
    def n_workers(self) -> int:
        """Rank count, under the thread-report's attribute name."""
        return self.n_ranks

    @property
    def nodes(self) -> int:
        return self.n_ranks

    @property
    def cores_per_node(self) -> int:
        return 1

    @property
    def occupancy(self) -> np.ndarray:
        """Per-rank busy fraction in [0, 1]."""
        return self.busy / max(self.makespan, 1e-300)

    @property
    def achieved_gflops(self) -> float:
        return self.total_flops / max(self.makespan, 1e-300) / 1e9

    @property
    def speedup_vs_serial(self) -> float:
        return float(self.busy.sum()) / max(self.makespan, 1e-300)


def _leading_panels_done(panel_tasks, union_completed) -> int:
    done = 0
    for p in sorted(panel_tasks):
        if panel_tasks[p] <= union_completed:
            done += 1
        else:
            break
    return done


class _RankDied(Exception):
    def __init__(self, ranks):
        self.ranks = ranks
        super().__init__(f"rank process(es) died: {ranks}")


def execute_graph_distributed(
    graph: TaskGraph,
    matrix: BandTLRMatrix,
    *,
    n_ranks: int | None = None,
    distribution: Distribution | None = None,
    rule: TruncationRule | None = None,
    use_pool: bool = True,
    collect_trace: bool = False,
    backend=None,
    faults=None,
    recovery=None,
    checkpoint=None,
    resume: bool = False,
    timeout_s: float | None = 300.0,
    max_restarts: int = 2,
    shard_dir=None,
    _chaos_kill: tuple[int, int] | None = None,
    _inline: bool = False,
) -> DistributedExecutionReport:
    """Execute a Cholesky task graph on ``n_ranks`` OS processes.

    Parameters mirror :func:`~repro.runtime.parallel
    .execute_graph_parallel` where they overlap; the differences:

    Parameters
    ----------
    n_ranks:
        Rank (process) count; defaults to the distribution's size, or 2.
    distribution:
        Tile-to-rank placement; defaults to the paper's hybrid
        :class:`~repro.distribution.BandDistribution` on the squarest
        process grid.  ``distribution.nprocs`` must equal ``n_ranks``.
    faults / recovery:
        Per-rank retry/rollback engine; ``faults`` must be a spec string
        or :class:`~repro.testing.faults.FaultPlan` (a live injector
        holds unpicklable state).
    checkpoint / resume:
        Standard checkpoint archives, written by the controller from
        per-rank frontier shards; interchangeable with the sequential
        and thread executors' checkpoints.
    timeout_s:
        Wall-clock deadline for the whole execution (``None`` disables);
        a stuck rank fails the run instead of hanging it.
    max_restarts:
        Relaunch budget when a rank process dies mid-run: the run
        restarts from the latest checkpoint when one exists (the
        controller's matrix is untouched until the final gather, so a
        from-scratch restart is equally safe).
    shard_dir:
        Directory for cross-rank obs shards.  When set, each rank
        performs a clock-offset handshake with the controller, records
        realized comm events, and writes ``shard-rank<R>.json`` there;
        after a successful run the controller merges the shards into
        ``trace_merged.json`` (:func:`repro.obs.merge.merge_shards`) and
        attaches the :class:`~repro.obs.merge.MergeReport` as
        ``report.shard_merge``.
    _chaos_kill:
        Test hook ``(rank, after_n_tasks)``: that rank hard-exits after
        committing N tasks on the first attempt — exercises the
        controller's lost-rank recovery path.
    _inline:
        Run ranks on threads with plain queues instead of processes
        (identical code path; used by tests so coverage instruments the
        worker loop, and per-rank tile stores are deep-copied to
        preserve address-space isolation semantics).

    Returns
    -------
    DistributedExecutionReport
    """
    if distribution is None:
        if n_ranks is None:
            n_ranks = 2
        check_positive_int("n_ranks", n_ranks)
        distribution = BandDistribution(
            ProcessGrid.squarest(n_ranks), band_size=graph.band_size
        )
    else:
        if n_ranks is None:
            n_ranks = distribution.nprocs
        elif distribution.nprocs != n_ranks:
            raise ConfigurationError(
                f"distribution targets {distribution.nprocs} ranks but "
                f"n_ranks={n_ranks}"
            )
    if graph.ntiles != matrix.ntiles:
        raise RuntimeSystemError(
            f"graph is for NT={graph.ntiles} but the matrix has NT={matrix.ntiles}"
        )
    if graph.band_size != matrix.band_size:
        raise RuntimeSystemError(
            f"graph band_size={graph.band_size} does not match "
            f"matrix band_size={matrix.band_size}"
        )
    for tid, task in graph.tasks.items():
        if tid != _canonical_tid(task):
            raise RuntimeSystemError(
                "distributed executor received an expanded graph; build "
                "it without recursive_split"
            )
    if faults is not None and not isinstance(faults, str):
        from ..testing.faults import FaultPlan

        if not isinstance(faults, FaultPlan):
            raise ConfigurationError(
                "the distributed executor needs faults as a spec string "
                "or FaultPlan (live injectors cannot cross processes)"
            )
    if _chaos_kill is not None and _inline:
        raise ConfigurationError(
            "_chaos_kill requires real processes (_inline=False)"
        )

    rule = rule or matrix.rule
    from ..linalg.backends import get_backend

    backend_obj = get_backend(backend if backend is not None else matrix.backend)
    if type(get_backend(backend_obj.name)) is not type(backend_obj):
        raise ConfigurationError(
            f"backend {backend_obj!r} is not registry-resolvable by name; "
            "the distributed executor rebuilds backends by name in each rank"
        )

    placement = placement_of(graph, distribution)
    ckptr = as_checkpointer(checkpoint)

    report = DistributedExecutionReport(n_ranks=n_ranks)
    report.tracker.register_matrix(matrix)
    report.total_flops = graph.total_flops()
    report.placement = placement
    rrep = ResilienceReport() if (
        ckptr is not None or faults is not None or recovery is not None
        or _chaos_kill is not None
    ) else None
    report.resilience = rrep

    panel_tasks: dict[int, set] = {}
    for tid, task in graph.tasks.items():
        panel_tasks.setdefault(task.panel, set()).add(tid)

    observing = obs.enabled()
    if observing:
        obs.graph_observed(graph, task_name)

    restarts = 0
    while True:
        completed0: set = set()
        if resume or restarts:
            if ckptr is not None:
                ck = ckptr.load_latest()
                if ck is not None:
                    ckptr.validate_against(graph, matrix, ck)
                    for ij, tile in ck.matrix.tiles.items():
                        matrix.set_tile(*ij, tile)
                    completed0 = set(ck.completed)
        resend: dict[int, list] = {r: [] for r in range(n_ranks)}
        for tid in completed0:
            if _remote_dest_ranks(graph, placement, tid, completed0):
                resend[placement[tid]].append(tid)

        try:
            _run_once(
                graph, matrix, distribution, placement, n_ranks,
                completed0, resend, rule, backend_obj.name, use_pool,
                faults, recovery, ckptr, panel_tasks, rrep, report,
                collect_trace or observing, timeout_s,
                _chaos_kill, restarts, _inline, shard_dir,
            )
        except _RankDied as died:
            restarts += 1
            if restarts > max_restarts:
                raise RuntimeSystemError(
                    f"distributed execution lost rank(s) {died.ranks} and "
                    f"exhausted {max_restarts} restarts"
                ) from died
            if rrep is not None:
                rrep.recoveries += 1
            report.rank_restarts = restarts
            obs.counter_add("rank_restarted")
            continue
        break

    report.tasks_resumed = len(completed0)
    if rrep is not None:
        rrep.tasks_resumed = max(rrep.tasks_resumed, len(completed0))

    if ckptr is not None and report.tasks_executed:
        ckptr.save(matrix, set(graph.tasks), len(panel_tasks))
        if rrep is not None:
            rrep.checkpoints_written += 1

    if shard_dir is not None:
        # Controller-side auto-merge: align rank clocks and fuse the
        # shards into one Chrome trace.  Callers (and the CI smoke
        # lane) gate on report.shard_merge.conserved.
        from ..obs.merge import merge_shards

        report.shard_merge = merge_shards(shard_dir)
        obs.event(
            "shards_merged", "obs",
            n_shards=report.shard_merge.n_shards,
            merged_spans=report.shard_merge.merged_spans,
            conserved=report.shard_merge.conserved,
        )

    if not collect_trace:
        report.trace = None

    if observing:
        obs.gauge_set("makespan_s", report.makespan, executor="distributed")
        obs.counter_add(
            "tasks_executed", report.tasks_executed, executor="distributed"
        )
        for r in range(n_ranks):
            obs.gauge_set(
                "worker_occupancy",
                float(report.busy[r]) / max(report.makespan, 1e-300),
                worker=str(r),
            )
        obs.counter_add("remote_messages", report.comm.messages)
        obs.counter_add("remote_bytes", report.comm.bytes_sent)
    return report


def _run_once(
    graph, matrix, dist, placement, n_ranks, completed0, resend,
    rule, backend_name, use_pool, faults, recovery, ckptr, panel_tasks,
    rrep, report, collect_trace, timeout_s, chaos_kill, attempt, inline,
    shard_dir=None,
) -> None:
    """One launch-collect-gather attempt; raises ``_RankDied`` on loss."""
    t0_wall = time.time()
    t0_obs = obs.clock()
    deadline = None if timeout_s is None else t0_wall + timeout_s

    def make_cfg(r: int) -> _RankConfig:
        owned = {
            ij: (t.copy() if inline else t)
            for ij, t in matrix.tiles.items()
            if dist.owner(*ij) == r
        }
        return _RankConfig(
            rank=r, n_ranks=n_ranks, graph=graph, dist=dist, tiles=owned,
            rule=rule, backend_name=backend_name, use_pool=use_pool,
            completed=frozenset(completed0), resend=tuple(resend[r]),
            faults=faults, recovery=recovery,
            ckpt_every=None if ckptr is None else ckptr.config.every,
            collect_trace=collect_trace, t0_wall=t0_wall,
            deadline=deadline, attempt=attempt, chaos_kill=chaos_kill,
            shard_dir=None if shard_dir is None else str(shard_dir),
        )

    if inline:
        inboxes = [_queue.Queue() for _ in range(n_ranks)]
        results: object = _queue.Queue()
        abort: object = threading.Event()
        workers = [
            threading.Thread(
                target=_rank_main,
                args=(make_cfg(r), inboxes, results, abort),
                name=f"repro-rank-{r}",
            )
            for r in range(n_ranks)
        ]
        for w in workers:
            w.start()
    else:
        import multiprocessing as mp

        try:
            ctx = mp.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX fallback
            ctx = mp.get_context("spawn")
        inboxes = [ctx.Queue() for _ in range(n_ranks)]
        results = ctx.Queue()
        abort = ctx.Event()
        workers = [
            ctx.Process(
                target=_rank_main,
                args=(make_cfg(r), inboxes, results, abort),
                name=f"repro-rank-{r}",
            )
            for r in range(n_ranks)
        ]
        for w in workers:
            w.start()

    def _alive(r: int) -> bool:
        return workers[r].is_alive()

    payloads: dict[int, dict] = {}
    latest_shard: dict[int, dict] = {}
    last_saved_panels = _leading_panels_done(panel_tasks, completed0)
    error: tuple[int, str] | None = None
    lost: list[int] = []
    try:
        while len(payloads) < n_ranks and error is None and not lost:
            try:
                msg = results.get(timeout=0.25)
            except _queue.Empty:
                if deadline is not None and time.time() > deadline:
                    raise RuntimeSystemError(
                        f"distributed execution exceeded {timeout_s:.1f}s; "
                        f"{n_ranks - len(payloads)} rank(s) still running"
                    )
                lost = [
                    r for r in range(n_ranks)
                    if r not in payloads and not _alive(r)
                ]
                continue
            kind = msg[0]
            if kind == "done":
                payloads[msg[1]] = msg[2]
            elif kind == "error":
                error = (msg[1], msg[2])
            elif kind == "sync":
                # Clock handshake: echo the rank's send timestamp with
                # the controller clock; the rank midpoints the exchange
                # into its shard's offset estimate.
                inboxes[msg[1]].put(("sync_reply", msg[2], time.time()))
            elif kind == "panel" and ckptr is not None:
                latest_shard[msg[1]] = msg[3]
                union = set(completed0)
                for shard in latest_shard.values():
                    union.update(shard["completed"])
                panels_done = _leading_panels_done(panel_tasks, union)
                if (
                    panels_done - last_saved_panels >= ckptr.config.every
                    and len(union) < len(graph.tasks)
                ):
                    snap = matrix.copy()
                    for shard in latest_shard.values():
                        for ij, tile in shard["tiles"].items():
                            snap.set_tile(*ij, tile)
                    ckptr.save(snap, union, panels_done)
                    if rrep is not None:
                        rrep.checkpoints_written += 1
                    last_saved_panels = panels_done
    finally:
        abort_now = error is not None or lost or len(payloads) < n_ranks
        if abort_now:
            abort.set()
        for r in range(n_ranks):
            try:
                inboxes[r].put(("stop",))
            except Exception:
                pass
        for w in workers:
            w.join(timeout=2.0)
        if not inline:
            for w in workers:
                if w.is_alive():  # pragma: no cover - stuck rank
                    w.terminate()
                    w.join(timeout=2.0)
            # Unblock queue feeder threads so interpreter shutdown does
            # not wait on undelivered messages.
            for q in (*inboxes, results):
                try:
                    q.cancel_join_thread()
                except Exception:
                    pass

    if error is not None:
        raise RuntimeSystemError(
            f"rank {error[0]} failed while executing the graph:\n{error[1]}"
        )
    if lost:
        raise _RankDied(lost)

    makespan = time.time() - t0_wall

    # Gather: each rank returns the final state of the tiles it owns.
    for payload in payloads.values():
        for ij, tile in payload["tiles"].items():
            matrix.set_tile(*ij, tile)

    busy = np.zeros(n_ranks)
    trace: list[tuple] = []
    comm = CommStats()
    df = DataflowBreakdown()
    report.counter = FlopCounter()
    report.rank_growth_events = 0
    report.max_rank_seen = 0
    report.tasks_executed = 0
    report.wire_messages = 0
    report.wire_bytes = 0
    for r, payload in sorted(payloads.items()):
        report.counter.merge(payload["counter"])
        report.rank_growth_events += payload["rank_growth_events"]
        report.max_rank_seen = max(
            report.max_rank_seen, payload["max_rank_seen"]
        )
        report.tasks_executed += payload["tasks_executed"]
        busy[r] = payload["busy"]
        trace.extend(payload["trace"])
        c = payload["comm"]
        comm.local_edges += c["local_edges"]
        comm.remote_edges += c["remote_edges"]
        comm.messages += c["messages"]
        comm.bytes_sent += c["bytes_sent"]
        comm.broadcasts += c["broadcasts"]
        report.wire_messages += c["wire_messages"]
        report.wire_bytes += c["wire_bytes"]
        for key, cnt in payload["df_edges"].items():
            df.edges[key] = df.edges.get(key, 0) + cnt
        for key, nbytes in payload["df_bytes"].items():
            df.bytes_remote[key] = df.bytes_remote.get(key, 0) + nbytes
        sub = payload["resilience"]
        if sub is not None and rrep is not None:
            rrep.retries += sub.retries
            rrep.recoveries += sub.recoveries
            rrep.npd_shifts += sub.npd_shifts
            rrep.densify_fallbacks += sub.densify_fallbacks
            rrep.watchdog_requeues += sub.watchdog_requeues

    report.makespan = makespan
    report.busy = busy
    report.comm = comm
    report.dataflow = df
    report.trace = sorted(trace, key=lambda rec: (rec[1], rec[2]))

    if obs.enabled():
        for tid, r, start, end in report.trace:
            task = graph.tasks[tid]
            obs.record_span(
                task_name(tid), "task",
                start=t0_obs + start, end=t0_obs + end,
                thread=f"rank-{r}", worker=r,
                kernel=task.kernel.value, flops=task.flops,
            )
