"""Discrete-event simulator of a distributed task runtime.

Replays a :class:`~repro.runtime.graph.TaskGraph` on a
:class:`~repro.runtime.machine.MachineSpec` under a data distribution:

* **placement** follows the owner-computes rule — a task runs on the
  process owning its output tile, exactly how the PTG maps tasks;
* **LOCAL edges** (producer and consumer on one process) cost nothing;
* **REMOTE edges** post messages.  One datum sent to several consumers on
  one destination process is transferred once (PaRSEC tracks data, not
  edges); several destination processes form a broadcast, modelled either
  as a ``tree`` (logarithmic depth, PaRSEC collectives) or ``flat``
  (sender NIC serializes one copy per destination);
* each process schedules ready tasks on its ``cores_per_node`` cores,
  highest priority (earliest panel) first.

The simulator reports makespan, per-process busy/idle time (Fig. 11),
panel-release times (Fig. 9), communication statistics, and an optional
full per-task trace.  It performs no numerics — costs come from Table I
via the graph and from the kernel-rate model — which is what lets it
replay 512-node runs the real executor could never hold.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

import numpy as np

from ..distribution.distributions import Distribution
from ..linalg.flops import KernelClass
from ..utils.exceptions import SchedulingError
from .graph import TaskGraph
from .machine import MachineSpec
from .task import TaskKind, task_sort_key

__all__ = ["CommStats", "SimResult", "simulate", "simulate_schedule"]

#: Distribution variants a sweep can name (see :func:`simulate_schedule`).
DISTRIBUTION_NAMES = ("band", "2d", "1d")

_BYTES = 8  # float64


@dataclass
class CommStats:
    """Communication accounting of one simulated run."""

    local_edges: int = 0
    remote_edges: int = 0
    messages: int = 0
    bytes_sent: int = 0
    broadcasts: int = 0

    @property
    def remote_fraction(self) -> float:
        total = self.local_edges + self.remote_edges
        return self.remote_edges / total if total else 0.0


@dataclass
class SimResult:
    """Outcome of a simulated execution.

    Attributes
    ----------
    makespan:
        Simulated wall-clock seconds.
    busy:
        Per-process busy core-seconds.
    comm:
        Communication statistics.
    busy_by_kernel:
        Device-seconds spent per kernel class (the Fig. 10 time
        decomposition the simulator can report directly).
    gpu_busy:
        Per-process GPU busy seconds (``None`` when the machine has no
        accelerators).
    potrf_done:
        ``potrf_done[k]`` — completion time of POTRF(k).
    panel_done:
        ``panel_done[k]`` — completion time of panel k (its last TRSM).
    total_flops:
        Modelled flops executed.
    trace:
        Optional per-task records ``(tid, proc, start, end)``.
    nodes, cores_per_node:
        Machine shape, for occupancy math.
    """

    makespan: float
    busy: np.ndarray
    comm: CommStats
    potrf_done: list[float]
    panel_done: list[float]
    total_flops: float
    nodes: int
    cores_per_node: int
    trace: list[tuple] | None = None
    busy_by_kernel: dict[KernelClass, float] = field(default_factory=dict)
    gpu_busy: np.ndarray | None = None

    @property
    def occupancy(self) -> np.ndarray:
        """Per-process core occupancy in [0, 1]."""
        denom = self.cores_per_node * max(self.makespan, 1e-300)
        return self.busy / denom

    @property
    def achieved_gflops(self) -> float:
        """Aggregate modelled throughput (flops / makespan / 1e9)."""
        return self.total_flops / max(self.makespan, 1e-300) / 1e9


def simulate(
    graph: TaskGraph,
    dist: Distribution,
    machine: MachineSpec,
    *,
    zero_cost_kernels: frozenset[KernelClass] | set[KernelClass] = frozenset(),
    collect_trace: bool = False,
    scheduler: str = "priority",
    work_stealing: bool = False,
) -> SimResult:
    """Simulate ``graph`` on ``machine`` under distribution ``dist``.

    Parameters
    ----------
    zero_cost_kernels:
        Kernel classes whose tasks execute in zero time — used by the
        Fig. 10 ``No_TLR_GEMM`` experiment, which measures the critical
        path by making all low-rank updates free.
    collect_trace:
        Record per-task (tid, proc, start, end) tuples (memory-heavy).
    scheduler:
        Ready-queue policy per process (PaRSEC ships several schedulers):
        ``"priority"`` — panel-ordered keys promoting the critical path
        (the default, PaRSEC's priority-aware behaviour for Cholesky);
        ``"fifo"`` — tasks run in become-ready order;
        ``"lifo"`` — newest-ready first (locality-greedy).
    work_stealing:
        Enable inter-process work stealing — the "dynamic load balancing
        between nodes" the paper lists as future work (Section IX).  An
        idle process steals the deepest-queued ready task from the most
        loaded process, paying a data round-trip (inputs over, output
        back); dataflow consistency is preserved by signalling completion
        at the task's home process (owner-compute semantics).
    """
    if scheduler not in ("priority", "fifo", "lifo"):
        raise SchedulingError(
            f"scheduler must be 'priority', 'fifo' or 'lifo', got {scheduler!r}"
        )
    if dist.nprocs != machine.nodes:
        raise SchedulingError(
            f"distribution targets {dist.nprocs} processes but the machine "
            f"has {machine.nodes} nodes"
        )

    tids = list(graph.tasks)
    index = {tid: i for i, tid in enumerate(tids)}
    n = len(tids)
    b = graph.tile_size

    # --- static per-task arrays ---------------------------------------
    proc = np.empty(n, dtype=np.int64)
    duration = np.empty(n, dtype=np.float64)
    prio: list[tuple] = [()] * n
    kernels_arr: list = [None] * n
    busy_by_kernel: dict[KernelClass, float] = {}
    for tid, i in index.items():
        t = graph.tasks[tid]
        proc[i] = dist.owner(*t.out_tile)
        prio[i] = task_sort_key(t)
        kernels_arr[i] = t.kernel
        if t.kernel in zero_cost_kernels or t.flops <= 0.0:
            duration[i] = 0.0
        else:
            # Effective rank driving the rate model: the builder-provided
            # hint when available, else recovered from the Table-I cost
            # (hand-built graphs may omit hints).
            k_eff = t.rank_hint or _rank_hint(t.kernel, t.flops, b)
            duration[i] = machine.rates.seconds(t.kernel, t.flops, b, k_eff)

    # --- dependency bookkeeping ---------------------------------------
    # unmet[i]: number of distinct *signals* task i waits for.  A signal is
    # either a local predecessor completion or a message arrival keyed by
    # (src, dest_proc) — several edges sharing the key collapse to one.
    unmet = np.zeros(n, dtype=np.int64)
    local_succ: list[list[int]] = [[] for _ in range(n)]
    msg_waiters: dict[tuple[int, int], list[int]] = {}
    send_plan: list[dict[int, int]] = [dict() for _ in range(n)]  # dst_proc -> elements

    in_elems = np.zeros(n, dtype=np.int64)

    comm = CommStats()
    for tid, i in index.items():
        seen_msg_keys: set[tuple[int, int]] = set()
        for e in graph.tasks[tid].deps:
            in_elems[i] += e.elements
            s = index[e.src]
            if proc[s] == proc[i]:
                comm.local_edges += 1
                local_succ[s].append(i)
                unmet[i] += 1
            else:
                comm.remote_edges += 1
                key = (s, int(proc[i]))
                send_plan[s][int(proc[i])] = e.elements
                msg_waiters.setdefault(key, []).append(i)
                if key not in seen_msg_keys:
                    seen_msg_keys.add(key)
                    unmet[i] += 1

    # A task waiting on the same (src, dest) message through two edges
    # must not be decremented twice on arrival; collapse duplicates.
    for key, waiters in msg_waiters.items():
        dedup: list[int] = []
        seen: set[int] = set()
        for w in waiters:
            if w not in seen:
                seen.add(w)
                dedup.append(w)
        msg_waiters[key] = dedup

    # --- event loop -----------------------------------------------------
    nprocs = machine.nodes
    free_cores = np.full(nprocs, machine.cores_per_node, dtype=np.int64)
    free_gpus = np.full(nprocs, machine.gpus_per_node, dtype=np.int64)
    gpu_busy = np.zeros(nprocs, dtype=np.float64)
    # GPU durations for the dense band kernels (Section IX future work):
    # dense Level-3 BLAS at the accelerator rate, POTRF slightly below.
    gpu_duration = np.full(n, -1.0)
    if machine.gpus_per_node > 0:
        for tid, i in index.items():
            t = graph.tasks[tid]
            if t.kernel.is_band_kernel and duration[i] > 0.0:
                eff = (
                    machine.rates.potrf_fraction
                    if t.kernel is KernelClass.POTRF_DENSE
                    else 1.0
                )
                gpu_duration[i] = t.flops / (machine.gpu_dense_gflops * 1e9 * eff)
    ready: list[list] = [[] for _ in range(nprocs)]  # heaps of (key, i)
    ready_seq = 0  # become-ready order, drives fifo/lifo keys

    def ready_key(i: int) -> tuple:
        nonlocal ready_seq
        ready_seq += 1
        if scheduler == "fifo":
            return (ready_seq,)
        if scheduler == "lifo":
            return (-ready_seq,)
        return prio[i]
    busy = np.zeros(nprocs, dtype=np.float64)
    nic_free = np.zeros(nprocs, dtype=np.float64)

    events: list[tuple] = []  # (time, seq, kind, payload)
    seq = 0

    def push_event(time: float, kind: int, payload: int) -> None:
        nonlocal seq
        heapq.heappush(events, (time, seq, kind, payload))
        seq += 1

    EV_DONE, EV_ARRIVE = 0, 1

    for i in range(n):
        if unmet[i] == 0:
            heapq.heappush(ready[proc[i]], (ready_key(i), i))

    now = 0.0
    trace: list[tuple] | None = [] if collect_trace else None
    done_time = np.full(n, -1.0)
    running = 0

    def launch(p: int) -> None:
        nonlocal running
        skipped: list[tuple] = []
        while ready[p] and (free_cores[p] > 0 or free_gpus[p] > 0):
            entry = heapq.heappop(ready[p])
            _, i = entry
            on_gpu = gpu_duration[i] >= 0.0 and free_gpus[p] > 0
            if on_gpu:
                free_gpus[p] -= 1
                dur = gpu_duration[i]
                gpu_busy[p] += dur
            elif free_cores[p] > 0:
                free_cores[p] -= 1
                dur = duration[i]
                busy[p] += dur
            else:
                # Only a GPU is free and this task is CPU-only; set it
                # aside and keep scanning for accelerator-eligible work.
                skipped.append(entry)
                continue
            if dur > 0.0:
                busy_by_kernel[kernels_arr[i]] = (
                    busy_by_kernel.get(kernels_arr[i], 0.0) + dur
                )
            end = now + dur
            if trace is not None:
                trace.append((tids[i], p, now, end))
            push_event(end, EV_DONE, (i, None, "gpu" if on_gpu else "cpu"))
            running += 1
        for entry in skipped:
            heapq.heappush(ready[p], entry)

    steals = 0

    def try_steal() -> None:
        """Idle processes raid the most loaded ready queue (flag-gated)."""
        nonlocal running, steals
        for q in range(nprocs):
            while free_cores[q] > 0 and not ready[q]:
                victim = max(range(nprocs), key=lambda r: len(ready[r]))
                if victim == q or len(ready[victim]) < 2:
                    break
                # Steal the *lowest-priority* entry so the victim's own
                # critical-path work stays local.
                worst = max(range(len(ready[victim])), key=lambda ix: ready[victim][ix][0])
                _, i = ready[victim].pop(worst)
                heapq.heapify(ready[victim])
                # Data round-trip: inputs to the thief, output back home.
                out_bytes = graph.tile_size * graph.tile_size * _BYTES
                migration = (
                    2.0 * machine.latency_s
                    + (int(in_elems[i]) * _BYTES + out_bytes) / machine.bandwidth_Bps
                )
                free_cores[q] -= 1
                dur = duration[i] + migration
                busy[q] += duration[i]
                if duration[i] > 0.0:
                    busy_by_kernel[kernels_arr[i]] = (
                        busy_by_kernel.get(kernels_arr[i], 0.0) + duration[i]
                    )
                if trace is not None:
                    trace.append((tids[i], q, now, now + dur))
                # Completion is signalled at the home process (owner-compute
                # consistency), so successors/messages behave as usual.
                push_event(now + dur, EV_DONE, (i, q, "cpu"))
                running += 1
                steals += 1

    for p in range(nprocs):
        launch(p)

    completed = 0
    while events:
        now, _, kind, payload = heapq.heappop(events)
        if kind == EV_DONE:
            i, ran_on, device = payload
            p = int(proc[i])
            if device == "gpu":
                free_gpus[p if ran_on is None else ran_on] += 1
            else:
                free_cores[p if ran_on is None else ran_on] += 1
            done_time[i] = now
            completed += 1
            # Local successors
            for s in local_succ[i]:
                unmet[s] -= 1
                if unmet[s] == 0:
                    heapq.heappush(ready[proc[s]], (ready_key(s), s))
            # Remote messages (deduplicated per destination process)
            dests = send_plan[i]
            if dests:
                if len(dests) > 1:
                    comm.broadcasts += 1
                for order, (dp, elements) in enumerate(sorted(dests.items())):
                    nbytes = elements * _BYTES
                    if machine.broadcast == "tree":
                        # Stage depth of destination #order in a binomial tree.
                        depth = int(np.ceil(np.log2(order + 2)))
                        arrival = now + depth * machine.transfer_seconds(nbytes)
                    else:
                        start = max(now, nic_free[p])
                        xfer = nbytes / machine.bandwidth_Bps
                        nic_free[p] = start + xfer
                        arrival = start + xfer + machine.latency_s
                    comm.messages += 1
                    comm.bytes_sent += nbytes
                    push_event(arrival, EV_ARRIVE, (i, dp))
            launch(p)
            if ran_on is not None:
                launch(ran_on)
            if work_stealing:
                try_steal()
        else:  # EV_ARRIVE
            i, dp = payload
            for s in msg_waiters.get((i, dp), ()):  # type: ignore[arg-type]
                unmet[s] -= 1
                if unmet[s] == 0:
                    heapq.heappush(ready[proc[s]], (ready_key(s), s))
            launch(dp)
            if work_stealing:
                try_steal()

    if completed != n:
        raise SchedulingError(
            f"simulation deadlocked: {completed} of {n} tasks completed"
        )

    # --- derived metrics -------------------------------------------------
    nt = graph.ntiles
    potrf_done = [0.0] * nt
    panel_done = [0.0] * nt
    for tid, i in index.items():
        t = graph.tasks[tid]
        # Exact-id matches skip fork/sub bookkeeping nodes of recursive
        # expansions: the JOIN node inherits the original tile-task id.
        if t.kind is TaskKind.POTRF and tid == (TaskKind.POTRF, t.panel):
            potrf_done[t.panel] = float(done_time[i])
        elif t.kind is TaskKind.TRSM and tid == (TaskKind.TRSM, tid[1], t.panel):
            panel_done[t.panel] = max(panel_done[t.panel], float(done_time[i]))
    for k in range(nt):
        panel_done[k] = max(panel_done[k], potrf_done[k])

    return SimResult(
        makespan=float(now),
        busy=busy,
        comm=comm,
        potrf_done=potrf_done,
        panel_done=panel_done,
        total_flops=graph.total_flops(),
        nodes=machine.nodes,
        cores_per_node=machine.cores_per_node,
        trace=trace,
        busy_by_kernel=busy_by_kernel,
        gpu_busy=gpu_busy if machine.gpus_per_node > 0 else None,
    )


def simulate_schedule(
    graph: TaskGraph,
    *,
    ranks: int = 1,
    cores: int = 1,
    rates=None,
    scheduler: str = "priority",
    distribution: str = "band",
    collect_trace: bool = False,
    **machine_kwargs,
) -> SimResult:
    """Sweep-friendly front end to :func:`simulate`.

    Builds the distribution and machine from scalar sweep coordinates —
    a named distribution variant (``"band"``: the paper's hybrid band +
    2DBCDD at the graph's band size; ``"2d"``: plain 2DBCDD; ``"1d"``:
    row-wise 1DBCDD), a process/core count, and an optional rates object
    (:class:`~repro.runtime.calibration.MeasuredRates` or a
    :class:`~repro.runtime.machine.KernelRateModel`) — so an autotuner
    can evaluate one candidate per call without repeating the plumbing.
    """
    from ..distribution.distributions import (
        BandDistribution,
        OneDBlockCyclic,
        TwoDBlockCyclic,
    )
    from ..distribution.process_grid import ProcessGrid

    if distribution not in DISTRIBUTION_NAMES:
        raise SchedulingError(
            f"distribution must be one of {DISTRIBUTION_NAMES}, "
            f"got {distribution!r}"
        )
    if distribution == "band":
        dist = BandDistribution(
            ProcessGrid.squarest(ranks), band_size=graph.band_size
        )
    elif distribution == "2d":
        dist = TwoDBlockCyclic(ProcessGrid.squarest(ranks))
    else:
        dist = OneDBlockCyclic(ranks, axis="row")
    if rates is None:
        machine = MachineSpec(
            nodes=ranks, cores_per_node=cores, **machine_kwargs
        )
    else:
        machine = MachineSpec(
            nodes=ranks, cores_per_node=cores, rates=rates, **machine_kwargs
        )
    return simulate(
        graph,
        dist,
        machine,
        scheduler=scheduler,
        collect_trace=collect_trace,
    )


def _rank_hint(kernel: KernelClass, flops: float, b: int) -> int:
    """Invert Table I to recover an approximate rank for the rate model.

    Only the low-rank-output GEMMs need a rank (their efficiency curve
    depends on it); for those, ``flops ≈ 36bk² + 157k³`` is inverted with
    a few Newton steps on the dominant quadratic term.
    """
    if kernel not in (KernelClass.GEMM_LR, KernelClass.GEMM_LR_DENSE):
        return 0
    coef_q = 36.0 * b
    k = max((flops / coef_q) ** 0.5, 1.0)
    for _ in range(3):
        f = coef_q * k * k + 157.0 * k**3 - flops
        df = 2 * coef_q * k + 471.0 * k * k
        k = max(k - f / df, 1.0)
    return int(round(k))
