"""One ``Executor`` protocol over the thread, process, and DES backends.

The repo grew three ways to run the same Cholesky
:class:`~repro.runtime.graph.TaskGraph` — sequential/thread executors
with real numerics (:mod:`repro.runtime.executor`,
:mod:`repro.runtime.parallel`), a true multi-process executor with
explicit communication (:mod:`repro.runtime.distributed`), and a
discrete-event simulator that only predicts
(:mod:`repro.runtime.simulator`).  Their call signatures drifted apart
(``n_workers`` vs ``n_ranks`` vs ``dist``/``machine``), which made
"run the same problem on another backend" a rewrite instead of an
argument change.

This module pins them behind one submit-graph protocol::

    run = get_executor("processes", n_ranks=4).execute(graph, matrix)
    run.report.makespan, run.report.trace, run.report.comm ...

Every backend accepts the same resilience/observability surface
(``faults``/``recovery``/``checkpoint``/``resume`` and the ambient
:mod:`repro.obs` observation) — except the simulator, which *predicts*
rather than executes and therefore rejects resilience kwargs and leaves
the matrix untouched (``run.predicted`` is ``True``).  Checkpoints are
interchangeable across the numerical backends: a run interrupted under
one executor resumes under any other.
"""

from __future__ import annotations

import dataclasses
from abc import ABC, abstractmethod
from dataclasses import dataclass

from ..utils.exceptions import ConfigurationError
from .graph import TaskGraph

__all__ = [
    "Executor",
    "ExecutorRun",
    "SequentialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "SimExecutor",
    "get_executor",
    "EXECUTOR_NAMES",
]


@dataclass
class ExecutorRun:
    """Outcome of one ``Executor.execute`` call.

    Attributes
    ----------
    executor:
        The backend that produced the run (``"sequential"``,
        ``"threads"``, ``"processes"``, ``"sim"``).
    report:
        The backend's native report — an
        :class:`~repro.runtime.executor.ExecutionReport`,
        :class:`~repro.runtime.parallel.ParallelExecutionReport`,
        :class:`~repro.runtime.distributed.DistributedExecutionReport`,
        or :class:`~repro.runtime.simulator.SimResult`.  Unknown
        attribute reads on the run fall through to it, so analysis code
        written against one report keeps working against the run.
    predicted:
        ``True`` when the backend only modelled the execution (the DES);
        the matrix then still holds the *unfactorized* input.
    """

    executor: str
    report: object
    predicted: bool = False

    def __getattr__(self, item):
        # Only reached for attributes not set on the run itself.
        return getattr(self.report, item)


class Executor(ABC):
    """A backend that runs (or models) a task graph against a matrix."""

    #: Registry name, also recorded on every :class:`ExecutorRun`.
    name: str = "abstract"

    @abstractmethod
    def execute(
        self,
        graph: TaskGraph,
        matrix,
        *,
        rule=None,
        use_pool: bool = True,
        backend=None,
        batch: bool = False,
        collect_trace: bool = False,
        faults=None,
        recovery=None,
        checkpoint=None,
        resume: bool = False,
    ) -> ExecutorRun:
        """Run ``graph`` against ``matrix``; see the backend modules for
        parameter semantics (they are shared verbatim)."""


class SequentialExecutor(Executor):
    """Single-thread reference numerics (:func:`execute_graph`)."""

    name = "sequential"

    def execute(self, graph, matrix, *, rule=None, use_pool=True,
                backend=None, batch=False, collect_trace=False, faults=None,
                recovery=None, checkpoint=None, resume=False) -> ExecutorRun:
        from .executor import execute_graph

        report = execute_graph(
            graph, matrix, rule=rule, use_pool=use_pool, backend=backend,
            batch=batch, faults=faults, recovery=recovery,
            checkpoint=checkpoint, resume=resume,
        )
        return ExecutorRun(executor=self.name, report=report)


class ThreadExecutor(Executor):
    """Shared-memory worker threads (:func:`execute_graph_parallel`)."""

    name = "threads"

    def __init__(self, n_workers: int | None = None,
                 scheduler: str = "priority"):
        self.n_workers = n_workers
        self.scheduler = scheduler

    def execute(self, graph, matrix, *, rule=None, use_pool=True,
                backend=None, batch=False, collect_trace=False, faults=None,
                recovery=None, checkpoint=None, resume=False) -> ExecutorRun:
        from .parallel import execute_graph_parallel

        report = execute_graph_parallel(
            graph, matrix, n_workers=self.n_workers, rule=rule,
            use_pool=use_pool, scheduler=self.scheduler,
            collect_trace=collect_trace, backend=backend, batch=batch,
            faults=faults, recovery=recovery, checkpoint=checkpoint,
            resume=resume,
        )
        return ExecutorRun(executor=self.name, report=report)


class ProcessExecutor(Executor):
    """Multi-process ranks with explicit communication
    (:func:`execute_graph_distributed`)."""

    name = "processes"

    def __init__(self, n_ranks: int | None = None, distribution=None,
                 timeout_s: float | None = 300.0, max_restarts: int = 2,
                 shard_dir=None):
        self.n_ranks = n_ranks
        self.distribution = distribution
        self.timeout_s = timeout_s
        self.max_restarts = max_restarts
        self.shard_dir = shard_dir

    def execute(self, graph, matrix, *, rule=None, use_pool=True,
                backend=None, batch=False, collect_trace=False, faults=None,
                recovery=None, checkpoint=None, resume=False) -> ExecutorRun:
        if batch:
            raise ConfigurationError(
                "kernel batching requires shared-memory tiles; the "
                "processes executor does not support batch=True"
            )
        from .distributed import execute_graph_distributed

        report = execute_graph_distributed(
            graph, matrix, n_ranks=self.n_ranks,
            distribution=self.distribution, rule=rule, use_pool=use_pool,
            collect_trace=collect_trace, backend=backend, faults=faults,
            recovery=recovery, checkpoint=checkpoint, resume=resume,
            timeout_s=self.timeout_s, max_restarts=self.max_restarts,
            shard_dir=self.shard_dir,
        )
        return ExecutorRun(executor=self.name, report=report)


class SimExecutor(Executor):
    """Discrete-event prediction (:func:`simulate`) behind the protocol.

    The simulator models; it never touches the matrix, so
    ``run.predicted`` is ``True`` and resilience kwargs are rejected —
    there is nothing to retry or checkpoint in a prediction.  The
    default machine is one single-core node per rank with the
    Shaheen-II-like network, which is the lane layout the numerical
    executors report (``nodes = ranks``, ``cores_per_node = 1``) — pass
    ``machine`` (e.g. from :func:`~repro.runtime.calibration
    .calibrate_machine` or with :class:`~repro.runtime.calibration
    .MeasuredRates`) to predict with this host's kernel costs.
    """

    name = "sim"

    def __init__(self, n_ranks: int | None = None, distribution=None,
                 machine=None, scheduler: str = "priority"):
        self.n_ranks = n_ranks
        self.distribution = distribution
        self.machine = machine
        self.scheduler = scheduler

    def execute(self, graph, matrix, *, rule=None, use_pool=True,
                backend=None, batch=False, collect_trace=False, faults=None,
                recovery=None, checkpoint=None, resume=False) -> ExecutorRun:
        if batch:
            raise ConfigurationError(
                "the sim executor predicts a run; kernel batching only "
                "applies to the sequential and thread executors"
            )
        if faults is not None or recovery is not None \
                or checkpoint is not None or resume:
            raise ConfigurationError(
                "the sim executor predicts a run; faults/recovery/"
                "checkpoint/resume only apply to numerical executors"
            )
        from ..distribution.distributions import BandDistribution
        from ..distribution.process_grid import ProcessGrid
        from .machine import SHAHEEN_II_LIKE
        from .simulator import simulate

        dist = self.distribution
        if dist is None:
            ranks = self.n_ranks or 2
            dist = BandDistribution(
                ProcessGrid.squarest(ranks), band_size=graph.band_size
            )
        machine = self.machine
        if machine is None:
            machine = dataclasses.replace(
                SHAHEEN_II_LIKE, nodes=dist.nprocs, cores_per_node=1
            )
        elif machine.nodes != dist.nprocs:
            raise ConfigurationError(
                f"machine has {machine.nodes} nodes but the distribution "
                f"targets {dist.nprocs} ranks"
            )
        result = simulate(
            graph, dist, machine,
            collect_trace=collect_trace, scheduler=self.scheduler,
        )
        return ExecutorRun(executor=self.name, report=result, predicted=True)


#: CLI-facing registry (``execute --executor ...`` choices plus the
#: sequential reference, which the CLI reaches via ``--workers``-less
#: ``--compare-sequential`` instead).
EXECUTOR_NAMES = ("sequential", "threads", "processes", "sim")


def get_executor(spec, **kwargs) -> Executor:
    """Resolve an executor spec: an instance or a registry name.

    ``kwargs`` are forwarded to the named executor's constructor
    (``n_workers``/``scheduler`` for threads, ``n_ranks``/
    ``distribution``/... for processes and sim); passing kwargs with an
    instance is an error — configure the instance instead.
    """
    if isinstance(spec, Executor):
        if kwargs:
            raise ConfigurationError(
                "cannot pass constructor kwargs with an executor instance"
            )
        return spec
    classes = {
        SequentialExecutor.name: SequentialExecutor,
        ThreadExecutor.name: ThreadExecutor,
        ProcessExecutor.name: ProcessExecutor,
        SimExecutor.name: SimExecutor,
    }
    try:
        cls = classes[spec]
    except (KeyError, TypeError):
        raise ConfigurationError(
            f"unknown executor {spec!r}; available: {sorted(classes)}"
        ) from None
    return cls(**kwargs)
