"""Task graphs for the TLR triangular solves (forward/backward).

The factorization is only half of the MLE inner loop; the solves
``L y = z`` and ``L^T x = y`` also run distributed at scale.  Their PTG
unfolds a much thinner DAG than Cholesky's:

* ``FSOLVE(i)``  — apply ``L(i,i)^{-1}`` to block ``i`` of the vector;
* ``FUPDATE(i, j)`` — ``y_i -= L(i, j) @ y_j`` for ``j < i``;

(and mirrored for the backward sweep).  Updates into one block chain
sequentially (they read-modify-write the same vector block), which is
what makes triangular solves latency-bound: the critical path has length
``NT`` regardless of width — a well-known contrast with the factorization
that the simulator exposes directly.

Vector blocks are owned by the owner of the corresponding *diagonal*
tile, so solve placement is consistent with any matrix distribution.
"""

from __future__ import annotations

from enum import Enum

from ..linalg.flops import KernelClass
from ..utils.validation import check_positive_int
from .graph import RankFn, TaskGraph
from .task import Edge, Task, TaskKind

__all__ = ["SolveKind", "build_solve_graph"]


class SolveKind(Enum):
    """Direction of the triangular solve."""

    FORWARD = "forward"  # L y = b
    BACKWARD = "backward"  # L^T x = b


def _apply_flops(b: int, on_band: bool, rank: int) -> float:
    """Flops of one off-diagonal tile application to a vector block."""
    if on_band:
        return 2.0 * b * b
    return 4.0 * b * rank  # two thin products


def build_solve_graph(
    ntiles: int,
    band_size: int,
    tile_size: int,
    rank_fn: RankFn,
    *,
    kind: SolveKind = SolveKind.FORWARD,
) -> TaskGraph:
    """Unfold the triangular-solve PTG for a factored BAND-DENSE-TLR matrix.

    Task classes reuse the Cholesky kinds for scheduling purposes:
    ``TRSM`` for the diagonal solves, ``GEMM`` for the updates — their
    priorities behave identically (panel = block index).
    """
    nt = check_positive_int("ntiles", ntiles)
    check_positive_int("band_size", band_size)
    b = check_positive_int("tile_size", tile_size)
    g = TaskGraph(ntiles=nt, band_size=band_size, tile_size=b)

    forward = kind is SolveKind.FORWARD
    order = range(nt) if forward else range(nt - 1, -1, -1)

    last_touch: dict[int, tuple] = {}  # vector block -> last writer task

    for i in order:
        # Updates into block i from already-solved blocks j.
        js = range(i) if forward else range(nt - 1, i, -1)
        for j in js:
            lo, hi = (i, j) if forward else (j, i)  # stored tile (hi row >= lo col)
            tid = (TaskKind.GEMM, "solve", i, j)
            on_band = abs(lo - hi) < band_size
            rank = 0 if on_band else rank_fn(max(lo, hi), min(lo, hi))
            deps = []
            # Needs the solved source block j...
            src = last_touch.get(j)
            if src is not None:
                deps.append(Edge(src, tid, _vec_tile(j), b))
            # ...and the previous update into block i (RMW chain).
            prev = last_touch.get(i)
            if prev is not None:
                deps.append(Edge(prev, tid, _vec_tile(i), b))
            g.add_task(
                Task(
                    tid=tid,
                    kind=TaskKind.GEMM,
                    kernel=KernelClass.GEMM_DENSE_LRD
                    if not on_band
                    else KernelClass.GEMM_DENSE,
                    flops=_apply_flops(b, on_band, rank),
                    out_tile=_vec_tile(i),
                    deps=deps,
                    panel=min(i, j),
                )
            )
            last_touch[i] = tid

        # Diagonal solve of block i.
        tid = (TaskKind.TRSM, "solve", i)
        deps = []
        prev = last_touch.get(i)
        if prev is not None:
            deps.append(Edge(prev, tid, _vec_tile(i), b))
        g.add_task(
            Task(
                tid=tid,
                kind=TaskKind.TRSM,
                kernel=KernelClass.TRSM_DENSE,
                flops=float(b * b),
                out_tile=_vec_tile(i),
                deps=deps,
                panel=i,
            )
        )
        last_touch[i] = tid
    return g


def _vec_tile(i: int) -> tuple[int, int]:
    """Vector block ``i`` placed with the diagonal tile ``(i, i)``."""
    return (i, i)
