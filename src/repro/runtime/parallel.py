"""Dependency-driven parallel executor: real numerics on worker threads.

The sequential executor (:mod:`repro.runtime.executor`) walks the Cholesky
DAG in topological order on one thread — a correctness oracle.  This
module runs the *same* :class:`~repro.runtime.graph.TaskGraph` the
simulator replays, but concurrently: a ready queue fed by dependency
countdown (PaRSEC's activation model), a pool of worker threads, and
per-tile locks so independent GEMMs update disjoint tiles at the same
time.  NumPy/SciPy release the GIL inside BLAS/LAPACK calls, so the
kernels — where virtually all the time goes — genuinely overlap.

Determinism: every write to a tile is totally ordered by the graph's
dataflow edges (the LOCAL chains of the PTG), and every read is ordered
against the tile's final write, so the computed factor is *bitwise
identical* for any worker count and any interleaving.  The scheduler
policy (``priority``/``fifo``/``lifo``) matches
:func:`repro.runtime.simulator.simulate` so real and simulated runs can be
compared queue-for-queue.

Each worker records per-task start/end timestamps; the resulting report
quacks like a :class:`~repro.runtime.simulator.SimResult` (``trace``,
``makespan``, ``busy``, ``occupancy``) so the existing analysis pipeline —
:func:`repro.analysis.gantt.gantt`, :func:`repro.analysis.occupancy_summary`,
:func:`repro.analysis.tracing.export_chrome_trace` — consumes real
executions exactly as it consumes simulated ones.
"""

from __future__ import annotations

import heapq
import os
import threading
import time
from dataclasses import dataclass, field

import numpy as np

from .. import obs
from ..linalg import hcore
from ..linalg.compression import TruncationRule
from ..linalg.flops import FlopCounter
from ..linalg.tiles import LowRankTile
from ..matrix.memory import MemoryTracker
from ..matrix.tlr_matrix import BandTLRMatrix
from ..utils.exceptions import RuntimeSystemError, SchedulingError
from ..utils.validation import check_positive_int
from .executor import _canonical_tid
from .graph import TaskGraph
from .memory_pool import MemoryPool
from .task import TaskKind, task_sort_key

__all__ = [
    "ParallelExecutionReport",
    "ThreadSafeFlopCounter",
    "ThreadSafeMemoryPool",
    "ThreadSafeMemoryTracker",
    "execute_graph_parallel",
]


class ThreadSafeFlopCounter(FlopCounter):
    """A :class:`FlopCounter` whose ``add`` is atomic under a lock.

    The read-modify-write on the per-class dicts is not atomic in
    CPython; concurrent kernels would lose updates without this.
    """

    def __init__(self) -> None:
        super().__init__()
        self._lock = threading.Lock()

    def add(self, kind, flops) -> None:
        with self._lock:
            super().add(kind, flops)


class ThreadSafeMemoryPool(MemoryPool):
    """A :class:`MemoryPool` safe to share across worker threads.

    ``take`` calls ``allocate`` internally, hence the reentrant lock.
    """

    def __init__(self) -> None:
        super().__init__()
        self._lock = threading.RLock()

    def allocate(self, shape):
        with self._lock:
            return super().allocate(shape)

    def release(self, buf) -> None:
        with self._lock:
            super().release(buf)

    def take(self, array):
        with self._lock:
            return super().take(array)


class ThreadSafeMemoryTracker(MemoryTracker):
    """A :class:`MemoryTracker` whose counters update atomically."""

    def __init__(self) -> None:
        super().__init__()
        self._lock = threading.Lock()

    def allocate_tile(self, key, tile) -> None:
        with self._lock:
            super().allocate_tile(key, tile)

    def transient(self, elements) -> None:
        with self._lock:
            super().transient(elements)


@dataclass
class ParallelExecutionReport:
    """Artifacts of a parallel (numerical) graph execution.

    Carries the same accounting as the sequential
    :class:`~repro.runtime.executor.ExecutionReport` plus the timing
    surface of a :class:`~repro.runtime.simulator.SimResult` (``makespan``,
    ``busy``, ``trace``, ``occupancy``) so the gantt/occupancy/Chrome-trace
    pipeline consumes real runs unchanged.  Each worker thread maps to one
    "process" lane (``nodes = n_workers``, ``cores_per_node = 1``).
    """

    counter: ThreadSafeFlopCounter = field(default_factory=ThreadSafeFlopCounter)
    tracker: ThreadSafeMemoryTracker = field(
        default_factory=ThreadSafeMemoryTracker
    )
    pool: ThreadSafeMemoryPool = field(default_factory=ThreadSafeMemoryPool)
    rank_growth_events: int = 0
    max_rank_seen: int = 0
    tasks_executed: int = 0
    n_workers: int = 1
    makespan: float = 0.0
    busy: np.ndarray = field(default_factory=lambda: np.zeros(1))
    total_flops: float = 0.0
    trace: list[tuple] | None = None

    @property
    def nodes(self) -> int:
        """Worker count, presented as SimResult's process count."""
        return self.n_workers

    @property
    def cores_per_node(self) -> int:
        return 1

    @property
    def occupancy(self) -> np.ndarray:
        """Per-worker busy fraction in [0, 1]."""
        return self.busy / max(self.makespan, 1e-300)

    @property
    def achieved_gflops(self) -> float:
        """Modelled flops over real wall-clock (Gflop/s)."""
        return self.total_flops / max(self.makespan, 1e-300) / 1e9

    @property
    def speedup_vs_serial(self) -> float:
        """Aggregate busy time over makespan — parallel efficiency proxy."""
        return float(self.busy.sum()) / max(self.makespan, 1e-300)


def execute_graph_parallel(
    graph: TaskGraph,
    matrix: BandTLRMatrix,
    *,
    n_workers: int | None = None,
    rule: TruncationRule | None = None,
    use_pool: bool = True,
    scheduler: str = "priority",
    collect_trace: bool = False,
    backend=None,
) -> ParallelExecutionReport:
    """Execute a (non-expanded) Cholesky task graph on worker threads.

    Parameters
    ----------
    graph:
        Graph built by :func:`repro.runtime.graph.build_cholesky_graph`
        *without* ``recursive_split`` (same restriction as the sequential
        executor).
    matrix:
        The compressed matrix to factorize; mutated into its Cholesky
        factor (lower triangle).  The result is bitwise identical to the
        sequential executor's.
    n_workers:
        Worker thread count; defaults to ``os.cpu_count()``.
    rule:
        Truncation rule for recompressions; defaults to the matrix's rule.
    use_pool:
        Re-associate recompression outputs with the shared memory pool
        (the Section VII-B dynamic-memory path).
    scheduler:
        Ready-queue policy, matching ``simulate(scheduler=...)``:
        ``"priority"`` (panel-ordered, critical-path promoting),
        ``"fifo"`` (become-ready order) or ``"lifo"`` (newest first).
    collect_trace:
        Record per-task ``(tid, worker, start, end)`` tuples in seconds
        relative to launch — consumable by ``gantt`` and
        ``export_chrome_trace`` exactly like a simulator trace.

    Returns
    -------
    ParallelExecutionReport

    Raises
    ------
    SchedulingError
        On an invalid scheduler policy or a cyclic graph (deadlock).
    RuntimeSystemError
        On graph/matrix mismatch, an expanded graph, or when a kernel
        raised inside a worker (the original exception is chained).
    """
    if scheduler not in ("priority", "fifo", "lifo"):
        raise SchedulingError(
            f"scheduler must be 'priority', 'fifo' or 'lifo', got {scheduler!r}"
        )
    if n_workers is None:
        n_workers = os.cpu_count() or 1
    check_positive_int("n_workers", n_workers)
    if graph.ntiles != matrix.ntiles:
        raise RuntimeSystemError(
            f"graph is for NT={graph.ntiles} but the matrix has NT={matrix.ntiles}"
        )
    if graph.band_size != matrix.band_size:
        raise RuntimeSystemError(
            f"graph band_size={graph.band_size} does not match "
            f"matrix band_size={matrix.band_size}"
        )
    for tid, task in graph.tasks.items():
        if tid != _canonical_tid(task):
            raise RuntimeSystemError(
                "parallel executor received an expanded graph; build it "
                "without recursive_split"
            )

    rule = rule or matrix.rule
    backend = backend if backend is not None else matrix.backend
    report = ParallelExecutionReport(n_workers=n_workers)
    report.tracker.register_matrix(matrix)
    report.total_flops = graph.total_flops()

    # --- dependency countdown state -----------------------------------
    tids = list(graph.tasks)
    indeg: dict[tuple, int] = {}
    succs: dict[tuple, list[tuple]] = {tid: [] for tid in tids}
    for tid, task in graph.tasks.items():
        sources = {e.src for e in task.deps}
        indeg[tid] = len(sources)
        for src in sources:
            succs[src].append(tid)

    cond = threading.Condition()
    ready: list[tuple] = []  # heap of (key, tid)
    arrival_seq = 0

    def ready_key(tid: tuple) -> tuple:
        nonlocal arrival_seq
        arrival_seq += 1
        if scheduler == "fifo":
            return (arrival_seq,)
        if scheduler == "lifo":
            return (-arrival_seq,)
        return task_sort_key(graph.tasks[tid])

    for tid in tids:
        if indeg[tid] == 0:
            heapq.heappush(ready, (ready_key(tid), tid))

    n_tasks = len(tids)
    state = {"executed": 0, "inflight": 0, "failed": None}

    # --- shared numerical state ---------------------------------------
    # One lock per stored tile, held while *writing* that tile.  Reads
    # need no lock: a task's input tiles were finalized by dependency
    # predecessors, and the dataflow chains guarantee no concurrent
    # writer exists while a reader runs.  Locking only the destination is
    # what lets GEMMs that share a panel tile update disjoint output
    # tiles concurrently.
    tile_locks = {ij: threading.Lock() for ij in matrix.tiles}
    pooled: set[int] = set()  # ids of factor arrays owned by the pool
    stats_lock = threading.Lock()

    def run_task(tid: tuple) -> None:
        task = graph.tasks[tid]
        kind = task.kind
        if kind is TaskKind.POTRF:
            (_, k) = tid
            with tile_locks[(k, k)]:
                hcore.potrf_dense(
                    matrix.tile(k, k), counter=report.counter, tile_index=(k, k)
                )
        elif kind is TaskKind.TRSM:
            (_, m, k) = tid
            with tile_locks[(m, k)]:
                out = hcore.trsm_auto(
                    matrix.tile(k, k), matrix.tile(m, k), counter=report.counter
                )
                matrix.set_tile(m, k, out)
        elif kind is TaskKind.SYRK:
            (_, n, k) = tid
            with tile_locks[(n, n)]:
                hcore.syrk_auto(
                    matrix.tile(n, k), matrix.tile(n, n), counter=report.counter
                )
        else:  # GEMM
            (_, m, n, k) = tid
            with tile_locks[(m, n)]:
                out, _, recomp = hcore.gemm_auto(
                    matrix.tile(m, k),
                    matrix.tile(n, k),
                    matrix.tile(m, n),
                    rule,
                    counter=report.counter,
                    backend=backend,
                )
                if recomp is not None:
                    bm, bn = out.shape
                    report.tracker.transient((bm + bn) * recomp.rank_before)
                    if use_pool:
                        old = matrix.tile(m, n)
                        if isinstance(old, LowRankTile):
                            for arr in (old.u, old.v):
                                with stats_lock:
                                    owned = id(arr) in pooled
                                    if owned:
                                        pooled.discard(id(arr))
                                if owned:
                                    report.pool.release(arr)
                        if isinstance(out, LowRankTile) and out.rank > 0:
                            out = LowRankTile(
                                report.pool.take(out.u), report.pool.take(out.v)
                            )
                            with stats_lock:
                                pooled.add(id(out.u))
                                pooled.add(id(out.v))
                    with stats_lock:
                        if recomp.grew:
                            report.rank_growth_events += 1
                        report.max_rank_seen = max(
                            report.max_rank_seen, recomp.rank_after
                        )
                matrix.set_tile(m, n, out)
                report.tracker.allocate_tile((m, n), out)

    busy = np.zeros(n_workers)
    traces: list[list[tuple]] = [[] for _ in range(n_workers)]
    observing = obs.enabled()
    t0 = time.perf_counter()

    def task_name(tid: tuple) -> str:
        return "_".join([tid[0].name, *(str(x) for x in tid[1:])])

    def worker(wid: int) -> None:
        while True:
            with cond:
                while (
                    not ready
                    and state["executed"] + state["inflight"] < n_tasks
                    and state["failed"] is None
                ):
                    cond.wait()
                if state["failed"] is not None or (
                    not ready and state["inflight"] == 0
                ):
                    return
                if not ready:
                    # Peers are still executing; their completions may
                    # feed the queue — wait for the next signal.
                    cond.wait(timeout=0.05)
                    continue
                _, tid = heapq.heappop(ready)
                state["inflight"] += 1
                if observing:
                    obs.sample("ready_queue_depth", len(ready))
            start = time.perf_counter() - t0
            try:
                if observing:
                    with obs.span(task_name(tid), "task", worker=wid):
                        run_task(tid)
                else:
                    run_task(tid)
            except BaseException as exc:  # propagate to the caller
                with cond:
                    if state["failed"] is None:
                        state["failed"] = exc
                    state["inflight"] -= 1
                    cond.notify_all()
                return
            end = time.perf_counter() - t0
            busy[wid] += end - start
            if collect_trace:
                traces[wid].append((tid, wid, start, end))
            with cond:
                state["inflight"] -= 1
                state["executed"] += 1
                released = 0
                for succ in succs[tid]:
                    indeg[succ] -= 1
                    if indeg[succ] == 0:
                        heapq.heappush(ready, (ready_key(succ), succ))
                        released += 1
                if observing and released:
                    obs.sample("ready_queue_depth", len(ready))
                if state["executed"] == n_tasks or released:
                    cond.notify_all()

    threads = [
        threading.Thread(target=worker, args=(w,), name=f"repro-worker-{w}")
        for w in range(n_workers)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    report.makespan = time.perf_counter() - t0
    report.busy = busy
    report.tasks_executed = state["executed"]
    if observing:
        obs.gauge_set("makespan_s", report.makespan, executor="parallel")
        obs.counter_add(
            "tasks_executed", report.tasks_executed, executor="parallel"
        )
        for wid in range(n_workers):
            obs.gauge_set(
                "worker_occupancy",
                float(busy[wid]) / max(report.makespan, 1e-300),
                worker=str(wid),
            )
        obs.pool_observed(report.pool.stats, pool="executor")
        from ..linalg.backends import get_backend

        obs.pool_observed(
            get_backend(backend).workspace_pool_stats, pool="workspace"
        )
    if collect_trace:
        report.trace = sorted(
            (rec for per_worker in traces for rec in per_worker),
            key=lambda r: (r[1], r[2]),
        )

    if state["failed"] is not None:
        raise RuntimeSystemError(
            f"worker failed while executing the graph: {state['failed']}"
        ) from state["failed"]
    if state["executed"] != n_tasks:
        raise SchedulingError(
            f"parallel execution deadlocked: {state['executed']} of "
            f"{n_tasks} tasks completed (cyclic graph?)"
        )
    return report
