"""Dependency-driven parallel executor: real numerics on worker threads.

The sequential executor (:mod:`repro.runtime.executor`) walks the Cholesky
DAG in topological order on one thread — a correctness oracle.  This
module runs the *same* :class:`~repro.runtime.graph.TaskGraph` the
simulator replays, but concurrently: a ready queue fed by dependency
countdown (PaRSEC's activation model), a pool of worker threads, and
per-tile locks so independent GEMMs update disjoint tiles at the same
time.  NumPy/SciPy release the GIL inside BLAS/LAPACK calls, so the
kernels — where virtually all the time goes — genuinely overlap.

Determinism: every write to a tile is totally ordered by the graph's
dataflow edges (the LOCAL chains of the PTG), and every read is ordered
against the tile's final write, so the computed factor is *bitwise
identical* for any worker count and any interleaving.  The scheduler
policy (``priority``/``fifo``/``lifo``) matches
:func:`repro.runtime.simulator.simulate` so real and simulated runs can be
compared queue-for-queue.

Each worker records per-task start/end timestamps; the resulting report
quacks like a :class:`~repro.runtime.simulator.SimResult` (``trace``,
``makespan``, ``busy``, ``occupancy``) so the existing analysis pipeline —
:func:`repro.obs.exporters.gantt`, :func:`repro.analysis.occupancy_summary`,
:func:`repro.obs.exporters.write_chrome_trace` — consumes real
executions exactly as it consumes simulated ones.

Resilience (same kwargs as the sequential executor): ``faults`` and
``recovery`` run every task under the retry/rollback engine of
:mod:`repro.runtime.resilience` — the deterministic fault draws depend
only on (seed, task, attempt), so a chaotic parallel run still produces
the bitwise-identical factor.  ``checkpoint``/``resume`` persist and
restore the completed-task frontier: checkpoints are written at panel
boundaries after *quiescing* the workers (no task in flight), so every
archive is a consistent dataflow cut.

Cancellation: ``KeyboardInterrupt``/``SystemExit`` raised inside a
worker drain the ready queue, release every pool-owned factor buffer,
and re-raise the original exception unchanged — ordinary kernel errors
are still wrapped in :class:`RuntimeSystemError`.
"""

from __future__ import annotations

import heapq
import os
import threading
import time
from dataclasses import dataclass, field

import numpy as np

from .. import obs
from ..linalg.compression import TruncationRule
from ..linalg.flops import FlopCounter
from ..matrix.memory import MemoryTracker
from ..matrix.tlr_matrix import BandTLRMatrix
from ..utils.exceptions import RuntimeSystemError, SchedulingError
from ..utils.validation import check_positive_int
from ..linalg.batched import BatchPlanner, run_batch
from .executor import (
    _batch_item,
    _canonical_tid,
    _commit_task,
    _compute_task,
    _record_batch_spans,
)
from .graph import TaskGraph
from .memory_pool import MemoryPool
from .resilience import ResilienceReport, as_checkpointer, build_manager
from .task import task_name, task_sort_key

__all__ = [
    "ParallelExecutionReport",
    "ThreadSafeFlopCounter",
    "ThreadSafeMemoryPool",
    "ThreadSafeMemoryTracker",
    "execute_graph_parallel",
]


class ThreadSafeFlopCounter(FlopCounter):
    """A :class:`FlopCounter` whose ``add`` is atomic under a lock.

    The read-modify-write on the per-class dicts is not atomic in
    CPython; concurrent kernels would lose updates without this.
    """

    def __init__(self) -> None:
        super().__init__()
        self._lock = threading.Lock()

    def add(self, kind, flops, count: int = 1) -> None:
        with self._lock:
            super().add(kind, flops, count)


class ThreadSafeMemoryPool(MemoryPool):
    """A :class:`MemoryPool` safe to share across worker threads.

    ``take`` calls ``allocate`` internally, hence the reentrant lock.
    """

    def __init__(self) -> None:
        super().__init__()
        self._lock = threading.RLock()

    def allocate(self, shape, dtype=np.float64):
        with self._lock:
            return super().allocate(shape, dtype=dtype)

    def release(self, buf) -> None:
        with self._lock:
            super().release(buf)

    def take(self, array):
        with self._lock:
            return super().take(array)


class ThreadSafeMemoryTracker(MemoryTracker):
    """A :class:`MemoryTracker` whose counters update atomically."""

    def __init__(self) -> None:
        super().__init__()
        self._lock = threading.Lock()

    def allocate_tile(self, key, tile) -> None:
        with self._lock:
            super().allocate_tile(key, tile)

    def transient(self, elements) -> None:
        with self._lock:
            super().transient(elements)


@dataclass
class ParallelExecutionReport:
    """Artifacts of a parallel (numerical) graph execution.

    Carries the same accounting as the sequential
    :class:`~repro.runtime.executor.ExecutionReport` plus the timing
    surface of a :class:`~repro.runtime.simulator.SimResult` (``makespan``,
    ``busy``, ``trace``, ``occupancy``) so the gantt/occupancy/Chrome-trace
    pipeline consumes real runs unchanged.  Each worker thread maps to one
    "process" lane (``nodes = n_workers``, ``cores_per_node = 1``).
    """

    counter: ThreadSafeFlopCounter = field(default_factory=ThreadSafeFlopCounter)
    tracker: ThreadSafeMemoryTracker = field(
        default_factory=ThreadSafeMemoryTracker
    )
    pool: ThreadSafeMemoryPool = field(default_factory=ThreadSafeMemoryPool)
    rank_growth_events: int = 0
    max_rank_seen: int = 0
    tasks_executed: int = 0
    tasks_resumed: int = 0
    resilience: ResilienceReport | None = None
    n_workers: int = 1
    makespan: float = 0.0
    busy: np.ndarray = field(default_factory=lambda: np.zeros(1))
    total_flops: float = 0.0
    trace: list[tuple] | None = None

    @property
    def nodes(self) -> int:
        """Worker count, presented as SimResult's process count."""
        return self.n_workers

    @property
    def cores_per_node(self) -> int:
        return 1

    @property
    def occupancy(self) -> np.ndarray:
        """Per-worker busy fraction in [0, 1]."""
        return self.busy / max(self.makespan, 1e-300)

    @property
    def achieved_gflops(self) -> float:
        """Modelled flops over real wall-clock (Gflop/s)."""
        return self.total_flops / max(self.makespan, 1e-300) / 1e9

    @property
    def speedup_vs_serial(self) -> float:
        """Aggregate busy time over makespan — parallel efficiency proxy."""
        return float(self.busy.sum()) / max(self.makespan, 1e-300)


def execute_graph_parallel(
    graph: TaskGraph,
    matrix: BandTLRMatrix,
    *,
    n_workers: int | None = None,
    rule: TruncationRule | None = None,
    use_pool: bool = True,
    scheduler: str = "priority",
    collect_trace: bool = False,
    backend=None,
    batch: bool = False,
    faults=None,
    recovery=None,
    checkpoint=None,
    resume: bool = False,
) -> ParallelExecutionReport:
    """Execute a (non-expanded) Cholesky task graph on worker threads.

    Parameters
    ----------
    graph:
        Graph built by :func:`repro.runtime.graph.build_cholesky_graph`
        *without* ``recursive_split`` (same restriction as the sequential
        executor).
    matrix:
        The compressed matrix to factorize; mutated into its Cholesky
        factor (lower triangle).  The result is bitwise identical to the
        sequential executor's.
    n_workers:
        Worker thread count; defaults to ``os.cpu_count()``.
    rule:
        Truncation rule for recompressions; defaults to the matrix's rule.
    use_pool:
        Re-associate recompression outputs with the shared memory pool
        (the Section VII-B dynamic-memory path).
    scheduler:
        Ready-queue policy, matching ``simulate(scheduler=...)``:
        ``"priority"`` (panel-ordered, critical-path promoting),
        ``"fifo"`` (become-ready order) or ``"lifo"`` (newest first).
    collect_trace:
        Record per-task ``(tid, worker, start, end)`` tuples in seconds
        relative to launch — consumable by ``obs.gantt`` and
        ``obs.write_chrome_trace`` exactly like a simulator trace.  In
        batched mode fused windows are apportioned to member tasks by
        modelled flops.
    batch:
        When a worker claims a task, it also claims every other *ready*
        task with the same batch key (same kernel class, shapes, ranks,
        dtypes — see :mod:`repro.linalg.batched`) and runs the bucket as
        one stacked BLAS/LAPACK call.  Results stay bitwise identical to
        unbatched execution for any worker count; the scheduler policy
        still picks *which* bucket goes first, batching only widens the
        claim.  Ignored (forced off) when the recovery engine is active.
    faults:
        Fault-injection source (spec string / ``FaultPlan`` / injector);
        implies the recovery engine.  Injection decisions depend only on
        (seed, task, attempt), never on scheduling, so chaos runs are
        reproducible across worker counts.
    recovery:
        A :class:`~repro.runtime.resilience.RecoveryPolicy`; ``None``
        with ``faults`` set uses the default policy.
    checkpoint:
        Checkpoint directory (or ``CheckpointConfig``/``Checkpointer``);
        written at panel boundaries after quiescing the workers.
    resume:
        Restore the latest checkpoint from ``checkpoint`` before
        executing; completed tasks are skipped.

    Returns
    -------
    ParallelExecutionReport

    Raises
    ------
    SchedulingError
        On an invalid scheduler policy or a cyclic graph (deadlock).
    RuntimeSystemError
        On graph/matrix mismatch, an expanded graph, or when a kernel
        raised inside a worker (the original exception is chained).
        ``KeyboardInterrupt``/``SystemExit`` are *not* wrapped: the run
        cancels cleanly and re-raises them unchanged.
    """
    if scheduler not in ("priority", "fifo", "lifo"):
        raise SchedulingError(
            f"scheduler must be 'priority', 'fifo' or 'lifo', got {scheduler!r}"
        )
    if n_workers is None:
        n_workers = os.cpu_count() or 1
    check_positive_int("n_workers", n_workers)
    if graph.ntiles != matrix.ntiles:
        raise RuntimeSystemError(
            f"graph is for NT={graph.ntiles} but the matrix has NT={matrix.ntiles}"
        )
    if graph.band_size != matrix.band_size:
        raise RuntimeSystemError(
            f"graph band_size={graph.band_size} does not match "
            f"matrix band_size={matrix.band_size}"
        )
    for tid, task in graph.tasks.items():
        if tid != _canonical_tid(task):
            raise RuntimeSystemError(
                "parallel executor received an expanded graph; build it "
                "without recursive_split"
            )

    rule = rule or matrix.rule
    backend = backend if backend is not None else matrix.backend
    report = ParallelExecutionReport(n_workers=n_workers)
    report.tracker.register_matrix(matrix)
    report.total_flops = graph.total_flops()

    # --- resilience / checkpoint state --------------------------------
    manager = build_manager(faults, recovery)
    ckptr = as_checkpointer(checkpoint)
    rrep = None
    if manager is not None:
        rrep = manager.report
    elif ckptr is not None:
        rrep = ResilienceReport()
    report.resilience = rrep

    completed: set[tuple] = set()
    panels = {"done": 0, "since": 0, "due": False}
    if resume and ckptr is not None:
        ck = ckptr.load_latest()
        if ck is not None:
            ckptr.validate_against(graph, matrix, ck)
            for ij, tile in ck.matrix.tiles.items():
                matrix.set_tile(*ij, tile)
            completed = set(ck.completed)
            panels["done"] = ck.panels_done
            report.tasks_resumed = len(completed)
            rrep.tasks_resumed = len(completed)

    # --- dependency countdown state -----------------------------------
    pending = [tid for tid in graph.tasks if tid not in completed]
    indeg: dict[tuple, int] = {}
    succs: dict[tuple, list[tuple]] = {tid: [] for tid in graph.tasks}
    for tid in pending:
        sources = {e.src for e in graph.tasks[tid].deps} - completed
        indeg[tid] = len(sources)
        for src in sources:
            succs[src].append(tid)

    cond = threading.Condition()
    ready: list[tuple] = []  # heap of (key, tid)
    arrival_seq = 0

    def ready_key(tid: tuple) -> tuple:
        nonlocal arrival_seq
        arrival_seq += 1
        if scheduler == "fifo":
            return (arrival_seq,)
        if scheduler == "lifo":
            return (-arrival_seq,)
        return task_sort_key(graph.tasks[tid])

    # --- batching state (caller holds ``cond`` for all mutations) -----
    # A task's batch key is computable the moment it becomes ready (its
    # input tiles are final), so buckets are maintained alongside the
    # heap: claiming one task claims its whole bucket, and stale heap
    # entries of co-claimed tasks are skipped on pop.
    batching = batch and manager is None
    planner = BatchPlanner() if batching else None
    bucket_of: dict[tuple, tuple | None] = {}
    buckets: dict[tuple, list[tuple]] = {}
    claimed: set[tuple] = set()

    def register_ready(tid: tuple) -> None:
        heapq.heappush(ready, (ready_key(tid), tid))
        if batching:
            kb = planner.key(_batch_item(tid, graph.tasks[tid], matrix))
            bucket_of[tid] = kb
            if kb is not None:
                buckets.setdefault(kb, []).append(tid)

    def claim_group(tid: tuple) -> list[tuple]:
        """The bucket ``tid`` leads, capped at the planner's max batch."""
        group = [tid]
        if batching:
            kb = bucket_of.get(tid)
            if kb is not None:
                members = [
                    t for t in buckets.pop(kb, []) if t not in claimed
                ]
                if members:
                    members.sort(
                        key=lambda t: task_sort_key(graph.tasks[t])
                    )
                    group = members[: planner.max_batch]
                    rest = members[planner.max_batch :]
                    if rest:
                        buckets[kb] = rest
        claimed.update(group)
        return group

    for tid in pending:
        if indeg[tid] == 0:
            register_ready(tid)

    n_tasks = len(pending)
    state = {"executed": 0, "inflight": 0, "failed": None, "cancelled": False}

    panel_remaining: dict[int, int] = {}
    for tid in pending:
        p = graph.tasks[tid].panel
        panel_remaining[p] = panel_remaining.get(p, 0) + 1

    # --- shared numerical state ---------------------------------------
    # One lock per stored tile, held while *writing* that tile.  Reads
    # need no lock: a task's input tiles were finalized by dependency
    # predecessors, and the dataflow chains guarantee no concurrent
    # writer exists while a reader runs.  Locking only the destination is
    # what lets GEMMs that share a panel tile update disjoint output
    # tiles concurrently.
    tile_locks = {ij: threading.Lock() for ij in matrix.tiles}
    pooled: dict[int, np.ndarray] = {}  # id -> factor array owned by pool
    stats_lock = threading.Lock()

    if manager is not None:

        def _discard(tile) -> None:
            from ..linalg.tiles import LowRankTile

            if isinstance(tile, LowRankTile):
                for arr in (tile.u, tile.v):
                    with stats_lock:
                        owned = pooled.pop(id(arr), None) is not None
                    if owned:
                        report.pool.release(arr)

        manager.discard = _discard

    def run_task(tid: tuple) -> None:
        task = graph.tasks[tid]
        with tile_locks[task.out_tile]:
            if manager is not None:
                out, recomp = manager.run(
                    task,
                    matrix,
                    lambda: _compute_task(
                        tid, task, matrix, rule, backend, report.counter
                    ),
                )
            else:
                out, recomp = _compute_task(
                    tid, task, matrix, rule, backend, report.counter
                )
            _commit_task(
                tid, task, out, recomp, matrix, report, pooled,
                use_pool, stats_lock,
            )

    def run_group(tids: list[tuple]) -> None:
        """Execute a claimed batch with one stacked kernel call.

        Ready tasks always have distinct output tiles, so the write
        locks form a disjoint set; acquiring them in sorted order keeps
        lock acquisition deadlock-free against the singleton path.
        """
        items = [_batch_item(t, graph.tasks[t], matrix) for t in tids]
        out_locks = [
            tile_locks[ij]
            for ij in sorted({graph.tasks[t].out_tile for t in tids})
        ]
        for lk in out_locks:
            lk.acquire()
        try:
            results = run_batch(
                items, rule, counter=report.counter, backend=backend
            )
            for res in results:
                _commit_task(
                    res.ref, graph.tasks[res.ref], res.out, res.recomp,
                    matrix, report, pooled, use_pool, stats_lock,
                )
        finally:
            for lk in reversed(out_locks):
                lk.release()

    def write_checkpoint() -> None:
        """Persist the frontier; caller holds ``cond`` with no task
        in flight, so the tile state is a consistent dataflow cut."""
        ckptr.save(matrix, completed, panels["done"])
        rrep.checkpoints_written += 1

    busy = np.zeros(n_workers)
    traces: list[list[tuple]] = [[] for _ in range(n_workers)]
    observing = obs.enabled()
    if observing:
        obs.graph_observed(graph, task_name)
    t0 = time.perf_counter()

    def worker(wid: int) -> None:
        while True:
            with cond:
                while True:
                    if state["failed"] is not None:
                        return
                    if panels["due"]:
                        if state["inflight"] == 0:
                            # Quiesced: this worker writes the
                            # checkpoint while peers wait.
                            try:
                                write_checkpoint()
                            except Exception as exc:
                                state["failed"] = exc
                                cond.notify_all()
                                return
                            panels["due"] = False
                            panels["since"] = 0
                            cond.notify_all()
                        else:
                            cond.wait(timeout=0.05)
                            continue
                    if ready:
                        _, tid = heapq.heappop(ready)
                        if tid in claimed:
                            # Stale heap entry: this task already ran as
                            # a co-claimed member of an earlier batch.
                            continue
                        group = claim_group(tid)
                        state["inflight"] += len(group)
                        if observing:
                            obs.sample("ready_queue_depth", len(ready))
                        break
                    if state["executed"] + state["inflight"] >= n_tasks:
                        return
                    cond.wait(timeout=0.05)
            start = time.perf_counter() - t0
            try:
                if len(group) == 1:
                    tid = group[0]
                    if observing:
                        _task = graph.tasks[tid]
                        with obs.span(
                            task_name(tid),
                            "task",
                            worker=wid,
                            kernel=_task.kernel.value,
                            flops=_task.flops,
                        ):
                            run_task(tid)
                    else:
                        run_task(tid)
                else:
                    clk0 = obs.clock() if observing else 0.0
                    run_group(group)
                    if observing:
                        _record_batch_spans(
                            group, graph, clk0, obs.clock(), worker=wid
                        )
            except Exception as exc:  # propagate to the caller (wrapped)
                with cond:
                    if state["failed"] is None:
                        state["failed"] = exc
                    state["inflight"] -= len(group)
                    cond.notify_all()
                return
            except BaseException as exc:
                # KeyboardInterrupt / SystemExit: cancel cleanly — drain
                # the ready queue so peers stop picking work, and let the
                # caller release pool buffers and re-raise unchanged.
                with cond:
                    if state["failed"] is None:
                        state["failed"] = exc
                        state["cancelled"] = True
                    ready.clear()
                    state["inflight"] -= len(group)
                    cond.notify_all()
                return
            end = time.perf_counter() - t0
            busy[wid] += end - start
            if collect_trace:
                if len(group) == 1:
                    traces[wid].append((group[0], wid, start, end))
                else:
                    # Apportion the batched window per task by modelled
                    # flops, mirroring _record_batch_spans.
                    weights = [
                        max(graph.tasks[t].flops, 1.0) for t in group
                    ]
                    total_w = sum(weights)
                    cursor = start
                    for t2, w in zip(group, weights):
                        t_end = cursor + (end - start) * (w / total_w)
                        traces[wid].append((t2, wid, cursor, t_end))
                        cursor = t_end
            with cond:
                state["inflight"] -= len(group)
                state["executed"] += len(group)
                released = 0
                for t2 in group:
                    completed.add(t2)
                    task = graph.tasks[t2]
                    panel_remaining[task.panel] -= 1
                    if panel_remaining[task.panel] == 0:
                        panels["done"] += 1
                        panels["since"] += 1
                        if (
                            ckptr is not None
                            and panels["since"] >= ckptr.config.every
                            and state["executed"] < n_tasks
                        ):
                            panels["due"] = True
                    for succ in succs[t2]:
                        indeg[succ] -= 1
                        if indeg[succ] == 0:
                            register_ready(succ)
                            released += 1
                if observing and released:
                    obs.sample("ready_queue_depth", len(ready))
                if state["executed"] == n_tasks or released or panels["due"]:
                    cond.notify_all()

    threads = [
        threading.Thread(target=worker, args=(w,), name=f"repro-worker-{w}")
        for w in range(n_workers)
    ]
    try:
        for t in threads:
            t.start()
        for t in threads:
            t.join()
    finally:
        if manager is not None:
            manager.close()

    report.makespan = time.perf_counter() - t0
    report.busy = busy
    report.tasks_executed = state["executed"]
    if observing:
        obs.gauge_set("makespan_s", report.makespan, executor="parallel")
        obs.counter_add(
            "tasks_executed", report.tasks_executed, executor="parallel"
        )
        for wid in range(n_workers):
            obs.gauge_set(
                "worker_occupancy",
                float(busy[wid]) / max(report.makespan, 1e-300),
                worker=str(wid),
            )
        obs.pool_observed(report.pool.stats, pool="executor")
        from ..linalg.backends import get_backend

        obs.pool_observed(
            get_backend(backend).workspace_pool_stats, pool="workspace"
        )
    if collect_trace:
        report.trace = sorted(
            (rec for per_worker in traces for rec in per_worker),
            key=lambda r: (r[1], r[2]),
        )

    if state["failed"] is not None:
        if state["cancelled"]:
            # Clean cancellation: no task is running, so every buffer
            # the pool still considers live can be returned before the
            # interrupt continues up the stack.
            with stats_lock:
                leaked = list(pooled.values())
                pooled.clear()
            for arr in leaked:
                report.pool.release(arr)
            raise state["failed"]
        raise RuntimeSystemError(
            f"worker failed while executing the graph: {state['failed']}"
        ) from state["failed"]
    if state["executed"] != n_tasks:
        raise SchedulingError(
            f"parallel execution deadlocked: {state['executed']} of "
            f"{n_tasks} tasks completed (cyclic graph?)"
        )
    if ckptr is not None and state["executed"]:
        # Final checkpoint: resuming a finished run is a no-op.
        with cond:
            write_checkpoint()
    return report
