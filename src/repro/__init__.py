"""repro — BAND-DENSE-TLR Cholesky with a rank-aware task runtime.

A from-scratch Python reproduction of *"Leveraging PaRSEC Runtime Support
to Tackle Challenging 3D Data-Sparse Matrix Problems"* (Cao, Pei, Akbudak,
Bosilca, Ltaief, Keyes, Dongarra — IPDPS 2021): tile low-rank Cholesky
factorization of 3D Matérn covariance matrices, with the paper's four
runtime contributions — BAND-DENSE-TLR dynamic data-structure management
(with the Algorithm-1 BAND_SIZE auto-tuner), dynamic memory designation,
hybrid rank-aware data distribution, and recursive dense kernels — plus a
discrete-event simulator standing in for the distributed machine.

Quick start::

    from repro import TLRSolver, st_3d_exp_problem

    problem = st_3d_exp_problem(n=4096, tile_size=256)
    solver = TLRSolver.from_problem(problem, accuracy=1e-8)
    solver.factorize()
    x = solver.solve(rhs)

Sub-packages:

* :mod:`repro.geometry`    — point clouds, Morton ordering, distances
* :mod:`repro.statistics`  — Matérn kernels, covariance problems (STARS-H)
* :mod:`repro.linalg`      — tiles, compression, HCORE kernels, flop models
* :mod:`repro.matrix`      — BAND-DENSE-TLR containers, memory accounting
* :mod:`repro.distribution`— 2D/1D block-cyclic and hybrid band layouts
* :mod:`repro.runtime`     — task graphs, executor, machine simulator
* :mod:`repro.core`        — factorization, auto-tuner, solves, MLE, API
* :mod:`repro.analysis`    — rank/occupancy/speedup reporting
"""

from .core.api import TLRSolver
from .linalg.backends import (
    CompressionBackend,
    RandomizedSVDBackend,
    SVDBackend,
    get_backend,
)
from .linalg.compression import TruncationRule
from .statistics.matern import ST_3D_EXP, MaternParams
from .statistics.problem import CovarianceProblem, st_3d_exp_problem

__version__ = "1.0.0"

__all__ = [
    "TLRSolver",
    "TruncationRule",
    "CompressionBackend",
    "SVDBackend",
    "RandomizedSVDBackend",
    "get_backend",
    "MaternParams",
    "ST_3D_EXP",
    "CovarianceProblem",
    "st_3d_exp_problem",
    "__version__",
]
