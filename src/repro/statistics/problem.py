"""Covariance matrix problems (the STARS-H substitute).

A :class:`CovarianceProblem` couples a set of spatial locations with a
Matérn kernel and exposes *tile-wise lazy assembly*: the full n-by-n
covariance matrix is never materialized unless explicitly requested.  The
TLR machinery asks for one ``b x b`` tile at a time, generates it, and
immediately compresses it — exactly the STARS-H -> HiCMA pipeline of the
paper, which is what lets problem sizes exceed dense-storage limits.

A small additive nugget (diagonal regularization) keeps the matrix
numerically positive definite; the exponential kernel on distinct points
is positive definite in exact arithmetic, but compression perturbs tiles
by up to the accuracy threshold, so the nugget must dominate the
compression error for the factorization to succeed (Section VIII-A pairs
eps = 1e-8 with solution errors ~1e-9).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..geometry.distance import block_distances
from ..geometry.grids import generate_locations
from ..utils.exceptions import ConfigurationError, ProblemError
from ..utils.validation import check_positive_int
from .matern import ST_3D_EXP, MaternParams, matern

__all__ = ["CovarianceProblem", "st_3d_exp_problem", "st_2d_exp_problem"]


@dataclass
class CovarianceProblem:
    """A data-sparse symmetric positive-definite covariance problem.

    Attributes
    ----------
    points:
        Locations, shape ``(n, d)``, already ordered (Morton order for the
        paper's pipeline).
    params:
        Matérn kernel parameters.
    tile_size:
        Tile dimension ``b``.  The last tile in each direction may be
        smaller when ``b`` does not divide ``n``.
    nugget:
        Additive diagonal term ensuring positive definiteness against
        compression error.
    """

    points: np.ndarray
    params: MaternParams = field(default_factory=lambda: ST_3D_EXP)
    tile_size: int = 256
    nugget: float = 1e-6

    def __post_init__(self) -> None:
        self.points = np.asarray(self.points, dtype=np.float64)
        if self.points.ndim != 2:
            raise ConfigurationError(
                f"points must be (n, d), got shape {self.points.shape}"
            )
        self.tile_size = check_positive_int("tile_size", self.tile_size)
        if self.nugget < 0:
            raise ConfigurationError(f"nugget must be >= 0, got {self.nugget}")
        if self.tile_size > self.n:
            raise ConfigurationError(
                f"tile_size {self.tile_size} exceeds problem size {self.n}"
            )

    # ------------------------------------------------------------------
    # Shape helpers
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of locations (matrix dimension)."""
        return self.points.shape[0]

    @property
    def ndim(self) -> int:
        """Spatial dimension of the locations."""
        return self.points.shape[1]

    @property
    def ntiles(self) -> int:
        """Number of tile rows/columns ``NT = ceil(n / b)``."""
        return -(-self.n // self.tile_size)

    def tile_rows(self, i: int) -> slice:
        """Global index range covered by tile row ``i``."""
        if not (0 <= i < self.ntiles):
            raise ProblemError(f"tile index {i} out of range [0, {self.ntiles})")
        lo = i * self.tile_size
        return slice(lo, min(lo + self.tile_size, self.n))

    def tile_shape(self, i: int, j: int) -> tuple[int, int]:
        """Shape of tile ``(i, j)``."""
        ri, rj = self.tile_rows(i), self.tile_rows(j)
        return (ri.stop - ri.start, rj.stop - rj.start)

    # ------------------------------------------------------------------
    # Assembly
    # ------------------------------------------------------------------
    def tile(self, i: int, j: int) -> np.ndarray:
        """Generate the dense ``(i, j)`` covariance tile.

        Diagonal tiles (``i == j``) include the nugget term.
        """
        ri, rj = self.tile_rows(i), self.tile_rows(j)
        d = block_distances(self.points[ri], self.points[rj])
        if i == j:
            # Self-distances are exactly zero; the GEMM-based distance
            # formula leaves ~sqrt(eps) round-off there.
            np.fill_diagonal(d, 0.0)
        tile = matern(d, self.params)
        if i == j and self.nugget > 0.0:
            tile[np.diag_indices_from(tile)] += self.nugget
        return tile

    def dense(self) -> np.ndarray:
        """Materialize the full covariance matrix (small problems only).

        Guarded at 20k x 20k (~3.2 GB float64) to prevent accidental OOM.
        """
        if self.n > 20_000:
            raise ProblemError(
                f"refusing to materialize a dense {self.n}x{self.n} matrix; "
                "use tile-wise assembly instead"
            )
        d = block_distances(self.points, self.points)
        np.fill_diagonal(d, 0.0)
        cov = matern(d, self.params)
        if self.nugget > 0.0:
            cov[np.diag_indices_from(cov)] += self.nugget
        return cov

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def sample_measurements(
        self, seed: int | None = 0, *, n_samples: int = 1
    ) -> np.ndarray:
        """Draw measurement vector(s) ``z ~ N(0, Sigma)`` by exact sampling.

        Computes a dense Cholesky factor and returns ``L @ w`` with
        ``w ~ N(0, I)``; intended for the reduced-scale MLE experiments
        (the paper's climate measurement vectors are proprietary — this is
        the documented substitution: exact draws from the same model).

        Returns
        -------
        numpy.ndarray
            Shape ``(n,)`` when ``n_samples == 1``, else ``(n, n_samples)``.
        """
        import scipy.linalg as sla

        cov = self.dense()
        chol = sla.cholesky(cov, lower=True)
        rng = np.random.default_rng(seed)
        w = rng.standard_normal((self.n, n_samples))
        z = chol @ w
        return z[:, 0] if n_samples == 1 else z


def st_3d_exp_problem(
    n: int,
    tile_size: int,
    *,
    params: MaternParams = ST_3D_EXP,
    nugget: float = 1e-6,
    seed: int | None = 0,
    layout: str = "perturbed-grid",
) -> CovarianceProblem:
    """Build the paper's st-3D-exp benchmark problem at size ``n``.

    Generates ``n`` Morton-ordered locations in the unit cube and attaches
    the exponential Matérn kernel with :math:`\\theta = (1, 0.1, 0.5)`.
    """
    pts = generate_locations(n, ndim=3, layout=layout, seed=seed, morton=True)
    return CovarianceProblem(
        points=pts, params=params, tile_size=tile_size, nugget=nugget
    )


def st_2d_exp_problem(
    n: int,
    tile_size: int,
    *,
    params: MaternParams = ST_3D_EXP,
    nugget: float = 1e-6,
    seed: int | None = 0,
    layout: str = "perturbed-grid",
) -> CovarianceProblem:
    """The 2D analogue of the st-3D-exp problem.

    The paper repeatedly contrasts 2D and 3D behaviour: 2D exponential
    kernels yield much lower off-diagonal ranks (weak-admissibility
    territory) so the BAND-DENSE-TLR machinery degenerates gracefully to
    BAND_SIZE = 1 — "similar to 2D applications" (Section VIII-G).  This
    factory exists so that contrast can be measured, not assumed.
    """
    pts = generate_locations(n, ndim=2, layout=layout, seed=seed, morton=True)
    return CovarianceProblem(
        points=pts, params=params, tile_size=tile_size, nugget=nugget
    )
