"""Statistical kernels and covariance problems (STARS-H substitute)."""

from .matern import ST_3D_EXP, MaternParams, matern, matern_exponential
from .problem import CovarianceProblem, st_2d_exp_problem, st_3d_exp_problem
from .spectra import rank_grids_for_thresholds, subdiagonal_singular_values

__all__ = [
    "ST_3D_EXP",
    "MaternParams",
    "matern",
    "matern_exponential",
    "CovarianceProblem",
    "st_3d_exp_problem",
    "st_2d_exp_problem",
    "rank_grids_for_thresholds",
    "subdiagonal_singular_values",
]
