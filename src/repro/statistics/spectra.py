"""Multi-threshold rank analysis from a single SVD sweep.

The accuracy-threshold studies (Fig. 13) need the post-compression rank
grid of the same operator at several ε.  Compressing the matrix once per
threshold repeats the dominant SVD cost; since the truncation rank is a
pure function of each tile's singular-value profile, one SVD pass yields
the rank grids for *every* threshold at once.
"""

from __future__ import annotations

import numpy as np
import scipy.linalg as sla

from ..linalg.compression import TruncationRule, truncation_rank
from ..utils.exceptions import ProblemError
from .problem import CovarianceProblem

__all__ = ["subdiagonal_singular_values", "rank_grids_for_thresholds"]


def subdiagonal_singular_values(
    problem: CovarianceProblem, *, max_subdiagonal: int | None = None
) -> dict[tuple[int, int], np.ndarray]:
    """Singular-value profiles of every off-diagonal lower tile.

    Parameters
    ----------
    problem:
        The covariance problem (tiles generated lazily, one at a time).
    max_subdiagonal:
        Only analyze tiles with ``i - j <= max_subdiagonal`` (the far
        tiles' ranks are rarely interesting); ``None`` analyzes all.

    Returns
    -------
    dict
        ``(i, j) -> descending singular values`` for each analyzed tile.
    """
    nt = problem.ntiles
    if nt < 2:
        raise ProblemError("need at least two tile rows for off-diagonal tiles")
    out: dict[tuple[int, int], np.ndarray] = {}
    for i in range(nt):
        for j in range(i):
            if max_subdiagonal is not None and (i - j) > max_subdiagonal:
                continue
            block = problem.tile(i, j)
            out[(i, j)] = sla.svd(block, compute_uv=False)
    return out


def rank_grids_for_thresholds(
    problem: CovarianceProblem,
    thresholds: list[float],
    *,
    norm: str = "spectral",
    relative: bool = False,
) -> dict[float, np.ndarray]:
    """Rank grids of the compressed operator at several thresholds.

    One SVD per tile serves every threshold — the rank at ε is just the
    truncation rank of the stored singular values.

    Returns
    -------
    dict
        ``eps -> NT x NT rank grid`` (−1 on the diagonal and upper
        triangle, matching :meth:`BandTLRMatrix.rank_grid`).
    """
    spectra = subdiagonal_singular_values(problem)
    nt = problem.ntiles
    grids: dict[float, np.ndarray] = {}
    for eps in thresholds:
        rule = TruncationRule(eps=eps, norm=norm, relative=relative)
        grid = np.full((nt, nt), -1, dtype=np.int64)
        for (i, j), s in spectra.items():
            grid[i, j] = truncation_rank(s, rule)
        grids[eps] = grid
    return grids
