r"""Matérn covariance kernels (Eq. 2 of the paper).

The Matérn family is

.. math::

    C(r; \theta) = \frac{\theta_1}{2^{\theta_3 - 1}\,\Gamma(\theta_3)}
                   \left(\frac{r}{\theta_2}\right)^{\theta_3}
                   K_{\theta_3}\!\left(\frac{r}{\theta_2}\right),

with :math:`\theta_1` the variance, :math:`\theta_2` the correlation
length, :math:`\theta_3` the smoothness, and :math:`K_\nu` the modified
Bessel function of the second kind.  The paper's *st-3D-exp* setting is
:math:`\theta = (1, 0.1, 0.5)`, for which the kernel reduces exactly to
the decaying exponential :math:`C(r) = \exp(-r / 0.1)` — medium
correlation on a rough field, the hard case for TLR compression.

Closed forms are used for half-integer smoothness (:math:`\nu \in
\{1/2, 3/2, 5/2\}`) both for speed and to avoid Bessel under/overflow;
the general branch calls :func:`scipy.special.kv`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy import special

from ..utils.exceptions import ConfigurationError
from ..utils.validation import check_positive_float

__all__ = ["MaternParams", "matern", "matern_exponential", "ST_3D_EXP"]


@dataclass(frozen=True)
class MaternParams:
    """Parameter vector :math:`\\theta = (\\theta_1, \\theta_2, \\theta_3)`.

    Attributes
    ----------
    variance:
        :math:`\\theta_1 > 0`, the marginal variance (kernel value at r=0).
    correlation_length:
        :math:`\\theta_2 > 0`, range parameter; larger means smoother decay.
    smoothness:
        :math:`\\theta_3 > 0`, Matérn smoothness :math:`\\nu`.
    """

    variance: float = 1.0
    correlation_length: float = 0.1
    smoothness: float = 0.5

    def __post_init__(self) -> None:
        check_positive_float("variance", self.variance)
        check_positive_float("correlation_length", self.correlation_length)
        check_positive_float("smoothness", self.smoothness)

    def as_tuple(self) -> tuple[float, float, float]:
        """Return ``(theta1, theta2, theta3)``."""
        return (self.variance, self.correlation_length, self.smoothness)


#: The paper's st-3D-exp parameterization: exp(-r / 0.1).
ST_3D_EXP = MaternParams(variance=1.0, correlation_length=0.1, smoothness=0.5)


def matern_exponential(r: np.ndarray, variance: float, length: float) -> np.ndarray:
    """Exponential kernel :math:`\\theta_1 \\exp(-r/\\theta_2)` (:math:`\\nu=1/2`)."""
    r = np.asarray(r, dtype=np.float64)
    return variance * np.exp(-r / length)


def _matern_half_integer(r: np.ndarray, p: MaternParams) -> np.ndarray | None:
    """Closed forms of Eq. 2 for nu in {0.5, 1.5, 2.5}; None otherwise.

    These are the literal half-integer specializations of Eq. 2 (Stein's
    geostatistics convention, no sqrt(3)/sqrt(5) rescaling), so they agree
    bit-for-bit in the limit with the general Bessel branch.
    """
    nu = p.smoothness
    s = np.asarray(r, dtype=np.float64) / p.correlation_length
    if math.isclose(nu, 0.5):
        return p.variance * np.exp(-s)
    if math.isclose(nu, 1.5):
        return p.variance * (1.0 + s) * np.exp(-s)
    if math.isclose(nu, 2.5):
        return p.variance * (1.0 + s + s * s / 3.0) * np.exp(-s)
    return None


def matern(r: np.ndarray, params: MaternParams = ST_3D_EXP) -> np.ndarray:
    """Evaluate the Matérn kernel element-wise on a distance array.

    Parameters
    ----------
    r:
        Non-negative distances, any shape.
    params:
        Kernel parameters; defaults to the paper's st-3D-exp setting.

    Returns
    -------
    numpy.ndarray
        ``C(r; theta)`` with the exact limit ``theta1`` at ``r == 0``.

    Notes
    -----
    Half-integer smoothness (0.5, 1.5, 2.5) uses closed forms of Eq. 2 —
    e.g. :math:`\\nu = 1/2` is :math:`\\exp(-r/\\theta_2)`, matching the
    paper's statement that :math:`\\theta = (1, 0.1, 0.5)` reduces Eq. 2 to
    ``exp(-r/0.1)``.  Other smoothness values evaluate Eq. 2 literally via
    ``scipy.special.kv``.
    """
    r = np.asarray(r, dtype=np.float64)
    if np.any(r < 0):
        raise ConfigurationError("distances must be non-negative")

    closed = _matern_half_integer(r, params)
    if closed is not None:
        return closed

    nu = params.smoothness
    s = r / params.correlation_length
    out = np.full(r.shape, params.variance, dtype=np.float64)
    pos = s > 0
    if np.any(pos):
        sp = s[pos]
        coeff = params.variance / (2.0 ** (nu - 1.0) * special.gamma(nu))
        with np.errstate(over="ignore", under="ignore"):
            vals = coeff * sp**nu * special.kv(nu, sp)
        # K_nu underflows to 0 for large arguments: the correct limit is 0.
        vals = np.nan_to_num(vals, nan=0.0, posinf=0.0, neginf=0.0)
        out[pos] = vals
    return out
