"""Tile-size selection (Section VIII-C).

For TLR matrix computations the minimal operation count is attained at
``b = O(sqrt(N))`` (the paper cites Akbudak et al. [17] and checks that the
estimate — 1039 for N = 1.08M, 1469 for N = 2.16M, i.e. exactly
``sqrt(N)`` — is "a reasonably good starting point").  The paper then
searches locally around the estimate and stops when the time trend turns.

:func:`suggest_tile_size` returns the analytic starting point;
:func:`local_minimum_search` implements the stop-at-local-minimum sweep
over a user-supplied evaluation function (the benchmarks pass simulated or
measured time-to-solution).
"""

from __future__ import annotations

from typing import Callable, Sequence

from ..utils.exceptions import ConfigurationError
from ..utils.validation import check_positive_int

__all__ = ["suggest_tile_size", "candidate_tile_sizes", "local_minimum_search"]


def suggest_tile_size(
    n: int, *, coefficient: float = 1.0, multiple_of: int = 1, minimum: int = 32
) -> int:
    """The ``b ≈ c · sqrt(N)`` starting point.

    Parameters
    ----------
    n:
        Matrix dimension.
    coefficient:
        The ``c`` in front of ``sqrt(N)`` (1.0 reproduces the paper's
        1039/1469 examples).
    multiple_of:
        Round to a multiple (useful to align with hardware blocking).
    minimum:
        Lower clamp for tiny problems.
    """
    n = check_positive_int("n", n)
    check_positive_int("multiple_of", multiple_of)
    b = coefficient * n**0.5
    b = max(int(round(b / multiple_of)) * multiple_of, minimum)
    return min(b, n)


def candidate_tile_sizes(
    n: int, *, count: int = 5, step: float = 1.5, **kwargs
) -> list[int]:
    """A geometric sweep of tile sizes centred on the suggestion.

    Returns ``count`` candidates spanning ``[b*/step^h, b*·step^h]`` with
    ``h = (count-1)/2``, deduplicated and clamped to ``[minimum, n]``.
    """
    check_positive_int("count", count)
    if step <= 1.0:
        raise ConfigurationError(f"step must be > 1, got {step}")
    base = suggest_tile_size(n, **kwargs)
    half = (count - 1) / 2.0
    cands = sorted(
        {
            min(max(int(round(base * step ** (i - half))), 16), n)
            for i in range(count)
        }
    )
    return cands


def local_minimum_search(
    candidates: Sequence[int],
    evaluate: Callable[[int], float],
) -> tuple[int, dict[int, float]]:
    """Sweep tile sizes in increasing order, stopping past a local minimum.

    Mirrors the paper's procedure: start from the analytic estimate and
    stop "when the time-to-solution trend changes".  Returns the best tile
    size and all evaluations performed.
    """
    if not candidates:
        raise ConfigurationError("no tile-size candidates supplied")
    results: dict[int, float] = {}
    best_b, best_t = None, float("inf")
    rising = 0
    for b in sorted(candidates):
        t = float(evaluate(b))
        results[b] = t
        if t < best_t:
            best_b, best_t = b, t
            rising = 0
        else:
            rising += 1
            if rising >= 2:  # two consecutive worse points: trend changed
                break
    assert best_b is not None
    return best_b, results
