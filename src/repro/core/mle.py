r"""Maximum Likelihood Estimation on TLR-factorized covariance matrices.

Equation (1) of the paper:

.. math::

    \ell(\theta) = -\frac{n}{2}\log(2\pi) - \frac{1}{2}\log|\Sigma(\theta)|
                   - \frac{1}{2} Z^\top \Sigma(\theta)^{-1} Z.

Each likelihood evaluation assembles the covariance at the candidate
``θ``, compresses it, runs the TLR Cholesky, and reads off
``log|Σ| = 2 Σ log L_ii`` and ``Z^T Σ^{-1} Z = ||L^{-1} Z||²`` — exactly
the pipeline the paper accelerates (the factorization *is* the MLE inner
loop).  The optimizer is a Nelder-Mead search over log-parameters, the
standard derivative-free choice for the 2-3 dimensional Matérn problem.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy import optimize

from ..linalg.compression import TruncationRule
from ..statistics.matern import MaternParams
from ..statistics.problem import CovarianceProblem
from ..utils.exceptions import ConfigurationError, NotPositiveDefiniteError
from ..matrix.tlr_matrix import BandTLRMatrix
from .factorize import tlr_cholesky
from .solve import forward_solve, log_det

__all__ = ["log_likelihood", "LikelihoodEvaluator", "MLEResult", "fit_mle"]

_LOG_2PI = float(np.log(2.0 * np.pi))


def log_likelihood(factor: BandTLRMatrix, z: np.ndarray) -> float:
    """Evaluate Eq. (1) given an already-factorized covariance.

    Parameters
    ----------
    factor:
        The matrix after :func:`repro.core.factorize.tlr_cholesky`.
    z:
        Measurement vector of length ``n``.
    """
    z = np.asarray(z, dtype=np.float64)
    if z.ndim != 1 or z.shape[0] != factor.n:
        raise ConfigurationError(
            f"z must be a length-{factor.n} vector, got shape {z.shape}"
        )
    y = forward_solve(factor, z)
    quad = float(y @ y)
    return -0.5 * (factor.n * _LOG_2PI + log_det(factor) + quad)


@dataclass
class LikelihoodEvaluator:
    """Re-evaluates the likelihood at candidate Matérn parameters.

    Attributes
    ----------
    points:
        Spatial locations (already Morton-ordered).
    z:
        Measurement vector.
    tile_size:
        Tile size ``b`` for the TLR machinery.
    rule:
        Compression rule (the accuracy threshold the MLE runs at).
    band_size:
        Dense band width used for every evaluation.
    nugget:
        Diagonal regularization added at each candidate.
    smoothness:
        Fixed smoothness :math:`\\theta_3` (the paper estimates range and
        variance at fixed smoothness 0.5).
    evaluations:
        Log of ``(theta1, theta2, loglik)`` triples, for diagnostics.
    """

    points: np.ndarray
    z: np.ndarray
    tile_size: int
    rule: TruncationRule = field(default_factory=TruncationRule)
    band_size: int = 1
    nugget: float = 1e-6
    smoothness: float = 0.5
    evaluations: list[tuple[float, float, float]] = field(default_factory=list)

    def __call__(self, variance: float, correlation_length: float) -> float:
        """Log-likelihood at ``(θ1, θ2)``; −inf for infeasible candidates."""
        try:
            params = MaternParams(
                variance=variance,
                correlation_length=correlation_length,
                smoothness=self.smoothness,
            )
        except ConfigurationError:
            return float("-inf")
        problem = CovarianceProblem(
            points=self.points,
            params=params,
            tile_size=self.tile_size,
            nugget=self.nugget,
        )
        matrix = BandTLRMatrix.from_problem(problem, self.rule, self.band_size)
        try:
            tlr_cholesky(matrix)
        except NotPositiveDefiniteError:
            return float("-inf")
        ll = log_likelihood(matrix, self.z)
        self.evaluations.append((variance, correlation_length, ll))
        return ll


@dataclass(frozen=True)
class MLEResult:
    """Outcome of the MLE optimization.

    Attributes
    ----------
    variance, correlation_length:
        The estimated :math:`\\hat\\theta_1, \\hat\\theta_2`.
    log_likelihood:
        Likelihood at the optimum.
    n_evaluations:
        Covariance factorizations performed.
    converged:
        Optimizer's success flag.
    """

    variance: float
    correlation_length: float
    log_likelihood: float
    n_evaluations: int
    converged: bool


def fit_mle(
    evaluator: LikelihoodEvaluator,
    *,
    initial: tuple[float, float] = (1.0, 0.1),
    xatol: float = 1e-3,
    fatol: float = 1e-4,
    max_iterations: int = 200,
) -> MLEResult:
    """Maximize the likelihood over ``(θ1, θ2)`` with Nelder-Mead.

    The search runs in log-parameter space, which keeps both parameters
    positive and equalizes their scales.
    """
    if initial[0] <= 0 or initial[1] <= 0:
        raise ConfigurationError("initial parameters must be positive")

    def objective(log_theta: np.ndarray) -> float:
        t1, t2 = float(np.exp(log_theta[0])), float(np.exp(log_theta[1]))
        return -evaluator(t1, t2)

    res = optimize.minimize(
        objective,
        x0=np.log(np.asarray(initial, dtype=np.float64)),
        method="Nelder-Mead",
        options={
            "xatol": xatol,
            "fatol": fatol,
            "maxiter": max_iterations,
        },
    )
    t1, t2 = np.exp(res.x)
    return MLEResult(
        variance=float(t1),
        correlation_length=float(t2),
        log_likelihood=float(-res.fun),
        n_evaluations=len(evaluator.evaluations),
        converged=bool(res.success),
    )
