"""Sequential reference BAND-DENSE-TLR Cholesky factorization.

The right-looking tile algorithm of Fig. 4, executed as straight loops —
the numerical ground truth the runtime executor and the simulator's DAG
are validated against.  One code path covers all the paper's layouts
through the matrix's per-tile formats: pure TLR (band 1), BAND-DENSE-TLR
(band B), fully dense (band NT), and the tile-based densification of
:mod:`repro.core.densify`.

Beyond the paper's static layouts, ``adaptive_threshold`` implements the
*online* densification Section V-B sketches as future work ("an adaptive
online auto-tuning that densifies ... the tiles on-demand"): whenever a
recompression pushes a tile's rank above the threshold fraction of the
tile size, the tile is rolled back to dense on the spot, and destinations
whose both operands have become dense are densified before the update
(the closure rule of :func:`repro.core.densify.plan_tile_densification`).

The factor overwrites the matrix: dense tiles hold dense ``L`` blocks
(diagonal tiles lower-triangular), compressed tiles hold compressed
blocks of ``L``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from .. import obs
from ..linalg import hcore
from ..linalg.compression import TruncationRule
from ..linalg.flops import FlopCounter
from ..linalg.precision import (
    MixedPrecisionReport,
    apply_precision,
    mixed_precision_report,
    resolve_precision,
)
from ..linalg.tiles import DenseTile, LowRankTile
from ..matrix.tlr_matrix import BandTLRMatrix
from ..utils.exceptions import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from ..runtime.resilience import ResilienceReport
    from ..runtime.simulator import CommStats

__all__ = ["FactorizationReport", "tlr_cholesky"]


@dataclass
class FactorizationReport:
    """Statistics of one factorization run.

    Attributes
    ----------
    counter:
        Modelled flops by kernel class (Table I, actual ranks).
    rank_growth_events:
        Recompressions whose output rank exceeded the destination's
        previous rank (each would trigger a pool reallocation).
    max_rank_seen:
        Largest compressed-tile rank observed (final maxrank, Fig. 1).
    tasks_resumed:
        Tasks skipped because a restored checkpoint had completed them
        (0 unless ``resume=True`` found a checkpoint).
    resilience:
        Recovery-engine counters (``None`` unless faults, a recovery
        policy, or checkpointing was requested).
    executor:
        Which backend ran the factorization (``"sequential"``,
        ``"threads"``, or ``"processes"``).
    comm:
        Realized communication statistics (``None`` except on the
        process executor, whose ranks exchange tiles explicitly).
    precision_report:
        Post-factorization byte accounting of the factor's storage
        dtypes (``None`` unless a precision policy was active); see
        :class:`~repro.linalg.precision.MixedPrecisionReport`.
    """

    counter: FlopCounter = field(default_factory=FlopCounter)
    rank_growth_events: int = 0
    max_rank_seen: int = 0
    tiles_densified_online: int = 0
    tasks_resumed: int = 0
    resilience: "ResilienceReport | None" = None
    executor: str = "sequential"
    comm: "CommStats | None" = None
    precision_report: MixedPrecisionReport | None = None


def tlr_cholesky(
    matrix: BandTLRMatrix,
    *,
    rule: TruncationRule | None = None,
    adaptive_threshold: float | None = None,
    n_workers: int | None = None,
    executor=None,
    n_ranks: int | None = None,
    backend=None,
    batch: bool = False,
    precision=None,
    faults=None,
    recovery=None,
    checkpoint=None,
    resume: bool = False,
) -> FactorizationReport:
    """Factorize ``matrix`` in place into its lower Cholesky factor.

    Parameters
    ----------
    matrix:
        SPD matrix in BAND-DENSE-TLR storage; overwritten by ``L``.
    rule:
        Truncation rule for the low-rank updates; defaults to the
        matrix's compression rule.
    backend:
        Compression backend for the GEMM recompressions (instance,
        registry name, or ``None`` to use the matrix's backend).
    batch:
        Group same-shape, same-class kernel invocations into single
        stacked BLAS/LAPACK calls (:mod:`repro.linalg.batched`).  The
        factor stays bitwise identical to the unbatched run.  On the
        default sequential path the right-looking loops batch each
        panel wave in place; with ``n_workers``/``executor`` the graph
        executors batch their ready windows.  Incompatible with
        ``adaptive_threshold`` and the processes/sim executors, and
        silently disabled while the recovery engine is active.
    precision:
        Storage/compute precision for off-band low-rank tiles: a mode
        name (``"fp64"``, ``"adaptive"``, ``"fp32"``) or a
        :class:`~repro.linalg.precision.PrecisionPolicy`.  ``None``
        keeps the matrix's own policy (or all-float64 when it has
        none).  The policy is applied to the tiles before
        factorization and the report's ``precision_report`` holds the
        post-factorization byte accounting.
    adaptive_threshold:
        When set (a fraction of the tile size, e.g. ``0.5``), a compressed
        tile whose rank exceeds ``adaptive_threshold * b`` after a
        recompression is densified on demand, and so is any low-rank
        destination whose both GEMM operands are (or became) dense.
    n_workers:
        When set, the factorization runs through the dependency-driven
        parallel executor (:mod:`repro.runtime.parallel`) on that many
        worker threads instead of the sequential loops — the DAG is built
        from the matrix's measured ranks and the factor is bitwise
        identical for any worker count.  Incompatible with
        ``adaptive_threshold`` (online densification rewrites the graph
        mid-flight).
    executor:
        A :class:`~repro.runtime.protocol.Executor` instance or registry
        name (``"sequential"``, ``"threads"``, ``"processes"``) selecting
        the backend explicitly — the multi-process executor is only
        reachable this way.  Mutually exclusive with ``n_workers`` (which
        is shorthand for the thread executor); the ``"sim"`` executor is
        rejected because it predicts a run without factorizing.
    n_ranks:
        Rank count for a *named* ``executor`` (worker processes for
        ``"processes"``, worker threads for ``"threads"``); pass a
        configured instance instead for finer control.
    faults:
        Fault-injection source (spec string, ``FaultPlan``, or injector —
        see :mod:`repro.testing.faults`); implies the recovery engine of
        :mod:`repro.runtime.resilience`.
    recovery:
        A :class:`~repro.runtime.resilience.RecoveryPolicy` controlling
        retries, NaN validation, NPD diagonal shifts, and the watchdog.
    checkpoint:
        Checkpoint directory (or ``CheckpointConfig``/``Checkpointer``):
        the completed-panel frontier is persisted there so a killed run
        can restart.
    resume:
        Restore the latest checkpoint from ``checkpoint`` before
        factorizing; completed tasks are skipped and the final factor is
        identical to an uninterrupted run.

    Returns
    -------
    FactorizationReport

    Raises
    ------
    NotPositiveDefiniteError
        When a diagonal tile loses positive definiteness (accuracy
        threshold too loose relative to the matrix's conditioning).
    """
    rule = rule or matrix.rule
    backend = backend if backend is not None else matrix.backend
    if adaptive_threshold is not None and not (0.0 < adaptive_threshold <= 1.0):
        raise ConfigurationError(
            f"adaptive_threshold must be in (0, 1], got {adaptive_threshold}"
        )
    if n_workers is not None and adaptive_threshold is not None:
        raise ConfigurationError(
            "adaptive_threshold requires the sequential path; "
            "it cannot be combined with n_workers"
        )
    if batch and adaptive_threshold is not None:
        raise ConfigurationError(
            "adaptive_threshold rewrites tiles mid-flight; it cannot "
            "be combined with kernel batching"
        )
    if executor is not None and n_workers is not None:
        raise ConfigurationError(
            "n_workers is shorthand for executor='threads'; "
            "pass one or the other, not both"
        )
    if executor is not None and adaptive_threshold is not None:
        raise ConfigurationError(
            "adaptive_threshold requires the sequential path; "
            "it cannot be combined with an executor"
        )
    if n_ranks is not None and executor is None:
        raise ConfigurationError("n_ranks requires an executor name")
    resilient = (
        faults is not None
        or recovery is not None
        or checkpoint is not None
        or resume
    )
    if resilient and adaptive_threshold is not None:
        raise ConfigurationError(
            "adaptive_threshold rewrites the task graph mid-flight; it "
            "cannot be combined with faults/recovery/checkpoint/resume"
        )
    if resume and checkpoint is None:
        raise ConfigurationError("resume=True requires a checkpoint directory")
    policy = None
    if precision is not None:
        policy = resolve_precision(precision)
    elif matrix.precision is not None:
        policy = matrix.precision
    if policy is not None:
        apply_precision(matrix, policy)
    with obs.span(
        "tlr_cholesky",
        "phase",
        nt=matrix.ntiles,
        band_size=matrix.band_size,
        workers=n_workers,
    ):
        if executor is not None or n_workers is not None or resilient:
            report = _tlr_cholesky_graph(
                matrix, rule, n_workers, backend,
                faults, recovery, checkpoint, resume,
                executor=executor, n_ranks=n_ranks, batch=batch,
            )
        elif batch:
            report = _tlr_cholesky_sequential_batched(matrix, rule, backend)
        else:
            report = _tlr_cholesky_sequential(
                matrix, rule, adaptive_threshold, backend
            )
    if policy is not None:
        report.precision_report = mixed_precision_report(
            matrix, mode=policy.mode
        )
    if obs.enabled():
        obs.gauge_set("rank_growth_events", report.rank_growth_events)
        obs.gauge_set("max_rank_seen", report.max_rank_seen)
        for tile in matrix.tiles.values():
            if isinstance(tile, LowRankTile):
                obs.histogram_observe("tile_rank", tile.rank, stage="factorized")
    return report


def _tlr_cholesky_sequential(
    matrix: BandTLRMatrix,
    rule: TruncationRule,
    adaptive_threshold: float | None,
    backend,
) -> FactorizationReport:
    """The right-looking loops of Fig. 4 (body of :func:`tlr_cholesky`)."""
    nt = matrix.ntiles
    report = FactorizationReport()

    def densify(i: int, j: int) -> None:
        tile = matrix.tile(i, j)
        if isinstance(tile, LowRankTile):
            matrix.set_tile(i, j, DenseTile(tile.to_dense()))
            report.tiles_densified_online += 1

    def maybe_densify_grown(i: int, j: int, rank_after: int) -> None:
        if adaptive_threshold is None:
            return
        b = min(matrix.desc.tile_shape(i, j))
        if rank_after > adaptive_threshold * b:
            densify(i, j)

    for k in range(nt):
        hcore.potrf_dense(
            matrix.tile(k, k), counter=report.counter, tile_index=(k, k)
        )
        for m in range(k + 1, nt):
            out = hcore.trsm_auto(
                matrix.tile(k, k), matrix.tile(m, k), counter=report.counter
            )
            matrix.set_tile(m, k, out)
        for n in range(k + 1, nt):
            hcore.syrk_auto(
                matrix.tile(n, k), matrix.tile(n, n), counter=report.counter
            )
            for m in range(n + 1, nt):
                if (
                    adaptive_threshold is not None
                    and isinstance(matrix.tile(m, k), DenseTile)
                    and isinstance(matrix.tile(n, k), DenseTile)
                ):
                    # Closure rule: a full-rank update needs a dense C.
                    densify(m, n)
                out, _, recomp = hcore.gemm_auto(
                    matrix.tile(m, k),
                    matrix.tile(n, k),
                    matrix.tile(m, n),
                    rule,
                    counter=report.counter,
                    backend=backend,
                )
                if recomp is not None:
                    if recomp.grew:
                        report.rank_growth_events += 1
                    report.max_rank_seen = max(
                        report.max_rank_seen, recomp.rank_after
                    )
                matrix.set_tile(m, n, out)
                if recomp is not None:
                    maybe_densify_grown(m, n, recomp.rank_after)
    return report


def _tlr_cholesky_sequential_batched(
    matrix: BandTLRMatrix,
    rule: TruncationRule,
    backend,
) -> FactorizationReport:
    """The right-looking loops with per-wave kernel batching.

    Each panel's TRSMs form one wave and each panel's trailing SYRK/GEMM
    updates another; every task in a wave writes a distinct tile, so the
    planner may group them freely and the factor is bitwise the one the
    unbatched loops produce.  Batching here stays on the plain in-place
    loops — no task graph, ready-set, or commit bookkeeping — so a
    singleton-heavy wave costs the same as the unbatched path.
    """
    from ..linalg.batched import BatchItem, BatchPlanner, run_batch

    nt = matrix.ntiles
    report = FactorizationReport()
    counter = report.counter
    planner = BatchPlanner()
    for k in range(nt):
        hcore.potrf_dense(
            matrix.tile(k, k), counter=counter, tile_index=(k, k)
        )
        trsms = [
            BatchItem(
                m, "trsm", (matrix.tile(k, k), matrix.tile(m, k)), index=(m, k)
            )
            for m in range(k + 1, nt)
        ]
        for group in planner.partition(trsms):
            for res in run_batch(group, rule, counter=counter, backend=backend):
                matrix.set_tile(res.ref, k, res.out)
        updates = []
        for n in range(k + 1, nt):
            updates.append(
                BatchItem(
                    (n, n),
                    "syrk",
                    (matrix.tile(n, k), matrix.tile(n, n)),
                    index=(n, n),
                )
            )
            for m in range(n + 1, nt):
                updates.append(
                    BatchItem(
                        (m, n),
                        "gemm",
                        (
                            matrix.tile(m, k),
                            matrix.tile(n, k),
                            matrix.tile(m, n),
                        ),
                        index=(m, n),
                    )
                )
        for group in planner.partition(updates):
            for res in run_batch(group, rule, counter=counter, backend=backend):
                m, n = res.ref
                recomp = res.recomp
                if recomp is not None:
                    if recomp.grew:
                        report.rank_growth_events += 1
                    report.max_rank_seen = max(
                        report.max_rank_seen, recomp.rank_after
                    )
                if res.out is not None:
                    matrix.set_tile(m, n, res.out)
    return report


def _tlr_cholesky_graph(
    matrix: BandTLRMatrix,
    rule: TruncationRule,
    n_workers: int | None,
    backend=None,
    faults=None,
    recovery=None,
    checkpoint=None,
    resume: bool = False,
    *,
    executor=None,
    n_ranks: int | None = None,
    batch: bool = False,
) -> FactorizationReport:
    """Run the factorization through a graph executor.

    Builds the Cholesky DAG from the matrix's measured rank grid (the
    same graph the simulator replays) and executes it on the selected
    :class:`~repro.runtime.protocol.Executor` backend — ``n_workers``
    threads, ``executor=``'s choice, or the sequential graph executor
    when neither is given but resilience features are requested; the
    report surface matches the sequential path's.
    """
    # Local import: repro.runtime must stay importable without repro.core.
    from ..runtime.graph import build_cholesky_graph
    from ..runtime.protocol import ThreadExecutor, get_executor

    if executor is None:
        if n_workers is not None:
            ex = ThreadExecutor(n_workers=n_workers)
        else:
            ex = get_executor("sequential")
    else:
        kwargs = {}
        if n_ranks is not None:
            # Rank count maps onto whichever worker knob the named
            # backend exposes.
            kwargs = (
                {"n_workers": n_ranks}
                if executor == "threads"
                else {"n_ranks": n_ranks}
            )
        ex = get_executor(executor, **kwargs)
    if ex.name == "sim":
        raise ConfigurationError(
            "the sim executor predicts a run without factorizing; use "
            "repro.runtime.protocol.SimExecutor (or `repro execute "
            "--executor sim`) directly for predictions"
        )

    grid = matrix.rank_grid()

    def rank_fn(i: int, j: int) -> int:
        return int(max(grid[i, j], 1))

    graph = build_cholesky_graph(
        matrix.ntiles, matrix.band_size, matrix.desc.tile_size, rank_fn
    )
    run = ex.execute(
        graph, matrix, rule=rule, backend=backend, batch=batch,
        faults=faults, recovery=recovery, checkpoint=checkpoint,
        resume=resume,
    )
    return FactorizationReport(
        counter=run.counter,
        rank_growth_events=run.rank_growth_events,
        max_rank_seen=run.max_rank_seen,
        tasks_resumed=run.tasks_resumed,
        resilience=run.resilience,
        executor=run.executor,
        comm=getattr(run.report, "comm", None),
    )
