"""Core algorithms: TLR Cholesky, auto-tuning, solves, MLE, user API."""

from .api import TLRSolver
from .autotuner import (
    BandSizeDecision,
    SubdiagonalCost,
    autotune_matrix,
    band_candidates,
    subdiagonal_costs,
    subdiagonal_maxranks,
    sweep_band_by_flops,
    tie_break_band,
    tune_band_size,
)
from .densify import (
    TileDensificationPlan,
    apply_densification,
    plan_tile_densification,
)
from .factorize import FactorizationReport, tlr_cholesky
from .refine import RefinementResult, refined_solve, tlr_matvec
from .kriging import KrigingResult, krige
from .mle import LikelihoodEvaluator, MLEResult, fit_mle, log_likelihood
from .solve import backward_solve, forward_solve, log_det, solve_many, solve_spd
from .tile_size import candidate_tile_sizes, local_minimum_search, suggest_tile_size

__all__ = [
    "TLRSolver",
    "BandSizeDecision",
    "SubdiagonalCost",
    "tune_band_size",
    "autotune_matrix",
    "band_candidates",
    "tie_break_band",
    "sweep_band_by_flops",
    "subdiagonal_costs",
    "subdiagonal_maxranks",
    "FactorizationReport",
    "tlr_cholesky",
    "TileDensificationPlan",
    "plan_tile_densification",
    "apply_densification",
    "LikelihoodEvaluator",
    "MLEResult",
    "fit_mle",
    "log_likelihood",
    "krige",
    "KrigingResult",
    "tlr_matvec",
    "refined_solve",
    "RefinementResult",
    "forward_solve",
    "backward_solve",
    "solve_spd",
    "solve_many",
    "log_det",
    "suggest_tile_size",
    "candidate_tile_sizes",
    "local_minimum_search",
]
