"""Tile-based densification — the paper's future-work generalization.

Section IX: *"A more generic approach to BAND-DENSE-TLR will be to change
the data structure on a tile-based instead of a band-basis to capture
tiles with high ranks located far away from the diagonal."*  This module
implements that generalization.

At laptop scale the motivation is concrete: Morton ordering produces rank
*spikes* on isolated sub-diagonals (tiles pairing spatially adjacent
Morton blocks far apart in index space — see the Fig. 6c bench), which a
contiguous band cannot capture without densifying everything in between.

The per-tile flop model mirrors Algorithm 1: tile ``(i, j)`` receives one
TRSM and ``j`` GEMM updates over the factorization, so it is rolled back
to dense when::

    j * gemm_dense(b) + trsm_dense(b) <= fluctuation *
        (j * gemm_lr(b, k_ij) + trsm_lr(b, k_ij))

A *closure* pass then repairs the one invalid operand combination the
mixed-format GEMM cannot express: if both panel operands ``(m, k)`` and
``(n, k)`` are dense, the destination ``(m, n)`` receives a full-rank
update and must be dense too (in the band algorithm the index identity
``m - n <= m - k`` guarantees this automatically).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..linalg.flops import (
    flops_gemm_dense,
    flops_gemm_lr,
    flops_trsm_dense,
    flops_trsm_lr,
)
from ..linalg.tiles import DenseTile, LowRankTile
from ..matrix.tlr_matrix import BandTLRMatrix
from ..statistics.problem import CovarianceProblem
from ..utils.exceptions import ConfigurationError

__all__ = ["TileDensificationPlan", "plan_tile_densification", "apply_densification"]


@dataclass(frozen=True)
class TileDensificationPlan:
    """Which tiles to store dense, chosen tile-by-tile.

    Attributes
    ----------
    dense_mask:
        Boolean ``NT x NT`` lower-triangular mask; True = store dense.
        The diagonal is always True.
    n_policy:
        Tiles densified by the flop model itself.
    n_closure:
        Additional tiles densified by the dense-operand closure.
    """

    dense_mask: np.ndarray
    n_policy: int
    n_closure: int

    @property
    def n_dense(self) -> int:
        """Total dense lower-triangular tiles (diagonal included)."""
        return int(np.sum(np.tril(self.dense_mask)))


def plan_tile_densification(
    rank_grid: np.ndarray,
    tile_size: int,
    *,
    fluctuation: float = 0.67,
) -> TileDensificationPlan:
    """Choose dense tiles from the post-compression rank grid.

    Parameters
    ----------
    rank_grid:
        ``NT x NT`` initial ranks (−1 marks dense/diagonal entries, which
        stay dense).
    tile_size:
        Tile dimension ``b``.
    fluctuation:
        Same densification threshold as Algorithm 1 (paper window
        [0.67, 1]).
    """
    if not (0.0 < fluctuation <= 1.0):
        raise ConfigurationError(f"fluctuation must be in (0, 1], got {fluctuation}")
    nt = rank_grid.shape[0]
    b = tile_size
    mask = np.zeros((nt, nt), dtype=bool)
    n_policy = 0
    for i in range(nt):
        mask[i, i] = True
        for j in range(i):
            k = int(rank_grid[i, j])
            if k < 0:
                mask[i, j] = True
                continue
            n_updates = j
            dense_cost = n_updates * flops_gemm_dense(b) + flops_trsm_dense(b)
            tlr_cost = n_updates * flops_gemm_lr(b, max(k, 1)) + flops_trsm_lr(
                b, max(k, 1)
            )
            if dense_cost <= fluctuation * tlr_cost:
                mask[i, j] = True
                n_policy += 1

    # Closure: dense (m,k) and dense (n,k) force dense (m,n).  Iterate to
    # a fixed point (each pass only adds tiles, so it terminates).
    n_closure = 0
    changed = True
    while changed:
        changed = False
        for m in range(nt):
            for n in range(m):
                if mask[m, n]:
                    continue
                for k in range(n):
                    if mask[m, k] and mask[n, k]:
                        mask[m, n] = True
                        n_closure += 1
                        changed = True
                        break
    return TileDensificationPlan(dense_mask=mask, n_policy=n_policy, n_closure=n_closure)


def apply_densification(
    matrix: BandTLRMatrix,
    problem: CovarianceProblem,
    plan: TileDensificationPlan,
) -> BandTLRMatrix:
    """Re-materialize the matrix with the plan's per-tile formats.

    Tiles entering dense format are regenerated from the problem; tiles
    leaving it are compressed; everything else is shared (like
    :meth:`BandTLRMatrix.with_band_size`).  The resulting matrix keeps
    ``band_size = 1`` (only the diagonal is *guaranteed* dense) — the
    format dispatch in the factorization kernels handles the rest.
    """
    nt = matrix.ntiles
    if plan.dense_mask.shape != (nt, nt):
        raise ConfigurationError("plan geometry does not match the matrix")
    out = BandTLRMatrix(
        desc=matrix.desc, band_size=1, rule=matrix.rule, backend=matrix.backend
    )
    for (i, j), tile in matrix.tiles.items():
        want_dense = bool(plan.dense_mask[i, j])
        if want_dense and isinstance(tile, LowRankTile):
            out.tiles[(i, j)] = DenseTile(problem.tile(i, j))
        elif not want_dense and isinstance(tile, DenseTile) and i != j:
            out.tiles[(i, j)] = out._compress(tile.data, i, j)
        else:
            out.tiles[(i, j)] = tile
    return out
