"""Kriging (Gaussian-process spatial prediction) on TLR factors.

The paper's motivating applications — wind-speed or temperature fields in
3D — use the fitted covariance model for *prediction at unobserved
locations*, not just parameter estimation.  Simple kriging computes

.. math::

    \\hat z_* = \\Sigma_{*o}\\, \\Sigma_{oo}^{-1} z, \\qquad
    \\mathrm{var}(z_*) = \\sigma_{**} - \\mathrm{diag}\\!\\left(
        \\Sigma_{*o}\\, \\Sigma_{oo}^{-1} \\Sigma_{o*}\\right),

where ``o`` indexes the observed locations and ``*`` the prediction
targets.  The expensive object is :math:`\\Sigma_{oo}^{-1}`, applied
through the TLR Cholesky factor — the same solve machinery the MLE uses,
so prediction inherits all of the paper's scaling.

Cross-covariances :math:`\\Sigma_{*o}` are assembled blockwise against
the observed tiling (never stored densely beyond one block row).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..geometry.distance import block_distances
from ..matrix.tlr_matrix import BandTLRMatrix
from ..statistics.matern import matern
from ..statistics.problem import CovarianceProblem
from ..utils.exceptions import ConfigurationError
from .solve import forward_solve, solve_spd

__all__ = ["KrigingResult", "krige"]


@dataclass(frozen=True)
class KrigingResult:
    """Predictions at the target locations.

    Attributes
    ----------
    mean:
        Conditional mean :math:`\\hat z_*` (length = number of targets).
    variance:
        Conditional (simple-kriging) variance per target; always in
        ``[0, sigma** + nugget]`` up to round-off.
    """

    mean: np.ndarray
    variance: np.ndarray


def krige(
    problem: CovarianceProblem,
    factor: BandTLRMatrix,
    z: np.ndarray,
    targets: np.ndarray,
    *,
    batch: int = 512,
) -> KrigingResult:
    """Simple kriging of ``z`` onto ``targets`` using a TLR factor.

    Parameters
    ----------
    problem:
        The observed covariance problem (supplies points and kernel).
    factor:
        ``problem``'s matrix after :func:`repro.core.tlr_cholesky`.
    z:
        Observations at ``problem.points`` (zero-mean model).
    targets:
        Prediction locations, shape ``(m, ndim)``.
    batch:
        Targets are processed in batches of this many to bound the
        cross-covariance workspace at ``batch x n``.
    """
    z = np.asarray(z, dtype=np.float64)
    targets = np.asarray(targets, dtype=np.float64)
    if z.ndim != 1 or z.shape[0] != problem.n:
        raise ConfigurationError(
            f"z must be a length-{problem.n} vector, got shape {z.shape}"
        )
    if targets.ndim != 2 or targets.shape[1] != problem.ndim:
        raise ConfigurationError(
            f"targets must be (m, {problem.ndim}), got {targets.shape}"
        )
    if factor.n != problem.n:
        raise ConfigurationError("factor does not match the problem size")
    if batch < 1:
        raise ConfigurationError("batch must be >= 1")

    # Sigma_oo^{-1} z once (shared by every target).
    alpha = solve_spd(factor, z)

    sigma_star = problem.params.variance + problem.nugget
    m = targets.shape[0]
    mean = np.empty(m)
    variance = np.empty(m)
    for lo in range(0, m, batch):
        chunk = targets[lo : lo + batch]
        # Cross-covariance block Sigma_{*o}: (chunk, n).
        cross = matern(block_distances(chunk, problem.points), problem.params)
        mean[lo : lo + batch] = cross @ alpha
        # var = sigma** - || L^{-1} Sigma_{o*} ||^2 column-wise.
        w = forward_solve(factor, cross.T)
        variance[lo : lo + batch] = sigma_star - np.einsum("ij,ij->j", w, w)

    np.maximum(variance, 0.0, out=variance)
    return KrigingResult(mean=mean, variance=variance)
