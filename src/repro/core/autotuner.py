"""BAND_SIZE auto-tuning performance model (Algorithm 1, Section V-B).

The tuner minimizes the modelled flop total by deciding, one sub-diagonal
at a time, whether its tiles are cheaper processed dense or compressed:

* a tile at sub-diagonal distance ``d`` receives (over the whole
  factorization) one TRSM and — at position ``j`` within the
  sub-diagonal — ``j`` GEMM updates;
* the dense cost uses Table I's ``(1)-TRSM``/``(1)-GEMM`` rows; the TLR
  cost uses ``(4)-TRSM``/``(6)-GEMM`` with the sub-diagonal's *maxrank*
  from the post-compression rank distribution (the quantity only known at
  runtime — the reason the rank information must be escalated to the
  runtime at all);
* sub-diagonal ``d`` is rolled back to dense while
  ``dense_flops(d) <= fluctuation * tlr_flops(d)``; ``BAND_SIZE`` is the
  first ``d`` (1-based, diagonal included) that fails the test.

The paper sweeps ``fluctuation ∈ [0.67, 1]`` (the boxes in Figs. 6a/6b and
13a) and picks the *minimum* band size of that range — i.e. the
conservative ``fluctuation = 0.67`` — because ranks grow during the
factorization and near-band TRSM/SYRK flops increase when densifying
(Section VIII-B); both push against aggressive densification.

In the paper the tuning itself is parallelized with an artificial 1DBCDD
so every process evaluates a slice of each sub-diagonal; here the model is
a closed-form sum per sub-diagonal, microseconds of work (its cost is
reported by the Fig. 6d benchmark).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..linalg.flops import (
    flops_gemm_dense,
    flops_gemm_lr,
    flops_trsm_dense,
    flops_trsm_lr,
)
from ..matrix.tlr_matrix import BandTLRMatrix
from ..utils.exceptions import ConfigurationError
from ..utils.validation import check_positive_int

__all__ = [
    "SubdiagonalCost",
    "subdiagonal_maxranks",
    "subdiagonal_costs",
    "tune_band_size",
    "BandSizeDecision",
    "band_candidates",
    "tie_break_band",
    "sweep_band_by_flops",
]

#: The paper's fluctuation window.
FLUCTUATION_RANGE = (0.67, 1.0)


@dataclass(frozen=True)
class SubdiagonalCost:
    """Modelled factorization flops of one sub-diagonal (Fig. 6c data).

    Attributes
    ----------
    band_id:
        1-based band index (``d + 1`` for sub-diagonal distance ``d``).
    maxrank:
        Largest initial rank observed on the sub-diagonal.
    ntile:
        Number of tiles on the sub-diagonal.
    dense_flops:
        Total flops if the sub-diagonal is processed dense.
    tlr_flops:
        Total flops if it stays compressed (at ``maxrank``).
    """

    band_id: int
    maxrank: int
    ntile: int
    dense_flops: float
    tlr_flops: float


@dataclass(frozen=True)
class BandSizeDecision:
    """Outcome of the auto-tuner.

    Attributes
    ----------
    band_size:
        Chosen ``BAND_SIZE`` (>= 1; the diagonal is always dense).
    fluctuation:
        The factor used for the decision.
    costs:
        Per-sub-diagonal cost table (for Fig. 6c style reporting).
    band_size_range:
        ``(min, max)`` band size over the paper's fluctuation window
        [0.67, 1] — the rectangular boxes of Figs. 6a/6b.
    """

    band_size: int
    fluctuation: float
    costs: tuple[SubdiagonalCost, ...]
    band_size_range: tuple[int, int]


def subdiagonal_maxranks(rank_grid: np.ndarray) -> list[int]:
    """Max initial rank per sub-diagonal ``d = 1 .. NT-1``.

    ``rank_grid`` is the output of
    :meth:`repro.matrix.BandTLRMatrix.rank_grid` (−1 marks dense/unused
    entries).  Sub-diagonals whose tiles are all dense (inside the current
    band) report −1 and are skipped by the cost model.
    """
    nt = rank_grid.shape[0]
    out = []
    for d in range(1, nt):
        vals = [rank_grid[j + d, j] for j in range(nt - d)]
        vals = [v for v in vals if v >= 0]
        out.append(int(max(vals)) if vals else -1)
    return out


def subdiagonal_costs(
    maxranks: list[int], ntiles: int, tile_size: int
) -> list[SubdiagonalCost]:
    """Dense-vs-TLR factorization flops per sub-diagonal.

    A tile at position ``j`` of sub-diagonal ``d`` (i.e. tile
    ``(j + d, j)``) receives ``j`` GEMM updates and one TRSM, so the
    sub-diagonal receives ``Σ_j j = (NT-d)(NT-d-1)/2`` GEMMs and
    ``NT - d`` TRSMs.
    """
    nt = check_positive_int("ntiles", ntiles)
    b = check_positive_int("tile_size", tile_size)
    costs: list[SubdiagonalCost] = []
    for d in range(1, nt):
        k = maxranks[d - 1] if d - 1 < len(maxranks) else -1
        ntile = nt - d
        n_gemm = ntile * (ntile - 1) // 2
        dense = n_gemm * flops_gemm_dense(b) + ntile * flops_trsm_dense(b)
        if k < 0:
            # Sub-diagonal already dense; report the dense cost on both
            # sides so it never drives the decision.
            tlr = dense
            k = 0
        else:
            tlr = n_gemm * flops_gemm_lr(b, max(k, 1)) + ntile * flops_trsm_lr(
                b, max(k, 1)
            )
        costs.append(
            SubdiagonalCost(
                band_id=d + 1,
                maxrank=k,
                ntile=ntile,
                dense_flops=dense,
                tlr_flops=tlr,
            )
        )
    return costs


def tune_band_size(
    rank_grid: np.ndarray,
    tile_size: int,
    *,
    fluctuation: float = FLUCTUATION_RANGE[0],
    max_band: int | None = None,
) -> BandSizeDecision:
    """Algorithm 1: choose ``BAND_SIZE`` from the initial rank distribution.

    Parameters
    ----------
    rank_grid:
        Post-compression rank grid (band-1 layout: every off-diagonal tile
        compressed).
    tile_size:
        Tile dimension ``b``.
    fluctuation:
        Densification threshold in (0, 1]; the paper's default is the
        conservative end 0.67 of its [0.67, 1] window.
    max_band:
        Optional cap (defaults to ``NT``).
    """
    if not (0.0 < fluctuation <= 1.0):
        raise ConfigurationError(
            f"fluctuation must be in (0, 1], got {fluctuation}"
        )
    nt = rank_grid.shape[0]
    cap = nt if max_band is None else min(max_band, nt)
    maxranks = subdiagonal_maxranks(rank_grid)
    costs = subdiagonal_costs(maxranks, nt, tile_size)

    def decide(f: float) -> int:
        band = 1
        for c in costs:
            if c.band_id > cap:
                break
            if c.dense_flops <= f * c.tlr_flops:
                band = c.band_id
            else:
                break
        return band

    lo = decide(FLUCTUATION_RANGE[0])
    hi = decide(FLUCTUATION_RANGE[1])
    return BandSizeDecision(
        band_size=decide(fluctuation),
        fluctuation=fluctuation,
        costs=tuple(costs),
        band_size_range=(min(lo, hi), max(lo, hi)),
    )


def band_candidates(decision: BandSizeDecision) -> tuple[int, ...]:
    """Every band size inside the decision's fluctuation window.

    The paper's boxes in Figs. 6a/6b span ``fluctuation ∈ [0.67, 1]``;
    any band in that range is defensible under Algorithm 1's flop model
    alone, which is exactly the candidate set a simulated sweep should
    discriminate between.
    """
    lo, hi = decision.band_size_range
    return tuple(range(lo, hi + 1))


def tie_break_band(bands) -> int:
    """The shared tie-break: of equally-good bands, the *smallest* wins.

    Both deciders can tie inside the fluctuation window — Algorithm 1
    when ``dense_flops == fluctuation * tlr_flops`` on a sub-diagonal,
    the simulated sweep when two bands produce the same predicted
    makespan.  Section VIII-B's rationale picks the conservative side:
    ranks grow during the factorization and near-band TRSM/SYRK flops
    increase when densifying, so on a tie the less-densified (smaller)
    band is preferred.  This function is the single place that rule
    lives; :func:`sweep_band_by_flops` and :mod:`repro.tune` both call
    it (the simulated sweep via its ascending ``band_size`` sort key).
    """
    bands = tuple(bands)
    if not bands:
        raise ConfigurationError("tie_break_band needs at least one band")
    return min(bands)


def sweep_band_by_flops(
    rank_grid: np.ndarray,
    tile_size: int,
    bands=None,
    *,
    max_band: int | None = None,
) -> int:
    """The band minimizing Algorithm 1's modelled *total* flops.

    Where :func:`tune_band_size` applies the marginal per-sub-diagonal
    test, this evaluates the full factorization cost of each candidate
    band — the same objective a simulated sweep minimizes when the
    machine model makes every task's duration proportional to its flops
    (one rank, one core, uniform rates).  At small N both are exact, so
    the two deciders must agree there; ties resolve through
    :func:`tie_break_band`.
    """
    decision = tune_band_size(rank_grid, tile_size, max_band=max_band)
    if bands is None:
        bands = band_candidates(decision)
    costs = decision.costs

    def total_flops(band: int) -> float:
        # Sub-diagonals 1..band-1 run dense, the rest stay compressed;
        # POTRF cost is band-independent and omitted from the sum.
        total = 0.0
        for c in costs:
            total += c.dense_flops if c.band_id <= band else c.tlr_flops
        return total

    best = min(total_flops(b) for b in bands)
    return tie_break_band(b for b in bands if total_flops(b) == best)


def autotune_matrix(
    matrix: BandTLRMatrix,
    problem,
    *,
    fluctuation: float = FLUCTUATION_RANGE[0],
    max_band: int | None = None,
) -> tuple[BandTLRMatrix, BandSizeDecision]:
    """The full Section VIII-B pipeline on an already-compressed matrix.

    (1) the matrix was generated with ``band_size = 1``; (2) tune; (3)
    regenerate the tiles inside the tuned band in dense format.  Returns
    the re-banded matrix and the tuning decision.
    """
    decision = tune_band_size(
        matrix.rank_grid(),
        matrix.desc.tile_size,
        fluctuation=fluctuation,
        max_band=max_band,
    )
    if decision.band_size == matrix.band_size:
        return matrix, decision
    return matrix.with_band_size(decision.band_size, problem), decision
