"""High-level user API: compress → auto-tune → factorize → solve.

:class:`TLRSolver` packages the whole PaRSEC-HiCMA-New pipeline behind the
smallest possible surface::

    from repro import TLRSolver, st_3d_exp_problem

    problem = st_3d_exp_problem(n=4096, tile_size=256)
    solver = TLRSolver.from_problem(problem, accuracy=1e-8)   # auto-tunes BAND_SIZE
    solver.factorize()
    x = solver.solve(b)
    ll = solver.log_likelihood(z)

Every stage is also available à la carte through the sub-modules for users
who need the pieces (benchmarks do).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .. import obs
from ..linalg.compression import TruncationRule
from ..matrix.memory import MemoryReport, footprint_report
from ..matrix.tlr_matrix import BandTLRMatrix
from ..statistics.problem import CovarianceProblem
from ..utils.exceptions import ConfigurationError
from .autotuner import BandSizeDecision, autotune_matrix
from .factorize import FactorizationReport, tlr_cholesky
from .mle import log_likelihood
from .solve import log_det, solve_spd

__all__ = ["TLRSolver"]


@dataclass
class TLRSolver:
    """End-to-end TLR Cholesky solver with BAND_SIZE auto-tuning.

    Attributes
    ----------
    matrix:
        The compressed (and, after :meth:`factorize`, factorized) matrix.
    problem:
        The generating covariance problem (needed for band regeneration).
    decision:
        Auto-tuner outcome, or ``None`` when a band size was forced.
    report:
        Factorization statistics once :meth:`factorize` has run.
    """

    matrix: BandTLRMatrix
    problem: CovarianceProblem | None = None
    decision: BandSizeDecision | None = None
    report: FactorizationReport | None = None
    _factorized: bool = field(default=False, repr=False)

    # ------------------------------------------------------------------
    @classmethod
    def from_problem(
        cls,
        problem: CovarianceProblem,
        accuracy: float = 1e-8,
        *,
        band_size: int | str = "auto",
        fluctuation: float = 0.67,
        maxrank: int | None = None,
        compression=None,
        precision=None,
        n_workers: int | None = None,
    ) -> "TLRSolver":
        """Compress a covariance problem, auto-tuning the dense band.

        Parameters
        ----------
        problem:
            The covariance problem to solve.
        accuracy:
            Compression threshold ε (the paper's experiments use 1e-8
            down to 1e-3).
        band_size:
            ``"auto"`` runs Algorithm 1 (generate at band 1 → tune →
            regenerate); an integer forces that band width.
        fluctuation:
            Auto-tuner densification threshold (paper window [0.67, 1]).
        maxrank:
            Optional hard rank cap for compressions (HiCMA-Prev's static
            descriptor uses ``b/2``); ``None`` = uncapped dynamic ranks.
        compression:
            Compression backend: ``"svd"`` (exact, default), ``"rsvd"``
            (adaptive randomized), ``"auto"`` (exact below the measured
            crossover tile size, randomized above), or a
            :class:`~repro.linalg.backends.CompressionBackend` instance.
            Remembered by the matrix, so factorization recompressions use
            the same numerics.
        precision:
            Storage/compute precision for off-band low-rank tiles: a
            mode name (``"fp64"``, ``"adaptive"``, ``"fp32"``) or a
            :class:`~repro.linalg.precision.PrecisionPolicy`;
            remembered by the matrix and honoured by
            :meth:`factorize`.
        n_workers:
            Thread count for *assembly* (tile generation + compression);
            independent of the worker count later passed to
            :meth:`factorize`.  Results are bitwise identical either way.
        """
        rule = TruncationRule(eps=accuracy, maxrank=maxrank)
        with obs.span(
            "from_problem",
            "phase",
            n=problem.n,
            tile_size=problem.tile_size,
            accuracy=accuracy,
            band_size=band_size,
        ):
            if band_size == "auto":
                matrix = BandTLRMatrix.from_problem(
                    problem,
                    rule,
                    band_size=1,
                    backend=compression,
                    precision=precision,
                    n_workers=n_workers,
                )
                with obs.span("autotune_band", "phase"):
                    matrix, decision = autotune_matrix(
                        matrix, problem, fluctuation=fluctuation
                    )
                return cls(matrix=matrix, problem=problem, decision=decision)
            if not isinstance(band_size, int):
                raise ConfigurationError(
                    f"band_size must be 'auto' or an int, got {band_size!r}"
                )
            matrix = BandTLRMatrix.from_problem(
                problem,
                rule,
                band_size=band_size,
                backend=compression,
                precision=precision,
                n_workers=n_workers,
            )
            return cls(matrix=matrix, problem=problem)

    # ------------------------------------------------------------------
    @property
    def band_size(self) -> int:
        """The dense band width in effect."""
        return self.matrix.band_size

    @property
    def is_factorized(self) -> bool:
        return self._factorized

    def factorize(
        self,
        *,
        n_workers: int | None = None,
        executor=None,
        n_ranks: int | None = None,
        batch: bool = False,
        precision=None,
        faults=None,
        recovery=None,
        checkpoint=None,
        resume: bool = False,
    ) -> FactorizationReport:
        """Run the BAND-DENSE-TLR Cholesky in place.

        With ``n_workers`` the factorization executes on the
        dependency-driven thread-pool executor (same factor, bitwise,
        for any worker count); without it, the sequential loops run.
        ``executor``/``n_ranks`` select a backend explicitly instead —
        e.g. ``executor="processes", n_ranks=4`` runs the distributed
        multi-process executor with tiles placed by the hybrid band
        distribution (again the same factor, bitwise, at any rank
        count); see :func:`~repro.core.factorize.tlr_cholesky`.

        ``batch=True`` groups same-shape kernel invocations into
        stacked BLAS/LAPACK calls; ``precision`` selects the
        mixed-precision storage policy (defaults to the matrix's own).
        Both keep the factor bitwise identical to their unbatched /
        same-policy counterparts — see
        :func:`~repro.core.factorize.tlr_cholesky`.

        ``faults``/``recovery``/``checkpoint``/``resume`` pass through to
        :func:`~repro.core.factorize.tlr_cholesky`'s resilience engine:
        fault injection (chaos testing), the retry/rollback recovery
        policy, and checkpoint/restart of the completed-panel frontier.
        """
        if self._factorized:
            raise ConfigurationError("matrix is already factorized")
        self.report = tlr_cholesky(
            self.matrix,
            n_workers=n_workers,
            executor=executor,
            n_ranks=n_ranks,
            batch=batch,
            precision=precision,
            faults=faults,
            recovery=recovery,
            checkpoint=checkpoint,
            resume=resume,
        )
        self._factorized = True
        return self.report

    def solve(self, rhs: np.ndarray) -> np.ndarray:
        """Solve ``Σ x = rhs`` (requires :meth:`factorize` first)."""
        self._require_factor()
        with obs.span("solve", "phase"):
            return solve_spd(self.matrix, rhs)

    def log_likelihood(self, z: np.ndarray) -> float:
        """Gaussian log-likelihood of measurements ``z`` (Eq. 1)."""
        self._require_factor()
        with obs.span("log_likelihood", "phase"):
            return log_likelihood(self.matrix, z)

    def log_det(self) -> float:
        """``log|Σ|`` from the factor's diagonal."""
        self._require_factor()
        return log_det(self.matrix)

    def memory_report(self, maxrank: int | None = None) -> MemoryReport:
        """Static-vs-dynamic footprint comparison (Fig. 8)."""
        return footprint_report(self.matrix, maxrank=maxrank)

    def factor_key(self):
        """This solver's factor identity in the solver service's cache.

        The :class:`~repro.service.cache.FactorKey` under which
        :meth:`SolverService.register_solver
        <repro.service.server.SolverService.register_solver>` would
        install this factor: geometry hash, kernel θ, ε, band width,
        and the ε-resolved precision identity (taken from
        :attr:`report.precision_report
        <repro.core.factorize.FactorizationReport.precision_report>`
        when factorized, so the key always describes what the factor
        *actually* stores).
        """
        if self.problem is None:
            raise ConfigurationError(
                "factor_key needs the generating problem (solver.problem)"
            )
        from ..service.cache import FactorKey

        pr = self.report.precision_report if self.report else None
        precision = pr.mode if pr is not None and pr.mode else None
        if precision is None and self.matrix.precision is not None:
            precision = self.matrix.precision
        return FactorKey.from_problem(
            self.problem,
            accuracy=self.matrix.rule.eps,
            band_size=self.matrix.band_size,
            precision=precision,
            maxrank=self.matrix.rule.maxrank,
        )

    def _require_factor(self) -> None:
        if not self._factorized:
            raise ConfigurationError(
                "call factorize() before solving or evaluating likelihoods"
            )
