"""TLR matrix-vector products and iteratively refined solves.

The TLR factor is an *approximation* of the true Cholesky factor: a
direct solve inherits the compression error ε.  Classical iterative
refinement repairs this whenever the original operator can still be
applied accurately — and it can: the covariance problem regenerates exact
tiles on demand, and even the compressed matrix applies in
``O(N b + N k NT)`` through :func:`tlr_matvec`.

This combination (low-accuracy factorization + refinement against a
higher-accuracy operator) is the standard companion of the paper's
accuracy-threshold study (Fig. 13): factorize cheap at ε = 1e-3/1e-5,
recover solver accuracy with a few refinement sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..linalg.tiles import DenseTile
from ..matrix.tlr_matrix import BandTLRMatrix
from ..statistics.problem import CovarianceProblem
from ..utils.exceptions import ConfigurationError
from .solve import solve_spd

__all__ = ["tlr_matvec", "RefinementResult", "refined_solve"]


def tlr_matvec(matrix: BandTLRMatrix, x: np.ndarray) -> np.ndarray:
    """``y = A @ x`` for a symmetric BAND-DENSE-TLR matrix.

    Off-diagonal tiles apply twice (once transposed) since only the lower
    triangle is stored; compressed tiles apply as two thin products.
    """
    x = np.asarray(x, dtype=np.float64)
    squeeze = x.ndim == 1
    if squeeze:
        x = x[:, None]
    if x.shape[0] != matrix.n:
        raise ConfigurationError(
            f"x has {x.shape[0]} rows but the matrix is {matrix.n}x{matrix.n}"
        )
    desc = matrix.desc
    y = np.zeros_like(x)
    for (i, j), tile in matrix.tiles.items():
        si, sj = desc.tile_slice(i), desc.tile_slice(j)
        if isinstance(tile, DenseTile):
            y[si] += tile.data @ x[sj]
            if i != j:
                y[sj] += tile.data.T @ x[si]
        else:
            if tile.rank > 0:
                y[si] += tile.u @ (tile.v.T @ x[sj])
                if i != j:
                    y[sj] += tile.v @ (tile.u.T @ x[si])
    return y[:, 0] if squeeze else y


@dataclass(frozen=True)
class RefinementResult:
    """Outcome of an iteratively refined solve.

    Attributes
    ----------
    x:
        The refined solution.
    iterations:
        Refinement sweeps performed (0 = the direct solve sufficed).
    residual_norms:
        Relative residual after the direct solve and after each sweep.
    converged:
        True when the final relative residual met the tolerance.
    """

    x: np.ndarray
    iterations: int
    residual_norms: tuple[float, ...]
    converged: bool


def refined_solve(
    factor: BandTLRMatrix,
    rhs: np.ndarray,
    *,
    operator: CovarianceProblem | BandTLRMatrix | None = None,
    tolerance: float = 1e-12,
    max_iterations: int = 10,
) -> RefinementResult:
    """Solve ``A x = rhs`` with the TLR factor plus iterative refinement.

    Parameters
    ----------
    factor:
        The factorized (possibly low-accuracy) matrix — the preconditioner.
    rhs:
        Right-hand side vector.
    operator:
        The accurate operator for residuals: a
        :class:`CovarianceProblem` (exact tile regeneration, used
        blockwise) or a (higher-accuracy) :class:`BandTLRMatrix`;
        defaults to the factor's own matvec — which cannot improve on the
        direct solve but still reports residual history.
    tolerance:
        Target relative residual.
    max_iterations:
        Refinement sweep cap.
    """
    rhs = np.asarray(rhs, dtype=np.float64)
    if rhs.ndim != 1 or rhs.shape[0] != factor.n:
        raise ConfigurationError(
            f"rhs must be a length-{factor.n} vector, got shape {rhs.shape}"
        )
    if max_iterations < 0:
        raise ConfigurationError("max_iterations must be >= 0")

    if operator is None:
        operator = factor

    def apply_a(x: np.ndarray) -> np.ndarray:
        if isinstance(operator, BandTLRMatrix):
            return tlr_matvec(operator, x)
        # CovarianceProblem: exact blockwise application.
        desc_n = operator.ntiles
        y = np.zeros_like(x)
        for i in range(desc_n):
            ri = operator.tile_rows(i)
            for j in range(desc_n):
                rj = operator.tile_rows(j)
                block = operator.tile(i, j)
                y[ri] += block @ x[rj]
        return y

    rhs_norm = float(np.linalg.norm(rhs))
    if rhs_norm == 0.0:
        return RefinementResult(np.zeros_like(rhs), 0, (0.0,), True)

    x = solve_spd(factor, rhs)
    res = rhs - apply_a(x)
    history = [float(np.linalg.norm(res)) / rhs_norm]
    it = 0
    while history[-1] > tolerance and it < max_iterations:
        dx = solve_spd(factor, res)
        x = x + dx
        res = rhs - apply_a(x)
        new = float(np.linalg.norm(res)) / rhs_norm
        it += 1
        if new >= history[-1] * 0.9:
            history.append(new)
            break  # stagnation: the factor is too inaccurate to refine
        history.append(new)
    return RefinementResult(
        x=x,
        iterations=it,
        residual_norms=tuple(history),
        converged=history[-1] <= tolerance,
    )
