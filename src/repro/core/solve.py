"""Triangular solves and SPD system solution on a TLR Cholesky factor.

After :func:`repro.core.factorize.tlr_cholesky` the matrix holds ``L`` in
mixed dense/low-rank tile storage.  These routines apply ``L^{-1}`` and
``L^{-T}`` tile-by-tile (forward and backward substitution), which is all
MLE needs: the quadratic form ``z^T Σ^{-1} z = ||L^{-1} z||²`` and the
log-determinant from the diagonal of ``L``.

Low-rank off-diagonal tiles apply as ``U (V^T x)`` — two thin GEMVs — so a
solve costs ``O(N b + N k NT)`` instead of the dense ``O(N²)``.
"""

from __future__ import annotations

import numpy as np
import scipy.linalg as sla

from ..linalg.batched import split_solution, stack_rhs
from ..linalg.tiles import DenseTile, Tile
from ..matrix.tlr_matrix import BandTLRMatrix
from ..utils.exceptions import ConfigurationError

__all__ = [
    "forward_solve",
    "backward_solve",
    "solve_spd",
    "solve_many",
    "log_det",
]


def _apply(tile: Tile, x: np.ndarray) -> np.ndarray:
    """``tile @ x`` honouring the storage format."""
    if isinstance(tile, DenseTile):
        return tile.data @ x
    if tile.rank == 0:
        return np.zeros((tile.shape[0],) + x.shape[1:])
    return tile.u @ (tile.v.T @ x)


def _apply_t(tile: Tile, x: np.ndarray) -> np.ndarray:
    """``tile.T @ x`` honouring the storage format."""
    if isinstance(tile, DenseTile):
        return tile.data.T @ x
    if tile.rank == 0:
        return np.zeros((tile.shape[1],) + x.shape[1:])
    return tile.v @ (tile.u.T @ x)


def _check_rhs(factor: BandTLRMatrix, rhs: np.ndarray) -> tuple[np.ndarray, bool]:
    rhs = np.asarray(rhs, dtype=np.float64)
    squeeze = rhs.ndim == 1
    if squeeze:
        rhs = rhs[:, None]
    if rhs.shape[0] != factor.n:
        raise ConfigurationError(
            f"rhs has {rhs.shape[0]} rows but the factor is {factor.n}x{factor.n}"
        )
    return rhs.copy(), squeeze


def forward_solve(factor: BandTLRMatrix, rhs: np.ndarray) -> np.ndarray:
    """Solve ``L y = rhs`` with the factored matrix.

    Accepts a vector or a multi-column right-hand side.
    """
    y, squeeze = _check_rhs(factor, rhs)
    desc = factor.desc
    for i in range(desc.ntiles):
        si = desc.tile_slice(i)
        for j in range(i):
            y[si] -= _apply(factor.tile(i, j), y[desc.tile_slice(j)])
        y[si] = sla.solve_triangular(
            factor.tile(i, i).data, y[si], lower=True, check_finite=False
        )
    return y[:, 0] if squeeze else y


def backward_solve(factor: BandTLRMatrix, rhs: np.ndarray) -> np.ndarray:
    """Solve ``L^T x = rhs`` with the factored matrix."""
    x, squeeze = _check_rhs(factor, rhs)
    desc = factor.desc
    for i in reversed(range(desc.ntiles)):
        si = desc.tile_slice(i)
        for m in range(i + 1, desc.ntiles):
            x[si] -= _apply_t(factor.tile(m, i), x[desc.tile_slice(m)])
        x[si] = sla.solve_triangular(
            factor.tile(i, i).data, x[si], lower=True, trans="T", check_finite=False
        )
    return x[:, 0] if squeeze else x


def solve_spd(factor: BandTLRMatrix, rhs: np.ndarray) -> np.ndarray:
    """Solve ``Σ x = rhs`` given ``Σ = L L^T`` (forward then backward)."""
    return backward_solve(factor, forward_solve(factor, rhs))


def solve_many(factor: BandTLRMatrix, rhs_list) -> list[np.ndarray]:
    """Solve ``Σ x = rhs`` for many right-hand sides in one stacked pass.

    The :mod:`repro.linalg.batched` marshaling idiom applied to the
    solve: the RHS vectors (or column blocks) are stacked column-wise
    so every diagonal-tile ``solve_triangular`` and every off-diagonal
    tile application in the substitution carries all pending columns in
    a single BLAS/LAPACK call, instead of one dispatch per request.
    ``trtrs`` solves columns independently, so each returned solution
    equals its standalone :func:`solve_spd` counterpart to within the
    usual roundoff of GEMM column blocking.

    This is what the solver service's multi-RHS batching runs: ``k``
    concurrent requests against the same cached factor cost one
    substitution sweep, not ``k``.
    """
    stacked, widths = stack_rhs(rhs_list)
    return split_solution(solve_spd(factor, stacked), widths, rhs_list)


def log_det(factor: BandTLRMatrix) -> float:
    """``log|Σ| = 2 Σ_i log L_ii`` from the factor's diagonal tiles."""
    total = 0.0
    for k in range(factor.ntiles):
        diag = np.diag(factor.tile(k, k).data)
        if np.any(diag <= 0):
            raise ConfigurationError(
                "factor has non-positive diagonal entries; was the matrix "
                "factorized?"
            )
        total += float(np.sum(np.log(diag)))
    return 2.0 * total
