"""Trace/metric exporters: Chrome trace, JSON lines, summary, Prometheus.

One run, four artifacts (all written by :meth:`repro.obs.Observation.write`):

* ``trace.json``   — Chrome-tracing/Perfetto JSON, the format PaRSEC users
  reach via the OTF2 → Chrome converters.  Accepts either a live
  :class:`~repro.obs.tracer.Tracer` (each thread becomes a ``tid`` lane,
  nested spans render stacked) or a simulator / parallel-executor result
  carrying a ``trace`` attribute (the pre-existing per-task tuples —
  this function subsumes the old ``repro.analysis.tracing`` exporter).
* ``events.jsonl`` — one JSON object per span/event, grep- and
  pandas-friendly; the durable raw record.
* ``summary.json`` — aggregated metrics + span statistics; the input of
  ``python -m repro report``.
* ``metrics.prom`` — Prometheus text exposition format (counters,
  gauges, histograms), scrape- or ``promtool``-compatible.
"""

from __future__ import annotations

import json
import re
from pathlib import Path

import numpy as np

from .metrics import Counter, Gauge, Histogram, MetricsRegistry, Series
from .tracer import Tracer

__all__ = [
    "assign_lanes",
    "gantt",
    "utilization_timeline",
    "write_chrome_trace",
    "write_events_jsonl",
    "write_graph_json",
    "prometheus_text",
    "write_prometheus",
    "write_summary_json",
]


def _ensure_suffix(path: str | Path, suffix: str) -> Path:
    path = Path(path)
    if path.suffix != suffix:
        path = path.with_suffix(path.suffix + suffix)
    path.parent.mkdir(parents=True, exist_ok=True)
    return path


def _json_attr(value):
    """JSON-native scalars pass through; everything else is repr'd.

    Keeping ints/floats/strings native lets :mod:`repro.obs.analytics`
    read ``kernel``/``flops`` span annotations back without parsing.
    """
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    return repr(value)


def assign_lanes(trace) -> list[tuple[tuple, int, int, float, float]]:
    """Greedy lane reconstruction for ``(tid, proc, start, end)`` traces.

    Returns ``(tid, proc, lane, start, end)`` rows sorted by process and
    start time; the single source of the lane scheme shared by the
    Chrome exporter, :func:`gantt`, and the cross-rank shard merger
    (:mod:`repro.obs.merge`).
    """
    lanes: dict[int, list[float]] = {}
    rows = []
    for tid, proc, start, end in sorted(trace, key=lambda r: (r[1], r[2])):
        ends = lanes.setdefault(proc, [])
        for lane, t_end in enumerate(ends):
            if start >= t_end - 1e-15:
                ends[lane] = end
                break
        else:
            lane = len(ends)
            ends.append(end)
        rows.append((tid, proc, lane, start, end))
    return rows


# ----------------------------------------------------------------------
# Text-mode trace views (Gantt chart, utilization timeline)
# ----------------------------------------------------------------------
#: One-character glyph per kernel class for the Gantt cells, keyed by
#: the TaskKind *value* so this module stays free of runtime imports.
_GLYPH = {"potrf": "P", "trsm": "T", "syrk": "S", "gemm": "g"}


def _kind_value(tid) -> str:
    head = tid[0]
    return head.value if hasattr(head, "value") else str(head)


def _require_trace(result) -> list[tuple]:
    if getattr(result, "trace", None) is None:
        raise ValueError(
            "result has no trace; run with collect_trace=True"
        )
    return result.trace


def gantt(result, *, width: int = 80, max_rows: int = 32) -> str:
    """Render a tuple trace as one text row per busy process-core.

    Accepts any result with a ``(tid, proc, start, end)`` ``trace`` and
    a ``makespan`` (``SimResult``, ``ParallelExecutionReport``,
    ``DistributedExecutionReport``).  Tasks are assigned to core lanes
    greedily in start order via :func:`assign_lanes` — the same scheme
    the Chrome exporter uses, so both views agree.  ``.`` marks idle
    buckets; letters mark the task class covering the bucket
    (``P``\\ OTRF, ``T``\\ RSM, ``S``\\ YRK, ``g``\\ EMM).

    Raises :class:`ValueError` when the result carries no trace
    (``collect_trace`` was off) — same contract as
    :func:`write_chrome_trace`.
    """
    trace = _require_trace(result)
    if not trace or result.makespan <= 0:
        return "(empty trace)"
    width = max(10, width)

    rows: dict[tuple[int, int], list[tuple]] = {}
    for tid, proc, lane, start, end in assign_lanes(trace):
        rows.setdefault((proc, lane), []).append((tid, start, end))

    dt = result.makespan / width
    out = []
    for (proc, lane) in sorted(rows)[:max_rows]:
        cells = ["."] * width
        for tid, start, end in rows[(proc, lane)]:
            glyph = _GLYPH.get(_kind_value(tid), "#")
            c0 = min(int(start / dt), width - 1)
            c1 = min(int(max(end - 1e-15, start) / dt), width - 1)
            for c in range(c0, c1 + 1):
                cells[c] = glyph
        out.append(f"p{proc:<3}c{lane:<3}|" + "".join(cells) + "|")
    if len(rows) > max_rows:
        out.append(f"... ({len(rows) - max_rows} more lanes)")
    out.append(
        f"0{'':.<{width - 2}}{result.makespan:.3g}s   "
        "P=potrf T=trsm S=syrk g=gemm .=idle"
    )
    return "\n".join(out)


def utilization_timeline(result, *, buckets: int = 60):
    """Busy-core count per time bucket for a tuple-trace result.

    Returns
    -------
    (times, busy):
        Bucket midpoints and the average number of busy cores in each.

    Raises :class:`ValueError` when the result carries no trace.
    """
    trace = _require_trace(result)
    buckets = max(1, buckets)
    edges = np.linspace(0.0, max(result.makespan, 1e-300), buckets + 1)
    busy = np.zeros(buckets)
    for _, _, start, end in trace:
        if end <= start:
            continue
        lo = np.searchsorted(edges, start, side="right") - 1
        hi = np.searchsorted(edges, end, side="left")
        for bkt in range(max(lo, 0), min(hi, buckets)):
            overlap = min(end, edges[bkt + 1]) - max(start, edges[bkt])
            if overlap > 0:
                busy[bkt] += overlap / (edges[bkt + 1] - edges[bkt])
    mids = 0.5 * (edges[:-1] + edges[1:])
    return mids, busy


# ----------------------------------------------------------------------
# Chrome trace
# ----------------------------------------------------------------------
def _chrome_events_from_result(result) -> tuple[list[dict], dict]:
    """Events from a ``SimResult``/``ParallelExecutionReport`` trace.

    Processes map to pids, greedily reconstructed core lanes to tids
    (via :func:`assign_lanes`, shared with :func:`gantt`).
    """
    events = []
    for tid, proc, lane, start, end in assign_lanes(result.trace):
        kind = tid[0].value if hasattr(tid[0], "value") else str(tid[0])
        events.append(
            {
                "name": "_".join(str(x) for x in tid),
                "cat": kind,
                "ph": "X",
                "ts": start * 1e6,
                "dur": max(end - start, 0.0) * 1e6,
                "pid": int(proc),
                "tid": int(lane),
            }
        )
    other = {
        "makespan_s": result.makespan,
        "nodes": result.nodes,
        "cores_per_node": result.cores_per_node,
    }
    return events, other


def _chrome_events_from_tracer(tracer: Tracer) -> tuple[list[dict], dict]:
    """Events from a live tracer: one tid lane per thread, spans nested."""
    threads = {name: idx for idx, name in enumerate(tracer.threads())}
    events: list[dict] = [
        {
            "name": "thread_name",
            "ph": "M",
            "pid": 0,
            "tid": idx,
            "args": {"name": name},
        }
        for name, idx in threads.items()
    ]
    for rec in tracer.spans:
        events.append(
            {
                "name": rec.name,
                "cat": rec.category or "span",
                "ph": "X",
                "ts": rec.start * 1e6,
                "dur": max(rec.duration, 0.0) * 1e6,
                "pid": 0,
                "tid": threads[rec.thread],
                "args": {k: _json_attr(v) for k, v in rec.attrs.items()},
            }
        )
    for rec in tracer.events:
        events.append(
            {
                "name": rec.name,
                "cat": rec.category or "event",
                "ph": "i",
                "s": "t",
                "ts": rec.t * 1e6,
                "pid": 0,
                "tid": threads[rec.thread],
                "args": {k: _json_attr(v) for k, v in rec.attrs.items()},
            }
        )
    return events, {"spans": len(tracer.spans), "threads": len(threads)}


def write_chrome_trace(source, path: str | Path) -> Path:
    """Write a Chrome-tracing JSON from a tracer or a run result.

    Parameters
    ----------
    source:
        A :class:`~repro.obs.tracer.Tracer`, or any object with a
        non-``None`` ``trace`` attribute of ``(tid, proc, start, end)``
        tuples (``SimResult``, ``ParallelExecutionReport``).
    path:
        Output file; ``.json`` appended when missing.

    Raises
    ------
    ValueError
        When a result object has no recorded trace (``collect_trace``
        was off).
    """
    if isinstance(source, Tracer):
        events, other = _chrome_events_from_tracer(source)
    else:
        if getattr(source, "trace", None) is None:
            raise ValueError(
                "result has no trace; run with collect_trace=True"
            )
        events, other = _chrome_events_from_result(source)
    doc = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": other,
    }
    path = _ensure_suffix(path, ".json")
    path.write_text(json.dumps(doc))
    return path


# ----------------------------------------------------------------------
# JSON-lines event log
# ----------------------------------------------------------------------
def write_events_jsonl(tracer: Tracer, path: str | Path) -> Path:
    """One JSON object per line: every span, then every instant event."""
    path = _ensure_suffix(path, ".jsonl")
    lines = []
    for rec in tracer.spans:
        lines.append(
            json.dumps(
                {
                    "type": "span",
                    "name": rec.name,
                    "cat": rec.category,
                    "start": round(rec.start, 6),
                    "end": round(rec.end, 6),
                    "thread": rec.thread,
                    "depth": rec.depth,
                    "parent": rec.parent,
                    "attrs": {k: _json_attr(v) for k, v in rec.attrs.items()},
                }
            )
        )
    for rec in tracer.events:
        lines.append(
            json.dumps(
                {
                    "type": "event",
                    "name": rec.name,
                    "cat": rec.category,
                    "t": round(rec.t, 6),
                    "thread": rec.thread,
                    "attrs": {k: _json_attr(v) for k, v in rec.attrs.items()},
                }
            )
        )
    path.write_text("\n".join(lines) + ("\n" if lines else ""))
    return path


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------
def _prom_name(name: str) -> str:
    return "repro_" + re.sub(r"[^a-zA-Z0-9_:]", "_", name)


def _prom_labels(labels: dict, extra: dict | None = None) -> str:
    merged = {**labels, **(extra or {})}
    if not merged:
        return ""
    body = ",".join(
        f'{re.sub(r"[^a-zA-Z0-9_]", "_", k)}="{v}"' for k, v in merged.items()
    )
    return "{" + body + "}"


def _hist_bounds(hist: Histogram) -> list[float]:
    """Bucket upper bounds: exact values when few, percentiles otherwise."""
    uniq = sorted(set(hist.values))
    if len(uniq) <= 16:
        return uniq
    return sorted({hist.percentile(q) for q in range(5, 101, 5)})


def prometheus_text(registry: MetricsRegistry) -> str:
    """The registry in Prometheus text exposition format."""
    out: list[str] = []
    typed: set[str] = set()

    def header(name: str, kind: str) -> None:
        if name not in typed:
            typed.add(name)
            out.append(f"# TYPE {name} {kind}")

    for metric in registry.all():
        if isinstance(metric, Counter):
            name = _prom_name(metric.name) + "_total"
            header(name, "counter")
            out.append(f"{name}{_prom_labels(metric.labels)} {metric.value:g}")
        elif isinstance(metric, Gauge):
            name = _prom_name(metric.name)
            header(name, "gauge")
            out.append(f"{name}{_prom_labels(metric.labels)} {metric.value:g}")
        elif isinstance(metric, Histogram):
            name = _prom_name(metric.name)
            header(name, "histogram")
            bounds = _hist_bounds(metric)
            for bound, count in zip(bounds, metric.bucket_counts(bounds)):
                le = _prom_labels(metric.labels, {"le": f"{bound:g}"})
                out.append(f"{name}_bucket{le} {count}")
            inf = _prom_labels(metric.labels, {"le": "+Inf"})
            out.append(f"{name}_bucket{inf} {metric.count}")
            out.append(f"{name}_sum{_prom_labels(metric.labels)} {metric.sum:g}")
            out.append(f"{name}_count{_prom_labels(metric.labels)} {metric.count}")
        elif isinstance(metric, Series):
            # No native series type; export the last sample as a gauge.
            if metric.samples:
                name = _prom_name(metric.name)
                header(name, "gauge")
                out.append(
                    f"{name}{_prom_labels(metric.labels)} "
                    f"{metric.samples[-1][1]:g}"
                )
    return "\n".join(out) + ("\n" if out else "")


def write_prometheus(registry: MetricsRegistry, path: str | Path) -> Path:
    """Write :func:`prometheus_text` to ``path`` (``.prom`` appended)."""
    path = _ensure_suffix(path, ".prom")
    path.write_text(prometheus_text(registry))
    return path


# ----------------------------------------------------------------------
# JSON summary
# ----------------------------------------------------------------------
def write_summary_json(observation, path: str | Path) -> Path:
    """Write an observation's :meth:`~repro.obs.Observation.summary`."""
    path = _ensure_suffix(path, ".json")
    path.write_text(json.dumps(observation.summary(), indent=1))
    return path


# ----------------------------------------------------------------------
# Dependency graph
# ----------------------------------------------------------------------
def write_graph_json(graph_doc: dict, path: str | Path) -> Path:
    """Write the dependency-DAG document captured by ``graph_observed``.

    The document maps executor span names to their kernel class,
    modelled flops, and predecessor span names — what
    :func:`repro.obs.analytics.critical_path` joins task spans against.
    """
    path = _ensure_suffix(path, ".json")
    path.write_text(json.dumps(graph_doc, indent=1))
    return path
