"""Cross-rank trace-shard aggregation (``repro.obs.merge``).

The distributed executor's ranks are separate processes with separate
clocks: each one (when launched with ``shard_dir``) performs an
NTP-style handshake with the controller at startup — send ``t_send``,
receive the controller's ``t_ctrl``, timestamp the reply ``t_recv`` —
yielding a clock-offset estimate::

    offset = t_ctrl - (t_send + t_recv) / 2        rtt = t_recv - t_send

and then writes ``shard-rank<R>.json``: its task spans, its realized
communication events (every wire hop it sent, every tile arrival), a
task-duration :class:`~repro.obs.sketch.LogHistogram`, and the offset.

:func:`merge_shards` (behind ``python -m repro obs-merge``, and run
automatically by the controller) aligns every shard onto the
controller clock (``t_aligned = t_local + offset``) and emits **one**
Chrome trace:

* per-rank process groups (``pid`` = rank) with greedy compute lanes
  from :func:`~repro.obs.exporters.assign_lanes` plus one ``comm`` lane;
* realized comm edges as Chrome flow events (``ph: s``/``f``) from each
  send hop to its matched arrival — the visual of the Section VII-A
  broadcast trees actually taken, not modelled;
* the rank sketches merged (exact integer merge) into run-wide task
  percentiles in ``otherData``.

The :class:`MergeReport` carries a **span-conservation check** — merged
span count must equal the sum of the shard span counts — which the CLI
and CI gate on: a merge that drops or duplicates work fails loudly.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from pathlib import Path

from .exporters import assign_lanes
from .sketch import LogHistogram

__all__ = ["MergeReport", "load_shards", "merge_shards", "SHARD_PATTERN"]

SHARD_PATTERN = "shard-rank*.json"
_RANK_RE = re.compile(r"shard-rank(\d+)\.json$")


@dataclass
class MergeReport:
    """What :func:`merge_shards` did, and whether it conserved spans."""

    n_shards: int = 0
    shard_spans: dict[int, int] = field(default_factory=dict)
    merged_spans: int = 0
    offsets_s: dict[int, float] = field(default_factory=dict)
    rtts_s: dict[int, float] = field(default_factory=dict)
    comm_edges: int = 0
    comm_unmatched: int = 0
    makespan_s: float = 0.0
    task_percentiles: dict[str, float] = field(default_factory=dict)
    out_path: Path | None = None

    @property
    def conserved(self) -> bool:
        """Merged span count == Σ per-shard span counts."""
        return self.merged_spans == sum(self.shard_spans.values())

    def summary(self) -> dict:
        return {
            "n_shards": self.n_shards,
            "shard_spans": dict(self.shard_spans),
            "merged_spans": self.merged_spans,
            "conserved": self.conserved,
            "offsets_s": {r: round(o, 6) for r, o in self.offsets_s.items()},
            "rtts_s": {r: round(o, 6) for r, o in self.rtts_s.items()},
            "comm_edges": self.comm_edges,
            "comm_unmatched": self.comm_unmatched,
            "makespan_s": round(self.makespan_s, 6),
            "task_percentiles": {
                k: round(v, 9) for k, v in self.task_percentiles.items()
            },
            "out": None if self.out_path is None else str(self.out_path),
        }


def load_shards(indir: str | Path) -> list[dict]:
    """Load and validate every ``shard-rank<R>.json`` under ``indir``.

    Raises :class:`ValueError` when the directory holds no shards, a
    filename rank disagrees with the shard's recorded rank, or two
    shards claim the same rank.
    """
    indir = Path(indir)
    paths = sorted(indir.glob(SHARD_PATTERN))
    if not paths:
        raise ValueError(f"no {SHARD_PATTERN} shards found in {indir}")
    shards: dict[int, dict] = {}
    for path in paths:
        m = _RANK_RE.search(path.name)
        if m is None:  # glob matched something like shard-rankX.json
            raise ValueError(f"unparseable shard filename {path.name!r}")
        fname_rank = int(m.group(1))
        try:
            shard = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path.name} is not valid JSON: {exc}") from None
        rank = shard.get("rank")
        if rank != fname_rank:
            raise ValueError(
                f"{path.name} records rank {rank!r}, expected {fname_rank}"
            )
        if rank in shards:
            raise ValueError(f"duplicate shard for rank {rank}")
        shards[rank] = shard
    return [shards[r] for r in sorted(shards)]


def merge_shards(
    indir: str | Path,
    out: str | Path | None = None,
) -> MergeReport:
    """Clock-align and merge rank shards into one Chrome trace.

    Writes ``trace_merged.json`` into ``indir`` (or ``out``) and returns
    the :class:`MergeReport`; callers decide whether a failed
    conservation check is fatal (the CLI and the controller's CI gate
    treat it as such).
    """
    indir = Path(indir)
    shards = load_shards(indir)
    report = MergeReport(n_shards=len(shards))

    events: list[dict] = []
    sketch: LogHistogram | None = None
    sends: dict[tuple[str, int], dict] = {}
    recvs: list[tuple[int, str, float]] = []
    t_end = 0.0

    for shard in shards:
        rank = int(shard["rank"])
        offset = float(shard.get("clock", {}).get("offset_s", 0.0))
        report.offsets_s[rank] = offset
        report.rtts_s[rank] = float(shard.get("clock", {}).get("rtt_s", 0.0))
        spans = shard.get("spans", [])
        report.shard_spans[rank] = len(spans)

        rows = [
            (i, rank, s["start"] + offset, s["end"] + offset)
            for i, s in enumerate(spans)
        ]
        lanes: dict[int, int] = {}
        n_lanes = 0
        for i, _rank, lane, _start, _end in assign_lanes(rows):
            lanes[i] = lane
            n_lanes = max(n_lanes, lane + 1)

        events.append({
            "name": "process_name", "ph": "M", "pid": rank, "tid": 0,
            "args": {"name": f"rank {rank}"},
        })
        for lane in range(n_lanes):
            events.append({
                "name": "thread_name", "ph": "M", "pid": rank, "tid": lane,
                "args": {"name": f"compute-{lane}"},
            })
        comm_lane = max(n_lanes, 1)
        events.append({
            "name": "thread_name", "ph": "M", "pid": rank, "tid": comm_lane,
            "args": {"name": "comm"},
        })

        for i, span in enumerate(spans):
            start = span["start"] + offset
            end = span["end"] + offset
            t_end = max(t_end, end)
            events.append({
                "name": span["name"],
                "cat": span.get("kind", "task"),
                "ph": "X",
                "ts": start * 1e6,
                "dur": max(end - start, 0.0) * 1e6,
                "pid": rank,
                "tid": lanes[i],
                "args": {
                    "rank": rank,
                    "kernel": span.get("kernel"),
                    "flops": span.get("flops"),
                },
            })

        comm = shard.get("comm", {})
        for s in comm.get("sends", []):
            sends[(s["task"], int(s["dst"]))] = {
                "rank": rank, "t": s["t"] + offset, "tid": comm_lane,
            }
        for r in comm.get("recvs", []):
            recvs.append((rank, r["task"], r["t"] + offset))

        sk_doc = shard.get("sketch")
        if sk_doc is not None:
            sk = LogHistogram.from_dict(sk_doc)
            sketch = sk if sketch is None else sketch.merge(sk)

    # Realized comm edges: each arrival pairs with the wire hop that
    # targeted this rank (hops are unique per (task, destination) —
    # every rank receives each remote tile exactly once).
    comm_lanes = {
        e["pid"]: e["tid"] for e in events
        if e["ph"] == "M" and e.get("args", {}).get("name") == "comm"
    }
    flow_id = 0
    for rank, task, t_recv in sorted(recvs, key=lambda r: r[2]):
        send = sends.get((task, rank))
        if send is None:
            report.comm_unmatched += 1
            continue
        flow_id += 1
        report.comm_edges += 1
        events.append({
            "name": f"comm:{task}", "cat": "comm", "ph": "s",
            "id": flow_id, "ts": send["t"] * 1e6,
            "pid": send["rank"], "tid": send["tid"],
        })
        events.append({
            "name": f"comm:{task}", "cat": "comm", "ph": "f", "bp": "e",
            "id": flow_id, "ts": max(t_recv, send["t"]) * 1e6,
            "pid": rank, "tid": comm_lanes.get(rank, 0),
        })

    report.merged_spans = sum(
        1 for e in events if e["ph"] == "X"
    )
    report.makespan_s = t_end
    if sketch is not None and sketch.count:
        report.task_percentiles = sketch.percentiles()

    doc = {
        "traceEvents": sorted(events, key=lambda e: (e.get("ts", -1.0))),
        "displayTimeUnit": "ms",
        "otherData": {
            "n_shards": report.n_shards,
            "shard_spans": {
                str(r): c for r, c in report.shard_spans.items()
            },
            "merged_spans": report.merged_spans,
            "conserved": report.conserved,
            "offsets_s": {
                str(r): o for r, o in report.offsets_s.items()
            },
            "comm_edges": report.comm_edges,
            "comm_unmatched": report.comm_unmatched,
            "makespan_s": report.makespan_s,
            "task_percentiles": report.task_percentiles,
        },
    }
    out_path = Path(out) if out is not None else indir / "trace_merged.json"
    if out_path.suffix != ".json":
        out_path = out_path.with_suffix(out_path.suffix + ".json")
    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(json.dumps(doc))
    report.out_path = out_path
    return report
