"""Trace analytics: critical path, occupancy, flop rates, run diffs.

The paper's headline results are *trace narratives*: Fig. 10 shows the
recursive kernels shortening the realized critical path, Fig. 11 shows
worker occupancy, and the Table-II comparison is a flop-rate argument.
:mod:`repro.obs` records the raw material (task spans from both
executors, the dependency DAG via :func:`repro.obs.graph_observed`,
per-kernel flop counters); this module is the analysis side that turns a
recorded run into those figures' numbers:

* :func:`critical_path` — the longest *measured* chain of task spans
  through the recorded dependency DAG: the realized critical path, with
  the ``CP <= wall <= CP + work/p`` sanity bounds a trace must satisfy;
* :func:`occupancy` — per-worker busy fractions and a bucketed busy
  timeline (the Fig. 11 view, from real spans instead of the simulator);
* :func:`flop_attribution` — achieved GFLOP/s per Table-I kernel class
  (modelled flops over measured span seconds) with the dense-band vs
  low-rank split;
* :func:`trace_diff` — a structural, noise-aware comparison of two runs:
  task-set changes plus per-kernel-class timing deltas, flagging a class
  as regressed only when its slowdown clears both a relative threshold
  and the runs' own inter-quartile spread.

Everything consumes a :class:`RunTrace`, built either from a live
:class:`~repro.obs.Observation` (:func:`run_from_observation`) or from a
recorded ``--obs`` directory (:func:`load_run` reads ``events.jsonl``,
``graph.json`` and ``summary.json``) — so ``python -m repro analyze``
works on any run directory, long after the process that wrote it.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path

__all__ = [
    "TaskSpan",
    "RunTrace",
    "CriticalPath",
    "OccupancyReport",
    "KernelRate",
    "KernelDelta",
    "TraceDiff",
    "run_from_observation",
    "load_run",
    "critical_path",
    "occupancy",
    "flop_attribution",
    "trace_diff",
    "PredictionAccuracy",
    "prediction_accuracy",
    "render_analysis",
    "render_diff",
    "render_prediction",
]

#: Region-(1) kernel classes — the all-dense band work (Table I).
_DENSE_CLASSES = frozenset({"(1)-POTRF", "(1)-TRSM", "(1)-SYRK", "(1)-GEMM"})


@dataclass(frozen=True)
class TaskSpan:
    """One executed task as recorded by an executor's tracer span."""

    name: str
    start: float
    end: float
    thread: str
    kernel: str | None = None
    flops: float = 0.0

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class RunTrace:
    """The analyzable surface of one recorded run.

    ``tasks`` are the category-``"task"`` spans (one per executed task),
    ``graph`` the dependency document captured by
    :func:`repro.obs.graph_observed` (``None`` when the run carried no
    DAG — e.g. a sequential-loop factorization), ``wall_s`` the observed
    wall clock, and ``meta`` whatever the observation's creator attached.
    """

    tasks: list[TaskSpan] = field(default_factory=list)
    graph: dict | None = None
    wall_s: float = 0.0
    meta: dict = field(default_factory=dict)

    @property
    def workers(self) -> list[str]:
        """Distinct threads that executed tasks, stable order."""
        seen: dict[str, None] = {}
        for t in self.tasks:
            seen.setdefault(t.thread, None)
        return list(seen)

    @property
    def n_workers(self) -> int:
        return max(1, len(self.workers))

    @property
    def busy_s(self) -> float:
        """Aggregate task-span seconds (the run's measured work)."""
        return sum(t.duration for t in self.tasks)

    @property
    def window_s(self) -> float:
        """Task execution window (first task start to last task end).

        An observation often covers more than the graph execution
        (assembly, compression); Graham-bound checks compare the
        critical path against this window, not the full wall clock.
        """
        if not self.tasks:
            return 0.0
        return max(t.end for t in self.tasks) - min(t.start for t in self.tasks)


def run_from_observation(observation) -> RunTrace:
    """Build a :class:`RunTrace` from a live :class:`~repro.obs.Observation`."""
    tasks = [
        TaskSpan(
            name=rec.name,
            start=rec.start,
            end=rec.end,
            thread=rec.thread,
            kernel=rec.attrs.get("kernel"),
            flops=float(rec.attrs.get("flops", 0.0) or 0.0),
        )
        for rec in observation.tracer.spans
        if rec.category == "task"
    ]
    return RunTrace(
        tasks=tasks,
        graph=observation.graph,
        wall_s=observation.wall_s,
        meta=dict(observation.meta),
    )


def load_run(path: str | Path) -> RunTrace:
    """Load a :class:`RunTrace` from an ``--obs`` run directory.

    Reads ``events.jsonl`` (task spans), ``graph.json`` (dependency DAG,
    optional) and ``summary.json`` (wall clock + meta, optional).
    """
    path = Path(path)
    if path.is_file():  # accept any of the artifact files directly
        path = path.parent
    events = path / "events.jsonl"
    if not events.exists():
        raise FileNotFoundError(
            f"no events.jsonl under {path}; record a run with "
            "'python -m repro execute --obs DIR' or Observation.write()"
        )
    tasks = []
    for line in events.read_text().splitlines():
        if not line.strip():
            continue
        rec = json.loads(line)
        if rec.get("type") != "span" or rec.get("cat") != "task":
            continue
        attrs = rec.get("attrs", {})
        flops = attrs.get("flops", 0.0)
        try:
            flops = float(flops)
        except (TypeError, ValueError):
            flops = 0.0
        tasks.append(
            TaskSpan(
                name=rec["name"],
                start=rec["start"],
                end=rec["end"],
                thread=rec.get("thread", "?"),
                kernel=attrs.get("kernel"),
                flops=flops,
            )
        )
    graph = None
    graph_path = path / "graph.json"
    if graph_path.exists():
        graph = json.loads(graph_path.read_text())
    wall_s = max((t.end for t in tasks), default=0.0)
    meta: dict = {}
    summary_path = path / "summary.json"
    if summary_path.exists():
        summary = json.loads(summary_path.read_text())
        wall_s = float(summary.get("wall_s", wall_s))
        meta = summary.get("meta", {})
    return RunTrace(tasks=tasks, graph=graph, wall_s=wall_s, meta=meta)


# ----------------------------------------------------------------------
# Critical path
# ----------------------------------------------------------------------
@dataclass
class CriticalPath:
    """The realized critical path of one run.

    ``chain`` lists the task names along the longest measured chain in
    execution order; ``length_s`` is the sum of their span durations.
    A healthy trace satisfies ``length_s <= wall_s`` (the chain ran
    inside the run) and — for a busy parallel run — ``wall_s`` not far
    above ``length_s + busy_s / n_workers`` (Graham's bound).
    """

    chain: list[str]
    length_s: float
    wall_s: float
    window_s: float
    busy_s: float
    n_workers: int

    @property
    def chain_fraction(self) -> float:
        """Critical-path seconds as a fraction of the wall clock."""
        return self.length_s / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def parallelism(self) -> float:
        """Average parallelism ``busy / length`` the DAG exposed."""
        return self.busy_s / self.length_s if self.length_s > 0 else 0.0


def _graph_deps(run: RunTrace) -> dict[str, list[str]]:
    """``{task name: [predecessor names]}`` restricted to observed tasks."""
    if run.graph is None:
        raise ValueError(
            "run has no recorded dependency graph; execute through "
            "the graph executors (e.g. demo/execute --workers) so "
            "graph.json is captured"
        )
    observed = {t.name for t in run.tasks}
    out: dict[str, list[str]] = {}
    for name, info in run.graph.get("tasks", {}).items():
        if name in observed:
            out[name] = [d for d in info.get("deps", []) if d in observed]
    return out


def critical_path(run: RunTrace) -> CriticalPath:
    """Longest measured chain through the recorded dependency DAG.

    Weights are the *measured* span durations (not modelled flops), so
    this is the realized critical path — the quantity Fig. 10's
    recursive-kernel argument is about.  Raises ``ValueError`` when the
    run carried no dependency graph.
    """
    deps = _graph_deps(run)
    durations: dict[str, float] = {}
    for t in run.tasks:
        # A retried task records several spans; the committed attempt is
        # the last one, but every attempt occupied the chain — sum them.
        durations[t.name] = durations.get(t.name, 0.0) + t.duration

    indeg = {name: len(ps) for name, ps in deps.items()}
    succs: dict[str, list[str]] = {name: [] for name in deps}
    for name, ps in deps.items():
        for p in ps:
            succs[p].append(name)

    ready = [name for name, d in indeg.items() if d == 0]
    dist: dict[str, float] = {}
    best_pred: dict[str, str | None] = {}
    order_seen = 0
    while ready:
        name = ready.pop()
        order_seen += 1
        pred, base = None, 0.0
        for p in deps[name]:
            if dist[p] > base:
                pred, base = p, dist[p]
        dist[name] = base + durations.get(name, 0.0)
        best_pred[name] = pred
        for s in succs[name]:
            indeg[s] -= 1
            if indeg[s] == 0:
                ready.append(s)
    if order_seen != len(deps):
        raise ValueError(
            f"dependency graph is cyclic over the observed tasks "
            f"({order_seen} of {len(deps)} ordered)"
        )

    chain: list[str] = []
    if dist:
        name = max(dist, key=dist.get)
        while name is not None:
            chain.append(name)
            name = best_pred[name]
        chain.reverse()
    return CriticalPath(
        chain=chain,
        length_s=sum(durations.get(n, 0.0) for n in chain),
        wall_s=run.wall_s,
        window_s=run.window_s,
        busy_s=run.busy_s,
        n_workers=run.n_workers,
    )


def is_dependency_path(run: RunTrace, chain: list[str]) -> bool:
    """True when consecutive chain entries are graph-connected edges."""
    if run.graph is None:
        return False
    tasks = run.graph.get("tasks", {})
    for src, dst in zip(chain, chain[1:]):
        if src not in tasks.get(dst, {}).get("deps", []):
            return False
    return bool(chain)


# ----------------------------------------------------------------------
# Occupancy
# ----------------------------------------------------------------------
@dataclass
class OccupancyReport:
    """Per-worker busy fractions plus a bucketed busy-worker timeline."""

    workers: list[str]
    busy_s: dict[str, float]
    fractions: dict[str, float]
    timeline: list[float]  # mean busy-worker count per bucket
    wall_s: float

    @property
    def mean_occupancy(self) -> float:
        if not self.fractions:
            return 0.0
        return sum(self.fractions.values()) / len(self.fractions)


def occupancy(run: RunTrace, *, buckets: int = 60) -> OccupancyReport:
    """Worker occupancy from task spans (the trace-side Fig. 11)."""
    wall = run.wall_s or max((t.end for t in run.tasks), default=0.0)
    busy: dict[str, float] = {w: 0.0 for w in run.workers}
    for t in run.tasks:
        busy[t.thread] += t.duration
    fractions = {
        w: (b / wall if wall > 0 else 0.0) for w, b in busy.items()
    }
    buckets = max(1, buckets)
    timeline = [0.0] * buckets
    if wall > 0:
        dt = wall / buckets
        for t in run.tasks:
            if t.duration <= 0:
                continue
            lo = max(0, min(buckets - 1, int(t.start / dt)))
            hi = max(0, min(buckets - 1, int(max(t.end - 1e-12, t.start) / dt)))
            for b in range(lo, hi + 1):
                edge0, edge1 = b * dt, (b + 1) * dt
                overlap = min(t.end, edge1) - max(t.start, edge0)
                if overlap > 0:
                    timeline[b] += overlap / dt
    return OccupancyReport(
        workers=run.workers,
        busy_s=busy,
        fractions=fractions,
        timeline=timeline,
        wall_s=wall,
    )


# ----------------------------------------------------------------------
# Flop-rate attribution
# ----------------------------------------------------------------------
@dataclass
class KernelRate:
    """Measured performance of one Table-I kernel class."""

    kernel: str
    tasks: int
    flops: float
    seconds: float
    durations: list[float] = field(default_factory=list)

    @property
    def gflops(self) -> float:
        """Achieved GFLOP/s: modelled flops over measured seconds."""
        return self.flops / self.seconds / 1e9 if self.seconds > 0 else 0.0

    @property
    def is_dense_band(self) -> bool:
        return self.kernel in _DENSE_CLASSES

    @property
    def median_s(self) -> float:
        return _median(self.durations)

    @property
    def iqr_s(self) -> float:
        return _iqr(self.durations)


def flop_attribution(run: RunTrace) -> dict[str, KernelRate]:
    """Per-kernel-class achieved GFLOP/s from annotated task spans.

    Tasks without a ``kernel`` annotation are grouped under
    ``"(unlabelled)"`` so their time is never silently dropped.
    """
    rates: dict[str, KernelRate] = {}
    for t in run.tasks:
        kernel = t.kernel or "(unlabelled)"
        r = rates.get(kernel)
        if r is None:
            r = rates[kernel] = KernelRate(kernel, 0, 0.0, 0.0)
        r.tasks += 1
        r.flops += t.flops
        r.seconds += t.duration
        r.durations.append(t.duration)
    return dict(sorted(rates.items(), key=lambda kv: -kv[1].seconds))


def dense_lowrank_split(rates: dict[str, KernelRate]) -> tuple[float, float]:
    """``(dense_band_s, low_rank_s)`` measured seconds split."""
    dense = sum(r.seconds for r in rates.values() if r.is_dense_band)
    total = sum(r.seconds for r in rates.values())
    return dense, total - dense


# ----------------------------------------------------------------------
# Run-to-run diff
# ----------------------------------------------------------------------
def _median(xs: list[float]) -> float:
    if not xs:
        return 0.0
    s = sorted(xs)
    n = len(s)
    mid = n // 2
    return s[mid] if n % 2 else 0.5 * (s[mid - 1] + s[mid])


def _iqr(xs: list[float]) -> float:
    if len(xs) < 2:
        return 0.0
    s = sorted(xs)
    n = len(s)

    def q(p: float) -> float:
        idx = p * (n - 1)
        lo = math.floor(idx)
        hi = math.ceil(idx)
        return s[lo] + (s[hi] - s[lo]) * (idx - lo)

    return q(0.75) - q(0.25)


@dataclass
class KernelDelta:
    """Timing change of one kernel class between two runs."""

    kernel: str
    base: KernelRate | None
    head: KernelRate | None
    regressed: bool = False
    improved: bool = False

    @property
    def ratio(self) -> float:
        """Head-over-base median task duration (1.0 = unchanged)."""
        if self.base is None or self.head is None:
            return float("nan")
        b = self.base.median_s
        return self.head.median_s / b if b > 0 else float("inf")


@dataclass
class TraceDiff:
    """Structural + timing comparison of two recorded runs."""

    only_in_base: list[str]
    only_in_head: list[str]
    kernels: list[KernelDelta]
    base_wall_s: float
    head_wall_s: float
    threshold: float

    @property
    def regressions(self) -> list[KernelDelta]:
        return [d for d in self.kernels if d.regressed]

    @property
    def has_regression(self) -> bool:
        return bool(self.regressions)


def trace_diff(
    base: RunTrace, head: RunTrace, *, threshold: float = 0.25
) -> TraceDiff:
    """Compare two runs structurally and per kernel class.

    A kernel class is flagged *regressed* only when its median task
    duration grew by more than ``threshold`` (relative) **and** the
    absolute growth exceeds both runs' inter-quartile ranges — the same
    two-condition gate ``python -m repro compare`` applies to benchmark
    records, so scheduler jitter on one noisy task never trips it.
    """
    base_names = {t.name for t in base.tasks}
    head_names = {t.name for t in head.tasks}
    base_rates = flop_attribution(base)
    head_rates = flop_attribution(head)
    deltas: list[KernelDelta] = []
    for kernel in sorted(set(base_rates) | set(head_rates)):
        b = base_rates.get(kernel)
        h = head_rates.get(kernel)
        d = KernelDelta(kernel, b, h)
        if b is not None and h is not None and b.median_s > 0:
            grow = h.median_s - b.median_s
            noise = max(b.iqr_s, h.iqr_s)
            if grow > threshold * b.median_s and grow > noise:
                d.regressed = True
            shrink = b.median_s - h.median_s
            if shrink > threshold * b.median_s and shrink > noise:
                d.improved = True
        deltas.append(d)
    return TraceDiff(
        only_in_base=sorted(base_names - head_names),
        only_in_head=sorted(head_names - base_names),
        kernels=deltas,
        base_wall_s=base.wall_s,
        head_wall_s=head.wall_s,
        threshold=threshold,
    )


# ----------------------------------------------------------------------
# Prediction accuracy (simulator vs realized run)
# ----------------------------------------------------------------------
@dataclass
class PredictionAccuracy:
    """How well a simulated (predicted) trace matched a realized one.

    Both sides are :class:`RunTrace` objects over the *same* task graph
    — the predicted one replays DES spans, the realized one records an
    actual execution.  Errors are signed, predicted-relative-to-realized
    (``(pred - real) / real``; positive = the simulator over-estimated).
    Makespans compare task windows (:attr:`RunTrace.window_s`), not full
    wall clocks, so assembly/compression outside the graph never counts
    against the scheduler model.
    """

    predicted_makespan_s: float
    realized_makespan_s: float
    predicted_cp_s: float
    realized_cp_s: float
    predicted_occupancy: float
    realized_occupancy: float
    kernel_median_ratio: dict[str, float] = field(default_factory=dict)

    @property
    def makespan_rel_err(self) -> float:
        if self.realized_makespan_s <= 0:
            return float("inf") if self.predicted_makespan_s > 0 else 0.0
        return (
            self.predicted_makespan_s - self.realized_makespan_s
        ) / self.realized_makespan_s

    @property
    def cp_rel_err(self) -> float:
        if self.realized_cp_s <= 0:
            return float("inf") if self.predicted_cp_s > 0 else 0.0
        return (self.predicted_cp_s - self.realized_cp_s) / self.realized_cp_s

    @property
    def occupancy_abs_err(self) -> float:
        return self.predicted_occupancy - self.realized_occupancy

    def within(self, tolerance: float) -> bool:
        """True when the makespan prediction error is inside ``tolerance``."""
        return abs(self.makespan_rel_err) <= tolerance


def prediction_accuracy(
    predicted: RunTrace, realized: RunTrace
) -> PredictionAccuracy:
    """Quantify a DES prediction against a realized run's trace.

    Critical paths need a dependency graph on each side; a side without
    one reports 0 (and the relative error degrades gracefully).
    """

    def cp_len(run: RunTrace) -> float:
        if run.graph is None or not run.tasks:
            return 0.0
        return critical_path(run).length_s

    def occ(run: RunTrace) -> float:
        if not run.tasks:
            return 0.0
        return occupancy(run).mean_occupancy

    pred_rates = flop_attribution(predicted)
    real_rates = flop_attribution(realized)
    ratios: dict[str, float] = {}
    for kernel in sorted(set(pred_rates) & set(real_rates)):
        rm = real_rates[kernel].median_s
        if rm > 0:
            ratios[kernel] = pred_rates[kernel].median_s / rm
    return PredictionAccuracy(
        predicted_makespan_s=predicted.window_s,
        realized_makespan_s=realized.window_s,
        predicted_cp_s=cp_len(predicted),
        realized_cp_s=cp_len(realized),
        predicted_occupancy=occ(predicted),
        realized_occupancy=occ(realized),
        kernel_median_ratio=ratios,
    )


def render_prediction(acc: PredictionAccuracy, *, width: int = 80) -> str:
    """Text report of one predicted-vs-realized comparison."""
    lines = ["prediction accuracy", "-------------------"]
    lines.append(
        f"makespan: predicted {acc.predicted_makespan_s:.4f} s  "
        f"realized {acc.realized_makespan_s:.4f} s  "
        f"err {acc.makespan_rel_err * 100:+.1f}%"
    )
    lines.append(
        f"critical path: predicted {acc.predicted_cp_s:.4f} s  "
        f"realized {acc.realized_cp_s:.4f} s  "
        f"err {acc.cp_rel_err * 100:+.1f}%"
    )
    lines.append(
        f"occupancy: predicted {acc.predicted_occupancy * 100:.1f}%  "
        f"realized {acc.realized_occupancy * 100:.1f}%  "
        f"err {acc.occupancy_abs_err * 100:+.1f} pts"
    )
    for kernel, ratio in acc.kernel_median_ratio.items():
        lines.append(f"  {kernel:<14} median pred/real x{ratio:5.2f}")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Rendering (pure stdlib, like repro.obs.report)
# ----------------------------------------------------------------------
def _bar(fraction: float, width: int) -> str:
    n = max(0, min(width, int(round(fraction * width))))
    return "#" * n


def render_analysis(run: RunTrace, *, width: int = 80, buckets: int = 60) -> str:
    """The ``python -m repro analyze`` text report for one run."""
    lines = ["repro trace analytics", "====================="]
    for key in sorted(run.meta):
        lines.append(f"{key:<16} {run.meta[key]}")
    lines.append(f"{'wall clock':<16} {run.wall_s:.3f} s")
    lines.append(f"{'task spans':<16} {len(run.tasks)}")
    lines.append(f"{'workers':<16} {run.n_workers}")

    # -- critical path -------------------------------------------------
    lines += ["", "critical path", "-------------"]
    if run.graph is None:
        lines.append(
            "(no dependency graph recorded; run via the graph executors "
            "— e.g. --workers — to capture graph.json)"
        )
        cp = None
    else:
        cp = critical_path(run)
        lines.append(
            f"length {cp.length_s:.3f} s over {len(cp.chain)} tasks "
            f"({cp.chain_fraction * 100:.1f}% of wall clock, "
            f"avg parallelism {cp.parallelism:.2f})"
        )
        lower = cp.window_s / max(cp.n_workers, 1)
        lines.append(
            f"bounds: window/p = {lower:.3f} s, CP = {cp.length_s:.3f} s, "
            f"task window = {cp.window_s:.3f} s, wall = {cp.wall_s:.3f} s"
        )
        shown = cp.chain if len(cp.chain) <= 14 else (
            cp.chain[:7] + [f"... {len(cp.chain) - 14} more ..."] + cp.chain[-7:]
        )
        lines.append("chain: " + " -> ".join(shown))

    # -- occupancy -----------------------------------------------------
    occ = occupancy(run, buckets=min(buckets, max(10, width - 20)))
    lines += ["", "worker occupancy", "----------------"]
    for w in occ.workers:
        lines.append(
            f"{w:<18} busy {occ.busy_s[w]:8.3f} s  "
            f"{occ.fractions[w] * 100:5.1f}%  "
            f"{_bar(occ.fractions[w], width // 3)}"
        )
    lines.append(f"mean occupancy {occ.mean_occupancy * 100:.1f}%")
    if occ.timeline:
        peak = max(occ.timeline) or 1.0
        glyphs = " .:-=+*#%@"
        lines.append(
            "busy workers over time: |"
            + "".join(
                glyphs[min(len(glyphs) - 1,
                           int(v / peak * (len(glyphs) - 1)))]
                for v in occ.timeline
            )
            + "|"
        )

    # -- flop rates ----------------------------------------------------
    rates = flop_attribution(run)
    lines += ["", "achieved flop rate by kernel class",
              "----------------------------------"]
    for r in rates.values():
        lines.append(
            f"{r.kernel:<14} {r.tasks:>6d} tasks {r.seconds:>9.3f} s  "
            f"{r.flops:>11.3e} flop  {r.gflops:>8.2f} Gflop/s"
        )
    dense, lowrank = dense_lowrank_split(rates)
    total = dense + lowrank
    if total > 0:
        lines.append(
            f"{'split':<14} dense-band {dense / total * 100:5.1f}%  "
            f"low-rank {lowrank / total * 100:5.1f}%  (measured seconds)"
        )
    return "\n".join(lines)


def render_diff(diff: TraceDiff, *, width: int = 80) -> str:
    """The ``python -m repro compare`` text report for two obs runs."""
    lines = ["repro trace diff", "================"]
    lines.append(
        f"wall clock: base {diff.base_wall_s:.3f} s -> "
        f"head {diff.head_wall_s:.3f} s"
    )
    if diff.only_in_base:
        lines.append(f"tasks only in base: {len(diff.only_in_base)} "
                     f"(e.g. {', '.join(diff.only_in_base[:4])})")
    if diff.only_in_head:
        lines.append(f"tasks only in head: {len(diff.only_in_head)} "
                     f"(e.g. {', '.join(diff.only_in_head[:4])})")
    if not (diff.only_in_base or diff.only_in_head):
        lines.append("task sets identical")
    lines += ["", "per-kernel-class timing (median task seconds)",
              "---------------------------------------------"]
    for d in diff.kernels:
        b = d.base.median_s if d.base else float("nan")
        h = d.head.median_s if d.head else float("nan")
        flag = "REGRESSED" if d.regressed else (
            "improved" if d.improved else "")
        lines.append(
            f"{d.kernel:<14} base {b:10.6f} s  head {h:10.6f} s  "
            f"x{d.ratio:5.2f}  {flag}"
        )
    if diff.has_regression:
        names = ", ".join(d.kernel for d in diff.regressions)
        lines.append("")
        lines.append(
            f"REGRESSION: {names} slowed beyond the "
            f"{diff.threshold * 100:.0f}% threshold and the measured IQR"
        )
    else:
        lines.append("")
        lines.append("no regression: every class within threshold or noise")
    return "\n".join(lines)
