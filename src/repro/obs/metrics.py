"""Metrics registry: counters, gauges, histograms, time series.

The quantities the paper's evaluation turns on — per-kernel flops
(Figs. 6b/6c/10), per-region invocation counts (Table I), rank
distributions before/after recompression (Fig. 1), memory pool hit rates
and high-water marks (Fig. 8, Section VII-B), executor queue depths and
worker occupancy (Fig. 11) — are all either monotone totals, level
samples, or value distributions.  The registry models exactly those
three shapes plus a timestamped series for timelines:

* :class:`Counter` — monotone float total plus an increment count;
* :class:`Gauge` — last value with min/max watermarks;
* :class:`Histogram` — full value distribution (kept exact: the scales
  here are thousands of observations, so raw retention is cheaper than
  committing to bucket bounds up front);
* :class:`Series` — ``(t, value)`` samples against the registry clock,
  for memory/queue-depth timelines.

Metrics are identified by name plus optional labels, Prometheus-style::

    registry.counter("kernel_flops", kernel="(6)-GEMM").inc(flops)

Everything is thread-safe: registration takes the registry lock, updates
take a per-metric lock.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

__all__ = ["Counter", "Gauge", "Histogram", "Series", "MetricsRegistry"]

#: Metric key: (name, ((label, value), ...)) with labels sorted.
_Key = tuple


def _key(name: str, labels: dict) -> _Key:
    return (name, tuple(sorted(labels.items())))


class _Metric:
    """Shared identity/locking base for all metric types."""

    kind = "metric"

    def __init__(self, name: str, labels: dict) -> None:
        self.name = name
        # Canonical (sorted) label order: exports and compare diffs must
        # not depend on which call site registered the metric first.
        self.labels = dict(sorted(labels.items()))
        self._lock = threading.Lock()


class Counter(_Metric):
    """Monotone total; also counts how many increments arrived."""

    kind = "counter"

    def __init__(self, name: str, labels: dict) -> None:
        super().__init__(name, labels)
        self.value = 0.0
        self.increments = 0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (>= 0) to the total."""
        with self._lock:
            self.value += amount
            self.increments += 1

    def snapshot(self) -> dict:
        return {
            "name": self.name,
            "labels": self.labels,
            "value": self.value,
            "increments": self.increments,
        }


class Gauge(_Metric):
    """Last-written level with min/max watermarks."""

    kind = "gauge"

    def __init__(self, name: str, labels: dict) -> None:
        super().__init__(name, labels)
        self.value = 0.0
        self.max = float("-inf")
        self.min = float("inf")
        self._written = False

    def set(self, value: float) -> None:
        """Record a new level."""
        value = float(value)
        with self._lock:
            self.value = value
            self.max = max(self.max, value)
            self.min = min(self.min, value)
            self._written = True

    def snapshot(self) -> dict:
        return {
            "name": self.name,
            "labels": self.labels,
            "value": self.value,
            "max": self.max if self._written else None,
            "min": self.min if self._written else None,
        }


class Histogram(_Metric):
    """Exact value distribution (raw observations retained)."""

    kind = "histogram"

    def __init__(self, name: str, labels: dict) -> None:
        super().__init__(name, labels)
        self.values: list[float] = []

    def observe(self, value: float) -> None:
        """Record one observation."""
        with self._lock:
            self.values.append(float(value))

    @property
    def count(self) -> int:
        return len(self.values)

    @property
    def sum(self) -> float:
        return float(sum(self.values))

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile (0..100) by nearest-rank; 0 if empty."""
        with self._lock:
            if not self.values:
                return 0.0
            ordered = sorted(self.values)
        idx = min(len(ordered) - 1, max(0, int(round(q / 100.0 * (len(ordered) - 1)))))
        return ordered[idx]

    def value_counts(self) -> dict[float, int]:
        """``{value: occurrences}`` — the exact spectrum (rank histograms)."""
        counts: dict[float, int] = {}
        with self._lock:
            for v in self.values:
                counts[v] = counts.get(v, 0) + 1
        return dict(sorted(counts.items()))

    def bucket_counts(self, bounds: list[float]) -> list[int]:
        """Cumulative counts per upper bound (Prometheus ``le`` semantics)."""
        with self._lock:
            vals = list(self.values)
        return [sum(1 for v in vals if v <= b) for b in bounds]

    def snapshot(self) -> dict:
        with self._lock:
            vals = list(self.values)
        if not vals:
            return {
                "name": self.name,
                "labels": self.labels,
                "count": 0,
                "sum": 0.0,
            }
        ordered = sorted(vals)

        def pct(q: float) -> float:
            return ordered[min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))]

        counts: dict[str, int] = {}
        for v in vals:
            key = f"{int(v)}" if float(v).is_integer() else f"{v:g}"
            counts[key] = counts.get(key, 0) + 1
        return {
            "name": self.name,
            "labels": self.labels,
            "count": len(vals),
            "sum": float(sum(vals)),
            "min": ordered[0],
            "max": ordered[-1],
            "mean": float(sum(vals)) / len(vals),
            "p50": pct(0.50),
            "p95": pct(0.95),
            "counts": dict(sorted(counts.items(), key=lambda kv: float(kv[0]))),
        }


class Series(_Metric):
    """Timestamped samples — the memory/queue-depth timeline shape."""

    kind = "series"

    def __init__(self, name: str, labels: dict, clock) -> None:
        super().__init__(name, labels)
        self._clock = clock
        self.samples: list[tuple[float, float]] = []

    def sample(self, value: float) -> None:
        """Append ``(now, value)``."""
        t = self._clock()
        with self._lock:
            self.samples.append((t, float(value)))

    def snapshot(self) -> dict:
        with self._lock:
            samples = [[round(t, 6), v] for t, v in self.samples]
        return {"name": self.name, "labels": self.labels, "samples": samples}


@dataclass
class _RegistryState:
    metrics: dict
    lock: threading.Lock


class MetricsRegistry:
    """Get-or-create store of metrics, keyed by name + labels.

    The registry's clock starts at construction so its series share a
    time origin with the tracer created alongside it (see
    :class:`repro.obs.Observation`).
    """

    def __init__(self, t0: float | None = None) -> None:
        self._metrics: dict[_Key, _Metric] = {}
        self._lock = threading.Lock()
        self.t0 = time.perf_counter() if t0 is None else t0

    def _now(self) -> float:
        return time.perf_counter() - self.t0

    def _get(self, cls, name: str, labels: dict, **extra):
        key = _key(name, labels)
        metric = self._metrics.get(key)
        if metric is None:
            with self._lock:
                metric = self._metrics.get(key)
                if metric is None:
                    metric = cls(name, labels, **extra)
                    self._metrics[key] = metric
        if not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r}{labels} already registered as {metric.kind}"
            )
        return metric

    # -- factories -----------------------------------------------------
    def counter(self, name: str, **labels) -> Counter:
        """Get or create the counter ``name{labels}``."""
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        """Get or create the gauge ``name{labels}``."""
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, **labels) -> Histogram:
        """Get or create the histogram ``name{labels}``."""
        return self._get(Histogram, name, labels)

    def series(self, name: str, **labels) -> Series:
        """Get or create the time series ``name{labels}``."""
        return self._get(Series, name, labels, clock=self._now)

    # -- introspection -------------------------------------------------
    def all(self) -> list[_Metric]:
        """Every registered metric, registration order."""
        with self._lock:
            return list(self._metrics.values())

    def find(self, name: str) -> list[_Metric]:
        """All metrics with the given name (any labels)."""
        return [m for m in self.all() if m.name == name]

    def snapshot(self) -> dict:
        """JSON-serializable dump, grouped by metric kind."""
        out: dict[str, list] = {
            "counters": [],
            "gauges": [],
            "histograms": [],
            "series": [],
        }
        group = {
            "counter": "counters",
            "gauge": "gauges",
            "histogram": "histograms",
            "series": "series",
        }
        for metric in self.all():
            out[group[metric.kind]].append(metric.snapshot())
        return out
