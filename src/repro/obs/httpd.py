"""Stdlib HTTP monitoring plane + terminal top view (``repro.obs.httpd``).

:class:`MonitoringServer` wraps ``http.server.ThreadingHTTPServer``
around a :class:`~repro.obs.live.LiveAggregator` — three read-only
endpoints, no dependencies beyond the standard library:

* ``GET /metrics`` — Prometheus text exposition.  Counters become
  ``repro_<name>_total``, gauges ``repro_<name>``, and each latency
  sketch a Prometheus **summary** (``{quantile="0.5"}`` … plus
  ``_sum``/``_count``), so a stock Prometheus scrape ingests the
  sketch percentiles directly.
* ``GET /healthz`` — the SLO evaluation from
  :meth:`~repro.obs.live.LiveAggregator.health`; HTTP 200 while
  ``ok``/``degraded``, 503 once ``failing`` (load balancers eject the
  instance exactly when the error budget is burning > 2x).
* ``GET /stats`` — the full JSON snapshot (sketch percentiles,
  FactorCache hits/misses/evictions, queue depth, worker occupancy).

:func:`parse_prometheus_text` is the reverse direction — a small,
strict parser used by the tests and the CI smoke lane to prove the
exposition is well-formed, not just non-empty.  :func:`render_top` and
:func:`run_top` are the ``repro top`` terminal renderer: poll
``/stats``, redraw in place.
"""

from __future__ import annotations

import json
import re
import threading
import time
import urllib.request
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from .live import LiveAggregator

__all__ = [
    "MonitoringServer",
    "snapshot_prometheus_text",
    "parse_prometheus_text",
    "render_top",
    "run_top",
]


# ----------------------------------------------------------------------
# Prometheus exposition from a live snapshot
# ----------------------------------------------------------------------
def _prom_name(name: str) -> str:
    return "repro_" + re.sub(r"[^a-zA-Z0-9_:]", "_", name)


_QUANTILES = ((0.5, "0.5"), (0.95, "0.95"), (0.99, "0.99"))


def snapshot_prometheus_text(snapshot: dict) -> str:
    """Render a :meth:`LiveAggregator.snapshot` as Prometheus text.

    Sketches export as summaries because their log buckets (thousands
    at 1 % relative error) would bloat a histogram exposition; the
    quantiles carry the same documented error bound.
    """
    out: list[str] = []

    for name, value in sorted(snapshot.get("counters", {}).items()):
        prom = _prom_name(name) + "_total"
        out.append(f"# TYPE {prom} counter")
        out.append(f"{prom} {value:g}")

    for name, value in sorted(snapshot.get("gauges", {}).items()):
        prom = _prom_name(name)
        out.append(f"# TYPE {prom} gauge")
        out.append(f"{prom} {value:g}")

    for name, lat in sorted(snapshot.get("latency", {}).items()):
        prom = _prom_name(name)
        out.append(f"# TYPE {prom} summary")
        for p, label in _QUANTILES:
            key = f"p{p * 100:g}"
            out.append(f'{prom}{{quantile="{label}"}} {lat.get(key, 0.0):g}')
        out.append(f"{prom}_sum {lat.get('mean', 0.0) * lat.get('count', 0):g}")
        out.append(f"{prom}_count {lat.get('count', 0):g}")

    dropped = _prom_name("obs_dropped_events") + "_total"
    out.append(f"# TYPE {dropped} counter")
    out.append(f"{dropped} {snapshot.get('dropped_events', 0):g}")

    up = _prom_name("obs_uptime_seconds")
    out.append(f"# TYPE {up} gauge")
    out.append(f"{up} {snapshot.get('uptime_s', 0.0):g}")
    return "\n".join(out) + "\n"


_METRIC_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>[^\s]+)"
    r"(?:\s+(?P<ts>-?\d+))?$"
)
_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def parse_prometheus_text(text: str) -> dict[str, list[tuple[dict, float]]]:
    """Parse Prometheus text exposition → ``{name: [(labels, value)]}``.

    Strict: every non-comment line must match the exposition grammar
    and every value must parse as a float, otherwise :class:`ValueError`
    names the offending line.  Used by tests and the CI smoke lane to
    validate ``/metrics`` (and ``metrics.prom`` files) for real.
    """
    samples: dict[str, list[tuple[dict, float]]] = {}
    for lineno, line in enumerate(text.splitlines(), 1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        m = _METRIC_RE.match(line)
        if m is None:
            raise ValueError(f"line {lineno}: malformed sample {line!r}")
        raw = m.group("value")
        try:
            value = float(raw)
        except ValueError:
            raise ValueError(
                f"line {lineno}: non-numeric value {raw!r}"
            ) from None
        labels = dict(_LABEL_RE.findall(m.group("labels") or ""))
        samples.setdefault(m.group("name"), []).append((labels, value))
    return samples


# ----------------------------------------------------------------------
# The HTTP server
# ----------------------------------------------------------------------
class _Handler(BaseHTTPRequestHandler):
    aggregator: LiveAggregator  # set by MonitoringServer on the class

    def do_GET(self) -> None:  # noqa: N802 (stdlib API)
        path = self.path.split("?", 1)[0]
        try:
            if path == "/metrics":
                body = snapshot_prometheus_text(self.aggregator.snapshot())
                self._reply(
                    200, body, "text/plain; version=0.0.4; charset=utf-8"
                )
            elif path == "/healthz":
                health = self.aggregator.health()
                code = 503 if health.get("status") == "failing" else 200
                self._reply(code, json.dumps(health, indent=1))
            elif path == "/stats":
                self._reply(200, json.dumps(self.aggregator.snapshot(), indent=1))
            else:
                self._reply(404, json.dumps({"error": f"no route {path}"}))
        except Exception as exc:  # pragma: no cover - defensive
            self._reply(500, json.dumps({"error": repr(exc)}))

    def _reply(
        self, code: int, body: str, ctype: str = "application/json"
    ) -> None:
        data = body.encode()
        self.send_response(code)
        self.send_header("Content-Type", ctype)
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def log_message(self, fmt, *args) -> None:  # silence stderr chatter
        pass


class MonitoringServer:
    """Serve ``/metrics``, ``/healthz``, ``/stats`` for an aggregator.

    ``port=0`` binds an ephemeral port (the default for tests); read the
    real one from :attr:`port` or :attr:`url` after :meth:`start`.
    Request handling runs on daemon threads; :meth:`stop` shuts the
    listener down and joins the serve loop.
    """

    def __init__(
        self,
        aggregator: LiveAggregator,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.aggregator = aggregator
        handler = type("BoundHandler", (_Handler,), {"aggregator": aggregator})
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._httpd.daemon_threads = True
        self._thread: threading.Thread | None = None

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "MonitoringServer":
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                name="obs-httpd",
                daemon=True,
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        self._httpd.shutdown()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self._httpd.server_close()


# ----------------------------------------------------------------------
# repro top
# ----------------------------------------------------------------------
def _fmt_ms(seconds: float) -> str:
    return f"{seconds * 1e3:8.2f}"


def render_top(stats: dict, width: int = 72) -> str:
    """One frame of the ``repro top`` display from a ``/stats`` body."""
    bar = "=" * width
    lines = [
        bar,
        f" repro top · uptime {stats.get('uptime_s', 0.0):8.1f}s"
        f" · window {stats.get('window_s', 0.0):5.1f}s"
        f" · dropped {stats.get('dropped_events', 0)}",
        bar,
    ]
    slo = stats.get("slo")
    if slo:
        checks = ", ".join(
            f"{k}={v['status']}" for k, v in slo.get("checks", {}).items()
        )
        lines.append(f" slo: {slo.get('status', '?'):>8}   {checks}")
    lat = stats.get("latency", {})
    if lat:
        lines.append(
            f" {'latency (ms)':<28}{'count':>8}{'p50':>9}{'p95':>9}{'p99':>9}"
        )
        for name, d in sorted(lat.items()):
            lines.append(
                f" {name:<28}{d.get('count', 0):>8}"
                f"{_fmt_ms(d.get('p50', 0.0)):>9}"
                f"{_fmt_ms(d.get('p95', 0.0)):>9}"
                f"{_fmt_ms(d.get('p99', 0.0)):>9}"
            )
    rates = stats.get("rates", {})
    busy = {k: v for k, v in rates.items() if v > 0}
    if busy:
        lines.append(f" {'rate (events/s)':<40}{'value':>12}")
        for name, rate in sorted(busy.items()):
            lines.append(f" {name:<40}{rate:>12.2f}")
    for pname, pdata in sorted(stats.get("providers", {}).items()):
        if isinstance(pdata, dict):
            body = "  ".join(
                f"{k}={_short(v)}" for k, v in sorted(pdata.items())
            )
            lines.append(f" {pname}: {body}")
    lines.append(bar)
    return "\n".join(lines)


def _short(v) -> str:
    if isinstance(v, float):
        return f"{v:.4g}"
    return str(v)


def fetch_stats(url: str, timeout: float = 5.0) -> dict:
    """GET ``<url>/stats`` and decode the JSON body."""
    with urllib.request.urlopen(url.rstrip("/") + "/stats", timeout=timeout) as r:
        return json.loads(r.read().decode())


def run_top(
    url: str,
    *,
    interval: float = 1.0,
    iterations: int | None = None,
    once: bool = False,
    stream=None,
) -> int:
    """Poll ``/stats`` and redraw :func:`render_top` in place.

    ``once`` prints a single frame (CI-friendly); otherwise refresh
    every ``interval`` seconds, ``iterations`` times (forever when
    ``None``, until KeyboardInterrupt).  Returns a process exit code.
    """
    import sys

    stream = stream or sys.stdout
    n = 1 if once else iterations
    frames = 0
    try:
        while n is None or frames < n:
            stats = fetch_stats(url)
            frame = render_top(stats)
            if frames and stream.isatty():
                # move the cursor up over the previous frame
                stream.write(f"\x1b[{frame.count(chr(10)) + 1}A")
            stream.write(frame + "\n")
            stream.flush()
            frames += 1
            if n is not None and frames >= n:
                break
            time.sleep(interval)
    except KeyboardInterrupt:  # pragma: no cover - interactive exit
        pass
    except OSError as exc:
        print(f"repro top: cannot reach {url}: {exc}", file=sys.stderr)
        return 1
    return 0
