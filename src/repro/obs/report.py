"""Run-summary renderer behind ``python -m repro report``.

Consumes the ``summary.json`` an :class:`~repro.obs.Observation` writes
and renders the terminal report the paper's evaluation questions map
onto:

* **rank spectrum** — the post-compression / post-recompression rank
  histograms that drive the BAND_SIZE auto-tuner (Fig. 1, Fig. 2b);
* **flop breakdown** — modelled flops per Table I kernel class with the
  dense-band vs low-rank split (Figs. 6b, 6c, 10);
* **memory timeline** — live footprint over the run plus pool hit rates
  and high-water marks (Fig. 8, Section VII-B);
* **execution** — span totals per category, worker occupancy, ready-queue
  depth (Fig. 11's occupancy view).

Pure stdlib, no numpy: the report must be readable from any recorded
run directory regardless of the environment that produced it.
"""

from __future__ import annotations

import json
from pathlib import Path

__all__ = ["load_summary", "render_report", "DENSE_KERNEL_CLASSES"]

#: Region-(1) kernel classes — the all-dense band work (Table I).
DENSE_KERNEL_CLASSES = frozenset(
    {"(1)-POTRF", "(1)-TRSM", "(1)-SYRK", "(1)-GEMM"}
)

_BLOCKS = " ▁▂▃▄▅▆▇█"


def load_summary(path: str | Path) -> dict:
    """Load a summary dict from a run directory or a summary file.

    ``path`` may be the directory an observation was written to (the
    ``summary.json`` inside it is read) or the JSON file itself.
    """
    path = Path(path)
    if path.is_dir():
        path = path / "summary.json"
    if not path.exists():
        raise FileNotFoundError(
            f"no run summary at {path}; record one with "
            "'python -m repro execute --obs DIR' or Observation.write()"
        )
    return json.loads(path.read_text())


def _bar(fraction: float, width: int) -> str:
    n = max(0, min(width, int(round(fraction * width))))
    return "#" * n


def _sparkline(values: list[float], width: int) -> str:
    """Downsample ``values`` to ``width`` columns of block characters."""
    if not values:
        return ""
    peak = max(values) or 1.0
    cols = []
    for c in range(width):
        lo = int(c * len(values) / width)
        hi = max(lo + 1, int((c + 1) * len(values) / width))
        v = max(values[lo:hi])
        cols.append(_BLOCKS[int(round(v / peak * (len(_BLOCKS) - 1)))])
    return "".join(cols)


def _fmt_bytes(elements: float) -> str:
    mib = elements * 8 / 2**20
    return f"{mib:.1f} MiB"


def _metric_list(summary: dict, kind: str, name: str) -> list[dict]:
    return [m for m in summary["metrics"].get(kind, []) if m["name"] == name]


def _section(title: str) -> list[str]:
    return ["", title, "-" * len(title)]


def _render_header(summary: dict) -> list[str]:
    meta = summary.get("meta", {})
    lines = ["repro run report", "================"]
    for key in sorted(meta):
        lines.append(f"{key:<16} {meta[key]}")
    lines.append(f"{'wall clock':<16} {summary.get('wall_s', 0.0):.3f} s")
    return lines


def _render_spans(summary: dict, width: int) -> list[str]:
    cats = summary.get("spans", {}).get("by_category", {})
    if not cats:
        return []
    lines = _section("time by span category")
    total = sum(s for _, s in cats.values()) or 1.0
    for cat, (count, secs) in sorted(
        cats.items(), key=lambda kv: kv[1][1], reverse=True
    ):
        lines.append(
            f"{cat:<14} {count:>7d} spans {secs:>9.3f} s  "
            f"{_bar(secs / total, width // 3)}"
        )
    return lines


def _render_flops(summary: dict, width: int) -> list[str]:
    flops = _metric_list(summary, "counters", "kernel_flops")
    if not flops:
        return []
    invocations = {
        m["labels"].get("kernel"): m
        for m in _metric_list(summary, "counters", "kernel_invocations")
    }
    lines = _section("modelled flops by kernel class (Table I)")
    total = sum(m["value"] for m in flops) or 1.0
    dense = 0.0
    for m in sorted(flops, key=lambda m: m["value"], reverse=True):
        kernel = m["labels"].get("kernel", "?")
        calls = invocations.get(kernel, {}).get("increments", m["increments"])
        if kernel in DENSE_KERNEL_CLASSES:
            dense += m["value"]
        lines.append(
            f"{kernel:<12} {m['value']:>12.3e} flop {calls:>7d} calls  "
            f"{_bar(m['value'] / total, width // 3)}"
        )
    lr = total - dense
    lines.append(
        f"{'split':<12} dense-band {dense / total * 100:5.1f}%  "
        f"low-rank {lr / total * 100:5.1f}%  (total {total:.3e} flop)"
    )
    return lines


def _render_ranks(summary: dict, width: int) -> list[str]:
    hists = _metric_list(summary, "histograms", "tile_rank")
    hists = [h for h in hists if h.get("count")]
    if not hists:
        return []
    lines = _section("rank spectrum")
    for h in hists:
        stage = h["labels"].get("stage", "?")
        lines.append(
            f"[{stage}]  n={h['count']}  min/mean/max = "
            f"{h['min']:g}/{h['mean']:.1f}/{h['max']:g}  p95={h['p95']:g}"
        )
        counts = h.get("counts", {})
        peak = max(counts.values()) if counts else 1
        for rank, count in counts.items():
            lines.append(
                f"  rank {rank:>4} {count:>6d} {_bar(count / peak, width // 2)}"
            )
    return lines


def _render_memory(summary: dict, width: int) -> list[str]:
    series = _metric_list(summary, "series", "memory_elements")
    gauges = {
        g["labels"].get("stat"): g
        for g in _metric_list(summary, "gauges", "memory_peak_elements")
    }
    pool_gauges = _metric_list(summary, "gauges", "pool_hit_rate")
    if not (series or gauges or pool_gauges):
        return []
    lines = _section("memory")
    for s in series:
        values = [v for _, v in s["samples"]]
        if not values:
            continue
        lines.append(f"footprint timeline ({len(values)} samples):")
        lines.append("  " + _sparkline(values, width - 4))
        lines.append(
            f"  start {_fmt_bytes(values[0])}  "
            f"peak {_fmt_bytes(max(values))}  "
            f"end {_fmt_bytes(values[-1])}"
        )
    for stat, g in sorted(gauges.items(), key=lambda kv: kv[0] or ""):
        lines.append(f"high-water [{stat}]: {_fmt_bytes(g['value'])}")
    for g in pool_gauges:
        scope = g["labels"].get("pool", "pool")
        detail = {
            m["name"]: m["value"]
            for name in ("pool_reuses", "pool_allocations", "pool_peak_bytes")
            for m in _metric_list(summary, "gauges", name)
            if m["labels"].get("pool") == scope
        }
        lines.append(
            f"pool [{scope}]: hit rate {g['value'] * 100:.1f}%  "
            f"({int(detail.get('pool_reuses', 0))} reuses / "
            f"{int(detail.get('pool_allocations', 0))} allocs, "
            f"peak {detail.get('pool_peak_bytes', 0) / 2**20:.1f} MiB)"
        )
    return lines


def _render_executor(summary: dict, width: int) -> list[str]:
    occ = _metric_list(summary, "gauges", "worker_occupancy")
    queue = _metric_list(summary, "series", "ready_queue_depth")
    if not (occ or queue):
        return []
    lines = _section("executor")
    for g in sorted(occ, key=lambda g: g["labels"].get("worker", "")):
        worker = g["labels"].get("worker", "?")
        lines.append(
            f"worker {worker:>3} occupancy {g['value'] * 100:5.1f}%  "
            f"{_bar(g['value'], width // 3)}"
        )
    for s in queue:
        values = [v for _, v in s["samples"]]
        if values:
            lines.append(f"ready-queue depth (peak {int(max(values))}):")
            lines.append("  " + _sparkline(values, width - 4))
    return lines


def render_report(summary: dict, width: int = 80) -> str:
    """Render the full terminal report for one recorded run."""
    lines: list[str] = []
    lines += _render_header(summary)
    lines += _render_spans(summary, width)
    lines += _render_flops(summary, width)
    lines += _render_ranks(summary, width)
    lines += _render_memory(summary, width)
    lines += _render_executor(summary, width)
    return "\n".join(lines)
