"""Unified observability: spans, metrics, and run telemetry (``repro.obs``).

The paper's whole evaluation rests on runtime introspection — PaRSEC's
trace output drives the Gantt/occupancy analysis, the BAND_SIZE
auto-tuner consumes the post-compression rank distribution, and the 44x
memory-reduction claim comes from per-tile allocation accounting.  This
package is the one place all of that telemetry flows through:

* a zero-dependency span/event **tracer** (:mod:`repro.obs.tracer`) —
  context-manager API, thread-aware, nestable;
* a **metrics registry** (:mod:`repro.obs.metrics`) — counters, gauges,
  histograms, time series;
* **exporters** (:mod:`repro.obs.exporters`) — Chrome trace, JSON-lines
  event log, JSON summary, Prometheus text format;
* a **report renderer** (:mod:`repro.obs.report`) behind
  ``python -m repro report``.

Usage — wrap any pipeline section in :func:`observe`::

    from repro import obs

    with obs.observe(meta={"run": "demo"}) as run:
        solver = TLRSolver.from_problem(problem, accuracy=1e-6)
        solver.factorize(n_workers=4)
    paths = run.write("runs/demo")        # trace.json, events.jsonl,
                                          # summary.json, metrics.prom

Everything in the library is instrumented through the module-level
helpers below (:func:`span`, :func:`event`, :func:`counter_add`, ...).
They are **no-ops unless an observation is active**: the disabled path
is one ``None`` check (and :func:`span` returns a shared null context
manager), so tracing costs nothing when off — the default.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager

from .analytics import (
    PredictionAccuracy,
    RunTrace,
    critical_path,
    flop_attribution,
    load_run,
    occupancy,
    prediction_accuracy,
    render_analysis,
    render_diff,
    render_prediction,
    run_from_observation,
    trace_diff,
)
from .exporters import (
    assign_lanes,
    gantt,
    prometheus_text,
    utilization_timeline,
    write_chrome_trace,
    write_events_jsonl,
    write_graph_json,
    write_prometheus,
    write_summary_json,
)
from .httpd import (
    MonitoringServer,
    parse_prometheus_text,
    render_top,
    run_top,
    snapshot_prometheus_text,
)
from .live import LiveAggregator, Slo, parse_slo
from .merge import MergeReport, load_shards, merge_shards
from .metrics import Counter, Gauge, Histogram, MetricsRegistry, Series
from .report import load_summary, render_report
from .sketch import LogHistogram
from .tracer import NULL_SPAN, NullTracer, SpanRecord, Tracer

__all__ = [
    "Observation",
    "observe",
    "active",
    "enabled",
    "span",
    "event",
    "clock",
    "record_span",
    "counter_add",
    "gauge_set",
    "histogram_observe",
    "sample",
    "kernel_observed",
    "pool_observed",
    "graph_document",
    "graph_observed",
    "Tracer",
    "NullTracer",
    "SpanRecord",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "Series",
    "RunTrace",
    "run_from_observation",
    "load_run",
    "critical_path",
    "occupancy",
    "flop_attribution",
    "trace_diff",
    "PredictionAccuracy",
    "prediction_accuracy",
    "render_analysis",
    "render_diff",
    "render_prediction",
    "write_chrome_trace",
    "write_events_jsonl",
    "write_graph_json",
    "write_summary_json",
    "write_prometheus",
    "prometheus_text",
    "load_summary",
    "render_report",
    "assign_lanes",
    "gantt",
    "utilization_timeline",
    "LogHistogram",
    "LiveAggregator",
    "Slo",
    "parse_slo",
    "MonitoringServer",
    "snapshot_prometheus_text",
    "parse_prometheus_text",
    "render_top",
    "run_top",
    "MergeReport",
    "load_shards",
    "merge_shards",
]


class Observation:
    """One observed run: a tracer + a metrics registry sharing a clock.

    Construct directly for an isolated (non-installed) collector, or —
    the usual path — let :func:`observe` install one as the process-wide
    active observation so every instrumented call site feeds it.
    """

    def __init__(self, meta: dict | None = None) -> None:
        self.tracer = Tracer()
        self.metrics = MetricsRegistry(t0=self.tracer.t0)
        self.meta: dict = dict(meta or {})
        self.graph: dict | None = None
        self._wall: float | None = None

    # -- lifecycle -----------------------------------------------------
    def close(self) -> None:
        """Freeze the wall-clock; further records are still accepted."""
        if self._wall is None:
            self._wall = self.tracer.now()

    @property
    def wall_s(self) -> float:
        """Observed wall-clock span in seconds."""
        return self.tracer.now() if self._wall is None else self._wall

    # -- aggregation ---------------------------------------------------
    def summary(self) -> dict:
        """JSON-serializable aggregate of everything recorded."""
        by_cat = {
            cat: [count, round(total, 6)]
            for cat, (count, total) in self.tracer.by_category().items()
        }
        return {
            "meta": self.meta,
            "wall_s": round(self.wall_s, 6),
            "spans": {
                "count": len(self.tracer.spans),
                "events": len(self.tracer.events),
                "by_category": by_cat,
                "threads": self.tracer.threads(),
            },
            "metrics": self.metrics.snapshot(),
        }

    def report(self, width: int = 80) -> str:
        """Render the terminal report for this observation."""
        return render_report(self.summary(), width=width)

    def write(self, outdir) -> dict:
        """Write the run's artifacts into ``outdir``; returns their paths.

        ``trace.json`` (Chrome/Perfetto), ``events.jsonl`` (raw record),
        ``summary.json`` (report input), ``metrics.prom`` (Prometheus),
        plus ``graph.json`` (dependency DAG) when a graph executor ran
        under this observation.
        """
        from pathlib import Path

        outdir = Path(outdir)
        outdir.mkdir(parents=True, exist_ok=True)
        self.close()
        paths = {
            "chrome": write_chrome_trace(self.tracer, outdir / "trace.json"),
            "events": write_events_jsonl(self.tracer, outdir / "events.jsonl"),
            "summary": write_summary_json(self, outdir / "summary.json"),
            "prometheus": write_prometheus(self.metrics, outdir / "metrics.prom"),
        }
        if self.graph is not None:
            paths["graph"] = write_graph_json(self.graph, outdir / "graph.json")
        return paths


# ----------------------------------------------------------------------
# Process-wide active observation
# ----------------------------------------------------------------------
_active: list[Observation] = []
_install_lock = threading.Lock()


def active() -> Observation | None:
    """The currently installed observation, or ``None`` when disabled."""
    return _active[-1] if _active else None


def enabled() -> bool:
    """True when an observation is installed (telemetry is flowing)."""
    return bool(_active)


@contextmanager
def observe(meta: dict | None = None):
    """Install a fresh :class:`Observation` for the enclosed block.

    Nestable (the innermost observation receives the telemetry); the
    previous state is restored on exit.  The yielded observation stays
    readable after the block — call :meth:`Observation.write` or
    :meth:`Observation.report` on it.
    """
    ob = Observation(meta=meta)
    with _install_lock:
        _active.append(ob)
    try:
        yield ob
    finally:
        ob.close()
        with _install_lock:
            _active.remove(ob)


# ----------------------------------------------------------------------
# Instrumentation helpers (the library's call sites)
# ----------------------------------------------------------------------
def span(name: str, category: str = "", **attrs):
    """A tracer span when observing, the shared null context otherwise."""
    ob = active()
    if ob is None:
        return NULL_SPAN
    return ob.tracer.span(name, category, **attrs)


def event(name: str, category: str = "", **attrs) -> None:
    """Record an instant event on the active observation, if any."""
    ob = active()
    if ob is not None:
        ob.tracer.event(name, category, **attrs)


def clock() -> float:
    """The active observation's tracer time (seconds since its t0).

    Lets code that measures intervals on another clock — worker
    processes timing tasks with ``time.time()`` — map those intervals
    onto the tracer timeline for :func:`record_span`.  Returns 0.0 when
    no observation is active (the replayed offsets are then unused).
    """
    ob = active()
    return ob.tracer.now() if ob is not None else 0.0


def record_span(
    name: str,
    category: str = "",
    *,
    start: float,
    end: float,
    thread: str | None = None,
    **attrs,
) -> None:
    """Replay an externally timed span into the active observation.

    ``start``/``end`` are on the active tracer's clock — anchor foreign
    timestamps with :func:`clock` at a shared wall-clock instant.  Used
    by the distributed executor to merge per-rank task timings gathered
    from worker processes into the controller's trace.
    """
    ob = active()
    if ob is not None:
        ob.tracer.record(
            name, category, start, end, thread=thread, **attrs
        )


def counter_add(name: str, amount: float = 1.0, **labels) -> None:
    """Increment a counter on the active observation, if any."""
    ob = active()
    if ob is not None:
        ob.metrics.counter(name, **labels).inc(amount)


def gauge_set(name: str, value: float, **labels) -> None:
    """Set a gauge on the active observation, if any."""
    ob = active()
    if ob is not None:
        ob.metrics.gauge(name, **labels).set(value)


def histogram_observe(name: str, value: float, **labels) -> None:
    """Observe into a histogram on the active observation, if any."""
    ob = active()
    if ob is not None:
        ob.metrics.histogram(name, **labels).observe(value)


def sample(name: str, value: float, **labels) -> None:
    """Append a timestamped sample to a series, if observing."""
    ob = active()
    if ob is not None:
        ob.metrics.series(name, **labels).sample(value)


def kernel_observed(kernel: str, flops: float, count: int = 1) -> None:
    """Record kernel invocations (Table I class) and their flops.

    ``count`` is the number of logical invocations this record covers —
    a batched kernel call reporting ``k`` fused tasks passes ``count=k``
    so invocation counters stay comparable across batch modes.
    """
    ob = active()
    if ob is not None:
        ob.metrics.counter("kernel_flops", kernel=kernel).inc(flops)
        ob.metrics.counter("kernel_invocations", kernel=kernel).inc(count)


def graph_document(graph, task_name) -> dict:
    """The JSON-ready dependency document for a task graph.

    Keyed by the executors' *span names* (via the shared ``task_name``
    mapping) so the analytics layer can join task spans with dependency
    edges.  Duck-typed (graph/tasks/deps attribute access only) so
    :mod:`repro.obs` keeps zero intra-repro imports.  Used by
    :func:`graph_observed` for recorded runs and by the autotuner to
    build *predicted* :class:`RunTrace` objects from simulator output.
    """
    tasks = {}
    for tid, task in graph.tasks.items():
        tasks[task_name(tid)] = {
            "kernel": task.kernel.value,
            "flops": task.flops,
            "panel": task.panel,
            "out_tile": list(task.out_tile),
            "deps": sorted({task_name(e.src) for e in task.deps}),
        }
    return {
        "ntiles": getattr(graph, "ntiles", None),
        "band_size": getattr(graph, "band_size", None),
        "tile_size": getattr(graph, "tile_size", None),
        "n_tasks": len(tasks),
        "tasks": tasks,
    }


def graph_observed(graph, task_name) -> None:
    """Register the executing :class:`~repro.runtime.graph.TaskGraph`.

    Called by both graph executors before dispatch.  Stores the
    :func:`graph_document`; written to ``graph.json`` by
    :meth:`Observation.write`.
    """
    ob = active()
    if ob is None:
        return
    ob.graph = graph_document(graph, task_name)


def pool_observed(stats, pool: str) -> None:
    """Snapshot a :class:`~repro.runtime.memory_pool.PoolStats` object.

    Records hit rate, allocation/reuse totals, and the byte high-water
    mark under the ``pool`` label (``"executor"``, ``"workspace"``...).
    Duck-typed so :mod:`repro.obs` keeps zero intra-repro imports.
    """
    ob = active()
    if ob is None or stats is None:
        return
    m = ob.metrics
    m.gauge("pool_hit_rate", pool=pool).set(stats.hit_rate)
    m.gauge("pool_allocations", pool=pool).set(stats.allocations)
    m.gauge("pool_reuses", pool=pool).set(stats.reuses)
    m.gauge("pool_releases", pool=pool).set(stats.releases)
    m.gauge("pool_peak_bytes", pool=pool).set(stats.peak_bytes)
    m.gauge("pool_outstanding_bytes", pool=pool).set(stats.outstanding_bytes)
