"""Zero-dependency span/event tracer (the PaRSEC profiling role).

PaRSEC's evaluation workflow instruments every task body and dumps the
trace for post-mortem analysis (OTF2 → Chrome converters, Gantt charts,
occupancy plots).  :class:`Tracer` reproduces that surface for the whole
Python pipeline — assembly, compression, executors, kernels — with a
context-manager API:

    with tracer.span("gemm", category="kernel", tile=(3, 1)):
        ...

Spans are *thread-aware* (each records the worker thread it ran on) and
*nestable* (a per-thread stack assigns each span its depth and parent, so
a kernel span recorded inside a task span renders nested in Perfetto).
Instant events (:meth:`Tracer.event`) mark moments rather than intervals.

The tracer is deliberately dependency-free and cheap: entering a span is
two ``perf_counter`` calls plus one list append under a lock at exit.
When observability is disabled the library never reaches this module —
call sites go through :func:`repro.obs.span`, which returns a shared
no-op context manager instead (see :class:`NullTracer`).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

__all__ = ["SpanRecord", "EventRecord", "Tracer", "NullTracer", "NULL_SPAN"]


@dataclass(frozen=True)
class SpanRecord:
    """One finished span: a named interval on one thread.

    Attributes
    ----------
    name:
        Span label (e.g. ``"GEMM_3_1_0"`` or ``"compress"``).
    category:
        Coarse grouping used by the exporters and the report
        (``"kernel"``, ``"compress"``, ``"assembly"``, ``"phase"``...).
    start, end:
        Seconds relative to the tracer's start.
    thread:
        Name of the thread the span ran on (``repro-worker-3``,
        ``MainThread``...).
    thread_id:
        ``threading.get_ident()`` of that thread.
    depth:
        Nesting depth on that thread (0 = top level).
    parent:
        Name of the enclosing span on the same thread, or ``None``.
    attrs:
        Free-form attributes supplied at ``span(...)`` time.
    """

    name: str
    category: str
    start: float
    end: float
    thread: str
    thread_id: int
    depth: int
    parent: str | None
    attrs: dict = field(default_factory=dict)

    @property
    def duration(self) -> float:
        """Span length in seconds."""
        return self.end - self.start


@dataclass(frozen=True)
class EventRecord:
    """One instant event (a moment, not an interval)."""

    name: str
    category: str
    t: float
    thread: str
    thread_id: int
    attrs: dict = field(default_factory=dict)


class _Span:
    """Context manager recording one span into its tracer."""

    __slots__ = ("_tracer", "_name", "_category", "_attrs", "_start", "_parent")

    def __init__(self, tracer: "Tracer", name: str, category: str, attrs: dict):
        self._tracer = tracer
        self._name = name
        self._category = category
        self._attrs = attrs

    def __enter__(self) -> "_Span":
        stack = self._tracer._stack()
        self._parent = stack[-1] if stack else None
        stack.append(self._name)
        self._start = self._tracer.now()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        end = self._tracer.now()
        stack = self._tracer._stack()
        depth = len(stack) - 1
        stack.pop()
        th = threading.current_thread()
        rec = SpanRecord(
            name=self._name,
            category=self._category,
            start=self._start,
            end=end,
            thread=th.name,
            thread_id=th.ident or 0,
            depth=depth,
            parent=self._parent,
            attrs=self._attrs,
        )
        with self._tracer._lock:
            self._tracer.spans.append(rec)
        return False


class Tracer:
    """Collects spans and instant events from any number of threads.

    All timestamps are seconds relative to the tracer's construction
    (``t0``), so traces from one run share a common origin with the
    metrics registry's time series.
    """

    def __init__(self) -> None:
        self.spans: list[SpanRecord] = []
        self.events: list[EventRecord] = []
        self.t0 = time.perf_counter()
        self._lock = threading.Lock()
        self._local = threading.local()

    # -- recording -----------------------------------------------------
    def span(self, name: str, category: str = "", **attrs) -> _Span:
        """A context manager timing the enclosed block as one span."""
        return _Span(self, name, category, attrs)

    def record(
        self,
        name: str,
        category: str,
        start: float,
        end: float,
        *,
        thread: str | None = None,
        **attrs,
    ) -> None:
        """Append an already-timed span (replay path).

        Used to merge externally measured intervals — e.g. per-rank task
        timings gathered from worker processes — into this tracer's
        timeline.  ``start``/``end`` are seconds on this tracer's clock
        (relative to ``t0``); the caller is responsible for mapping its
        own clock via :meth:`now`.
        """
        th = threading.current_thread()
        rec = SpanRecord(
            name=name,
            category=category,
            start=start,
            end=end,
            thread=thread if thread is not None else th.name,
            thread_id=0 if thread is not None else (th.ident or 0),
            depth=0,
            parent=None,
            attrs=attrs,
        )
        with self._lock:
            self.spans.append(rec)

    def event(self, name: str, category: str = "", **attrs) -> None:
        """Record an instant event at the current time."""
        th = threading.current_thread()
        rec = EventRecord(
            name=name,
            category=category,
            t=self.now(),
            thread=th.name,
            thread_id=th.ident or 0,
            attrs=attrs,
        )
        with self._lock:
            self.events.append(rec)

    def now(self) -> float:
        """Seconds since the tracer started."""
        return time.perf_counter() - self.t0

    # -- introspection -------------------------------------------------
    def _stack(self) -> list[str]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def threads(self) -> list[str]:
        """Thread names observed, stable order (first appearance)."""
        seen: dict[str, None] = {}
        with self._lock:
            for rec in self.spans:
                seen.setdefault(rec.thread, None)
            for rec in self.events:
                seen.setdefault(rec.thread, None)
        return list(seen)

    def by_category(self) -> dict[str, tuple[int, float]]:
        """``{category: (span_count, total_seconds)}`` aggregate."""
        agg: dict[str, tuple[int, float]] = {}
        with self._lock:
            for rec in self.spans:
                n, s = agg.get(rec.category, (0, 0.0))
                agg[rec.category] = (n + 1, s + rec.duration)
        return agg


class _NullSpan:
    """Shared no-op context manager — the disabled-path span."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


#: The singleton no-op span; :func:`repro.obs.span` returns this when
#: observability is disabled, so the hot paths allocate nothing.
NULL_SPAN = _NullSpan()


class NullTracer:
    """Tracer stand-in whose every operation is a no-op.

    Exists so code holding a tracer reference (rather than going through
    the module-level helpers) can run unconditionally.
    """

    spans: list = []
    events: list = []

    def span(self, name: str, category: str = "", **attrs) -> _NullSpan:
        return NULL_SPAN

    def event(self, name: str, category: str = "", **attrs) -> None:
        return None

    def now(self) -> float:
        return 0.0

    def threads(self) -> list[str]:
        return []

    def by_category(self) -> dict:
        return {}
