"""Streaming telemetry aggregator for live monitoring (``repro.obs.live``).

The record-then-analyze pipeline (:func:`repro.obs.observe` →
``Observation.write``) answers *what happened*; this module answers
*what is happening*.  A :class:`LiveAggregator` sits between the hot
path and the monitoring plane:

* **producers** (service workers, the dispatcher, load-generator
  clients) call :meth:`~LiveAggregator.emit_counter` /
  :meth:`~LiveAggregator.emit_gauge` / :meth:`~LiveAggregator.emit_latency`,
  which append one tuple to a **per-thread ring buffer** — no shared
  lock on the hot path, and when a ring is full the event is *dropped
  and counted*, never blocking the producer;
* a **background collector thread** drains the rings every ``tick_s``,
  folds counters/gauges into process totals and latencies into
  :class:`~repro.obs.sketch.LogHistogram` sketches, and appends a
  counter snapshot to a **rolling window** so :meth:`LiveAggregator.snapshot`
  can report per-second rates and the SLO evaluator can compute
  burn rates over the trailing window rather than process lifetime;
* **providers** registered with :meth:`~LiveAggregator.register_provider`
  (FactorCache stats, queue depth, worker occupancy) are polled at
  snapshot time, so components expose state without pushing events.

SLO evaluation (:class:`Slo`, :func:`parse_slo`) is rolling-window
burn-rate based: with a target error rate ``e`` and window ``W``, the
observed window error rate divided by ``e`` is the **burn rate** — 1.0
means exactly on budget.  ``/healthz`` maps ``ok``/``degraded`` to
HTTP 200 and ``failing`` to 503 (see :mod:`repro.obs.httpd`).

Zero intra-repro imports — providers and the service hand in plain
callables and floats, same duck-typing rule as the rest of
:mod:`repro.obs`.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field

from .sketch import DEFAULT_REL_ERR, LogHistogram

__all__ = [
    "LiveAggregator",
    "Slo",
    "parse_slo",
    "DEFAULT_RING_CAPACITY",
    "DEFAULT_TICK_S",
    "DEFAULT_WINDOW_S",
]

DEFAULT_RING_CAPACITY = 8192
DEFAULT_TICK_S = 0.25
DEFAULT_WINDOW_S = 60.0

_COUNTER, _GAUGE, _LATENCY = 0, 1, 2


class _ThreadSink:
    """One producer thread's bounded event ring.

    Only the owning thread appends; the collector swaps the buffer out
    under the same small lock.  A full ring drops the event and bumps
    ``dropped`` — the hot path never waits on the collector.
    """

    __slots__ = ("capacity", "buf", "dropped", "lock")

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self.buf: list = []
        self.dropped = 0
        self.lock = threading.Lock()

    def push(self, item) -> None:
        with self.lock:
            if len(self.buf) >= self.capacity:
                self.dropped += 1
                return
            self.buf.append(item)

    def drain(self) -> list:
        with self.lock:
            out, self.buf = self.buf, []
            return out


@dataclass
class Slo:
    """A service-level objective evaluated over the rolling window.

    ``error_rate`` is the budgeted fraction of failed/rejected/dropped
    requests; ``p99_ms`` bounds the 99th-percentile service latency.
    Either may be ``None`` (term not evaluated).  ``window_s`` is
    advisory — the aggregator's own window is authoritative.
    """

    error_rate: float | None = None
    p99_ms: float | None = None
    window_s: float = DEFAULT_WINDOW_S
    error_counters: tuple[str, ...] = (
        "service_request_failed",
        "service_request_rejected",
        "service_request_dropped",
    )
    request_counters: tuple[str, ...] = (
        "service_request_submitted",
    )
    latency_name: str = "service_latency_s"

    def evaluate(self, snapshot: dict) -> dict:
        """``{"status": ok|degraded|failing, ...}`` for ``/healthz``.

        Burn rate = observed window error rate / budgeted error rate;
        <= 1 is on budget, (1, 2] degrades, > 2 fails.  The p99 term
        degrades when over target and fails when over 2x target.
        """
        rates = snapshot.get("rates", {})
        errors = sum(rates.get(c, 0.0) for c in self.error_counters)
        requests = sum(rates.get(c, 0.0) for c in self.request_counters)
        out: dict = {
            "window_s": snapshot.get("window_s", 0.0),
            "checks": {},
        }
        worst = "ok"

        if self.error_rate is not None:
            observed = errors / requests if requests > 0 else 0.0
            burn = observed / self.error_rate if self.error_rate > 0 else 0.0
            status = (
                "ok" if burn <= 1.0 else "degraded" if burn <= 2.0
                else "failing"
            )
            out["checks"]["error_rate"] = {
                "target": self.error_rate,
                "observed": round(observed, 6),
                "burn_rate": round(burn, 3),
                "status": status,
            }
            worst = _worse(worst, status)

        if self.p99_ms is not None:
            lat = snapshot.get("latency", {}).get(self.latency_name, {})
            p99_ms = lat.get("p99", 0.0) * 1e3
            status = (
                "ok" if p99_ms <= self.p99_ms
                else "degraded" if p99_ms <= 2.0 * self.p99_ms
                else "failing"
            )
            out["checks"]["p99_ms"] = {
                "target": self.p99_ms,
                "observed": round(p99_ms, 3),
                "status": status,
            }
            worst = _worse(worst, status)

        out["status"] = worst
        return out


_SEVERITY = {"ok": 0, "degraded": 1, "failing": 2}


def _worse(a: str, b: str) -> str:
    return a if _SEVERITY[a] >= _SEVERITY[b] else b


def parse_slo(spec: str) -> Slo:
    """Parse a ``--slo`` spec: ``error-rate=0.01,p99-ms=50,window=60``.

    Keys: ``error-rate`` (fraction), ``p99-ms`` (milliseconds),
    ``window`` (seconds).  Raises :class:`ValueError` on unknown keys or
    malformed terms so the CLI can report the offending spec.
    """
    slo = Slo()
    for term in filter(None, (t.strip() for t in spec.split(","))):
        key, sep, value = term.partition("=")
        if not sep:
            raise ValueError(f"malformed SLO term {term!r} (expected key=value)")
        try:
            num = float(value)
        except ValueError:
            raise ValueError(f"non-numeric SLO value in {term!r}") from None
        key = key.strip()
        if key == "error-rate":
            slo.error_rate = num
        elif key == "p99-ms":
            slo.p99_ms = num
        elif key == "window":
            slo.window_s = num
        else:
            raise ValueError(f"unknown SLO key {key!r} in {spec!r}")
    return slo


class LiveAggregator:
    """Rolling-window streaming aggregator behind the monitoring plane.

    Start with :meth:`start` (spawns the collector thread) or drive it
    synchronously with :meth:`force_collect` in tests.  All emit paths
    are safe to call before :meth:`start` and after :meth:`stop` —
    events simply wait in (or drop from) their rings.
    """

    def __init__(
        self,
        *,
        window_s: float = DEFAULT_WINDOW_S,
        ring_capacity: int = DEFAULT_RING_CAPACITY,
        rel_err: float = DEFAULT_REL_ERR,
        tick_s: float = DEFAULT_TICK_S,
        slo: Slo | None = None,
    ) -> None:
        self.window_s = float(window_s)
        self.ring_capacity = int(ring_capacity)
        self.rel_err = float(rel_err)
        self.tick_s = float(tick_s)
        self.slo = slo

        self._local = threading.local()
        self._sinks: list[_ThreadSink] = []
        self._sinks_lock = threading.Lock()

        # collector-owned aggregate state (guarded by _agg_lock so
        # snapshot() can read consistently while the collector folds)
        self._agg_lock = threading.Lock()
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}
        self.sketches: dict[str, LogHistogram] = {}
        self._window: deque = deque()  # (monotonic_t, {counter: total})
        self._dropped_folded = 0

        self._providers: dict[str, object] = {}
        self._t0 = time.monotonic()
        self._t0_wall = time.time()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # -- hot path ------------------------------------------------------
    def _sink(self) -> _ThreadSink:
        sink = getattr(self._local, "sink", None)
        if sink is None:
            sink = _ThreadSink(self.ring_capacity)
            self._local.sink = sink
            with self._sinks_lock:
                self._sinks.append(sink)
        return sink

    def emit_counter(self, name: str, amount: float = 1.0) -> None:
        self._sink().push((_COUNTER, name, amount))

    def emit_gauge(self, name: str, value: float) -> None:
        self._sink().push((_GAUGE, name, value))

    def emit_latency(self, name: str, seconds: float) -> None:
        self._sink().push((_LATENCY, name, seconds))

    # -- providers -----------------------------------------------------
    def register_provider(self, name: str, fn) -> None:
        """Poll ``fn()`` (→ JSON-ready dict) at snapshot time under
        ``name``.  Re-registering a name replaces the provider."""
        self._providers[name] = fn

    # -- collector -----------------------------------------------------
    def start(self) -> "LiveAggregator":
        if self._thread is None or not self._thread.is_alive():
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._run, name="obs-live-collector", daemon=True
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self.force_collect()  # drain anything emitted during shutdown

    def _run(self) -> None:
        while not self._stop.wait(self.tick_s):
            self.force_collect()

    def force_collect(self) -> None:
        """One synchronous drain-and-fold pass (the collector's tick)."""
        with self._sinks_lock:
            sinks = list(self._sinks)
        batches = [s.drain() for s in sinks]
        dropped = sum(s.dropped for s in sinks)
        now = time.monotonic()
        with self._agg_lock:
            for batch in batches:
                for item in batch:
                    kind, name, value = item
                    if kind == _COUNTER:
                        self.counters[name] = (
                            self.counters.get(name, 0.0) + value
                        )
                    elif kind == _GAUGE:
                        self.gauges[name] = value
                    else:
                        sk = self.sketches.get(name)
                        if sk is None:
                            sk = self.sketches[name] = LogHistogram(
                                self.rel_err
                            )
                        sk.add(value)
            self._dropped_folded = dropped
            self._window.append((now, dict(self.counters)))
            horizon = now - self.window_s
            # keep one sample at/behind the horizon as the window base
            while len(self._window) >= 2 and self._window[1][0] <= horizon:
                self._window.popleft()

    # -- read side -----------------------------------------------------
    def snapshot(self) -> dict:
        """A JSON-ready view: totals, window rates, sketch percentiles,
        provider states, and the monotone dropped-event count."""
        with self._agg_lock:
            counters = dict(self.counters)
            gauges = dict(self.gauges)
            latency = {
                name: {
                    "count": sk.count,
                    "mean": sk.mean,
                    "min": 0.0 if sk.count == 0 else sk.min,
                    "max": 0.0 if sk.count == 0 else sk.max,
                    **sk.percentiles(),
                }
                for name, sk in self.sketches.items()
            }
            dropped = self._dropped_folded
            rates: dict[str, float] = {}
            window_s = 0.0
            if len(self._window) >= 2:
                t_old, base = self._window[0]
                t_new, head = self._window[-1]
                window_s = t_new - t_old
                if window_s > 0:
                    for name, total in head.items():
                        delta = total - base.get(name, 0.0)
                        rates[name] = delta / window_s
        snap = {
            "uptime_s": round(time.monotonic() - self._t0, 3),
            "started_unix": self._t0_wall,
            "counters": counters,
            "gauges": gauges,
            "latency": latency,
            "rates": {k: round(v, 6) for k, v in rates.items()},
            "window_s": round(window_s, 3),
            "dropped_events": dropped,
            "rel_err": self.rel_err,
        }
        providers = {}
        for name, fn in self._providers.items():
            try:
                providers[name] = fn()
            except Exception as exc:  # a dying provider must not kill /stats
                providers[name] = {"error": repr(exc)}
        snap["providers"] = providers
        if self.slo is not None:
            snap["slo"] = self.slo.evaluate(snap)
        return snap

    def health(self) -> dict:
        """The ``/healthz`` body: SLO evaluation (or a bare liveness
        report when no SLO is configured)."""
        snap = self.snapshot()
        if self.slo is None:
            return {
                "status": "ok",
                "window_s": snap["window_s"],
                "checks": {},
                "note": "no SLO configured; liveness only",
            }
        return snap["slo"]
