"""Mergeable log-bucket latency/size sketch (``repro.obs.sketch``).

A fixed-bucket, log-scale (HDR-style) histogram with **exact-merge
semantics** and a **bounded relative error** on every reported
quantile.  This is the streaming replacement for retaining raw sample
lists: the service hot path feeds one :class:`LogHistogram` per thread,
shards merge into a service-wide view, and distributed ranks ship their
sketch alongside the trace shard — all without ever holding samples.

Design
------
For a relative accuracy ``alpha`` (default 1 %), let::

    gamma = (1 + alpha) / (1 - alpha)

Bucket ``i`` covers ``(min_value * gamma**i, min_value * gamma**(i+1)]``
and reports the representative value::

    r_i = min_value * gamma**i * (2 * gamma) / (gamma + 1)

which is the point whose worst-case relative distance to either bucket
edge is exactly ``alpha`` — so every quantile returned by
:meth:`LogHistogram.quantile` is within ``alpha`` *relative* error of
the true order statistic (the DDSketch guarantee, here with a fixed
bucket range instead of a collapsing one).

Because buckets are fixed integer counters, :meth:`LogHistogram.merge`
is element-wise integer addition — exactly associative and commutative,
byte-for-byte reproducible regardless of merge order across threads,
service shards, or distributed ranks.

Values below ``min_value`` (including zero) land in a dedicated
``zero_count`` bucket reported as 0.0; values above ``max_value`` clamp
into the top bucket (and are tallied in ``overflow``) so the sketch
never grows.  Exact ``count``/``sum``/``min``/``max`` ride along for
free, which keeps averages exact even though quantiles are bounded-
error.

Zero intra-repro imports, stdlib + numpy only — same rule as the rest
of :mod:`repro.obs`.
"""

from __future__ import annotations

import math
import threading

import numpy as np

__all__ = ["LogHistogram", "DEFAULT_REL_ERR"]

DEFAULT_REL_ERR = 0.01


class LogHistogram:
    """Fixed-range log-bucket histogram with bounded-relative-error quantiles.

    Parameters
    ----------
    rel_err:
        Relative accuracy ``alpha`` of reported quantiles (default 1 %).
    min_value, max_value:
        The covered range.  The defaults (1 ns .. 1 Gs for seconds, or
        1 byte .. 1 GB for sizes) give ~4150 buckets at 1 % — a few KB
        of int64 counters.

    Thread safety: :meth:`add` and :meth:`merge` take an internal lock;
    the per-thread ring-buffer path in :mod:`repro.obs.live` avoids even
    that by giving each thread its own sketch and merging off-thread.
    """

    __slots__ = (
        "rel_err", "min_value", "max_value", "gamma", "_log_gamma",
        "_nbuckets", "counts", "zero_count", "overflow",
        "count", "sum", "min", "max", "_lock",
    )

    def __init__(
        self,
        rel_err: float = DEFAULT_REL_ERR,
        *,
        min_value: float = 1e-9,
        max_value: float = 1e9,
    ) -> None:
        if not 0.0 < rel_err < 1.0:
            raise ValueError(f"rel_err must be in (0, 1), got {rel_err}")
        if not 0.0 < min_value < max_value:
            raise ValueError(
                f"need 0 < min_value < max_value, got {min_value}, {max_value}"
            )
        self.rel_err = float(rel_err)
        self.min_value = float(min_value)
        self.max_value = float(max_value)
        self.gamma = (1.0 + rel_err) / (1.0 - rel_err)
        self._log_gamma = math.log(self.gamma)
        span = math.log(max_value / min_value) / self._log_gamma
        self._nbuckets = int(math.ceil(span)) + 1
        self.counts = np.zeros(self._nbuckets, dtype=np.int64)
        self.zero_count = 0
        self.overflow = 0
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._lock = threading.Lock()

    # -- configuration identity ---------------------------------------
    @property
    def config(self) -> tuple[float, float, float]:
        """The merge-compatibility key: (rel_err, min_value, max_value)."""
        return (self.rel_err, self.min_value, self.max_value)

    def _bucket_index(self, value: float) -> int:
        # ceil(log_gamma(v / min)) clamped into [0, nbuckets)
        idx = math.ceil(math.log(value / self.min_value) / self._log_gamma)
        if idx < 0:
            return 0
        if idx >= self._nbuckets:
            return self._nbuckets - 1
        return idx

    def _representative(self, idx: int) -> float:
        if idx == 0:
            return self.min_value
        # geometric midpoint of (min*g^(i-1), min*g^i]: worst-case
        # relative distance to either edge is exactly rel_err
        return (
            self.min_value
            * self.gamma ** idx
            * 2.0
            / (self.gamma + 1.0)
        )

    # -- recording -----------------------------------------------------
    def add(self, value: float, count: int = 1) -> None:
        """Record ``count`` occurrences of ``value``.

        Negative and NaN values are ignored (latencies and sizes are
        non-negative by construction; a clock hiccup must not poison
        the sketch).
        """
        v = float(value)
        if count <= 0 or math.isnan(v) or v < 0.0:
            return
        with self._lock:
            self.count += count
            self.sum += v * count
            if v < self.min:
                self.min = v
            if v > self.max:
                self.max = v
            if v < self.min_value:
                self.zero_count += count
                return
            if v > self.max_value:
                self.overflow += count
            self.counts[self._bucket_index(min(v, self.max_value))] += count

    def extend(self, values) -> None:
        """Record an iterable of values (convenience for tests/loadgen)."""
        for v in values:
            self.add(v)

    # -- merging -------------------------------------------------------
    def merge(self, other: "LogHistogram") -> "LogHistogram":
        """Fold ``other`` into ``self`` (exact: element-wise int adds).

        Raises :class:`ValueError` when the two sketches were built with
        different (rel_err, min_value, max_value) — bucket boundaries
        would not line up and the merge would silently corrupt counts.
        """
        if self.config != other.config:
            raise ValueError(
                f"cannot merge sketches with different configs: "
                f"{self.config} != {other.config}"
            )
        with self._lock:
            self.counts += other.counts
            self.zero_count += other.zero_count
            self.overflow += other.overflow
            self.count += other.count
            self.sum += other.sum
            if other.min < self.min:
                self.min = other.min
            if other.max > self.max:
                self.max = other.max
        return self

    def copy(self) -> "LogHistogram":
        """An independent snapshot (safe to merge elsewhere)."""
        out = LogHistogram(
            self.rel_err, min_value=self.min_value, max_value=self.max_value
        )
        with self._lock:
            out.counts = self.counts.copy()
            out.zero_count = self.zero_count
            out.overflow = self.overflow
            out.count = self.count
            out.sum = self.sum
            out.min = self.min
            out.max = self.max
        return out

    # -- quantiles -----------------------------------------------------
    def quantile(self, q: float) -> float:
        """The ``q``-quantile (0 <= q <= 1), within ``rel_err`` relative
        error of the exact order statistic.  Returns 0.0 on an empty
        sketch."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        with self._lock:
            total = self.count
            if total == 0:
                return 0.0
            # nearest-rank: the k-th smallest recorded value, k in [1, n]
            rank = max(1, math.ceil(q * total))
            if rank <= self.zero_count:
                return 0.0
            remaining = rank - self.zero_count
            cum = np.cumsum(self.counts)
            idx = int(np.searchsorted(cum, remaining))
            if idx >= self._nbuckets:
                idx = self._nbuckets - 1
            return self._representative(idx)

    def percentile(self, p: float) -> float:
        """``quantile(p / 100)`` — mirrors :meth:`Histogram.percentile`."""
        return self.quantile(p / 100.0)

    def percentiles(self, ps=(50.0, 95.0, 99.0)) -> dict[str, float]:
        """``{"p50": ..., "p95": ..., "p99": ...}`` in one pass."""
        return {f"p{_pkey(p)}": self.percentile(p) for p in ps}

    @property
    def mean(self) -> float:
        """Exact mean of all recorded values (0.0 when empty)."""
        return self.sum / self.count if self.count else 0.0

    # -- serialization -------------------------------------------------
    def to_dict(self) -> dict:
        """Sparse JSON-ready form: only non-zero buckets are stored."""
        with self._lock:
            nz = np.flatnonzero(self.counts)
            return {
                "rel_err": self.rel_err,
                "min_value": self.min_value,
                "max_value": self.max_value,
                "buckets": {int(i): int(self.counts[i]) for i in nz},
                "zero_count": int(self.zero_count),
                "overflow": int(self.overflow),
                "count": int(self.count),
                "sum": float(self.sum),
                "min": None if math.isinf(self.min) else float(self.min),
                "max": None if math.isinf(self.max) else float(self.max),
            }

    @classmethod
    def from_dict(cls, d: dict) -> "LogHistogram":
        out = cls(
            d["rel_err"],
            min_value=d["min_value"],
            max_value=d["max_value"],
        )
        for i, c in d["buckets"].items():
            out.counts[int(i)] = int(c)
        out.zero_count = int(d["zero_count"])
        out.overflow = int(d.get("overflow", 0))
        out.count = int(d["count"])
        out.sum = float(d["sum"])
        out.min = math.inf if d["min"] is None else float(d["min"])
        out.max = -math.inf if d["max"] is None else float(d["max"])
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LogHistogram(rel_err={self.rel_err}, count={self.count}, "
            f"p50={self.quantile(0.5):.6g}, p99={self.quantile(0.99):.6g})"
        )


def _pkey(p: float) -> str:
    """``50.0 -> '50'``, ``99.9 -> '99.9'`` — stable percentile keys."""
    return f"{p:g}"
