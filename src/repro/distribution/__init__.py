"""Tile-to-process data distributions (2DBCDD, 1DBCDD, hybrid band)."""

from .distributions import (
    BandDistribution,
    Distribution,
    OneDBlockCyclic,
    TwoDBlockCyclic,
    load_per_process,
)
from .process_grid import ProcessGrid

__all__ = [
    "ProcessGrid",
    "Distribution",
    "TwoDBlockCyclic",
    "OneDBlockCyclic",
    "BandDistribution",
    "load_per_process",
]
