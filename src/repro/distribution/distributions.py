"""Tile-to-process data distributions (Section VII-C, Fig. 5).

Three distributions are provided:

* :class:`TwoDBlockCyclic` — the ScaLAPACK 2DBCDD used for off-band tiles;
* :class:`OneDBlockCyclic` — the "artificial" 1DBCDD the auto-tuner uses to
  spread each sub-diagonal across all processes (Algorithm 1), and the
  building block of the band distribution;
* :class:`BandDistribution` — the paper's hybrid: on-band tiles follow a
  *modified row-based* (lower triangular) or *column-based* (upper)
  1DBCDD, off-band tiles follow 2DBCDD on a process grid.

Every distribution is a total function from lower-triangular tile indices
to process ranks (bijective coverage is property-tested), which is what
the runtime consults to classify dataflow edges LOCAL vs REMOTE and to
place tasks.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from ..utils.exceptions import DistributionError
from ..utils.validation import check_in, check_positive_int
from .process_grid import ProcessGrid

__all__ = [
    "Distribution",
    "TwoDBlockCyclic",
    "OneDBlockCyclic",
    "BandDistribution",
    "load_per_process",
]


class Distribution(ABC):
    """Maps lower-triangular tile indices to owning process ranks."""

    @property
    @abstractmethod
    def nprocs(self) -> int:
        """Number of processes the distribution targets."""

    @abstractmethod
    def owner(self, i: int, j: int) -> int:
        """Rank owning tile ``(i, j)`` (``i >= j``)."""

    def same_owner(self, a: tuple[int, int], b: tuple[int, int]) -> bool:
        """True when two tiles are owned by the same process (LOCAL edge)."""
        return self.owner(*a) == self.owner(*b)

    def _check(self, i: int, j: int) -> None:
        if i < 0 or j < 0 or i < j:
            raise DistributionError(
                f"tile ({i}, {j}) is not a lower-triangular index"
            )


@dataclass(frozen=True)
class TwoDBlockCyclic(Distribution):
    """ScaLAPACK two-dimensional block-cyclic distribution.

    Tile ``(i, j)`` lives on grid coordinate ``(i mod P, j mod Q)``.
    """

    grid: ProcessGrid

    @property
    def nprocs(self) -> int:
        return self.grid.size

    def owner(self, i: int, j: int) -> int:
        self._check(i, j)
        return self.grid.rank_of(i, j)


@dataclass(frozen=True)
class OneDBlockCyclic(Distribution):
    """One-dimensional block-cyclic distribution.

    ``axis="row"`` assigns tile ``(i, j)`` to ``i mod size`` (all tiles of
    a row share an owner); ``axis="column"`` uses ``j mod size``;
    ``axis="subdiagonal"`` spreads each sub-diagonal evenly by assigning
    position ``j`` within sub-diagonal ``i - j`` to ``j mod size`` — the
    artificial distribution Algorithm 1 uses so "all resources are utilized"
    during BAND_SIZE auto-tuning.
    """

    size: int
    axis: str = "row"

    def __post_init__(self) -> None:
        check_positive_int("size", self.size)
        check_in("axis", self.axis, ("row", "column", "subdiagonal"))

    @property
    def nprocs(self) -> int:
        return self.size

    def owner(self, i: int, j: int) -> int:
        self._check(i, j)
        if self.axis == "row":
            return i % self.size
        if self.axis == "column":
            return j % self.size
        return j % self.size  # position within sub-diagonal i-j is j


@dataclass(frozen=True)
class BandDistribution(Distribution):
    """The paper's hybrid band + 2DBCDD distribution (Fig. 5 b/c).

    On-band tiles (``|i - j| < band_size``) follow a modified 1DBCDD:
    row-based for a lower-triangular factorization (all on-band tiles of
    row ``i`` on process ``i mod size``) so the dense TRSMs of a panel land
    on distinct processes *and* the mostly-sequential kernels along a row
    need no communication; column-based for the upper-triangular variant.
    Off-band tiles follow plain 2DBCDD on the grid.
    """

    grid: ProcessGrid
    band_size: int
    uplo: str = "lower"

    def __post_init__(self) -> None:
        check_positive_int("band_size", self.band_size)
        check_in("uplo", self.uplo, ("lower", "upper"))

    @property
    def nprocs(self) -> int:
        return self.grid.size

    def on_band(self, i: int, j: int) -> bool:
        """True when tile ``(i, j)`` belongs to the dense band."""
        return abs(i - j) < self.band_size

    def owner(self, i: int, j: int) -> int:
        self._check(i, j)
        if self.on_band(i, j):
            key = i if self.uplo == "lower" else j
            return key % self.grid.size
        return self.grid.rank_of(i, j)


def load_per_process(
    dist: Distribution,
    ntiles: int,
    weight=None,
) -> np.ndarray:
    """Per-process accumulated load over the lower triangle.

    Parameters
    ----------
    dist:
        The distribution to evaluate.
    ntiles:
        Tile count per dimension.
    weight:
        Optional ``weight(i, j) -> float`` (e.g. tile memory or modelled
        flops); defaults to 1 per tile (tile counts).

    Returns
    -------
    numpy.ndarray
        Length ``dist.nprocs`` array of accumulated load.
    """
    load = np.zeros(dist.nprocs)
    for i in range(ntiles):
        for j in range(i + 1):
            w = 1.0 if weight is None else float(weight(i, j))
            load[dist.owner(i, j)] += w
    return load
