"""Process grids for block-cyclic data distributions.

The paper uses a ``P x Q`` grid "as square as possible" with ``P <= Q``
(Section VIII-A).  :meth:`ProcessGrid.squarest` reproduces that choice.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..utils.validation import check_positive_int

__all__ = ["ProcessGrid"]


@dataclass(frozen=True)
class ProcessGrid:
    """A ``P x Q`` logical grid over ``P * Q`` processes.

    Process ranks are laid out row-major: grid coordinate ``(r, c)`` is
    rank ``r * q + c``.
    """

    p: int
    q: int

    def __post_init__(self) -> None:
        check_positive_int("p", self.p)
        check_positive_int("q", self.q)

    @property
    def size(self) -> int:
        """Total number of processes."""
        return self.p * self.q

    def rank_of(self, r: int, c: int) -> int:
        """Rank of grid coordinate ``(r, c)`` (coordinates taken modulo)."""
        return (r % self.p) * self.q + (c % self.q)

    def coords_of(self, rank: int) -> tuple[int, int]:
        """Grid coordinate of ``rank``."""
        if not (0 <= rank < self.size):
            raise ValueError(f"rank {rank} out of range [0, {self.size})")
        return divmod(rank, self.q)

    @classmethod
    def squarest(cls, size: int) -> "ProcessGrid":
        """The most-square ``P x Q`` factorization of ``size`` with ``P <= Q``.

        E.g. 12 -> 3x4, 16 -> 4x4, 7 -> 1x7 (primes degrade to a row).
        """
        size = check_positive_int("size", size)
        p = int(size**0.5)
        while p >= 1:
            if size % p == 0:
                return cls(p, size // p)
            p -= 1
        raise AssertionError("unreachable")  # pragma: no cover
