"""Chaos-testing support: deterministic fault injection (``repro.testing``).

The production counterpart lives in :mod:`repro.runtime.resilience`; this
package holds the *adversary* — seeded fault plans that make Table-I
kernels fail on purpose so the recovery machinery can be exercised and
regression-tested.  Importing it never changes library behaviour: faults
only fire when a plan is explicitly passed to an executor.
"""

from .faults import FaultClause, FaultInjector, FaultKind, FaultPlan

__all__ = ["FaultClause", "FaultInjector", "FaultKind", "FaultPlan"]
